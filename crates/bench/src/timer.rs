//! A small wall-clock micro-benchmark harness.
//!
//! Replaces the external `criterion` dependency for this repo's needs: time
//! a closure, auto-scaling the iteration count until the measurement window
//! is long enough to trust, and report nanoseconds per iteration and
//! iterations per second. Wrap inputs/outputs in [`std::hint::black_box`]
//! inside the closure to keep the optimizer honest.
//!
//! # Example
//!
//! ```
//! use std::hint::black_box;
//!
//! let r = tmc_bench::timer::bench("sum", || {
//!     black_box((0..1000u64).sum::<u64>());
//! });
//! assert!(r.ns_per_iter > 0.0);
//! assert!(r.per_sec > 0.0);
//! ```

use std::time::{Duration, Instant};

/// Outcome of one [`bench`] measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Label passed to [`bench`].
    pub label: String,
    /// Iterations in the final (reported) measurement window.
    pub iters: u64,
    /// Wall-clock length of that window.
    pub elapsed: Duration,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per second (`1e9 / ns_per_iter`).
    pub per_sec: f64,
}

impl BenchResult {
    /// One-line human-readable rendering, e.g.
    /// `multicast/bitvector: 1234.5 ns/iter (810044 iters/s)`.
    pub fn render(&self) -> String {
        format!(
            "{}: {:.1} ns/iter ({:.0} iters/s)",
            self.label, self.ns_per_iter, self.per_sec
        )
    }
}

/// Minimum measurement window; shorter runs double the iteration count and
/// retry, so timer granularity and call overhead stay negligible.
const MIN_WINDOW: Duration = Duration::from_millis(50);

/// Times `f`, doubling the iteration count until one timed window lasts at
/// least 50 ms, and reports the per-iteration mean of the final window. One
/// untimed warmup call precedes measurement.
pub fn bench<F: FnMut()>(label: &str, mut f: F) -> BenchResult {
    f(); // warmup: touch caches, fault in lazy state
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= MIN_WINDOW || iters >= u64::MAX / 2 {
            let ns_per_iter = (elapsed.as_nanos() as f64 / iters as f64).max(f64::MIN_POSITIVE);
            return BenchResult {
                label: label.to_string(),
                iters,
                elapsed,
                ns_per_iter,
                per_sec: 1e9 / ns_per_iter,
            };
        }
        iters = iters.saturating_mul(2);
    }
}

/// Times one call of `f`, returning its result and the wall-clock duration.
/// For macro-scale measurements (whole sweeps) where one run is the unit.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scales_iterations_and_reports_sane_rates() {
        let r = bench("noop", || {
            std::hint::black_box(1u64);
        });
        assert_eq!(r.label, "noop");
        assert!(r.iters > 1, "a no-op must need many iterations");
        assert!(r.elapsed >= MIN_WINDOW);
        assert!(r.ns_per_iter > 0.0);
        assert!((r.per_sec - 1e9 / r.ns_per_iter).abs() < 1.0);
        assert!(r.render().contains("noop"));
    }

    #[test]
    fn time_once_returns_the_value() {
        let (v, d) = time_once(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
