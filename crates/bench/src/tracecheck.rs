//! Trace capture and replay checking for the two-mode protocol.
//!
//! [`capture`] drives a fresh [`System`] with tracing on and serialises the
//! event stream as a JSONL trace (header, events, trailer — see
//! [`tmc_obs::jsonl`]). [`check`] does the inverse: it rebuilds an
//! identically configured `System` from the header, re-executes the
//! replayable events (`read`, `write`, `set_mode`) in order with the
//! [`ReferenceMemory`] oracle alongside, and asserts that
//!
//! 1. every read returns both the recorded value and the oracle's value;
//! 2. the regenerated event stream equals the recorded one exactly —
//!    including misses, mode switches, ownership movement, replacements and
//!    per-link cast charges;
//! 3. the trailer obligations hold: FNV-1a of the protocol fingerprint,
//!    the total link-bit charge, and every nonzero per-link charge;
//! 4. the replayed system passes `check_invariants`, and its memory image
//!    agrees with the oracle word-for-word.
//!
//! Because the protocol is deterministic given the reference stream, any
//! divergence pins the exact event where behaviour changed — this is the
//! top layer of the test pyramid (`docs/TESTING.md`).

use std::fmt;

use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::{BlockSpec, CacheGeometry, MsgSizing, ReferenceMemory};
use tmc_obs::jsonl::{fnv1a64, TraceHeader, TraceReader, TraceTrailer, TraceWriter, TRACE_VERSION};
use tmc_obs::{LinkCharge, ProtocolEvent};
use tmc_omeganet::{SchemeKind, TrafficMatrix};

/// Stable header string for a [`SchemeKind`].
pub fn scheme_kind_str(kind: SchemeKind) -> &'static str {
    match kind {
        SchemeKind::Replicated => "replicated",
        SchemeKind::BitVector => "bitvector",
        SchemeKind::BroadcastTag => "broadcast-tag",
        SchemeKind::Combined => "combined",
    }
}

/// Parses [`scheme_kind_str`] output.
pub fn parse_scheme_kind(s: &str) -> Option<SchemeKind> {
    match s {
        "replicated" => Some(SchemeKind::Replicated),
        "bitvector" => Some(SchemeKind::BitVector),
        "broadcast-tag" => Some(SchemeKind::BroadcastTag),
        "combined" => Some(SchemeKind::Combined),
        _ => None,
    }
}

/// Stable header string for a [`ModePolicy`]: `fixed-dw`, `fixed-gr` or
/// `adaptive:<window>`.
pub fn policy_str(policy: ModePolicy) -> String {
    match policy {
        ModePolicy::Fixed(Mode::DistributedWrite) => "fixed-dw".into(),
        ModePolicy::Fixed(Mode::GlobalRead) => "fixed-gr".into(),
        ModePolicy::Adaptive { window } => format!("adaptive:{window}"),
    }
}

/// Parses [`policy_str`] output.
pub fn parse_policy(s: &str) -> Option<ModePolicy> {
    match s {
        "fixed-dw" => Some(ModePolicy::Fixed(Mode::DistributedWrite)),
        "fixed-gr" => Some(ModePolicy::Fixed(Mode::GlobalRead)),
        _ => {
            let window = s.strip_prefix("adaptive:")?.parse().ok()?;
            Some(ModePolicy::Adaptive { window })
        }
    }
}

/// Builds the trace header describing `sys`'s configuration.
///
/// Fails for configurations the header cannot represent: non-default
/// message sizing, an enabled timing model, or a fault plan (replay
/// rebuilds the system from the header alone, so anything unrepresented
/// would silently change the replayed machine).
pub fn header_for(sys: &System) -> Result<TraceHeader, String> {
    let cfg = sys.config();
    if cfg.sizing != MsgSizing::default() {
        return Err("traces only encode the default message sizing".into());
    }
    if cfg.timing.is_some() {
        return Err("traces do not encode timing models; disable timing to capture".into());
    }
    if cfg.faults.is_some() {
        return Err("traces do not encode fault plans; disable faults to capture".into());
    }
    Ok(TraceHeader {
        version: TRACE_VERSION,
        n_procs: cfg.n_caches,
        sets: cfg.geometry.sets(),
        ways: cfg.geometry.ways(),
        words_log2: cfg.spec.words_per_block().trailing_zeros(),
        scheme: scheme_kind_str(cfg.multicast).into(),
        policy: policy_str(cfg.mode_policy),
        owner_bypass: cfg.owner_bypass,
    })
}

/// Rebuilds the [`SystemConfig`] a trace header describes.
pub fn config_from(header: &TraceHeader) -> Result<SystemConfig, String> {
    let scheme = parse_scheme_kind(&header.scheme)
        .ok_or_else(|| format!("unknown multicast scheme '{}'", header.scheme))?;
    let policy = parse_policy(&header.policy)
        .ok_or_else(|| format!("unknown mode policy '{}'", header.policy))?;
    if !header.n_procs.is_power_of_two() || !(2..=65536).contains(&header.n_procs) {
        return Err(format!("bad processor count {}", header.n_procs));
    }
    Ok(SystemConfig::new(header.n_procs)
        .geometry(CacheGeometry::new(header.sets, header.ways))
        .block_spec(BlockSpec::new(header.words_log2))
        .multicast(scheme)
        .mode_policy(policy)
        .owner_bypass(header.owner_bypass))
}

/// Every nonzero per-link charge in `traffic`, sorted by `(layer, line)`.
pub fn nonzero_links(traffic: &TrafficMatrix) -> Vec<LinkCharge> {
    let mut out = Vec::new();
    for layer in 0..traffic.layers() as u32 {
        for line in 0..traffic.n_ports() {
            let bits = traffic.link_bits(tmc_omeganet::LinkId { layer, line });
            if bits > 0 {
                out.push(LinkCharge { layer, line, bits });
            }
        }
    }
    out
}

/// The trailer pinning `sys`'s end-of-run obligations.
pub fn trailer_for(sys: &System) -> TraceTrailer {
    TraceTrailer {
        events: 0, // overwritten by TraceWriter::finish
        fingerprint: fnv1a64(&sys.protocol_fingerprint()),
        total_bits: sys.traffic().total_bits(),
        links: nonzero_links(sys.traffic()),
    }
}

/// Builds a system from `cfg`, enables tracing, runs `drive` against it,
/// and returns the full JSONL trace text.
///
/// # Errors
///
/// Fails if `cfg` is rejected by [`System::new`] or cannot be represented
/// in a trace header (see [`header_for`]).
pub fn capture<F>(cfg: SystemConfig, drive: F) -> Result<String, String>
where
    F: FnOnce(&mut System),
{
    let mut sys = System::new(cfg).map_err(|e| e.to_string())?;
    let header = header_for(&sys)?;
    sys.set_tracing(true);
    drive(&mut sys);
    let events = sys.drain_trace();
    let mut w = TraceWriter::new(Vec::new(), &header).map_err(|e| e.to_string())?;
    for e in &events {
        w.event(e).map_err(|e| e.to_string())?;
    }
    let bytes = w.finish(trailer_for(&sys)).map_err(|e| e.to_string())?;
    String::from_utf8(bytes).map_err(|e| e.to_string())
}

/// What a successful replay verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events in the trace (and regenerated by the replay).
    pub events: usize,
    /// Replayable transactions re-executed (`read`/`write`/`set_mode`).
    pub replayed: usize,
    /// Reads whose value matched both the trace and the oracle.
    pub reads_checked: usize,
    /// Words compared between the replayed machine and the oracle at end.
    pub words_checked: usize,
    /// The verified FNV-1a fingerprint hash.
    pub fingerprint: u64,
    /// The verified total link-bit charge.
    pub total_bits: u64,
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replayed {} of {} events ({} reads value-checked, {} words \
             oracle-checked); fingerprint {:#018x}, {} link bits — all verified",
            self.replayed,
            self.events,
            self.reads_checked,
            self.words_checked,
            self.fingerprint,
            self.total_bits
        )
    }
}

fn mismatch(i: usize, what: &str, got: impl fmt::Debug, want: impl fmt::Debug) -> String {
    format!("event {i}: {what}: replay produced {got:?}, trace recorded {want:?}")
}

/// Replays `trace` against a fresh system and verifies every obligation.
///
/// See the module docs for the full checklist. Returns a [`ReplayReport`]
/// on success and a message naming the first divergence otherwise.
pub fn check(trace: &str) -> Result<ReplayReport, String> {
    let (header, events, trailer) = TraceReader::new(trace.as_bytes()).read_all()?;
    let cfg = config_from(&header)?;
    let mut sys = System::new(cfg).map_err(|e| e.to_string())?;
    sys.set_tracing(true);
    let mut oracle = ReferenceMemory::new();
    let mut replayed = 0usize;
    let mut reads_checked = 0usize;

    for (i, event) in events.iter().enumerate() {
        match *event {
            ProtocolEvent::Read {
                proc, addr, value, ..
            } => {
                let got = sys
                    .read(proc, addr)
                    .map_err(|e| format!("event {i}: {e}"))?;
                if got != value {
                    return Err(mismatch(i, "read value", got, value));
                }
                if got != oracle.read(addr) {
                    return Err(mismatch(i, "oracle read value", got, oracle.read(addr)));
                }
                replayed += 1;
                reads_checked += 1;
            }
            ProtocolEvent::Write {
                proc, addr, value, ..
            } => {
                sys.write(proc, addr, value)
                    .map_err(|e| format!("event {i}: {e}"))?;
                oracle.write(addr, value);
                replayed += 1;
            }
            ProtocolEvent::SetMode { proc, addr, mode } => {
                sys.set_mode(proc, addr, mode.into())
                    .map_err(|e| format!("event {i}: {e}"))?;
                replayed += 1;
            }
            _ => {} // regenerated below and compared wholesale
        }
    }

    // The replayable subset must regenerate the *entire* stream.
    let regenerated = sys.drain_trace();
    if regenerated.len() != events.len() {
        return Err(format!(
            "replay regenerated {} events, trace has {}",
            regenerated.len(),
            events.len()
        ));
    }
    for (i, (got, want)) in regenerated.iter().zip(&events).enumerate() {
        if got != want {
            return Err(mismatch(i, "regenerated event", got, want));
        }
    }

    // Trailer obligations.
    let fingerprint = fnv1a64(&sys.protocol_fingerprint());
    if fingerprint != trailer.fingerprint {
        return Err(format!(
            "fingerprint hash {fingerprint:#018x} != trailer {:#018x}",
            trailer.fingerprint
        ));
    }
    let total_bits = sys.traffic().total_bits();
    if total_bits != trailer.total_bits {
        return Err(format!(
            "total link bits {total_bits} != trailer {}",
            trailer.total_bits
        ));
    }
    let links = nonzero_links(sys.traffic());
    if links != trailer.links {
        return Err(format!(
            "per-link charges diverge: replay has {} nonzero links, trailer {}",
            links.len(),
            trailer.links.len()
        ));
    }

    // Protocol invariants and the full oracle memory image.
    sys.check_invariants().map_err(|e| e.to_string())?;
    let mut words_checked = 0usize;
    for (addr, value) in oracle.iter() {
        let got = sys.peek_word(addr);
        if got != value {
            return Err(format!(
                "memory image diverges at {addr:?}: replay {got}, oracle {value}"
            ));
        }
        words_checked += 1;
    }

    Ok(ReplayReport {
        events: events.len(),
        replayed,
        reads_checked,
        words_checked,
        fingerprint,
        total_bits,
    })
}

/// Captures a trace from `cfg`+`drive` and immediately [`check`]s it — the
/// round-trip a CI job runs.
pub fn roundtrip<F>(cfg: SystemConfig, drive: F) -> Result<ReplayReport, String>
where
    F: FnOnce(&mut System),
{
    check(&capture(cfg, drive)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_memsys::WordAddr;

    #[test]
    fn scheme_and_policy_strings_roundtrip() {
        for k in [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
            SchemeKind::Combined,
        ] {
            assert_eq!(parse_scheme_kind(scheme_kind_str(k)), Some(k));
        }
        assert_eq!(parse_scheme_kind("morse"), None);
        for p in [
            ModePolicy::Fixed(Mode::DistributedWrite),
            ModePolicy::Fixed(Mode::GlobalRead),
            ModePolicy::Adaptive { window: 48 },
        ] {
            assert_eq!(parse_policy(&policy_str(p)), Some(p));
        }
        assert_eq!(parse_policy("adaptive:"), None);
        assert_eq!(parse_policy("sometimes"), None);
    }

    #[test]
    fn header_roundtrips_through_config() {
        let cfg = SystemConfig::new(8)
            .geometry(CacheGeometry::new(16, 2))
            .block_spec(BlockSpec::new(1))
            .multicast(SchemeKind::BitVector)
            .mode_policy(ModePolicy::Adaptive { window: 12 })
            .owner_bypass(false);
        let sys = System::new(cfg.clone()).unwrap();
        let header = header_for(&sys).unwrap();
        assert_eq!(config_from(&header).unwrap(), cfg);
    }

    #[test]
    fn unrepresentable_configs_are_rejected() {
        let mut sizing = MsgSizing::default();
        sizing.block_words *= 2;
        let sys = System::new(
            SystemConfig::new(4)
                .sizing(sizing)
                .block_spec(BlockSpec::new(3)),
        )
        .unwrap();
        assert!(header_for(&sys).unwrap_err().contains("sizing"));

        let timed =
            System::new(SystemConfig::new(4).timing(tmc_omeganet::TimingModel::default())).unwrap();
        assert!(header_for(&timed).unwrap_err().contains("timing"));

        let faulty = System::new(SystemConfig::new(4).faults(tmc_core::FaultSpec::new(3))).unwrap();
        assert!(header_for(&faulty).unwrap_err().contains("fault plans"));
    }

    #[test]
    fn capture_then_check_verifies_a_small_run() {
        let report = roundtrip(SystemConfig::new(4), |sys| {
            let a = WordAddr::new(0);
            let b = WordAddr::new(64);
            sys.set_mode(0, a, Mode::DistributedWrite).unwrap();
            for i in 0..8u64 {
                sys.write((i % 4) as usize, a, i + 1).unwrap();
                sys.read(((i + 1) % 4) as usize, a).unwrap();
                sys.write(0, b, 100 + i).unwrap();
                sys.read(3, b).unwrap();
            }
        })
        .unwrap();
        assert!(report.events > 0);
        assert!(report.replayed > 0);
        assert!(report.reads_checked >= 16);
        assert_eq!(report.words_checked, 2);
        assert!(report.to_string().contains("all verified"));
    }

    #[test]
    fn check_catches_a_corrupted_value() {
        let trace = capture(SystemConfig::new(4), |sys| {
            sys.write(0, WordAddr::new(0), 7).unwrap();
            sys.read(1, WordAddr::new(0)).unwrap();
        })
        .unwrap();
        // Flip the recorded read value: replay must flag the divergence.
        let bad = trace.replace(
            "\"type\":\"read\",\"proc\":1,\"addr\":0,\"value\":7",
            "\"type\":\"read\",\"proc\":1,\"addr\":0,\"value\":8",
        );
        assert_ne!(trace, bad, "corruption must hit a line");
        let err = check(&bad).unwrap_err();
        assert!(err.contains("read value"), "unexpected error: {err}");
    }
}
