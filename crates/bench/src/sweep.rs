//! Parallel sweep engine: fan independent simulation cells across cores.
//!
//! Every figure-reproduction binary evaluates a grid of independent cells —
//! (write fraction × system) for fig. 8, (sharing set size × scheme) for
//! fig. 5, and so on. Each cell seeds its own [`tmc_simcore::SimRng`] and
//! builds its own [`tmc_core::System`], so cells share no state and can run
//! on any thread in any order. This module provides the one primitive they
//! all need: [`map`], a deterministic parallel map.
//!
//! Results are returned **in cell order** regardless of which thread ran
//! which cell or when it finished, so a parallel sweep's output is
//! bit-for-bit identical to the serial one (`tests/sweep_determinism.rs`
//! checks exactly that). Scheduling is a chunked atomic cursor: cells are
//! pre-split into contiguous chunks (a few per worker) and idle workers
//! claim the next chunk with one `fetch_add` — no per-cell locking, no
//! steal scans, and the tail chunks still rebalance long cells (high write
//! fractions, big caches) across whichever workers finish early.
//!
//! Built entirely on `std::thread::scope` — no external crates, so the
//! hermetic offline build keeps working.
//!
//! # Example
//!
//! ```
//! let squares = tmc_bench::sweep::map((0..8u64).collect(), |x| x * x);
//! assert_eq!(squares, [0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tmc_core::SystemConfig;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "TMC_SWEEP_THREADS";

/// Admission check for a figure-sweep cell configuration.
///
/// The figure binaries reproduce the paper's *fault-free steady-state*
/// cost models, so a cell must not enable features that would perturb the
/// published numbers or break run-to-run comparability: fault injection
/// (perturbs traffic), the timing model (adds a global clock the tables
/// don't report), or transaction logging (unbounded memory across a grid).
/// Rejecting here, before the sweep fans out, turns a misconfigured grid
/// into one clear error instead of thousands of skewed cells.
pub fn check_cell_config(cfg: &SystemConfig) -> Result<(), String> {
    if cfg.faults.is_some() {
        return Err(
            "figure sweeps are fault-free: fault injection would perturb the published \
             traffic figures; run fault campaigns via the chaos harness instead"
                .into(),
        );
    }
    if cfg.timing.is_some() {
        return Err("figure sweeps do not use the timing model (tables report traffic)".into());
    }
    if cfg.log_transactions {
        return Err("figure sweeps do not keep transaction logs (unbounded across a grid)".into());
    }
    Ok(())
}

/// Parses a `TMC_SWEEP_THREADS`-style override; `default` when absent or
/// unparsable. Zero is treated as "no override".
fn parse_threads(value: Option<&str>, default: usize) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// The worker-thread count a sweep will use: `TMC_SWEEP_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref(), default)
}

/// Maps `worker` over `cells` in parallel, returning results in cell order.
///
/// Uses [`num_threads`] workers. The worker function must be `Sync` (shared
/// by reference across threads) and is called exactly once per cell.
/// Equivalent to `cells.into_iter().map(worker).collect()` — only faster.
pub fn map<I, R, F>(cells: Vec<I>, worker: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    map_with_threads(num_threads(), cells, worker)
}

/// [`map`] with an explicit thread count. `threads <= 1` runs serially on
/// the calling thread (no pool, no locks), which is also the reference
/// behavior the parallel path must reproduce.
///
/// # Panics
///
/// Propagates a panic from any worker invocation.
pub fn map_with_threads<I, R, F>(threads: usize, cells: Vec<I>, worker: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = cells.len();
    if threads <= 1 || n <= 1 {
        return cells.into_iter().map(worker).collect();
    }
    let threads = threads.min(n);

    // Pre-split the cells into contiguous chunks — about four per worker,
    // so the shared cursor is touched rarely while the tail still
    // rebalances across workers that finish early. Each chunk is claimed
    // exactly once via `fetch_add`; the `Mutex` exists only to move the
    // owned cells out (this crate forbids `unsafe`), so every lock
    // acquisition is uncontended and happens once per chunk, not per cell.
    // A chunk of indexed cells, `take`n by exactly one worker.
    type Chunk<I> = Mutex<Option<Vec<(usize, I)>>>;
    let chunk_len = n.div_ceil(threads * 4).max(1);
    let mut chunks: Vec<Chunk<I>> = Vec::new();
    let mut buf: Vec<(usize, I)> = Vec::with_capacity(chunk_len);
    for (idx, cell) in cells.into_iter().enumerate() {
        buf.push((idx, cell));
        if buf.len() == chunk_len {
            let full = std::mem::replace(&mut buf, Vec::with_capacity(chunk_len));
            chunks.push(Mutex::new(Some(full)));
        }
    }
    if !buf.is_empty() {
        chunks.push(Mutex::new(Some(buf)));
    }
    let cursor = AtomicUsize::new(0);

    let chunks = &chunks;
    let cursor = &cursor;
    let worker = &worker;
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let claim = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(claim) else {
                            break;
                        };
                        let batch = chunk
                            .lock()
                            .expect("chunk poisoned")
                            .take()
                            .expect("chunk claimed twice");
                        for (idx, cell) in batch {
                            done.push((idx, worker(cell)));
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    tagged.sort_unstable_by_key(|&(idx, _)| idx);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = map_with_threads(threads, cells.clone(), |x| x * 3);
            let want: Vec<usize> = cells.iter().map(|x| x * 3).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_cell_costs_still_merge_in_order() {
        // Make early cells slow so stealing actually reorders execution.
        let cells: Vec<u64> = (0..40).collect();
        let got = map_with_threads(4, cells, |x| {
            let spin = if x < 4 { 200_000 } else { 100 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x * x
        });
        assert_eq!(got, (0..40).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let empty: Vec<u32> = map_with_threads(8, Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(map_with_threads(8, vec![7u32], |x| x + 1), [8]);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_threads(None, 6), 6);
        assert_eq!(parse_threads(Some("4"), 6), 4);
        assert_eq!(parse_threads(Some(" 2 "), 6), 2);
        assert_eq!(parse_threads(Some("0"), 6), 6);
        assert_eq!(parse_threads(Some("lots"), 6), 6);
        assert_eq!(parse_threads(Some(""), 6), 6);
    }

    #[test]
    fn cell_config_admission() {
        assert!(check_cell_config(&SystemConfig::new(8)).is_ok());
        let faulty = SystemConfig::new(8).faults(tmc_core::FaultSpec::new(1));
        assert!(check_cell_config(&faulty).unwrap_err().contains("fault"));
        let timed = SystemConfig::new(8).timing(tmc_omeganet::TimingModel::default());
        assert!(check_cell_config(&timed).unwrap_err().contains("timing"));
        let logged = SystemConfig::new(8).log_transactions(true);
        assert!(check_cell_config(&logged)
            .unwrap_err()
            .contains("transaction logs"));
    }

    #[test]
    fn parallel_matches_serial_for_stateful_cells() {
        use tmc_simcore::SimRng;
        let cells: Vec<u64> = (0..24).collect();
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let serial = map_with_threads(1, cells.clone(), run);
        let parallel = map_with_threads(4, cells, run);
        assert_eq!(serial, parallel);
    }
}
