//! Block-sharded intra-run parallel simulation.
//!
//! The serial engine processes one reference at a time on one core. But the
//! paper's whole consistency design is *distributed per block*: the owner
//! present-vector, the non-owner OWNER pointer, and the per-block owner id
//! in the memory module's block store are all keyed by block address, and no
//! protocol action for block `b` ever reads or writes state belonging to a
//! different block. This module exploits that: it partitions the block
//! address space into `K` shards, runs each shard's references on its own
//! [`System`] slice (its own worker thread), and merges the results into a
//! machine that is *bit-identical* — protocol fingerprint, counters,
//! per-link charges, trace events, memory image — to the serial run.
//!
//! # Why the partition is exact
//!
//! With `M` memory modules and `S` cache sets (both powers of two), the
//! home module of block `b` is `b & (M−1)` and its cache set is `b & (S−1)`.
//! Taking `K` a power of two with `K ≤ min(M, S)` and
//! `shard(b) = b & (K−1)` gives two guarantees at once:
//!
//! * **home-module partition** — a module's blocks all land in one shard
//!   (`shard` is a function of `module`), so per-module block-store state
//!   never crosses shards;
//! * **cache-set partition** — a set's blocks all land in one shard
//!   (`shard` is a function of `set`), so LRU replacement — the only
//!   protocol coupling *between* blocks — is confined within a shard.
//!
//! Everything else the engine touches is either per-block protocol state or
//! an additive statistic (counters, per-link traffic, latency histograms),
//! so executing the global reference stream's shard-`k` subsequence on a
//! fresh machine reproduces exactly the state and charges the serial run
//! accumulates for those blocks. [`System::merge_shard`] reassembles the
//! pieces; [`tmc_obs::interleave`] restores the canonical trace order from
//! each reference's global index.
//!
//! Three global mutable knobs fall outside the per-block argument and are
//! therefore rejected or unsupported here: the timing model (a global
//! clock), `System::inject_offer_naks` (a global fault budget consumed
//! in trace order), and fault injection (the `tmc_faults` plan is keyed to
//! one global op clock). Transaction logs are also unsupported — use the
//! structured tracer, which merges canonically.
//!
//! Write values are the other global sequence: the serial drivers stamp
//! writes `1, 2, 3, …` in trace order. [`script_from_trace`] precomputes
//! each write's global stamp so shard workers replay the exact values.
//!
//! # Example
//!
//! ```
//! use tmc_bench::shardsim::{self, ShardRunOptions};
//! use tmc_core::SystemConfig;
//! use tmc_simcore::SimRng;
//! use tmc_workload::SharedBlockWorkload;
//!
//! let cfg = SystemConfig::new(4);
//! let trace = SharedBlockWorkload::new(2, 8, 0.3)
//!     .references(400)
//!     .generate(4, &mut SimRng::seed_from(9));
//! let script = shardsim::script_from_trace(&trace);
//! let sharded = shardsim::run(&cfg, &script, &ShardRunOptions::new(4, 2)).unwrap();
//!
//! // Bit-identical to the serial engine.
//! let mut serial = tmc_core::System::new(cfg).unwrap();
//! shardsim::apply_script(&mut serial, &script);
//! assert_eq!(
//!     sharded.system.protocol_fingerprint(),
//!     serial.protocol_fingerprint()
//! );
//! assert_eq!(sharded.system.traffic(), serial.traffic());
//! ```

use tmc_core::{System, SystemConfig};
use tmc_memsys::ReferenceMemory;
use tmc_obs::{interleave, ProtocolEvent, ShardEvents};
use tmc_workload::{Op, Trace};

use crate::{sweep, RunReport};

/// Environment variable opting the figure/replay binaries into sharded
/// execution of their two-mode steady-state drives. A positive integer
/// requests that many shards (rounded by [`shard_count`]); absent, zero or
/// unparsable means serial. Results are bit-identical either way — the
/// variable only changes how many cores a single run uses.
pub const SHARDS_ENV: &str = "TMC_SHARDS";

/// Parses [`SHARDS_ENV`]: the requested shard count, or 0 for "serial".
pub fn env_shards() -> usize {
    std::env::var(SHARDS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

/// One scripted reference with globally precomputed operands — the
/// engine's own batched-pipeline op type, re-exported under its historical
/// shard-script name. Shard scripts, scenario programs and conformance
/// cases all feed [`tmc_core::System::execute_batch`] without conversion.
pub use tmc_core::BatchOp as ShardOp;

/// Ops per [`tmc_core::System::execute_batch`] call when replaying a
/// script: large enough to amortize the per-batch billing flush, small
/// enough that the per-op decode scratch stays cache-resident.
pub const BATCH_CHUNK: usize = 4096;

/// Converts a workload trace into a shard script, assigning each write its
/// global stamp value — the same `1, 2, 3, …` sequence [`crate::drive`] and
/// [`crate::drive_steady_state`] generate, so a sharded replay writes
/// bit-identical data.
pub fn script_from_trace(trace: &Trace) -> Vec<ShardOp> {
    let mut stamp = 1u64;
    trace
        .iter()
        .map(|r| match r.op {
            Op::Read => ShardOp::Read {
                proc: r.proc,
                addr: r.addr,
            },
            Op::Write => {
                let value = stamp;
                stamp += 1;
                ShardOp::Write {
                    proc: r.proc,
                    addr: r.addr,
                    value,
                }
            }
        })
        .collect()
}

/// Executes `script` on `sys` through the batched pipeline
/// ([`tmc_core::System::execute_batch`] in [`BATCH_CHUNK`]-op chunks) —
/// bit-identical to [`apply_script_scalar`] but with per-batch deferred
/// billing and scratch reuse.
pub fn apply_script(sys: &mut System, script: &[ShardOp]) {
    for chunk in script.chunks(BATCH_CHUNK) {
        sys.execute_batch(chunk).expect("valid processors");
    }
}

/// Executes `script` one reference at a time through the scalar entry
/// points — the reference behavior both the sharded and the batched
/// pipelines must reproduce bit-for-bit.
pub fn apply_script_scalar(sys: &mut System, script: &[ShardOp]) {
    for op in script {
        apply_op(sys, op);
    }
}

fn apply_op(sys: &mut System, op: &ShardOp) {
    match *op {
        ShardOp::Read { proc, addr } => {
            let _ = sys.read(proc, addr).expect("valid processor");
        }
        ShardOp::Write { proc, addr, value } => {
            sys.write(proc, addr, value).expect("valid processor");
        }
        ShardOp::SetMode { proc, addr, mode } => {
            sys.set_mode(proc, addr, mode).expect("valid processor");
        }
    }
}

/// The shard count actually used for `cfg` when `requested` is asked for:
/// the largest power of two that is ≤ `requested`, divides the module count
/// (`cfg.n_caches`) and divides the cache-set count — the two conditions
/// that make `shard(b) = b & (K−1)` partition both home modules and cache
/// sets (see the module docs).
pub fn shard_count(cfg: &SystemConfig, requested: usize) -> usize {
    let pow2 = if requested.is_power_of_two() {
        requested
    } else {
        (requested.max(1).next_power_of_two()) / 2
    };
    pow2.max(1).min(cfg.n_caches).min(cfg.geometry.sets())
}

/// How to run a sharded simulation.
#[derive(Debug, Clone, Copy)]
pub struct ShardRunOptions {
    /// Requested shard count; rounded by [`shard_count`].
    pub shards: usize,
    /// Worker threads; `0` means one per shard, capped at the machine's
    /// available parallelism. `1` runs every shard on the calling thread
    /// (the serial reference path through the same code).
    pub threads: usize,
    /// References executed but excluded from the report (steady-state cut,
    /// applied at *global* indices exactly like [`crate::drive_steady_state`]).
    pub warmup: usize,
    /// Record protocol events and merge them into canonical global order.
    pub tracing: bool,
    /// Check every read against a per-shard [`ReferenceMemory`] oracle
    /// (valid because a word's reads depend only on that word's writes,
    /// which live on the same shard).
    pub check: bool,
    /// Freeze every shard machine through the crash-recovery snapshot
    /// codec ([`tmc_core::encode_system`] → [`tmc_core::decode_system`])
    /// before merging — proves checkpoint frames are transparent to the
    /// sharded pipeline (a resumed shard merges bit-identically).
    pub snapshot_roundtrip: bool,
}

impl ShardRunOptions {
    /// Options for a plain sharded run: `shards` shards on `threads`
    /// workers, no warmup, no tracing, no value checking.
    pub fn new(shards: usize, threads: usize) -> Self {
        ShardRunOptions {
            shards,
            threads,
            warmup: 0,
            tracing: false,
            check: false,
            snapshot_roundtrip: false,
        }
    }

    /// Sets the steady-state warmup cut.
    pub fn warmup(mut self, refs: usize) -> Self {
        self.warmup = refs;
        self
    }

    /// Enables canonical-order event tracing.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enables per-shard oracle value checking.
    pub fn check(mut self, on: bool) -> Self {
        self.check = on;
        self
    }

    /// Enables the per-shard snapshot round-trip before merging.
    pub fn snapshot_roundtrip(mut self, on: bool) -> Self {
        self.snapshot_roundtrip = on;
        self
    }
}

/// Outcome of a sharded run.
#[derive(Debug)]
pub struct ShardRun {
    /// The merged machine — bit-identical (fingerprint, counters, traffic,
    /// memory image, block store) to a serial run of the same script.
    pub system: System,
    /// The canonical global-order event stream (empty unless tracing).
    pub events: Vec<ProtocolEvent>,
    /// Steady-state traffic report over the post-warmup references.
    pub report: RunReport,
    /// Shards actually used (see [`shard_count`]).
    pub shards: usize,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Resolves `threads = 0` to one worker per shard, capped at the machine.
fn resolve_threads(threads: usize, shards: usize) -> usize {
    if threads > 0 {
        return threads;
    }
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    shards.min(avail).max(1)
}

/// Runs `script` sharded across worker threads and merges the result.
///
/// # Errors
///
/// Fails if `cfg` enables the timing model, transaction logging, or fault
/// injection (all global-order features the per-block partition cannot
/// reproduce), or if [`System::new`] rejects `cfg`.
pub fn run(
    cfg: &SystemConfig,
    script: &[ShardOp],
    opts: &ShardRunOptions,
) -> Result<ShardRun, String> {
    if cfg.timing.is_some() {
        return Err("sharded runs do not support the timing model (global clock)".into());
    }
    if cfg.log_transactions {
        return Err(
            "sharded runs do not support transaction logs; use tracing, which merges canonically"
                .into(),
        );
    }
    if cfg.faults.is_some() {
        return Err(
            "sharded runs do not support fault injection (the fault plan is keyed to one \
             global op clock); run fault campaigns on the serial engine"
                .into(),
        );
    }
    let shards = shard_count(cfg, opts.shards);
    let threads = resolve_threads(opts.threads, shards);
    let warmup = opts.warmup as u64;

    // Partition the script by shard, preserving global order within each
    // shard and remembering every reference's global index.
    let mut parts: Vec<Vec<(u64, ShardOp)>> = (0..shards).map(|_| Vec::new()).collect();
    for (idx, op) in script.iter().enumerate() {
        let block = cfg.spec.block_of(op.addr());
        let shard = (block.index() as usize) & (shards - 1);
        parts[shard].push((idx as u64, *op));
    }

    struct ShardOutcome {
        system: System,
        events: ShardEvents,
        warm_bits: u64,
    }

    let tracing = opts.tracing;
    let check = opts.check;
    let outcomes: Vec<Result<ShardOutcome, String>> =
        sweep::map_with_threads(threads, parts, |ops| {
            let mut sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
            sys.set_tracing(tracing);
            let mut events = ShardEvents::new();
            if !tracing && !check {
                // Neither per-op trace grouping nor the oracle needs
                // per-reference control: feed the shard's subsequence to
                // the batched pipeline. Indices ascend within a shard, so
                // the warmup boundary is a batch boundary.
                let cut = ops.partition_point(|&(idx, _)| idx < warmup);
                let flat: Vec<ShardOp> = ops.iter().map(|&(_, op)| op).collect();
                for chunk in flat[..cut].chunks(BATCH_CHUNK) {
                    sys.execute_batch(chunk).map_err(|e| e.to_string())?;
                }
                let warm_bits = sys.traffic().total_bits();
                for chunk in flat[cut..].chunks(BATCH_CHUNK) {
                    sys.execute_batch(chunk).map_err(|e| e.to_string())?;
                }
                return Ok(ShardOutcome {
                    system: sys,
                    events,
                    warm_bits,
                });
            }
            let mut traced_len = 0usize;
            let mut oracle = check.then(ReferenceMemory::new);
            let mut warm_bits = 0u64;
            let mut crossed = false;
            for &(idx, ref op) in &ops {
                if !crossed && idx >= warmup {
                    warm_bits = sys.traffic().total_bits();
                    crossed = true;
                }
                if let (Some(oracle), &ShardOp::Write { addr, value, .. }) = (oracle.as_mut(), op) {
                    oracle.write(addr, value);
                }
                if let (Some(oracle), &ShardOp::Read { proc, addr }) = (oracle.as_ref(), op) {
                    let got = sys.read(proc, addr).map_err(|e| e.to_string())?;
                    let want = oracle.read(addr);
                    if got != want {
                        return Err(format!(
                            "stale read at global reference {idx} (proc {proc}, {addr:?}): \
                             got {got}, oracle {want}"
                        ));
                    }
                } else {
                    apply_op(&mut sys, op);
                }
                if tracing {
                    let len = sys.trace_events().len();
                    events.groups.push((idx, (len - traced_len) as u32));
                    traced_len = len;
                }
            }
            if !crossed {
                // Every reference on this shard was warmup.
                warm_bits = sys.traffic().total_bits();
            }
            events.events = sys.drain_trace();
            Ok(ShardOutcome {
                system: sys,
                events,
                warm_bits,
            })
        });

    let mut merged = System::new(cfg.clone()).map_err(|e| e.to_string())?;
    let mut streams = Vec::with_capacity(shards);
    let mut warm_total = 0u64;
    for outcome in outcomes {
        let o = outcome?;
        warm_total += o.warm_bits;
        streams.push(o.events);
        let shard_sys = if opts.snapshot_roundtrip {
            // Freeze + thaw the shard machine through the checkpoint
            // codec; the merge below must not be able to tell.
            let bytes = tmc_core::encode_system(&o.system).map_err(|e| e.to_string())?;
            tmc_core::decode_system(&bytes).map_err(|e| e.to_string())?
        } else {
            o.system
        };
        merged.merge_shard(shard_sys);
    }
    let events = if tracing {
        interleave(streams)
    } else {
        Vec::new()
    };

    let report = if script.len() <= opts.warmup {
        RunReport {
            references: 0,
            total_bits: 0,
            bits_per_ref: 0.0,
        }
    } else {
        let measured = script.len() - opts.warmup;
        let total_bits = merged.traffic().total_bits() - warm_total;
        RunReport {
            references: measured,
            total_bits,
            bits_per_ref: total_bits as f64 / measured as f64,
        }
    };

    Ok(ShardRun {
        system: merged,
        events,
        report,
        shards,
        threads,
    })
}

/// Sharded counterpart of [`crate::drive`]: full-trace traffic per
/// reference. Returns the report and the merged machine.
///
/// # Errors
///
/// See [`run`].
pub fn drive_sharded(
    cfg: &SystemConfig,
    trace: &Trace,
    shards: usize,
    threads: usize,
) -> Result<(RunReport, System), String> {
    let script = script_from_trace(trace);
    let run = run(cfg, &script, &ShardRunOptions::new(shards, threads))?;
    Ok((run.report, run.system))
}

/// Sharded counterpart of [`crate::drive_steady_state`]: the warmup
/// references execute (warming shard state) but their traffic is excluded
/// from the report, using the same global-index cut as the serial driver.
///
/// # Errors
///
/// See [`run`].
pub fn drive_steady_state_sharded(
    cfg: &SystemConfig,
    trace: &Trace,
    warmup: usize,
    shards: usize,
    threads: usize,
) -> Result<(RunReport, System), String> {
    let script = script_from_trace(trace);
    let run = run(
        cfg,
        &script,
        &ShardRunOptions::new(shards, threads).warmup(warmup),
    )?;
    Ok((run.report, run.system))
}

/// Sharded counterpart of [`crate::tracecheck::capture`]: runs `script`
/// sharded with tracing on and serialises the canonical-order JSONL trace —
/// byte-identical to a serial capture of the same script, so
/// [`crate::tracecheck::check`] replays it against the serial engine.
///
/// # Errors
///
/// Fails for configs [`run`] or [`crate::tracecheck::header_for`] reject.
pub fn capture_sharded(
    cfg: &SystemConfig,
    script: &[ShardOp],
    shards: usize,
    threads: usize,
) -> Result<String, String> {
    use tmc_obs::TraceWriter;

    let sharded = run(
        cfg,
        script,
        &ShardRunOptions::new(shards, threads).tracing(true),
    )?;
    let header = crate::tracecheck::header_for(&sharded.system)?;
    let mut w = TraceWriter::new(Vec::new(), &header).map_err(|e| e.to_string())?;
    for e in &sharded.events {
        w.event(e).map_err(|e| e.to_string())?;
    }
    let bytes = w
        .finish(crate::tracecheck::trailer_for(&sharded.system))
        .map_err(|e| e.to_string())?;
    String::from_utf8(bytes).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_core::Mode;
    use tmc_simcore::SimRng;
    use tmc_workload::{Placement, SharedBlockWorkload};

    fn workload(refs: usize, seed: u64) -> Trace {
        SharedBlockWorkload::new(4, 16, 0.3)
            .references(refs)
            .placement(Placement::Adjacent { base: 0 })
            .generate(8, &mut SimRng::seed_from(seed))
    }

    #[test]
    fn shard_count_respects_modules_and_sets() {
        let cfg = SystemConfig::new(16); // 64 sets
        assert_eq!(shard_count(&cfg, 8), 8);
        assert_eq!(shard_count(&cfg, 7), 4); // round down to a power of two
        assert_eq!(shard_count(&cfg, 1), 1);
        assert_eq!(shard_count(&cfg, 0), 1);
        assert_eq!(shard_count(&cfg, 1024), 16); // capped by modules
        let tiny = SystemConfig::new(16).geometry(tmc_memsys::CacheGeometry::new(2, 4));
        assert_eq!(shard_count(&tiny, 8), 2); // capped by sets
    }

    #[test]
    fn script_reproduces_drive_stamps() {
        let trace = workload(200, 3);
        let script = script_from_trace(&trace);
        let cfg = SystemConfig::new(8);
        let mut scripted = System::new(cfg.clone()).unwrap();
        apply_script(&mut scripted, &script);
        let mut adapter = tmc_baselines::two_mode_fixed(8, Mode::GlobalRead);
        let cfg_match = tmc_core::SystemConfig::new(8);
        assert_eq!(cfg, cfg_match, "fixture assumes default config");
        crate::drive(&mut adapter, &trace);
        assert_eq!(
            scripted.protocol_fingerprint(),
            adapter.inner().protocol_fingerprint()
        );
        assert_eq!(scripted.traffic(), adapter.inner().traffic());
    }

    #[test]
    fn sharded_matches_serial_bit_for_bit() {
        let cfg = SystemConfig::new(8);
        let trace = workload(600, 11);
        let script = script_from_trace(&trace);
        let mut serial = System::new(cfg.clone()).unwrap();
        serial.set_tracing(true);
        apply_script(&mut serial, &script);
        let serial_events = serial.drain_trace();
        for (shards, threads) in [(1, 1), (2, 1), (4, 2), (8, 4)] {
            let got = run(
                &cfg,
                &script,
                &ShardRunOptions::new(shards, threads).tracing(true),
            )
            .unwrap();
            assert_eq!(
                got.system.protocol_fingerprint(),
                serial.protocol_fingerprint(),
                "{shards} shards / {threads} threads"
            );
            assert_eq!(got.system.counters(), serial.counters());
            assert_eq!(got.system.traffic(), serial.traffic());
            assert_eq!(got.events, serial_events);
        }
    }

    #[test]
    fn steady_state_report_matches_serial_driver() {
        let cfg = SystemConfig::new(8);
        let trace = workload(500, 5);
        let mut adapter = tmc_baselines::two_mode_fixed(8, Mode::GlobalRead);
        let want = crate::drive_steady_state(&mut adapter, &trace, 100);
        let (got, sys) = drive_steady_state_sharded(&cfg, &trace, 100, 4, 2).unwrap();
        assert_eq!(got, want);
        assert_eq!(sys.traffic(), adapter.inner().traffic());
    }

    #[test]
    fn warmup_covering_whole_trace_reports_nothing() {
        let cfg = SystemConfig::new(8);
        let trace = workload(50, 2);
        let (report, sys) = drive_steady_state_sharded(&cfg, &trace, 50, 4, 2).unwrap();
        assert_eq!((report.references, report.total_bits), (0, 0));
        assert_eq!(report.bits_per_ref, 0.0);
        assert!(sys.traffic().total_bits() > 0, "warmup still executed");
    }

    #[test]
    fn snapshot_roundtrip_is_invisible_to_the_merge() {
        let cfg = SystemConfig::new(8);
        let script = script_from_trace(&workload(400, 21));
        let mut serial = System::new(cfg.clone()).unwrap();
        serial.set_tracing(true);
        apply_script(&mut serial, &script);
        let serial_events = serial.drain_trace();
        let got = run(
            &cfg,
            &script,
            &ShardRunOptions::new(4, 2)
                .tracing(true)
                .snapshot_roundtrip(true),
        )
        .unwrap();
        assert_eq!(
            got.system.protocol_fingerprint(),
            serial.protocol_fingerprint()
        );
        assert_eq!(got.system.counters(), serial.counters());
        assert_eq!(got.system.traffic(), serial.traffic());
        assert_eq!(got.events, serial_events);
    }

    #[test]
    fn oracle_checking_passes_on_coherent_runs() {
        let cfg = SystemConfig::new(8);
        let script = script_from_trace(&workload(300, 7));
        let run = run(&cfg, &script, &ShardRunOptions::new(4, 2).check(true)).unwrap();
        assert!(run.report.total_bits > 0);
    }

    #[test]
    fn capture_matches_serial_capture_byte_for_byte() {
        let cfg = SystemConfig::new(8);
        let script = script_from_trace(&workload(250, 13));
        let serial =
            crate::tracecheck::capture(cfg.clone(), |sys| apply_script(sys, &script)).unwrap();
        let sharded = capture_sharded(&cfg, &script, 4, 2).unwrap();
        assert_eq!(sharded, serial);
        crate::tracecheck::check(&sharded).unwrap();
    }

    #[test]
    fn timing_and_logging_are_rejected() {
        let script = Vec::new();
        let timed = SystemConfig::new(4).timing(tmc_omeganet::TimingModel::default());
        assert!(run(&timed, &script, &ShardRunOptions::new(2, 1))
            .unwrap_err()
            .contains("timing"));
        let logged = SystemConfig::new(4).log_transactions(true);
        assert!(run(&logged, &script, &ShardRunOptions::new(2, 1))
            .unwrap_err()
            .contains("transaction logs"));
        let faulty = SystemConfig::new(4).faults(tmc_core::FaultSpec::new(1));
        assert!(run(&faulty, &script, &ShardRunOptions::new(2, 1))
            .unwrap_err()
            .contains("fault injection"));
    }
}
