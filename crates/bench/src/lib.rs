//! Experiment harness: table formatting, trace-driven protocol runs, the
//! parallel sweep engine ([`sweep`]) and a micro-benchmark timer
//! ([`timer`]).
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library holds the shared plumbing. See `DESIGN.md` (experiment
//! index) and `EXPERIMENTS.md` (recorded outputs) at the repository root,
//! plus `docs/PERFORMANCE.md` for the sweep engine and the perf baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shardsim;
pub mod sweep;
pub mod timer;
pub mod tracecheck;

use tmc_baselines::CoherentSystem;
use tmc_core::System;
use tmc_memsys::ReferenceMemory;
use tmc_workload::{Op, Trace};

/// A plain-text table printer with right-aligned numeric columns.
///
/// # Example
///
/// ```
/// use tmc_bench::Table;
///
/// let mut t = Table::new(vec!["n".into(), "cost".into()]);
/// t.row(vec!["1".into(), "275".into()]);
/// let s = t.render();
/// assert!(s.contains("275"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{c:>w$}", w = w));
            }
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout under a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n{}", self.render());
    }
}

/// Outcome of driving one protocol over one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// References executed.
    pub references: usize,
    /// Total bits across all links (flush excluded).
    pub total_bits: u64,
    /// Bits per reference.
    pub bits_per_ref: f64,
}

/// Drives `sys` through `trace` (writes use a running stamp as the value)
/// and reports traffic per reference. The flush at the end is *not*
/// billed to the per-reference figure, matching the paper's steady-state
/// cost models.
pub fn drive(sys: &mut dyn CoherentSystem, trace: &Trace) -> RunReport {
    let mut stamp = 1u64;
    for r in trace.iter() {
        match r.op {
            Op::Read => {
                let _ = sys.read(r.proc, r.addr);
            }
            Op::Write => {
                sys.write(r.proc, r.addr, stamp);
                stamp += 1;
            }
        }
    }
    let total_bits = sys.total_traffic_bits();
    RunReport {
        references: trace.len(),
        total_bits,
        bits_per_ref: if trace.is_empty() {
            0.0
        } else {
            total_bits as f64 / trace.len() as f64
        },
    }
}

/// Drives only the tail of a run: executes `warmup` references unbilled
/// (by subtracting their traffic), then reports per-reference traffic over
/// the remainder — the steady-state figure the paper's models describe.
pub fn drive_steady_state(sys: &mut dyn CoherentSystem, trace: &Trace, warmup: usize) -> RunReport {
    let mut stamp = 1u64;
    let mut warm_bits = 0u64;
    let mut measured = 0usize;
    for (i, r) in trace.iter().enumerate() {
        if i == warmup {
            warm_bits = sys.total_traffic_bits();
        }
        match r.op {
            Op::Read => {
                let _ = sys.read(r.proc, r.addr);
            }
            Op::Write => {
                sys.write(r.proc, r.addr, stamp);
                stamp += 1;
            }
        }
        if i >= warmup {
            measured += 1;
        }
    }
    if trace.len() <= warmup {
        return RunReport {
            references: 0,
            total_bits: 0,
            bits_per_ref: 0.0,
        };
    }
    let total_bits = sys.total_traffic_bits() - warm_bits;
    RunReport {
        references: measured,
        total_bits,
        bits_per_ref: total_bits as f64 / measured as f64,
    }
}

/// [`drive_steady_state`], but every read is value-checked against the
/// [`ReferenceMemory`] oracle — the experiment binaries use this so the
/// published traffic figures come from runs that were *correct*, not just
/// cheap. Writes use `oracle.stamp()` as the value, the same sequence
/// `drive_steady_state` generates, so traffic is bit-identical.
///
/// # Panics
///
/// Panics on the first read that returns a value other than the last one
/// written to that word (a sequential-consistency violation).
pub fn drive_steady_state_checked(
    sys: &mut dyn CoherentSystem,
    trace: &Trace,
    warmup: usize,
) -> RunReport {
    let mut oracle = ReferenceMemory::new();
    let mut warm_bits = 0u64;
    let mut measured = 0usize;
    for (i, r) in trace.iter().enumerate() {
        if i == warmup {
            warm_bits = sys.total_traffic_bits();
        }
        match r.op {
            Op::Read => {
                let got = sys.read(r.proc, r.addr);
                let want = oracle.read(r.addr);
                assert_eq!(
                    got,
                    want,
                    "{}: stale read at reference {i} (proc {}, {:?})",
                    sys.name(),
                    r.proc,
                    r.addr
                );
            }
            Op::Write => {
                let stamp = oracle.stamp();
                sys.write(r.proc, r.addr, stamp);
                oracle.write(r.addr, stamp);
            }
        }
        if i >= warmup {
            measured += 1;
        }
    }
    if trace.len() <= warmup {
        return RunReport {
            references: 0,
            total_bits: 0,
            bits_per_ref: 0.0,
        };
    }
    let total_bits = sys.total_traffic_bits() - warm_bits;
    RunReport {
        references: measured,
        total_bits,
        bits_per_ref: total_bits as f64 / measured as f64,
    }
}

/// Batched counterpart of [`drive`] for the reference engine: scripts the
/// trace once, then feeds [`tmc_core::System::execute_batch`] in
/// [`shardsim::BATCH_CHUNK`]-op chunks. Bit-identical to [`drive`] on a
/// two-mode machine — same fingerprint, counters, per-link charges.
pub fn drive_batched(sys: &mut System, trace: &Trace) -> RunReport {
    let script = shardsim::script_from_trace(trace);
    shardsim::apply_script(sys, &script);
    let total_bits = sys.traffic().total_bits();
    RunReport {
        references: trace.len(),
        total_bits,
        bits_per_ref: if trace.is_empty() {
            0.0
        } else {
            total_bits as f64 / trace.len() as f64
        },
    }
}

/// Batched counterpart of [`drive_steady_state`]: the warmup boundary is
/// a batch boundary, so the warm-bits snapshot lands at exactly the same
/// reference as the scalar driver's.
pub fn drive_steady_state_batched(sys: &mut System, trace: &Trace, warmup: usize) -> RunReport {
    let script = shardsim::script_from_trace(trace);
    batched_steady_state(sys, &script, warmup, None)
}

/// Batched counterpart of [`drive_steady_state_checked`]: read values are
/// still oracle-checked, but the oracle runs as a *precomputation* over
/// the script (writes carry precomputed stamps, so expected read values
/// are known before execution) and the engine's batched read results are
/// compared afterwards — keeping the hot loop on the batched pipeline.
///
/// # Panics
///
/// Panics on the first read that returns a value other than the last one
/// written to that word (a sequential-consistency violation).
pub fn drive_steady_state_batched_checked(
    sys: &mut System,
    trace: &Trace,
    warmup: usize,
) -> RunReport {
    let script = shardsim::script_from_trace(trace);
    let mut oracle = ReferenceMemory::new();
    let mut expected = Vec::new();
    for op in &script {
        match *op {
            shardsim::ShardOp::Read { addr, .. } => expected.push(oracle.read(addr)),
            shardsim::ShardOp::Write { addr, value, .. } => oracle.write(addr, value),
            shardsim::ShardOp::SetMode { .. } => {}
        }
    }
    batched_steady_state(sys, &script, warmup, Some(&expected))
}

fn batched_steady_state(
    sys: &mut System,
    script: &[shardsim::ShardOp],
    warmup: usize,
    expected_reads: Option<&[u64]>,
) -> RunReport {
    let cut = warmup.min(script.len());
    let mut got = expected_reads.map(|e| Vec::with_capacity(e.len()));
    for chunk in script[..cut].chunks(shardsim::BATCH_CHUNK) {
        match got.as_mut() {
            Some(values) => sys.execute_batch_reads(chunk, values),
            None => sys.execute_batch(chunk),
        }
        .expect("valid processors");
    }
    let warm_bits = sys.traffic().total_bits();
    for chunk in script[cut..].chunks(shardsim::BATCH_CHUNK) {
        match got.as_mut() {
            Some(values) => sys.execute_batch_reads(chunk, values),
            None => sys.execute_batch(chunk),
        }
        .expect("valid processors");
    }
    if let (Some(expected), Some(got)) = (expected_reads, got.as_ref()) {
        assert_eq!(expected.len(), got.len(), "read count mismatch");
        for (i, (want, have)) in expected.iter().zip(got).enumerate() {
            assert_eq!(want, have, "stale read at read #{i} of the script");
        }
    }
    if script.len() <= warmup {
        return RunReport {
            references: 0,
            total_bits: 0,
            bits_per_ref: 0.0,
        };
    }
    let measured = script.len() - warmup;
    let total_bits = sys.traffic().total_bits() - warm_bits;
    RunReport {
        references: measured,
        total_bits,
        bits_per_ref: total_bits as f64 / measured as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_baselines::NoCacheSystem;
    use tmc_simcore::SimRng;
    use tmc_workload::SharedBlockWorkload;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "value".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("longer"));
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn drive_accumulates_traffic() {
        let mut rng = SimRng::seed_from(1);
        let trace = SharedBlockWorkload::new(4, 4, 0.3)
            .references(200)
            .generate(8, &mut rng);
        let mut sys = NoCacheSystem::new(8);
        let report = drive(&mut sys, &trace);
        assert_eq!(report.references, 200);
        assert!(report.total_bits > 0);
        assert!((report.bits_per_ref - report.total_bits as f64 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_excludes_warmup() {
        let mut rng = SimRng::seed_from(1);
        let trace = SharedBlockWorkload::new(4, 4, 0.3)
            .references(400)
            .generate(8, &mut rng);
        let mut a = NoCacheSystem::new(8);
        let full = drive(&mut a, &trace);
        let mut b = NoCacheSystem::new(8);
        let tail = drive_steady_state(&mut b, &trace, 100);
        assert_eq!(tail.references, 300);
        assert!(tail.total_bits < full.total_bits);
    }

    #[test]
    fn steady_state_with_warmup_covering_whole_trace_reports_nothing() {
        let mut rng = SimRng::seed_from(2);
        let trace = SharedBlockWorkload::new(4, 4, 0.3)
            .references(50)
            .generate(8, &mut rng);
        for warmup in [50, 51, 1000] {
            let mut sys = NoCacheSystem::new(8);
            let r = drive_steady_state(&mut sys, &trace, warmup);
            assert_eq!((r.references, r.total_bits), (0, 0), "warmup = {warmup}");
            assert_eq!(r.bits_per_ref, 0.0);
            // The warmup references still executed (state is warm)...
            assert!(sys.total_traffic_bits() > 0);
        }
    }

    #[test]
    fn steady_state_on_empty_trace_is_zero() {
        let trace = Trace::new(8);
        let mut sys = NoCacheSystem::new(8);
        for warmup in [0, 7] {
            let r = drive_steady_state(&mut sys, &trace, warmup);
            assert_eq!((r.references, r.total_bits), (0, 0));
            assert_eq!(r.bits_per_ref, 0.0);
        }
        assert_eq!(drive(&mut sys, &trace).bits_per_ref, 0.0);
    }

    #[test]
    fn checked_drive_matches_unchecked_traffic_exactly() {
        // Value checking must not perturb the measurement: the stamp
        // sequence is identical, so bits are identical.
        let mut rng = SimRng::seed_from(7);
        let trace = SharedBlockWorkload::new(4, 4, 0.3)
            .references(300)
            .generate(8, &mut rng);
        let mut a = NoCacheSystem::new(8);
        let plain = drive_steady_state(&mut a, &trace, 50);
        let mut b = NoCacheSystem::new(8);
        let checked = drive_steady_state_checked(&mut b, &trace, 50);
        assert_eq!(plain, checked);
    }

    #[test]
    #[should_panic(expected = "stale read")]
    fn checked_drive_catches_incoherence() {
        use tmc_baselines::SoftwareMarkedSystem;
        use tmc_memsys::WordAddr;
        use tmc_workload::{Op, Reference};
        // A software-marked system with a shared read-write block left
        // cacheable returns stale data — the §1 hazard. The oracle sees it.
        let mut trace = Trace::new(4);
        let a = WordAddr::new(0);
        for (proc, op) in [(0, Op::Write), (1, Op::Read), (0, Op::Write), (1, Op::Read)] {
            trace.push(Reference { proc, addr: a, op });
        }
        let mut sys = SoftwareMarkedSystem::new(4);
        drive_steady_state_checked(&mut sys, &trace, 0);
    }

    #[test]
    fn zero_warmup_steady_state_equals_full_drive() {
        let mut rng = SimRng::seed_from(3);
        let trace = SharedBlockWorkload::new(4, 4, 0.3)
            .references(120)
            .generate(8, &mut rng);
        let mut a = NoCacheSystem::new(8);
        let full = drive(&mut a, &trace);
        let mut b = NoCacheSystem::new(8);
        let tail = drive_steady_state(&mut b, &trace, 0);
        assert_eq!(full, tail);
    }
}
