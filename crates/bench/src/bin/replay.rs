//! Replays a saved text trace (see `tmc_workload::format_trace`) through a
//! chosen protocol — or through *all* of them in parallel on
//! [`tmc_bench::sweep`] — and reports traffic and counters.
//!
//! ```text
//! Usage: replay TRACE_FILE [PROTOCOL]
//!   PROTOCOL  no-cache | dir | update | dw | gr | adaptive | all
//!             (default: adaptive; `all` compares every protocol)
//! ```
//!
//! With `TMC_TRACE_OUT=FILE` in the environment and a two-mode protocol
//! selected (`dw`, `gr` or `adaptive`), the run is additionally captured
//! as a replayable JSONL protocol trace (see `trace_check`).

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem, NoCacheSystem,
    UpdateOnlySystem,
};
use tmc_bench::{drive, shardsim, sweep, tracecheck, Table};
use tmc_core::{Mode, ModePolicy, SystemConfig};
use tmc_workload::{parse_trace, Op, Trace};

const PROTOCOLS: [&str; 6] = ["no-cache", "dir", "update", "dw", "gr", "adaptive"];

fn build(protocol: &str, n_procs: usize) -> Option<Box<dyn CoherentSystem>> {
    Some(match protocol {
        "no-cache" => Box::new(NoCacheSystem::new(n_procs)),
        "dir" => Box::new(DirectoryInvalidateSystem::new(n_procs)),
        "update" => Box::new(UpdateOnlySystem::new(n_procs)),
        "dw" => Box::new(two_mode_fixed(n_procs, Mode::DistributedWrite)),
        "gr" => Box::new(two_mode_fixed(n_procs, Mode::GlobalRead)),
        "adaptive" => Box::new(two_mode_adaptive(n_procs, 64)),
        _ => return None,
    })
}

/// The two-mode policy for a shardable protocol name, if it is one.
fn two_mode_policy(protocol: &str) -> Option<ModePolicy> {
    match protocol {
        "dw" => Some(ModePolicy::Fixed(Mode::DistributedWrite)),
        "gr" => Some(ModePolicy::Fixed(Mode::GlobalRead)),
        "adaptive" => Some(ModePolicy::Adaptive { window: 64 }),
        _ => None,
    }
}

fn replay_all(trace: &Trace, n_procs: usize) {
    let shards = shardsim::env_shards();
    if shards > 0 {
        println!("sharded    : two-mode rows run block-sharded ({shards} shards requested)");
    }
    let rows = sweep::map(PROTOCOLS.to_vec(), |p| {
        let mut sys = build(p, n_procs).expect("known protocol");
        // With TMC_SHARDS set, the two-mode rows replay on the sharded
        // engine — bit-identical traffic, several cores per row.
        let report = match (shards > 0).then(|| two_mode_policy(p)).flatten() {
            Some(policy) => {
                let cfg = SystemConfig::new(n_procs).mode_policy(policy);
                shardsim::drive_sharded(&cfg, trace, shards, 0)
                    .expect("default two-mode configs are shardable")
                    .0
            }
            None => drive(sys.as_mut(), trace),
        };
        (sys.name().to_string(), report)
    });
    let mut t = Table::new(vec![
        "protocol".into(),
        "total bits".into(),
        "bits/ref".into(),
    ]);
    for (name, report) in rows {
        t.row(vec![
            name,
            report.total_bits.to_string(),
            format!("{:.2}", report.bits_per_ref),
        ]);
    }
    t.print("Replay: all protocols");
}

/// When `TMC_TRACE_OUT` names a file and the protocol is a two-mode
/// variant, re-run the trace on an identically configured `System` with
/// tracing on and save the replayable JSONL protocol trace.
fn save_protocol_trace(protocol: &str, trace: &Trace, n_procs: usize) {
    let Ok(path) = std::env::var("TMC_TRACE_OUT") else {
        return;
    };
    let policy = match protocol {
        "dw" => ModePolicy::Fixed(Mode::DistributedWrite),
        "gr" => ModePolicy::Fixed(Mode::GlobalRead),
        "adaptive" => ModePolicy::Adaptive { window: 64 },
        _ => {
            eprintln!("TMC_TRACE_OUT: only two-mode protocols (dw|gr|adaptive) are capturable");
            return;
        }
    };
    let cfg = SystemConfig::new(n_procs).mode_policy(policy);
    let text = tracecheck::capture(cfg, |sys| {
        let mut stamp = 1u64;
        for r in trace.iter() {
            match r.op {
                Op::Read => {
                    sys.read(r.proc, r.addr).expect("trace uses valid procs");
                }
                Op::Write => {
                    sys.write(r.proc, r.addr, stamp)
                        .expect("trace uses valid procs");
                    stamp += 1;
                }
            }
        }
    })
    .expect("default config is capturable");
    match std::fs::write(&path, &text) {
        Ok(()) => println!("protocol trace written to {path} (verify with trace_check)"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: replay TRACE_FILE [no-cache|dir|update|dw|gr|adaptive|all]");
        std::process::exit(2);
    };
    let protocol = args.get(1).map(String::as_str).unwrap_or("adaptive");

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let trace = match parse_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        }
    };
    let n_procs = trace.n_procs().next_power_of_two().max(2);

    println!("trace      : {path}");
    println!("references : {}", trace.len());
    println!("write frac : {:.3}", trace.write_fraction());

    if protocol == "all" {
        replay_all(&trace, n_procs);
        return;
    }
    let Some(mut sys) = build(protocol, n_procs) else {
        eprintln!("unknown protocol {protocol}");
        std::process::exit(2);
    };
    let report = drive(sys.as_mut(), &trace);
    println!("protocol   : {}", sys.name());
    println!(
        "traffic    : {} bits ({:.2} bits/ref)",
        report.total_bits, report.bits_per_ref
    );
    println!("\ncounters:\n{}", sys.counters());
    save_protocol_trace(protocol, &trace, n_procs);
}
