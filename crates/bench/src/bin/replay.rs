//! Replays a saved text trace (see `tmc_workload::format_trace`) through a
//! chosen protocol and reports traffic and counters.
//!
//! ```text
//! Usage: replay TRACE_FILE [PROTOCOL]
//!   PROTOCOL  no-cache | dir | update | dw | gr | adaptive (default: adaptive)
//! ```

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem,
    NoCacheSystem, UpdateOnlySystem,
};
use tmc_bench::drive;
use tmc_core::Mode;
use tmc_workload::parse_trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: replay TRACE_FILE [no-cache|dir|update|dw|gr|adaptive]");
        std::process::exit(2);
    };
    let protocol = args.get(1).map(String::as_str).unwrap_or("adaptive");

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let trace = match parse_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        }
    };
    let n_procs = trace.n_procs().next_power_of_two().max(2);

    let mut sys: Box<dyn CoherentSystem> = match protocol {
        "no-cache" => Box::new(NoCacheSystem::new(n_procs)),
        "dir" => Box::new(DirectoryInvalidateSystem::new(n_procs)),
        "update" => Box::new(UpdateOnlySystem::new(n_procs)),
        "dw" => Box::new(two_mode_fixed(n_procs, Mode::DistributedWrite)),
        "gr" => Box::new(two_mode_fixed(n_procs, Mode::GlobalRead)),
        "adaptive" => Box::new(two_mode_adaptive(n_procs, 64)),
        other => {
            eprintln!("unknown protocol {other}");
            std::process::exit(2);
        }
    };

    let report = drive(sys.as_mut(), &trace);
    println!("trace      : {path}");
    println!("references : {}", report.references);
    println!("write frac : {:.3}", trace.write_fraction());
    println!("protocol   : {}", sys.name());
    println!("traffic    : {} bits ({:.2} bits/ref)", report.total_bits, report.bits_per_ref);
    println!("\ncounters:\n{}", sys.counters());
}
