//! Crash-injection harness: kill a journaled run at an arbitrary op,
//! restart, resume from the journal, and prove the resumed run
//! **bit-identical** to an uninterrupted one.
//!
//! ```text
//! Usage: crashsim [--smoke]
//! ```
//!
//! Each campaign drives a seeded workload through the serial engine with
//! periodic whole-machine checkpoints ([`tmc_core::encode_system`])
//! framed into a [`Journal`]. For every kill point the run is aborted
//! mid-script — exactly what `kill -9` leaves behind, since the journal
//! is atomically rewritten per frame — then recovered
//! ([`tmc_core::recover_journal`]), thawed
//! ([`tmc_core::decode_system`]), and driven to completion. Five
//! observables must match the uninterrupted reference bit for bit:
//!
//! * the protocol fingerprint,
//! * every named counter,
//! * every nonzero per-link charge,
//! * the memory image digest,
//! * the FNV checksum of the canonical JSONL trace.
//!
//! A corruption sweep then damages the journal on disk — bit flips in
//! the newest frame, truncation at arbitrary byte offsets, garbage
//! headers — and demands recovery fall back to the newest *intact*
//! frame (never panicking, never trusting a corrupt byte) and still
//! converge to the same five observables.
//!
//! The default run covers 16 seeds; `--smoke` is the CI-sized version
//! (8 seeds x 4 kill points). Campaigns cycle through all four §3
//! multicast schemes and all three mode policies, and odd seeds carry a
//! live fault plan, so resume is exercised mid-outage and mid-backoff.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use tmc_bench::shardsim::{script_from_trace, ShardOp};
use tmc_bench::tracecheck::nonzero_links;
use tmc_core::{
    decode_system, encode_system, memory_digest, recover_journal, FaultSpec, Journal, Mode,
    ModePolicy, System, SystemConfig,
};
use tmc_obs::jsonl::encode_record;
use tmc_obs::{LinkCharge, TraceRecord};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload};

const N_PROCS: usize = 8;
const CHECKPOINT_EVERY: u64 = 60;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Replicated,
    SchemeKind::BitVector,
    SchemeKind::BroadcastTag,
    SchemeKind::Combined,
];

const POLICIES: [ModePolicy; 3] = [
    ModePolicy::Fixed(Mode::DistributedWrite),
    ModePolicy::Fixed(Mode::GlobalRead),
    ModePolicy::Adaptive { window: 8 },
];

/// FNV-1a 64-bit offset basis (streaming start state).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The five observables a resumed run must reproduce bit for bit.
#[derive(Debug, Clone, PartialEq)]
struct Observables {
    fingerprint: Vec<u8>,
    counters: BTreeMap<&'static str, u64>,
    links: Vec<LinkCharge>,
    memory: u64,
    trace: u64,
    events: u64,
}

/// Live run state; exactly what one journal frame freezes.
struct Runner {
    sys: System,
    ops_done: u64,
    events: u64,
    trace_fnv: u64,
}

impl Runner {
    fn fresh(cfg: &SystemConfig) -> Runner {
        let mut sys = System::new(cfg.clone()).expect("valid campaign config");
        sys.set_tracing(true);
        Runner {
            sys,
            ops_done: 0,
            events: 0,
            trace_fnv: FNV_BASIS,
        }
    }

    fn drain(&mut self) {
        for e in self.sys.drain_trace() {
            self.events += 1;
            self.trace_fnv = fnv_fold(
                self.trace_fnv,
                encode_record(&TraceRecord::Event(e)).as_bytes(),
            );
            self.trace_fnv = fnv_fold(self.trace_fnv, b"\n");
        }
    }

    fn frame(&mut self) -> Vec<u8> {
        self.drain();
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.ops_done.to_le_bytes());
        buf.extend_from_slice(&self.events.to_le_bytes());
        buf.extend_from_slice(&self.trace_fnv.to_le_bytes());
        let sys = encode_system(&self.sys).expect("campaign machine snapshots cleanly");
        buf.extend_from_slice(&(sys.len() as u64).to_le_bytes());
        buf.extend_from_slice(&sys);
        buf
    }

    fn thaw(frame: &[u8]) -> Result<Runner, String> {
        let u64_at = |at: usize| -> Result<u64, String> {
            frame
                .get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(|| format!("frame truncated at byte {at}"))
        };
        let ops_done = u64_at(0)?;
        let events = u64_at(8)?;
        let trace_fnv = u64_at(16)?;
        let sys_len = u64_at(24)? as usize;
        let sys_bytes = frame
            .get(32..32 + sys_len)
            .ok_or_else(|| format!("frame claims {sys_len} machine bytes, has fewer"))?;
        let mut sys = decode_system(sys_bytes).map_err(|e| e.to_string())?;
        sys.set_tracing(true);
        Ok(Runner {
            sys,
            ops_done,
            events,
            trace_fnv,
        })
    }

    fn observe(&mut self) -> Observables {
        self.drain();
        Observables {
            fingerprint: self.sys.protocol_fingerprint(),
            counters: self.sys.counters().iter().collect(),
            links: nonzero_links(self.sys.traffic()),
            memory: memory_digest(&self.sys),
            trace: self.trace_fnv,
            events: self.events,
        }
    }
}

/// Drives `script[runner.ops_done..]`, checkpointing every
/// [`CHECKPOINT_EVERY`] ops; stops early after `kill_at` ops when given.
/// Returns the final observables, or `None` if killed.
fn drive(
    mut runner: Runner,
    script: &[ShardOp],
    journal: &mut Journal,
    kill_at: Option<u64>,
) -> Option<Observables> {
    while (runner.ops_done as usize) < script.len() {
        match script[runner.ops_done as usize] {
            ShardOp::Read { proc, addr } => {
                let _ = runner.sys.read(proc, addr).expect("valid proc");
            }
            ShardOp::Write { proc, addr, value } => {
                runner.sys.write(proc, addr, value).expect("valid proc");
            }
            ShardOp::SetMode { proc, addr, mode } => {
                runner.sys.set_mode(proc, addr, mode).expect("valid proc");
            }
        }
        runner.ops_done += 1;
        if runner.ops_done.is_multiple_of(CHECKPOINT_EVERY) {
            let frame = runner.frame();
            journal.append(&frame).expect("journal append");
        }
        if kill_at == Some(runner.ops_done) {
            return None;
        }
    }
    Some(runner.observe())
}

/// Resumes from the newest intact frame of `path` and runs to the end.
fn resume(path: &Path, script: &[ShardOp]) -> Observables {
    let recovery = recover_journal(path).expect("journal readable");
    let newest = recovery.last().expect("at least the op-0 frame survives");
    let runner = Runner::thaw(newest).expect("intact frame thaws");
    assert!(
        runner.ops_done.is_multiple_of(CHECKPOINT_EVERY),
        "frames land on the checkpoint grid"
    );
    let mut journal = Journal::create(path.with_extension("resumed")).expect("journal");
    drive(runner, script, &mut journal, None).expect("resumed run completes")
}

fn campaign_config(seed: u64) -> SystemConfig {
    let scheme = SCHEMES[seed as usize % SCHEMES.len()];
    let policy = POLICIES[seed as usize % POLICIES.len()];
    let cfg = SystemConfig::new(N_PROCS)
        .multicast(scheme)
        .mode_policy(policy);
    if seed % 2 == 1 {
        cfg.faults(
            FaultSpec::new(seed ^ 0xc4a5)
                .count(8)
                .horizon(300)
                .mean_outage(40),
        )
    } else {
        cfg
    }
}

fn campaign_script(seed: u64, refs: usize) -> Vec<ShardOp> {
    let trace = SharedBlockWorkload::new(4, 16, 0.35)
        .references(refs)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed ^ 0x5eed));
    script_from_trace(&trace)
}

/// One seed: uninterrupted reference, then kill + resume at every kill
/// point, then the corruption sweep on the last killed journal.
fn campaign(seed: u64, dir: &Path, refs: usize, kill_points: &[u64]) -> usize {
    let cfg = campaign_config(seed);
    let script = campaign_script(seed, refs);

    let clean_path = dir.join(format!("clean-{seed}.journal"));
    let mut journal = Journal::create(&clean_path).expect("journal");
    let mut runner = Runner::fresh(&cfg);
    let frame = runner.frame();
    journal.append(&frame).expect("op-0 frame");
    let clean = drive(runner, &script, &mut journal, None).expect("uninterrupted run completes");

    let mut checked = 0;
    let mut last_killed: Option<PathBuf> = None;
    for &kill_at in kill_points {
        let path = dir.join(format!("kill-{seed}-{kill_at}.journal"));
        let mut journal = Journal::create(&path).expect("journal");
        let mut runner = Runner::fresh(&cfg);
        let frame = runner.frame();
        journal.append(&frame).expect("op-0 frame");
        let killed = drive(runner, &script, &mut journal, Some(kill_at));
        assert!(
            killed.is_none(),
            "seed {seed}: kill at {kill_at} must stop the run"
        );

        let resumed = resume(&path, &script);
        assert_eq!(
            resumed, clean,
            "seed {seed}: resume after kill at op {kill_at} diverged"
        );
        checked += 1;
        last_killed = Some(path);
    }

    // Corruption sweep on the last killed journal: bit flips in the tail
    // frame, truncations, and a garbage header.
    let victim = last_killed.expect("at least one kill point");
    let pristine = std::fs::read(&victim).expect("journal bytes");
    let n = pristine.len();
    for (what, bytes) in [
        ("bit flip near the tail", {
            let mut b = pristine.clone();
            b[n - 9] ^= 0x01; // inside the newest frame's checksum
            b
        }),
        ("bit flip mid-frame", {
            let mut b = pristine.clone();
            b[n / 2] ^= 0x80;
            b
        }),
        ("truncated mid-frame", pristine[..n - n / 3].to_vec()),
        ("truncated to a frame header", pristine[..16].to_vec()),
    ] {
        std::fs::write(&victim, &bytes).expect("write damaged journal");
        let recovery = recover_journal(&victim).expect("header intact");
        assert!(
            recovery.damage.is_some()
                || recovery.frames.len() < 1 + (refs as u64 / CHECKPOINT_EVERY) as usize,
            "seed {seed}: {what}: damage must be detected"
        );
        if recovery.last().is_some() {
            let resumed = resume(&victim, &script);
            assert_eq!(
                resumed, clean,
                "seed {seed}: {what}: resume from damaged journal diverged"
            );
        }
    }
    std::fs::write(&victim, b"garbage, not a journal").expect("write garbage");
    assert!(
        recover_journal(&victim).is_err(),
        "seed {seed}: garbage header must be rejected, not salvaged"
    );

    checked
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, refs) = if smoke {
        (8u64, 600usize)
    } else {
        (16u64, 1_200usize)
    };
    let kill_points: Vec<u64> = [
        1,
        CHECKPOINT_EVERY - 1,
        CHECKPOINT_EVERY + 1,
        (refs as u64 * 5) / 6,
    ]
    .to_vec();

    let dir = std::env::temp_dir().join(format!("tmc-crashsim-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut resumes = 0;
    for seed in 0..seeds {
        resumes += campaign(seed, &dir, refs, &kill_points);
        println!(
            "seed {seed:>2}: {} kill points resumed bit-identically, corruption sweep ok",
            kill_points.len()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(resumes as u64, seeds * kill_points.len() as u64);
    println!(
        "crashsim: OK — {seeds} campaigns x {} kill points, every resume bit-identical \
         (fingerprint, counters, per-link charges, memory digest, JSONL trace), \
         every corruption detected",
        kill_points.len()
    );
}
