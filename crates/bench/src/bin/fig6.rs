//! Regenerates Figure 6: communication cost versus destinations for schemes
//! 1, 2 (region worst case) and 3, with N = 1024, n₁ = 128, M = 20.
//! Rows are independent cells, evaluated on the [`tmc_bench::sweep`] engine
//! and merged back in order.

use tmc_analytic::multicast::{scheme1, scheme2_region_worst, scheme3};
use tmc_bench::{sweep, Table};

fn main() {
    let (big_n, n1, m_bits) = (1024u64, 128u64, 20u64);
    let cc3 = scheme3(n1, big_n, m_bits);
    let mut t = Table::new(vec![
        "n".into(),
        "CC1 (eq.2)".into(),
        "CC2' (eq.6)".into(),
        "CC3 (eq.5)".into(),
        "winner".into(),
    ]);
    let rows = sweep::map((0u32..=7).collect(), |k| {
        let n = 1u64 << k;
        let c1 = scheme1(n, big_n, m_bits);
        let c2 = scheme2_region_worst(n, n1, big_n, m_bits);
        (n, c1, c2)
    });
    for (n, c1, c2) in rows {
        let min = c1.min(c2).min(cc3);
        let winner = if min == c1 {
            "1"
        } else if min == c2 {
            "2"
        } else {
            "3"
        };
        t.row(vec![
            n.to_string(),
            c1.to_string(),
            c2.to_string(),
            cc3.to_string(),
            winner.to_string(),
        ]);
    }
    t.print("Figure 6: CC vs destinations, N=1024, n1=128, M=20");
    println!(
        "Shape check (paper): scheme 1 wins for small n, scheme 2 for moderate\n\
         n, scheme 3 (a flat line — it always covers the whole region) for\n\
         large n. The combined scheme CC4 = min of the three columns."
    );
}
