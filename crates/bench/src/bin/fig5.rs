//! Regenerates Figure 5: communication cost versus number of destinations
//! for scheme 1 and scheme 2 (worst case), N = 1024 caches, M = 20 bits.
//! Rows are independent cells, evaluated on the [`tmc_bench::sweep`] engine
//! and merged back in order.

use tmc_analytic::multicast::{scheme1, scheme2_worst};
use tmc_bench::{sweep, Table};

fn main() {
    let (big_n, m_bits) = (1024u64, 20u64);
    let mut t = Table::new(vec![
        "n".into(),
        "CC1 (eq.2)".into(),
        "CC2 worst (eq.3)".into(),
        "CC2/CC1".into(),
        "winner".into(),
    ]);
    let rows = sweep::map((0u32..=10).collect(), |k| {
        let n = 1u64 << k;
        let c1 = scheme1(n, big_n, m_bits);
        let c2 = scheme2_worst(n, big_n, m_bits);
        (n, c1, c2)
    });
    for (n, c1, c2) in rows {
        t.row(vec![
            n.to_string(),
            c1.to_string(),
            c2.to_string(),
            format!("{:.3}", c2 as f64 / c1 as f64),
            if c2 <= c1 { "scheme 2" } else { "scheme 1" }.to_string(),
        ]);
    }
    t.print("Figure 5: CC vs destinations, N=1024, M=20");
    println!(
        "Shape check (paper): scheme 1 grows linearly in n; scheme 2 starts\n\
         far above it (the kilobit vector dominates small casts) and wins from\n\
         the break-even on — a small fraction of N."
    );
}
