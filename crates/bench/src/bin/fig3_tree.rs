//! Regenerates Figure 3: the paths from one node to all other nodes of an
//! omega network form a binary tree of switches.

use tmc_omeganet::{DestSet, Omega};

fn main() {
    let net = Omega::new(3).expect("N = 8 is supported");
    let src = 0;
    let all = DestSet::all(net.ports());
    let tree = net.tree_view(src, &all).expect("valid");

    println!("\nFigure 3: broadcast tree from node {src} in an 8x8 omega network\n");
    println!("source {src}");
    for (stage, switches) in tree.iter().enumerate() {
        let labels: Vec<String> = switches.iter().map(|s| format!("sw{stage}.{s}")).collect();
        println!(
            "stage {stage}: {} switches reached: {}",
            switches.len(),
            labels.join("  ")
        );
    }
    println!("leaves : destinations 0..{}", net.ports() - 1);

    println!("\nA unicast path for comparison (5 -> 2):");
    for link in net.route(5, 2) {
        println!("  layer {} via line {}", link.layer, link.line);
    }
    println!(
        "\nShape check (paper): 1, 2, 4 switches at stages 0, 1, 2 — each\n\
         switch forks once, so a full broadcast is a complete binary tree."
    );
}
