//! Concurrent-execution extension experiment: machine throughput and mean
//! memory latency when processors issue references concurrently, with
//! per-link contention.
//!
//! The paper evaluates communication cost only; this binary uses the
//! concurrent driver to show the *performance* face of the same trade-off:
//! distributed write buys local reads at the price of update bandwidth,
//! global read buys tiny state at the price of remote-read latency, and the
//! adaptive controller picks per write fraction.

use tmc_bench::Table;
use tmc_core::driver::{run_concurrent, DriverOp};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::TimingModel;
use tmc_simcore::SimRng;
use tmc_workload::{Op, Placement, SharedBlockWorkload};

const N_PROCS: usize = 16;
const N_TASKS: usize = 8;
const REFS: usize = 6_000;

fn streams_for(w: f64, seed: u64) -> Vec<Vec<DriverOp>> {
    let trace = SharedBlockWorkload::new(N_TASKS, 16, w)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    let mut streams: Vec<Vec<DriverOp>> = vec![Vec::new(); N_PROCS];
    let mut stamp = 1u64;
    for r in trace.iter() {
        let op = match r.op {
            Op::Read => DriverOp::Read(r.addr),
            Op::Write => {
                stamp += 1;
                DriverOp::Write(r.addr, stamp)
            }
        };
        streams[r.proc].push(op);
    }
    streams
}

fn main() {
    let mut t = Table::new(vec![
        "w".into(),
        "policy".into(),
        "refs/kcycle".into(),
        "mean mem latency (cy)".into(),
        "makespan (kcy)".into(),
    ]);
    for (i, &w) in [0.05f64, 0.2, 0.5].iter().enumerate() {
        let streams = streams_for(w, 300 + i as u64);
        for (policy, label) in [
            (ModePolicy::Fixed(Mode::DistributedWrite), "fixed DW"),
            (ModePolicy::Fixed(Mode::GlobalRead), "fixed GR"),
            (ModePolicy::Adaptive { window: 64 }, "adaptive"),
        ] {
            let mut sys = System::new(
                SystemConfig::new(N_PROCS)
                    .mode_policy(policy)
                    .timing(TimingModel::default()),
            )
            .expect("valid");
            let out = run_concurrent(&mut sys, &streams, 2).expect("streams fit");
            sys.check_invariants().expect("invariants hold");
            t.row(vec![
                format!("{w:.2}"),
                label.to_string(),
                format!("{:.1}", out.throughput_per_kcycle),
                format!("{:.2}", out.mean_latency()),
                format!("{:.1}", out.makespan_cycles as f64 / 1000.0),
            ]);
        }
    }
    t.print("Concurrent execution: throughput and latency (16 procs, 8 sharers)");
    println!(
        "Observation: under the LATENCY metric, distributed write wins over a\n\
         wider range of w than under the paper's traffic metric — an update\n\
         is a one-way multicast the writer fires and forgets, while every\n\
         global read is a synchronous round trip. The paper's w1 = 2/(n+2)\n\
         threshold optimizes bits, not cycles; a latency-oriented controller\n\
         would switch later. The adaptive column uses the traffic threshold\n\
         and therefore tracks GR earlier than the latency optimum."
    );
}
