//! The empirical twin of Figure 8: instead of the closed forms, run every
//! protocol through the full trace-driven simulator on the §4 workload
//! (n tasks share blocks, one writer per block, write fraction w) and
//! measure bits per reference on the simulated network.
//!
//! Expected shapes (paper): the update-based protocols are flat-ish in w at
//! low w and grow with w; global read falls with w; the two-mode adaptive
//! protocol tracks the lower envelope of the two fixed modes; the
//! directory-invalidate (write-once-equivalent) baseline peaks in the
//! middle (the w(1−w) hump); no-cache is the 2−w reference line.

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem,
    NoCacheSystem, UpdateOnlySystem,
};
use tmc_bench::{drive_steady_state, Table};
use tmc_core::Mode;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload};

const N_PROCS: usize = 16;
const N_TASKS: usize = 8;
const N_BLOCKS: u64 = 16;
const REFS: usize = 24_000;
const WARMUP: usize = 4_000;

fn run_one(sys: &mut dyn CoherentSystem, w: f64, seed: u64) -> f64 {
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, w)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    drive_steady_state(sys, &trace, WARMUP).bits_per_ref
}

fn main() {
    let ws = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let mut t = Table::new(vec![
        "w".into(),
        "no-cache".into(),
        "dir-invalidate".into(),
        "update-only".into(),
        "two-mode DW".into(),
        "two-mode GR".into(),
        "two-mode adaptive".into(),
        "winner".into(),
    ]);
    println!(
        "\nTrace-driven run: N={N_PROCS} processors, n={N_TASKS} sharing tasks, \
         {N_BLOCKS} blocks, {REFS} refs ({WARMUP} warm-up), bits/reference:"
    );
    for (i, &w) in ws.iter().enumerate() {
        let seed = 1000 + i as u64;
        let mut results: Vec<(&'static str, f64)> = Vec::new();
        let mut nc = NoCacheSystem::new(N_PROCS);
        results.push(("no-cache", run_one(&mut nc, w, seed)));
        let mut dir = DirectoryInvalidateSystem::new(N_PROCS);
        results.push(("dir-invalidate", run_one(&mut dir, w, seed)));
        let mut upd = UpdateOnlySystem::new(N_PROCS);
        results.push(("update-only", run_one(&mut upd, w, seed)));
        let mut dw = two_mode_fixed(N_PROCS, Mode::DistributedWrite);
        results.push(("two-mode DW", run_one(&mut dw, w, seed)));
        let mut gr = two_mode_fixed(N_PROCS, Mode::GlobalRead);
        results.push(("two-mode GR", run_one(&mut gr, w, seed)));
        let mut ad = two_mode_adaptive(N_PROCS, 64);
        results.push(("two-mode adaptive", run_one(&mut ad, w, seed)));

        let winner = results
            .iter()
            .skip(1) // exclude the no-cache reference from "winner"
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty")
            .0;
        let mut cells = vec![format!("{w:.2}")];
        cells.extend(results.iter().map(|(_, b)| format!("{b:.1}")));
        cells.push(winner.to_string());
        t.row(cells);
    }
    t.print("Figure 8 (empirical): measured bits per reference");

    let w1 = 2.0 / (N_TASKS as f64 + 2.0);
    println!(
        "Two-mode threshold for n={N_TASKS}: w1 = {w1:.3}. Expect the fixed-DW\n\
         column to win below it, fixed-GR above it, and the adaptive column to\n\
         track whichever fixed mode is cheaper."
    );
}
