//! The empirical twin of Figure 8: instead of the closed forms, run every
//! protocol through the full trace-driven simulator on the §4 workload
//! (n tasks share blocks, one writer per block, write fraction w) and
//! measure bits per reference on the simulated network.
//!
//! Every (write fraction, protocol) cell is independent — its own seeded
//! trace, its own simulated machine — so the grid fans out across cores on
//! [`tmc_bench::sweep`]. Results are merged back in cell order, making the
//! output bit-for-bit identical to a serial run (`TMC_SWEEP_THREADS=1`).
//!
//! Expected shapes (paper): the update-based protocols are flat-ish in w at
//! low w and grow with w; global read falls with w; the two-mode adaptive
//! protocol tracks the lower envelope of the two fixed modes; the
//! directory-invalidate (write-once-equivalent) baseline peaks in the
//! middle (the w(1−w) hump); no-cache is the 2−w reference line.

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem, NoCacheSystem,
    UpdateOnlySystem,
};
use tmc_bench::shardsim::{self, ShardRunOptions};
use tmc_bench::{drive_steady_state_batched_checked, drive_steady_state_checked, sweep, Table};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload};

const N_PROCS: usize = 16;
const N_TASKS: usize = 8;
const N_BLOCKS: u64 = 16;
const REFS: usize = 24_000;
const WARMUP: usize = 4_000;

const SYSTEMS: [&str; 6] = [
    "no-cache",
    "dir-invalidate",
    "update-only",
    "two-mode DW",
    "two-mode GR",
    "two-mode adaptive",
];

fn build_system(idx: usize) -> Box<dyn CoherentSystem> {
    match idx {
        0 => Box::new(NoCacheSystem::new(N_PROCS)),
        1 => Box::new(DirectoryInvalidateSystem::new(N_PROCS)),
        2 => Box::new(UpdateOnlySystem::new(N_PROCS)),
        3 => Box::new(two_mode_fixed(N_PROCS, Mode::DistributedWrite)),
        4 => Box::new(two_mode_fixed(N_PROCS, Mode::GlobalRead)),
        _ => Box::new(two_mode_adaptive(N_PROCS, 64)),
    }
}

/// The two-mode engine's config for a shardable cell, if `sys_idx` is one.
fn two_mode_cfg(sys_idx: usize) -> Option<SystemConfig> {
    let policy = match sys_idx {
        3 => ModePolicy::Fixed(Mode::DistributedWrite),
        4 => ModePolicy::Fixed(Mode::GlobalRead),
        5 => ModePolicy::Adaptive { window: 64 },
        _ => return None,
    };
    Some(SystemConfig::new(N_PROCS).mode_policy(policy))
}

/// One grid cell: simulate protocol `sys_idx` on the w-workload seeded by
/// `seed`, reporting steady-state bits per reference. Every read is
/// value-checked against the sequential-consistency oracle, so the
/// published numbers come from verified-correct runs (the checked drive
/// writes the same stamp sequence, keeping traffic bit-identical).
///
/// With `TMC_SHARDS` set, the two-mode cells run on the block-sharded
/// engine instead — same oracle checking, bit-identical traffic — so one
/// cell can use several cores.
fn run_cell(w: f64, seed: u64, sys_idx: usize) -> f64 {
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, w)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    let shards = shardsim::env_shards();
    if shards > 0 {
        if let Some(cfg) = two_mode_cfg(sys_idx) {
            let script = shardsim::script_from_trace(&trace);
            let opts = ShardRunOptions::new(shards, 0).warmup(WARMUP).check(true);
            return shardsim::run(&cfg, &script, &opts)
                .expect("default two-mode configs are shardable")
                .report
                .bits_per_ref;
        }
    }
    // Two-mode cells run on the batched reference pipeline (bit-identical
    // to the scalar driver, still oracle-checked); the baselines keep the
    // scalar `CoherentSystem` driver.
    if let Some(cfg) = two_mode_cfg(sys_idx) {
        let mut sys = System::new(cfg).expect("valid config");
        return drive_steady_state_batched_checked(&mut sys, &trace, WARMUP).bits_per_ref;
    }
    let mut sys = build_system(sys_idx);
    drive_steady_state_checked(sys.as_mut(), &trace, WARMUP).bits_per_ref
}

fn main() {
    let ws = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let mut headers: Vec<String> = vec!["w".into()];
    headers.extend(SYSTEMS.iter().map(|s| s.to_string()));
    headers.push("winner".into());
    let mut t = Table::new(headers);
    println!(
        "\nTrace-driven run: N={N_PROCS} processors, n={N_TASKS} sharing tasks, \
         {N_BLOCKS} blocks, {REFS} refs ({WARMUP} warm-up), bits/reference \
         ({} sweep threads):",
        sweep::num_threads()
    );
    let shards = shardsim::env_shards();
    if shards > 0 {
        println!("Two-mode cells run block-sharded ({shards} shards requested).");
    }

    let cells: Vec<(f64, u64, usize)> = ws
        .iter()
        .enumerate()
        .flat_map(|(i, &w)| (0..SYSTEMS.len()).map(move |s| (w, 1000 + i as u64, s)))
        .collect();
    let bits = sweep::map(cells, |(w, seed, s)| run_cell(w, seed, s));

    for (i, &w) in ws.iter().enumerate() {
        let row = &bits[i * SYSTEMS.len()..(i + 1) * SYSTEMS.len()];
        let winner = SYSTEMS
            .iter()
            .zip(row)
            .skip(1) // exclude the no-cache reference from "winner"
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty")
            .0;
        let mut cells = vec![format!("{w:.2}")];
        cells.extend(row.iter().map(|b| format!("{b:.1}")));
        cells.push(winner.to_string());
        t.row(cells);
    }
    t.print("Figure 8 (empirical): measured bits per reference");

    let w1 = 2.0 / (N_TASKS as f64 + 2.0);
    println!(
        "Two-mode threshold for n={N_TASKS}: w1 = {w1:.3}. Expect the fixed-DW\n\
         column to win below it, fixed-GR above it, and the adaptive column to\n\
         track whichever fixed mode is cheaper."
    );
}
