//! Regenerates Table 2: break-even destination count between multicast
//! schemes 1 and 2 as a function of machine size N and message size M —
//! from the paper's own equations 2 and 3, cross-checked against the
//! simulated network link-by-link.

use tmc_analytic::break_even_scheme2;
use tmc_bench::Table;
use tmc_omeganet::{DestSet, Omega, SchemeKind};

/// The values printed in the paper's Table 2, for side-by-side comparison.
const PAPER: &[(u64, [u64; 3])] = &[
    (64, [16, 1, 1]),
    (128, [32, 4, 1]),
    (256, [32, 8, 4]),
    (512, [64, 16, 8]),
    (1024, [128, 32, 16]),
];
const MS: [u64; 3] = [0, 40, 100];

/// Finds the break-even empirically: measure both schemes' exact costs on
/// the simulated network with worst-case-spread destinations.
fn empirical_break_even(big_n: u64, m_bits: u64) -> Option<u64> {
    let net = Omega::with_ports(big_n as usize).expect("supported size");
    let mut n = 1u64;
    while n <= big_n {
        let dests = DestSet::worst_case_spread(big_n as usize, n as usize).expect("valid");
        let c1 = net
            .multicast_cost(SchemeKind::Replicated, &dests, m_bits)
            .expect("valid");
        let c2 = net
            .multicast_cost(SchemeKind::BitVector, &dests, m_bits)
            .expect("valid");
        if c2 <= c1 {
            return Some(n);
        }
        n *= 2;
    }
    None
}

fn main() {
    let mut t = Table::new(vec![
        "N".into(),
        "M=0 (eqs)".into(),
        "M=0 (net)".into(),
        "M=0 paper".into(),
        "M=40 (eqs)".into(),
        "M=40 (net)".into(),
        "M=40 paper".into(),
        "M=100 (eqs)".into(),
        "M=100 (net)".into(),
        "M=100 paper".into(),
    ]);
    for &(big_n, paper) in PAPER {
        let mut cells = vec![big_n.to_string()];
        for (i, &m_bits) in MS.iter().enumerate() {
            let eqs = break_even_scheme2(big_n, m_bits);
            let net = empirical_break_even(big_n, m_bits);
            assert_eq!(eqs, net, "analytic and simulated break-even must agree");
            cells.push(eqs.map_or("-".into(), |v| v.to_string()));
            cells.push(net.map_or("-".into(), |v| v.to_string()));
            cells.push(paper[i].to_string());
        }
        t.row(cells);
    }
    t.print("Table 2: break-even n between scheme 1 and scheme 2");

    println!(
        "(eqs) = from the paper's equations 2 and 3; (net) = measured on the\n\
         simulated omega network with worst-case-spread destinations. The two\n\
         agree exactly. The paper's printed table sits ~2x below the values its\n\
         own equations give (see EXPERIMENTS.md); the trends it proves — break-\n\
         even decreasing in M, increasing in N — hold in both."
    );
}
