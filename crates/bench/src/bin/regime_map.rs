//! A synthesis of §4: for every (sharers n, write fraction w) cell, which
//! protocol has the lowest analytic per-reference communication cost?
//!
//! The paper draws Figure 8 for a few n; this map shows the whole plane.
//! Legend: `-` no-cache, `W` write-once, `D` distributed write, `G` global
//! read. (By the paper's two claims, `-` can never appear: the two-mode
//! envelope min(D, G) is below no-cache everywhere, so every cell is W, D
//! or G — and W only where the Markov model's hump dips under both modes,
//! which never happens either; the map makes that visible.)
//!
//! Each sharer-count row is one sweep cell ([`tmc_bench::sweep`]); rows
//! print in order.

use tmc_analytic::ProtocolCostModel;
use tmc_bench::sweep;

fn main() {
    let big_n = 1024;
    let m_bits = 20;
    println!("\ncolumns: w = 0.025 .. 0.975 (step 0.05); rows: sharers n\n");
    print!("{:>6} ", "n");
    for i in 0..20 {
        print!("{}", if i % 2 == 0 { '.' } else { ' ' });
    }
    println!("   w1 = 2/(n+2)");
    let lines = sweep::map((1u32..=8).collect(), |k| {
        let n = 1u64 << k;
        let model = ProtocolCostModel::new(n, big_n, m_bits);
        let mut row = String::new();
        for i in 0..20 {
            let w = 0.025 + i as f64 * 0.05;
            let costs = [
                ('-', model.no_cache_norm(w)),
                ('W', model.write_once_norm(w)),
                ('D', model.distributed_write_norm(w)),
                ('G', model.global_read_norm(w)),
            ];
            let winner = costs
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("nonempty")
                .0;
            row.push(winner);
        }
        format!("{n:>6} {row}   {:.3}", model.threshold().value())
    });
    for line in lines {
        println!("{line}");
    }
    println!(
        "\nReading the map: the D→G boundary tracks w1 = 2/(n+2) exactly; the\n\
         write-once protocol is never the winner (its w(1-w)(n+2) hump always\n\
         sits above min(wn, 2(1-w))); and no-cache never wins — the paper's\n\
         two claims under eq. 12, visualized."
    );
}
