//! A parameterized experiment runner for scripting your own sweeps.
//!
//! ```text
//! Usage: sweep [PROTOCOL] [N_PROCS] [N_TASKS] [W] [REFS] [SEED]
//!   PROTOCOL  no-cache | dir | update | dw | gr | adaptive | all (default: all)
//!   N_PROCS   power of two (default 16)
//!   N_TASKS   sharing tasks (default 8)
//!   W         write fraction 0..=1 (default 0.2)
//!   REFS      references (default 20000)
//!   SEED      RNG seed (default 1)
//! ```
//!
//! Output is CSV on stdout: `protocol,n_procs,n_tasks,w,refs,bits_per_ref,msgs`.

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem, NoCacheSystem,
    UpdateOnlySystem,
};
use tmc_bench::drive;
use tmc_core::Mode;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload};

fn usage() -> ! {
    eprintln!(
        "usage: sweep [no-cache|dir|update|dw|gr|adaptive|all] [N_PROCS] [N_TASKS] [W] [REFS] [SEED]"
    );
    std::process::exit(2)
}

fn build(protocol: &str, n_procs: usize) -> Option<Box<dyn CoherentSystem>> {
    Some(match protocol {
        "no-cache" => Box::new(NoCacheSystem::new(n_procs)),
        "dir" => Box::new(DirectoryInvalidateSystem::new(n_procs)),
        "update" => Box::new(UpdateOnlySystem::new(n_procs)),
        "dw" => Box::new(two_mode_fixed(n_procs, Mode::DistributedWrite)),
        "gr" => Box::new(two_mode_fixed(n_procs, Mode::GlobalRead)),
        "adaptive" => Box::new(two_mode_adaptive(n_procs, 64)),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, default: &str| args.get(i).cloned().unwrap_or_else(|| default.into());
    let protocol = arg(0, "all");
    let n_procs: usize = arg(1, "16").parse().unwrap_or_else(|_| usage());
    let n_tasks: usize = arg(2, "8").parse().unwrap_or_else(|_| usage());
    let w: f64 = arg(3, "0.2").parse().unwrap_or_else(|_| usage());
    let refs: usize = arg(4, "20000").parse().unwrap_or_else(|_| usage());
    let seed: u64 = arg(5, "1").parse().unwrap_or_else(|_| usage());
    if !n_procs.is_power_of_two() || n_tasks > n_procs || !(0.0..=1.0).contains(&w) {
        usage();
    }

    let names: Vec<&str> = if protocol == "all" {
        vec!["no-cache", "dir", "update", "dw", "gr", "adaptive"]
    } else {
        vec![protocol.as_str()]
    };

    println!("protocol,n_procs,n_tasks,w,refs,bits_per_ref,msgs");
    for name in names {
        let Some(mut sys) = build(name, n_procs) else {
            usage()
        };
        let trace = SharedBlockWorkload::new(n_tasks, 2 * n_tasks as u64, w)
            .references(refs)
            .placement(Placement::Adjacent { base: 0 })
            .generate(n_procs, &mut SimRng::seed_from(seed));
        let report = drive(sys.as_mut(), &trace);
        println!(
            "{name},{n_procs},{n_tasks},{w},{refs},{:.2},{}",
            report.bits_per_ref,
            sys.counters().get("msgs_total")
        );
    }
}
