//! Regenerates Table 4: cheapest multicast scheme versus machine size N and
//! destination count n, for message size M = 20 and an n₁ = 128 region.

use tmc_analytic::cheapest_scheme;
use tmc_bench::Table;

const NS: [u64; 5] = [8, 16, 32, 64, 128];
const PAPER: &[(u64, [u8; 5])] = &[
    (256, [2, 2, 2, 2, 3]),
    (512, [2, 2, 2, 2, 3]),
    (1024, [1, 2, 2, 2, 3]),
    (2048, [1, 1, 3, 3, 3]),
];

fn main() {
    let (m_bits, n1) = (20u64, 128u64);
    let mut t = Table::new(
        std::iter::once("N".to_string())
            .chain(NS.iter().map(|n| format!("n={n}")))
            .chain(NS.iter().map(|n| format!("paper n={n}")))
            .collect(),
    );
    let mut agree = 0;
    let mut total = 0;
    for &(big_n, paper) in PAPER {
        let mut cells = vec![big_n.to_string()];
        let ours: Vec<u8> = NS
            .iter()
            .map(|&n| cheapest_scheme(n, n1, big_n, m_bits).number())
            .collect();
        for &s in &ours {
            cells.push(s.to_string());
        }
        for (i, &p) in paper.iter().enumerate() {
            cells.push(p.to_string());
            total += 1;
            if ours[i] == p {
                agree += 1;
            }
        }
        t.row(cells);
    }
    t.print("Table 4: cheapest scheme (1/2/3), M=20, n1=128");
    println!(
        "{agree}/{total} cells match the paper. The paper's claims hold: the\n\
         scheme-2/3 break-even falls as N grows (scheme 3's fixed region cost\n\
         is amortized sooner on bigger machines)."
    );
}
