//! §5's cautionary experiment: ownership churn under task migration.
//!
//! "For any application where each block of its shared data structure is
//! modified by at most one task, ownership will not change. … However, for
//! applications where several tasks can modify a block, or when tasks can
//! migrate, ownership will change which increases the network traffic."
//!
//! We sweep the migration period (how many references pass before each
//! block's writer moves to the next task) and measure traffic and ownership
//! transfers on the two-mode protocol and the baselines. Each period is an
//! independent cell on [`tmc_bench::sweep`]; rows merge back in order.

use tmc_baselines::{
    two_mode_adaptive, CoherentSystem, DirectoryInvalidateSystem, UpdateOnlySystem,
};
use tmc_bench::{drive, sweep, Table};
use tmc_simcore::SimRng;
use tmc_workload::MigratingWorkload;

const N_PROCS: usize = 16;
const REFS: usize = 20_000;

fn main() {
    let mut t = Table::new(vec![
        "migration period".into(),
        "two-mode bits/ref".into(),
        "ownership transfers".into(),
        "update-only bits/ref".into(),
        "dir-invalidate bits/ref".into(),
    ]);
    // `usize::MAX` period = no migration (the §4/§5 one-writer best case).
    let periods = vec![
        ("none", usize::MAX),
        ("10000", 10_000),
        ("1000", 1_000),
        ("100", 100),
        ("10", 10),
    ];
    let rows = sweep::map(periods, |(label, period)| {
        let period_refs = if period == usize::MAX {
            REFS + 1
        } else {
            period
        };
        let trace = MigratingWorkload::new(8, 16, 0.2, period_refs)
            .references(REFS)
            .generate(N_PROCS, &mut SimRng::seed_from(8));

        let mut tm = two_mode_adaptive(N_PROCS, 64);
        let tm_bits = drive(&mut tm, &trace).bits_per_ref;
        let transfers = tm.counters().get("ownership_transfers");
        tm.inner().check_invariants().expect("invariants");

        let mut upd = UpdateOnlySystem::new(N_PROCS);
        let upd_bits = drive(&mut upd, &trace).bits_per_ref;

        let mut dir = DirectoryInvalidateSystem::new(N_PROCS);
        let dir_bits = drive(&mut dir, &trace).bits_per_ref;

        vec![
            label.to_string(),
            format!("{tm_bits:.1}"),
            transfers.to_string(),
            format!("{upd_bits:.1}"),
            format!("{dir_bits:.1}"),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print("Ownership churn under task migration (n=8 tasks, w=0.2)");
    println!(
        "Expected (paper, section 5): without migration ownership settles and\n\
         transfers stay near the number of blocks; as the migration period\n\
         shrinks, every epoch forces an ownership-request round trip per block\n\
         and the two-mode protocol's traffic rises toward the invalidating\n\
         baseline's."
    );
}
