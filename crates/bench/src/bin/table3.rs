//! Regenerates Table 3: cheapest multicast scheme versus message size M and
//! destination count n, for N = 1024 caches and an n₁ = 128 region.

use tmc_analytic::cheapest_scheme;
use tmc_bench::Table;

const NS: [u64; 5] = [4, 8, 16, 64, 128];
const PAPER: &[(u64, [u8; 5])] = &[
    (0, [1, 1, 3, 3, 3]),
    (20, [1, 1, 2, 2, 3]),
    (40, [1, 2, 2, 2, 3]),
    (60, [1, 2, 2, 2, 3]),
];

fn main() {
    let (big_n, n1) = (1024u64, 128u64);
    let mut t = Table::new(
        std::iter::once("M".to_string())
            .chain(NS.iter().map(|n| format!("n={n}")))
            .chain(NS.iter().map(|n| format!("paper n={n}")))
            .collect(),
    );
    let mut agree = 0;
    let mut total = 0;
    for &(m_bits, paper) in PAPER {
        let mut cells = vec![m_bits.to_string()];
        let ours: Vec<u8> = NS
            .iter()
            .map(|&n| cheapest_scheme(n, n1, big_n, m_bits).number())
            .collect();
        for &s in &ours {
            cells.push(s.to_string());
        }
        for (i, &p) in paper.iter().enumerate() {
            cells.push(p.to_string());
            total += 1;
            if ours[i] == p {
                agree += 1;
            }
        }
        t.row(cells);
    }
    t.print("Table 3: cheapest scheme (1/2/3), N=1024, n1=128");
    println!(
        "{agree}/{total} cells match the paper's printed table; the shape —\n\
         scheme 1 for few destinations, scheme 2 in the middle, scheme 3 for\n\
         many — reproduces in every row (winner index is monotone in n)."
    );
}
