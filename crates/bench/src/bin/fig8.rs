//! Regenerates Figure 8: normalized communication cost per memory reference
//! versus write fraction w — no-cache (bold reference), write-once (dashed)
//! and the two-mode protocol (solid), for several sharer counts n. Each
//! sharer count is one sweep cell ([`tmc_bench::sweep`]); rendered tables
//! merge back in order.

use tmc_analytic::ProtocolCostModel;
use tmc_bench::{sweep, Table};

fn render_for_sharers(n: u64, big_n: u64, m_bits: u64) -> String {
    let model = ProtocolCostModel::new(n, big_n, m_bits);
    let w1 = model.threshold().value();
    let mut t = Table::new(vec![
        "w".into(),
        "no-cache (2-w)".into(),
        "write-once w(1-w)(n+2)".into(),
        "DW mode (wn)".into(),
        "GR mode 2(1-w)".into(),
        "two-mode (min)".into(),
    ]);
    for i in 0..=20 {
        let w = i as f64 / 20.0;
        t.row(vec![
            format!("{w:.2}"),
            format!("{:.3}", model.no_cache_norm(w)),
            format!("{:.3}", model.write_once_norm(w)),
            format!("{:.3}", model.distributed_write_norm(w)),
            format!("{:.3}", model.global_read_norm(w)),
            format!("{:.3}", model.two_mode_norm(w)),
        ]);
    }
    format!(
        "\n== Figure 8 (n = {n}): normalized CC vs write fraction; threshold w1 = {w1:.4}, two-mode peak = {:.3} ==\n{}",
        model.two_mode_peak_norm(),
        t.render()
    )
}

fn main() {
    let big_n = 1024;
    let m_bits = 20;
    let tables = sweep::map(vec![4u64, 16, 64], |n| render_for_sharers(n, big_n, m_bits));
    for table in tables {
        print!("{table}");
    }
    println!(
        "Claims checked by the analytic test suite: the two-mode curve never\n\
         exceeds the no-cache curve or the write-once curve for any w, and\n\
         its peak 2n/(n+2) < 2 is attained exactly at w1 = 2/(n+2)."
    );
}
