//! Regenerates Figure 7: the write-once two-state Markov chain — transition
//! probabilities, stationary distribution and the per-reference transition
//! rate `w(1−w)` that eq. 10 builds on. Each write fraction is one sweep
//! cell ([`tmc_bench::sweep`]); rows merge back in order.

use tmc_analytic::TwoStateChain;
use tmc_bench::{sweep, Table};

fn main() {
    println!(
        "\nFigure 7 state machine:\n\
         \n\
             exclusive --(read: 1-w)--> shared\n\
             shared    --(write: w)---> exclusive\n\
             exclusive --(write: w)---> exclusive (self loop)\n\
             shared    --(read: 1-w)--> shared    (self loop)\n"
    );
    let mut t = Table::new(vec![
        "w".into(),
        "P(e->s)".into(),
        "P(s->e)".into(),
        "pi(exclusive)".into(),
        "pi(shared)".into(),
        "transitions/ref = w(1-w)".into(),
    ]);
    let rows = sweep::map(vec![0.05, 0.1, 0.25, 0.5, 0.75, 0.9], |w| {
        let chain = TwoStateChain::write_once(w);
        let (pe, ps) = chain.stationary();
        vec![
            format!("{w:.2}"),
            format!("{:.2}", chain.p01),
            format!("{:.2}", chain.p10),
            format!("{pe:.3}"),
            format!("{ps:.3}"),
            format!("{:.4}", chain.rate_01()),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print("Figure 7: write-once global Markov chain");
    println!(
        "Check: pi(exclusive) = w and both transition rates equal w(1-w),\n\
         which is exactly the prefactor of eq. 10."
    );
}
