//! Ablations over the design choices DESIGN.md calls out: the consistency
//! multicast scheme, the OWNER-pointer bypass, and the mode policy — all
//! measured as traffic on the same workload. Every (workload, config) cell
//! is an independent simulation, fanned out on [`tmc_bench::sweep`] and
//! merged back in order.

use tmc_baselines::TwoModeAdapter;
use tmc_bench::{drive, sweep, Table};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload, StencilWorkload, Trace};

fn run(cfg: SystemConfig, name: &'static str, trace: &Trace) -> f64 {
    let mut sys = TwoModeAdapter::new(System::new(cfg).expect("valid"), name);
    let report = drive(&mut sys, trace);
    sys.inner().check_invariants().expect("invariants hold");
    report.bits_per_ref
}

fn main() {
    let n_procs = 16;
    let rng = SimRng::seed_from(7);
    let shared = SharedBlockWorkload::new(8, 16, 0.1)
        .references(20_000)
        .placement(Placement::Adjacent { base: 0 })
        .generate(n_procs, &mut rng.fork(1));
    let stencil = StencilWorkload::new(8, 4, 40)
        .placement(Placement::Adjacent { base: 0 })
        .generate(n_procs, &mut rng.fork(2));
    let workloads = [
        ("shared-block w=0.1", &shared),
        ("stencil 8x4x40", &stencil),
    ];

    // The three ablation axes, each a (config, table label) list.
    let scheme_cases: Vec<(SystemConfig, &'static str)> = [
        (SchemeKind::Replicated, "scheme 1 (replicated)"),
        (SchemeKind::BitVector, "scheme 2 (bit-vector)"),
        (SchemeKind::BroadcastTag, "scheme 3 (broadcast-tag)"),
        (SchemeKind::Combined, "scheme 4 (combined, eq.8)"),
    ]
    .into_iter()
    .map(|(scheme, name)| {
        (
            SystemConfig::new(n_procs)
                .multicast(scheme)
                .mode_policy(ModePolicy::Fixed(Mode::DistributedWrite)),
            name,
        )
    })
    .collect();
    let bypass_cases: Vec<(SystemConfig, &'static str)> =
        [(true, "on (paper)"), (false, "off (via memory)")]
            .into_iter()
            .map(|(bypass, name)| {
                (
                    SystemConfig::new(n_procs)
                        .owner_bypass(bypass)
                        .mode_policy(ModePolicy::Fixed(Mode::GlobalRead)),
                    name,
                )
            })
            .collect();
    let policy_cases: Vec<(SystemConfig, &'static str)> = [
        (
            ModePolicy::Fixed(Mode::DistributedWrite),
            "fixed distributed-write",
        ),
        (ModePolicy::Fixed(Mode::GlobalRead), "fixed global-read"),
        (ModePolicy::Adaptive { window: 64 }, "adaptive (sect. 5)"),
    ]
    .into_iter()
    .map(|(policy, name)| (SystemConfig::new(n_procs).mode_policy(policy), name))
    .collect();
    let axes: [(&str, &[(SystemConfig, &'static str)]); 3] = [
        ("Ablation: multicast scheme", &scheme_cases),
        ("Ablation: OWNER-pointer bypass", &bypass_cases),
        ("Ablation: mode policy", &policy_cases),
    ];

    // Flatten (workload × axis × case) into one cell grid and fan it out.
    let cells: Vec<(&Trace, SystemConfig)> = workloads
        .iter()
        .flat_map(|&(_, trace)| {
            axes.iter()
                .flat_map(move |(_, cases)| cases.iter().map(move |(cfg, _)| (trace, cfg.clone())))
        })
        .collect();
    let bits = sweep::map(cells, |(trace, cfg)| run(cfg, "ablation", trace));

    let mut next = bits.into_iter();
    for (wl_name, _) in workloads {
        for (title, cases) in &axes {
            let mut t = Table::new(vec!["variant".into(), "bits/ref".into()]);
            for (_, name) in *cases {
                let b = next.next().expect("cell count matches");
                t.row(vec![name.to_string(), format!("{b:.1}")]);
            }
            t.print(&format!("{title} ({wl_name})"));
        }
    }
}
