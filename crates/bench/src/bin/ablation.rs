//! Ablations over the design choices DESIGN.md calls out: the consistency
//! multicast scheme, the OWNER-pointer bypass, and the mode policy — all
//! measured as traffic on the same workload.

use tmc_baselines::TwoModeAdapter;
use tmc_bench::{drive, Table};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload, StencilWorkload};

fn run(cfg: SystemConfig, name: &'static str, trace: &tmc_workload::Trace) -> (String, f64) {
    let mut sys = TwoModeAdapter::new(System::new(cfg).expect("valid"), name);
    let report = drive(&mut sys, trace);
    sys.inner().check_invariants().expect("invariants hold");
    (name.to_string(), report.bits_per_ref)
}

fn main() {
    let n_procs = 16;
    let rng = SimRng::seed_from(7);
    let shared = SharedBlockWorkload::new(8, 16, 0.1)
        .references(20_000)
        .placement(Placement::Adjacent { base: 0 })
        .generate(n_procs, &mut rng.fork(1));
    let stencil = StencilWorkload::new(8, 4, 40)
        .placement(Placement::Adjacent { base: 0 })
        .generate(n_procs, &mut rng.fork(2));

    for (wl_name, trace) in [("shared-block w=0.1", &shared), ("stencil 8x4x40", &stencil)] {
        // Ablation 1: multicast scheme, with the protocol pinned to
        // distributed write so updates actually multicast.
        let mut t = Table::new(vec!["multicast scheme".into(), "bits/ref".into()]);
        for (scheme, name) in [
            (SchemeKind::Replicated, "scheme 1 (replicated)"),
            (SchemeKind::BitVector, "scheme 2 (bit-vector)"),
            (SchemeKind::BroadcastTag, "scheme 3 (broadcast-tag)"),
            (SchemeKind::Combined, "scheme 4 (combined, eq.8)"),
        ] {
            let cfg = SystemConfig::new(n_procs)
                .multicast(scheme)
                .mode_policy(ModePolicy::Fixed(Mode::DistributedWrite));
            let (_, bits) = run(cfg, name, trace);
            t.row(vec![name.to_string(), format!("{bits:.1}")]);
        }
        t.print(&format!("Ablation: multicast scheme ({wl_name})"));

        // Ablation 2: OWNER bypass on/off (global-read mode exercises it).
        let mut t = Table::new(vec!["owner bypass".into(), "bits/ref".into()]);
        for (bypass, name) in [(true, "on (paper)"), (false, "off (via memory)")] {
            let cfg = SystemConfig::new(n_procs)
                .owner_bypass(bypass)
                .mode_policy(ModePolicy::Fixed(Mode::GlobalRead));
            let (_, bits) = run(cfg, if bypass { "bypass-on" } else { "bypass-off" }, trace);
            t.row(vec![name.to_string(), format!("{bits:.1}")]);
        }
        t.print(&format!("Ablation: OWNER-pointer bypass ({wl_name})"));

        // Ablation 3: mode policy.
        let mut t = Table::new(vec!["mode policy".into(), "bits/ref".into()]);
        for (policy, name) in [
            (ModePolicy::Fixed(Mode::DistributedWrite), "fixed distributed-write"),
            (ModePolicy::Fixed(Mode::GlobalRead), "fixed global-read"),
            (ModePolicy::Adaptive { window: 64 }, "adaptive (sect. 5)"),
        ] {
            let cfg = SystemConfig::new(n_procs).mode_policy(policy);
            let (_, bits) = run(cfg, "policy", trace);
            t.row(vec![name.to_string(), format!("{bits:.1}")]);
        }
        t.print(&format!("Ablation: mode policy ({wl_name})"));
    }
}
