//! Latency extension experiment (not in the paper, which counts bits only):
//! store-and-forward delivery times with per-link contention.
//!
//! Two measurements, both fanned out on [`tmc_bench::sweep`] (each
//! destination count and each protocol mode is an independent cell):
//! 1. raw network: time for the *last* destination of one multicast to
//!    receive the message, per scheme — scheme 1 re-serializes the shared
//!    early links, scheme 2 crosses each link once;
//! 2. whole protocol: per-transaction latency distribution of the two-mode
//!    protocol under the timing model.

use tmc_bench::{sweep, Table};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::{DestSet, LinkSchedule, Omega, SchemeChoice, TimingModel};
use tmc_simcore::{SimRng, SimTime};
use tmc_workload::{Op, Placement, SharedBlockWorkload};

fn main() {
    // --- 1. Raw multicast delivery time under contention. ---
    let net = Omega::new(6).expect("N = 64");
    let model = TimingModel::default();
    let mut t = Table::new(vec![
        "destinations".into(),
        "scheme 1 (cycles)".into(),
        "scheme 2 (cycles)".into(),
        "speedup".into(),
    ]);
    let rows = sweep::map(vec![2u32, 3, 4, 5, 6], |k| {
        let n = 1usize << k;
        let dests = DestSet::worst_case_spread(64, n).expect("valid");
        let last = |scheme: SchemeChoice| {
            let mut sched = LinkSchedule::new(&net);
            sched
                .timed_multicast(&net, model, scheme, 0, &dests, 128, SimTime::ZERO)
                .expect("valid")
                .into_iter()
                .map(|(_, at)| at.cycles())
                .max()
                .expect("nonempty")
        };
        (
            n,
            last(SchemeChoice::Replicated),
            last(SchemeChoice::BitVector),
        )
    });
    for (n, s1, s2) in rows {
        t.row(vec![
            n.to_string(),
            s1.to_string(),
            s2.to_string(),
            format!("{:.2}x", s1 as f64 / s2 as f64),
        ]);
    }
    t.print("Multicast completion time (last delivery), N=64, 128-bit payload");

    // --- 2. Protocol transaction latency distribution. ---
    let mut table = Table::new(vec![
        "mode".into(),
        "mean (cycles)".into(),
        "p50 bucket".into(),
        "p99 bucket".into(),
        "max bucket".into(),
    ]);
    let modes = vec![
        (Mode::DistributedWrite, "distributed write"),
        (Mode::GlobalRead, "global read"),
    ];
    let rows = sweep::map(modes, |(mode, label)| {
        let mut sys = System::new(
            SystemConfig::new(16)
                .mode_policy(ModePolicy::Fixed(mode))
                .timing(model),
        )
        .expect("valid");
        let trace = SharedBlockWorkload::new(8, 16, 0.2)
            .references(8_000)
            .placement(Placement::Adjacent { base: 0 })
            .generate(16, &mut SimRng::seed_from(12));
        let mut stamp = 1;
        for r in trace.iter() {
            match r.op {
                Op::Read => {
                    sys.read(r.proc, r.addr).expect("valid");
                }
                Op::Write => {
                    sys.write(r.proc, r.addr, stamp).expect("valid");
                    stamp += 1;
                }
            }
        }
        let h = sys.latencies();
        vec![
            label.to_string(),
            format!("{:.1}", h.mean()),
            h.quantile_bucket_low(0.5).unwrap_or(0).to_string(),
            h.quantile_bucket_low(0.99).unwrap_or(0).to_string(),
            h.quantile_bucket_low(1.0).unwrap_or(0).to_string(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table.print("Two-mode protocol transaction latency (timing model, w=0.2)");
    println!(
        "Reading the bucket columns: values are power-of-two bucket lower\n\
         bounds (0 = local hit). DW mode's tail comes from update multicasts;\n\
         GR mode trades cache hits for short two-message datum fetches."
    );
}
