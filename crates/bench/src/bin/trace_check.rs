//! Captures a structured protocol trace, replays it against a fresh
//! system, and verifies every trailer obligation — the top layer of the
//! test pyramid (`docs/TESTING.md`), runnable standalone.
//!
//! ```text
//! Usage: trace_check roundtrip [SEED]     capture + replay in memory
//!        trace_check capture FILE [SEED]  write a JSONL trace to FILE
//!        trace_check check FILE           replay + verify a saved trace
//! ```
//!
//! The canonical run is the §4 sharing workload (8 tasks, 16 blocks,
//! w = 0.3) on a 16-processor machine under the §5 adaptive policy, with
//! software mode directives sprinkled in so every replayable event kind
//! appears. The replay re-executes reads/writes/mode directives, checks
//! read values against the [`tmc_memsys::ReferenceMemory`] oracle, and
//! asserts the regenerated event stream, protocol-fingerprint hash, total
//! link bits and per-link charges all match the recorded trace.

use tmc_bench::tracecheck;
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::WordAddr;
use tmc_obs::{MetricsRegistry, TraceReader};
use tmc_simcore::SimRng;
use tmc_workload::{Op, Placement, SharedBlockWorkload};

const N_PROCS: usize = 16;
const N_TASKS: usize = 8;
const N_BLOCKS: u64 = 16;
const REFS: usize = 4_000;

fn canonical_config() -> SystemConfig {
    SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 64 })
}

fn canonical_drive(sys: &mut System, seed: u64) {
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, 0.3)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    // Software directives up front (§2.2 ops 6/7) so SetMode replays too.
    sys.set_mode(0, WordAddr::new(0), Mode::DistributedWrite)
        .expect("valid proc");
    sys.set_mode(1, WordAddr::new(4), Mode::GlobalRead)
        .expect("valid proc");
    let mut stamp = 1u64;
    for r in trace.iter() {
        match r.op {
            Op::Read => {
                sys.read(r.proc, r.addr).expect("valid proc");
            }
            Op::Write => {
                sys.write(r.proc, r.addr, stamp).expect("valid proc");
                stamp += 1;
            }
        }
    }
}

fn capture(seed: u64) -> String {
    tracecheck::capture(canonical_config(), |sys| canonical_drive(sys, seed))
        .expect("canonical config is capturable")
}

fn summarize(trace: &str) {
    let (header, events, trailer) = match TraceReader::new(trace.as_bytes()).read_all() {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("malformed trace: {e}");
            std::process::exit(1);
        }
    };
    let mut metrics = MetricsRegistry::new();
    metrics.observe_all(&events);
    println!(
        "trace      : v{} {}p {}x{} cache, scheme={}, policy={}, bypass={}",
        header.version,
        header.n_procs,
        header.sets,
        header.ways,
        header.scheme,
        header.policy,
        header.owner_bypass
    );
    println!(
        "trailer    : {} events, fingerprint {:#018x}, {} bits over {} links",
        trailer.events,
        trailer.fingerprint,
        trailer.total_bits,
        trailer.links.len()
    );
    println!("\nmetrics:\n{}", metrics.summary());
}

fn check(trace: &str) {
    match tracecheck::check(trace) {
        Ok(report) => println!("replay OK  : {report}"),
        Err(e) => {
            eprintln!("replay FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("roundtrip");
    match mode {
        "roundtrip" => {
            let seed = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1989);
            let trace = capture(seed);
            summarize(&trace);
            check(&trace);
        }
        "capture" => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: trace_check capture FILE [SEED]");
                std::process::exit(2);
            };
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1989);
            let trace = capture(seed);
            if let Err(e) = std::fs::write(path, &trace) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            summarize(&trace);
            println!("wrote {path}");
        }
        "check" => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: trace_check check FILE");
                std::process::exit(2);
            };
            let trace = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            summarize(&trace);
            check(&trace);
        }
        other => {
            eprintln!("unknown mode '{other}'");
            eprintln!("usage: trace_check [roundtrip [SEED] | capture FILE [SEED] | check FILE]");
            std::process::exit(2);
        }
    }
}
