//! The introduction's state-memory claim, quantified: full-map directory
//! `O(N·M)` versus the paper's distributed state
//! `O(C(N + log N) + M·log N)`, plus the two §5 reductions (split cache,
//! associative present-vector store).

use tmc_analytic::StateMemoryModel;
use tmc_bench::Table;

fn mib(bits: u128) -> String {
    format!("{:.1}", bits as f64 / 8.0 / 1024.0 / 1024.0)
}

fn main() {
    // 4096 blocks per cache (64 KiB of 16-byte blocks) and 1 Mi memory
    // blocks (16 MiB) *per module* — modest late-80s numbers; total memory
    // scales with the machine, as in the RP3/Butterfly class the paper
    // targets.
    let cache_blocks = 4096;
    let memory_blocks_per_module = 1u64 << 20;
    let mut t = Table::new(vec![
        "N".into(),
        "full map (MiB)".into(),
        "distributed (MiB)".into(),
        "split cache 25% (MiB)".into(),
        "assoc store 512 (MiB)".into(),
        "full/dist".into(),
    ]);
    for log_n in [5u32, 6, 7, 8, 9, 10] {
        let n = 1u64 << log_n;
        let m = StateMemoryModel::new(n, cache_blocks, n * memory_blocks_per_module);
        t.row(vec![
            n.to_string(),
            mib(m.full_map_bits()),
            mib(m.distributed_bits()),
            mib(m.distributed_split_cache_bits(0.25)),
            mib(m.distributed_associative_bits(512)),
            format!("{:.1}x", m.savings_factor()),
        ]);
    }
    t.print(&format!(
        "State memory, machine-wide: C = {cache_blocks} blocks/cache, M = N x {memory_blocks_per_module} memory blocks"
    ));
    println!(
        "The full map grows with memory size (O(N*M)); the paper's distributed\n\
         state grows with cache size (O(C(N + log N) + M log N)). The split-\n\
         cache and associative-store variants are the reductions sketched in\n\
         section 5 of the paper."
    );
}
