//! Machine-readable performance baseline: times the serial and parallel
//! sim_fig8-style sweep, raw event-queue throughput and raw protocol
//! throughput, and writes the numbers to `BENCH_sim.json` so regressions
//! are diffable across commits.
//!
//! ```text
//! Usage: perf_report [OUTPUT_PATH]     (default: BENCH_sim.json)
//! ```
//!
//! The parallel sweep uses [`tmc_bench::sweep`] with
//! `TMC_SWEEP_THREADS`-many workers (default: all cores); the serial
//! reference runs the identical cell grid on one thread, and the two result
//! vectors are asserted bit-for-bit equal before any timing is reported.
//!
//! Every timed run executes with tracing *disabled* — the zero-cost path.
//! With `TMC_TRACE_OUT=FILE` in the environment, one representative cell
//! (two-mode adaptive, w = 0.2) is additionally re-run *after* all timing
//! with tracing on, and saved as a replayable JSONL protocol trace.

use std::hint::black_box;

use tmc_baselines::{two_mode_adaptive, CoherentSystem};
use tmc_bench::{drive, drive_steady_state, sweep, timer};
use tmc_simcore::{EventQueue, SimRng, SimTime};
use tmc_workload::{Placement, SharedBlockWorkload};

const N_PROCS: usize = 16;
const N_TASKS: usize = 8;
const N_BLOCKS: u64 = 16;
const REFS: usize = 24_000;
const WARMUP: usize = 4_000;
const N_SYSTEMS: usize = 6;

/// The sim_fig8 grid: 8 write fractions × 6 systems.
fn grid_cells() -> Vec<(f64, u64, usize)> {
    let ws = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    ws.iter()
        .enumerate()
        .flat_map(|(i, &w)| (0..N_SYSTEMS).map(move |s| (w, 1000 + i as u64, s)))
        .collect()
}

fn run_cell((w, seed, sys_idx): (f64, u64, usize)) -> f64 {
    use tmc_baselines::{
        two_mode_fixed, DirectoryInvalidateSystem, NoCacheSystem, UpdateOnlySystem,
    };
    use tmc_core::Mode;
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, w)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    let mut sys: Box<dyn CoherentSystem> = match sys_idx {
        0 => Box::new(NoCacheSystem::new(N_PROCS)),
        1 => Box::new(DirectoryInvalidateSystem::new(N_PROCS)),
        2 => Box::new(UpdateOnlySystem::new(N_PROCS)),
        3 => Box::new(two_mode_fixed(N_PROCS, Mode::DistributedWrite)),
        4 => Box::new(two_mode_fixed(N_PROCS, Mode::GlobalRead)),
        _ => Box::new(two_mode_adaptive(N_PROCS, 64)),
    };
    drive_steady_state(sys.as_mut(), &trace, WARMUP).bits_per_ref
}

fn event_queue_events_per_sec() -> f64 {
    const EVENTS: u64 = 1000;
    let r = timer::bench("event_queue", || {
        let mut q = EventQueue::new();
        for i in 0..EVENTS {
            q.schedule(SimTime::new((i * 7919) % 1000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc);
    });
    // One iteration pushes and pops EVENTS events.
    r.per_sec * EVENTS as f64
}

fn protocol_refs_per_sec() -> f64 {
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, 0.2)
        .references(2_000)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(42));
    let r = timer::bench("protocol", || {
        let mut sys = two_mode_adaptive(N_PROCS, 64);
        black_box(drive(&mut sys, &trace));
    });
    r.per_sec * trace.len() as f64
}

/// Off-the-timed-path trace capture, gated on `TMC_TRACE_OUT`.
fn save_representative_trace() {
    use tmc_bench::tracecheck;
    use tmc_core::{ModePolicy, SystemConfig};
    use tmc_workload::Op;
    let Ok(path) = std::env::var("TMC_TRACE_OUT") else {
        return;
    };
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, 0.2)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(1003));
    let cfg = SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 64 });
    let text = tracecheck::capture(cfg, |sys| {
        let mut stamp = 1u64;
        for r in trace.iter() {
            match r.op {
                Op::Read => {
                    sys.read(r.proc, r.addr).expect("valid proc");
                }
                Op::Write => {
                    sys.write(r.proc, r.addr, stamp).expect("valid proc");
                    stamp += 1;
                }
            }
        }
    })
    .expect("default config is capturable");
    match std::fs::write(&path, &text) {
        Ok(()) => println!("trace            : wrote {path} (verify with trace_check)"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let threads = sweep::num_threads();
    let cells = grid_cells();
    let n_cells = cells.len();

    println!("perf_report: {n_cells}-cell sweep grid, {threads} sweep thread(s)");

    let events_per_sec = event_queue_events_per_sec();
    println!("event queue      : {events_per_sec:.0} events/s (push+pop)");

    let refs_per_sec = protocol_refs_per_sec();
    println!("protocol (serial): {refs_per_sec:.0} refs/s (two-mode adaptive, w=0.2)");

    let (serial, serial_time) =
        timer::time_once(|| sweep::map_with_threads(1, cells.clone(), run_cell));
    println!("sweep serial     : {:.3} s", serial_time.as_secs_f64());

    let (parallel, parallel_time) =
        timer::time_once(|| sweep::map_with_threads(threads, cells, run_cell));
    println!("sweep parallel   : {:.3} s", parallel_time.as_secs_f64());

    assert_eq!(
        serial, parallel,
        "parallel sweep must be bit-for-bit identical to serial"
    );

    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!("speedup          : {speedup:.2}x on {threads} thread(s)");
    let sweep_refs = (n_cells * REFS) as f64;

    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"grid_cells\": {n_cells},\n  \"refs_per_cell\": {REFS},\n  \"sweep_threads\": {threads},\n  \"event_queue_events_per_sec\": {events_per_sec:.1},\n  \"protocol_refs_per_sec\": {refs_per_sec:.1},\n  \"sweep_serial_seconds\": {:.6},\n  \"sweep_parallel_seconds\": {:.6},\n  \"sweep_parallel_refs_per_sec\": {:.1},\n  \"sweep_speedup\": {speedup:.4},\n  \"deterministic\": true\n}}\n",
        serial_time.as_secs_f64(),
        parallel_time.as_secs_f64(),
        sweep_refs / parallel_time.as_secs_f64(),
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
    save_representative_trace();
}
