//! Machine-readable performance baseline: times the serial and parallel
//! sim_fig8-style sweep, raw event-queue throughput, raw protocol
//! throughput, and the block-sharded single-run engine, and writes the
//! numbers to `BENCH_sim.json` so regressions are diffable across commits.
//!
//! ```text
//! Usage: perf_report [OUTPUT_PATH]     (default: BENCH_sim.json)
//!        perf_report --check [PATH]    validate an existing report file
//! ```
//!
//! `--check` does not re-run any benchmark: it verifies that `PATH` holds a
//! well-formed report — every required field present, every rate positive,
//! and `deterministic` true — so CI can gate on the *committed* baseline
//! without paying benchmark wall-clock or inheriting runner noise. The
//! report records `physical_cores` (where it was generated); a
//! `shard_speedup` below 1 is only a *warning* when that host had a single
//! core (sharding overhead with no parallelism to win back), and a hard
//! failure on any multi-core host.
//!
//! The parallel sweep uses [`tmc_bench::sweep`] with
//! `TMC_SWEEP_THREADS`-many workers (default: all cores); the serial
//! reference runs the identical cell grid on one thread, and the two result
//! vectors are asserted bit-for-bit equal before any timing is reported.
//!
//! The report also carries four robustness counters (`faults_injected`,
//! `fault_retries`, `fault_recoveries`, `fault_degradations`). They are
//! zero in the default fault-free baseline; `TMC_PERF_FAULTS=SEED` runs a
//! small seeded fault campaign (invariant-checked) and reports its
//! counters, so fault-handling cost is diffable like any other number.
//!
//! Three `checkpoint_every_*` fields record the N=1024 cell's refs/s
//! with whole-machine journal checkpoints every 0 / 10k / 100k ops, so
//! the crash-recovery subsystem's overhead curve is diffable too.
//!
//! Every timed run executes with tracing *disabled* — the zero-cost path.
//! With `TMC_TRACE_OUT=FILE` in the environment, one representative cell
//! (two-mode adaptive, w = 0.2) is additionally re-run *after* all timing
//! with tracing on, and saved as a replayable JSONL protocol trace.

use std::hint::black_box;
use std::path::{Path, PathBuf};

use tmc_baselines::{two_mode_adaptive, CoherentSystem};
use tmc_bench::{drive, drive_batched, drive_steady_state, shardsim, sweep, timer};
use tmc_simcore::{EventQueue, SimRng, SimTime};
use tmc_workload::{MultiTenantZipfWorkload, Placement, SharedBlockWorkload, Trace};

const N_PROCS: usize = 16;
const N_TASKS: usize = 8;
const N_BLOCKS: u64 = 16;
const REFS: usize = 24_000;
const WARMUP: usize = 4_000;
const N_SYSTEMS: usize = 6;

/// References in the single-run shard benchmark — long enough that the
/// per-run thread-spawn cost is noise against the protocol work.
const SHARD_REFS: usize = 200_000;
/// Worker threads the shard benchmark asks for (the acceptance point).
const SHARD_WORKERS: usize = 8;

/// References per big-machine scaling cell.
const BIG_REFS: usize = 120_000;
/// Footprint of the big-N cells: 128 tenants × 1024 blocks = 2^17 blocks.
const BIG_N_BLOCKS: u64 = 1 << 17;
/// Footprint of the big-M cell: 2048 tenants × 1024 blocks = 2^21 blocks.
const BIG_M_BLOCKS: u64 = 1 << 21;

/// The multi-tenant Zipfian trace backing every big-machine cell.
fn big_trace(n_procs: usize, tenants: u64, users: u64) -> Trace {
    MultiTenantZipfWorkload::new(n_procs, users, 0.2)
        .tenants(tenants)
        .blocks_per_tenant(1024)
        .references(BIG_REFS)
        .generate(n_procs, &mut SimRng::seed_from(0xB16 ^ n_procs as u64))
}

/// One big-machine scaling cell: the two-mode adaptive engine over the
/// multi-tenant Zipfian workload at `n_procs` caches and `tenants × 1024`
/// blocks, driven through the batched reference pipeline. The trace is
/// lowered to a batch script *before* the timer starts — workload prep is
/// not protocol work. Returns refs/s.
fn big_cell(n_procs: usize, tenants: u64, users: u64) -> f64 {
    let trace = big_trace(n_procs, tenants, users);
    let script = shardsim::script_from_trace(&trace);
    // Best-of-3 on a fresh machine each time, like `shard_bench`: the first
    // run pays the allocator/page-fault cost of a cold heap, the minimum
    // reports the protocol work.
    let mut secs = f64::INFINITY;
    for _ in 0..3 {
        let mut sys = two_mode_adaptive(n_procs, 64);
        let (_, t) = timer::time_once(|| {
            for ops in script.chunks(shardsim::BATCH_CHUNK) {
                sys.inner_mut()
                    .execute_batch(ops)
                    .expect("valid processors");
            }
            black_box(sys.inner().traffic().total_bits());
        });
        secs = secs.min(t.as_secs_f64());
    }
    BIG_REFS as f64 / secs
}

/// The N=1024 cell once through the legacy per-op driver and once per
/// batch size through `execute_batch`, asserting every batched machine
/// bit-identical to the scalar one before any rate is reported.
/// Returns `(scalar refs/s, [refs/s at batch 1, 64, 4096])`.
fn big_cell_1024_comparison() -> (f64, [f64; 3]) {
    let trace = big_trace(1024, BIG_N_BLOCKS / 1024, 1_000_000);
    let script = shardsim::script_from_trace(&trace);
    // Best-of-2 per arm (every machine in a run is identical, so timing
    // noise is the only thing the repeat discards).
    let mut scalar_secs = f64::INFINITY;
    let mut scalar = two_mode_adaptive(1024, 64);
    for rerun in 0..2 {
        if rerun > 0 {
            scalar = two_mode_adaptive(1024, 64);
        }
        let (_, t) = timer::time_once(|| {
            shardsim::apply_script_scalar(scalar.inner_mut(), &script);
            black_box(scalar.inner().traffic().total_bits());
        });
        scalar_secs = scalar_secs.min(t.as_secs_f64());
    }
    let scalar_rps = BIG_REFS as f64 / scalar_secs;

    let mut rates = [0.0f64; 3];
    for (slot, chunk) in [1usize, 64, shardsim::BATCH_CHUNK].into_iter().enumerate() {
        let mut secs = f64::INFINITY;
        let mut sys = two_mode_adaptive(1024, 64);
        for rerun in 0..2 {
            if rerun > 0 {
                sys = two_mode_adaptive(1024, 64);
            }
            let (_, t) = timer::time_once(|| {
                for ops in script.chunks(chunk) {
                    sys.inner_mut()
                        .execute_batch(ops)
                        .expect("valid processors");
                }
                black_box(sys.inner().traffic().total_bits());
            });
            secs = secs.min(t.as_secs_f64());
        }
        rates[slot] = BIG_REFS as f64 / secs;
        assert_eq!(
            sys.inner().protocol_fingerprint(),
            scalar.inner().protocol_fingerprint(),
            "batch size {chunk} must be bit-identical to the scalar driver"
        );
        assert_eq!(sys.inner().counters(), scalar.inner().counters());
        assert_eq!(sys.inner().traffic(), scalar.inner().traffic());
    }
    (scalar_rps, rates)
}

/// Checkpoint overhead at N=1024: the big-N cell re-run with a whole-
/// machine journal checkpoint (encode + framed, checksummed, appended to
/// the journal file) every `cadences[i]` ops — `0` means never, the
/// costless baseline. Returns refs/s per cadence (argument order), so the
/// three cells make the overhead curve of the crash-recovery subsystem
/// diffable like any other number.
///
/// All cadences share one generated trace and one untimed warmup run, and
/// the timed repeats are *interleaved* round-robin: previously each cell
/// regenerated the workload and whichever cadence ran first paid the cold
/// heap / page-cache cost alone, which could report the checkpoint-free
/// baseline as slower than a checkpointing run.
fn checkpoint_cells(cadences: [u64; 3]) -> [f64; 3] {
    use tmc_core::{snapshot::encode_system_into, Journal};
    let trace = big_trace(1024, BIG_N_BLOCKS / 1024, 1_000_000);
    let script = shardsim::script_from_trace(&trace);
    // Journal on tmpfs when the host has one: the cell measures the
    // codec + framing + append cost, and a cadenced run writes ~100 MB of
    // frames, enough for a physical disk's writeback throttle to swamp
    // the number being measured.
    let dir = if Path::new("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let path = dir.join(format!("tmc-perf-ckpt-{}.journal", std::process::id()));

    let run = |every: u64| -> f64 {
        let mut sys = two_mode_adaptive(1024, 64);
        let mut journal = Journal::create(&path).expect("journal in temp dir");
        // One payload buffer for the whole run — a multi-megabyte buffer
        // allocated per checkpoint would re-fault its pages every time.
        let mut frame = Vec::new();
        let (_, t) = timer::time_once(|| {
            let mut done = 0u64;
            let mut next = if every == 0 { u64::MAX } else { every };
            for ops in script.chunks(shardsim::BATCH_CHUNK) {
                sys.inner_mut()
                    .execute_batch(ops)
                    .expect("valid processors");
                done += ops.len() as u64;
                if done >= next {
                    encode_system_into(sys.inner(), &mut frame).expect("snapshot");
                    journal.append(&frame).expect("append");
                    next += every;
                }
            }
            black_box(sys.inner().traffic().total_bits());
        });
        if every > 0 {
            assert!(journal.frames() > 0, "cadence {every} never checkpointed");
        }
        t.as_secs_f64()
    };

    // Untimed warmup at the busiest checkpointing cadence: primes the
    // protocol heap *and* the journal I/O path before anything is timed.
    let warm = cadences.iter().copied().filter(|&e| e > 0).min();
    let _ = run(warm.unwrap_or(0));

    // Interleaved best-of-3 so slow drift (thermal, scheduler) spreads
    // across all cells instead of biasing whichever was measured last.
    let mut secs = [f64::INFINITY; 3];
    for _ in 0..3 {
        for (slot, &every) in cadences.iter().enumerate() {
            secs[slot] = secs[slot].min(run(every));
        }
    }
    let _ = std::fs::remove_file(&path);
    secs.map(|s| BIG_REFS as f64 / s)
}

/// Per-phase attribution of the N=1024 cell: a separate, untimed pass with
/// 1-in-64 transaction sampling. Returns the `(tag lookup, network
/// billing, memory copy, directory residual)` shares of sampled
/// transaction time.
fn big_cell_phase_shares() -> (f64, f64, f64, f64) {
    use tmc_core::Phase;
    let trace = big_trace(1024, BIG_N_BLOCKS / 1024, 1_000_000);
    let mut sys = two_mode_adaptive(1024, 64);
    sys.inner_mut().set_profiling(64);
    black_box(drive_batched(sys.inner_mut(), &trace));
    let r = sys.inner().phase_report();
    (
        r.share(Phase::TagLookup),
        r.share(Phase::NetBilling),
        r.share(Phase::MemCopy),
        r.directory_share(),
    )
}

/// The sim_fig8 grid: 8 write fractions × 6 systems.
fn grid_cells() -> Vec<(f64, u64, usize)> {
    let ws = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    ws.iter()
        .enumerate()
        .flat_map(|(i, &w)| (0..N_SYSTEMS).map(move |s| (w, 1000 + i as u64, s)))
        .collect()
}

fn run_cell((w, seed, sys_idx): (f64, u64, usize)) -> f64 {
    use tmc_baselines::{
        two_mode_fixed, DirectoryInvalidateSystem, NoCacheSystem, UpdateOnlySystem,
    };
    use tmc_core::Mode;
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, w)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    let mut sys: Box<dyn CoherentSystem> = match sys_idx {
        0 => Box::new(NoCacheSystem::new(N_PROCS)),
        1 => Box::new(DirectoryInvalidateSystem::new(N_PROCS)),
        2 => Box::new(UpdateOnlySystem::new(N_PROCS)),
        3 => Box::new(two_mode_fixed(N_PROCS, Mode::DistributedWrite)),
        4 => Box::new(two_mode_fixed(N_PROCS, Mode::GlobalRead)),
        _ => Box::new(two_mode_adaptive(N_PROCS, 64)),
    };
    drive_steady_state(sys.as_mut(), &trace, WARMUP).bits_per_ref
}

fn event_queue_events_per_sec() -> f64 {
    const EVENTS: u64 = 1000;
    let r = timer::bench("event_queue", || {
        let mut q = EventQueue::new();
        for i in 0..EVENTS {
            q.schedule(SimTime::new((i * 7919) % 1000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc);
    });
    // One iteration pushes and pops EVENTS events.
    r.per_sec * EVENTS as f64
}

fn protocol_refs_per_sec() -> f64 {
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, 0.2)
        .references(2_000)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(42));
    let r = timer::bench("protocol", || {
        let mut sys = two_mode_adaptive(N_PROCS, 64);
        black_box(drive(&mut sys, &trace));
    });
    r.per_sec * trace.len() as f64
}

/// Times the block-sharded single-run engine against the serial `System`
/// on one long trace, asserting bit-identical results before reporting.
/// Returns `(serial refs/s, sharded refs/s, shards used, workers used)`.
fn shard_bench() -> (f64, f64, usize, usize) {
    use tmc_core::{ModePolicy, System, SystemConfig};

    let cfg = SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 64 });
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, 0.2)
        .references(SHARD_REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(42));
    let script = shardsim::script_from_trace(&trace);
    let opts = shardsim::ShardRunOptions::new(SHARD_WORKERS, SHARD_WORKERS);

    // Best-of-3 each: single runs are long enough to be stable, and the
    // minimum discards scheduler hiccups.
    let mut serial_secs = f64::INFINITY;
    let mut serial_sys = None;
    for _ in 0..3 {
        let (sys, t) = timer::time_once(|| {
            let mut sys = System::new(cfg.clone()).expect("valid config");
            shardsim::apply_script(&mut sys, &script);
            sys
        });
        serial_secs = serial_secs.min(t.as_secs_f64());
        serial_sys = Some(sys);
    }
    let serial_sys = serial_sys.expect("ran");

    let mut shard_secs = f64::INFINITY;
    let mut shard_run = None;
    for _ in 0..3 {
        let (run, t) =
            timer::time_once(|| shardsim::run(&cfg, &script, &opts).expect("shardable config"));
        shard_secs = shard_secs.min(t.as_secs_f64());
        shard_run = Some(run);
    }
    let shard_run = shard_run.expect("ran");

    assert_eq!(
        shard_run.system.protocol_fingerprint(),
        serial_sys.protocol_fingerprint(),
        "sharded run must be bit-identical to serial"
    );
    assert_eq!(shard_run.system.counters(), serial_sys.counters());
    assert_eq!(shard_run.system.traffic(), serial_sys.traffic());

    let refs = script.len() as f64;
    (
        refs / serial_secs,
        refs / shard_secs,
        shard_run.shards,
        shard_run.threads,
    )
}

/// Robustness counters folded into the report. All zero in the default
/// fault-free baseline; `TMC_PERF_FAULTS=SEED` runs a small seeded fault
/// campaign on the serial engine and reports its counters instead, so a
/// baseline diff shows exactly what a fault plan costs.
struct FaultCounters {
    injected: u64,
    retries: u64,
    recoveries: u64,
    degraded: u64,
}

const ZERO_FAULTS: FaultCounters = FaultCounters {
    injected: 0,
    retries: 0,
    recoveries: 0,
    degraded: 0,
};

fn fault_campaign(seed: u64) -> FaultCounters {
    use tmc_core::{FaultSpec, System, SystemConfig};
    use tmc_memsys::WordAddr;
    let spec = FaultSpec::new(seed).count(24).horizon(600).mean_outage(40);
    let mut sys = System::new(SystemConfig::new(8).faults(spec)).expect("valid fault spec");
    let mut rng = SimRng::seed_from(seed ^ 0xfa17);
    for _ in 0..1200 {
        let proc = rng.gen_range(0..8usize);
        let a = WordAddr::new(rng.gen_range(0..48u64));
        if rng.gen_bool(0.4) {
            sys.write(proc, a, rng.next_u64()).expect("valid proc");
        } else {
            sys.read(proc, a).expect("valid proc");
        }
    }
    sys.check_invariants().expect("invariants after campaign");
    let c = sys.counters();
    FaultCounters {
        injected: c.get("faults_injected"),
        retries: c.get("fault_retries"),
        recoveries: c.get("fault_recoveries"),
        degraded: c.get("fault_degraded_blocks") + c.get("fault_quarantined_caches"),
    }
}

/// `--check` mode: validates an existing report file without re-running
/// anything. Returns the warnings to print on success, or an error string
/// naming the first problem found.
fn check_report(text: &str) -> Result<Vec<String>, String> {
    // The report is hand-formatted `"key": value` lines; a full JSON parser
    // is overkill for a schema smoke check.
    let field = |key: &str| -> Result<String, String> {
        let pat = format!("\"{key}\":");
        let at = text
            .find(&pat)
            .ok_or_else(|| format!("missing field {key:?}"))?;
        let rest = &text[at + pat.len()..];
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        Ok(rest[..end].trim().trim_matches('"').to_string())
    };
    for key in [
        "event_queue_events_per_sec",
        "protocol_refs_per_sec",
        "sweep_parallel_refs_per_sec",
        "sweep_speedup",
        "shard_serial_refs_per_sec",
        "shard_refs_per_sec",
        "shard_speedup",
        "bigN_64_refs_per_sec",
        "bigN_256_refs_per_sec",
        "bigN_1024_refs_per_sec",
        "bigM_1024_refs_per_sec",
        "bigN_1024_scalar_refs_per_sec",
        "bigN_gap",
        "batch_1_refs_per_sec",
        "batch_64_refs_per_sec",
        "batch_4096_refs_per_sec",
        "checkpoint_every_0_refs_per_sec",
        "checkpoint_every_10k_refs_per_sec",
        "checkpoint_every_100k_refs_per_sec",
    ] {
        let v: f64 = field(key)?
            .parse()
            .map_err(|e| format!("field {key:?}: {e}"))?;
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("field {key:?} must be positive, got {v}"));
        }
    }
    for key in [
        "grid_cells",
        "sweep_threads",
        "physical_cores",
        "shards",
        "shard_workers",
        "shard_refs",
        "big_refs",
        "bigN_blocks",
        "bigM_blocks",
    ] {
        let v: u64 = field(key)?
            .parse()
            .map_err(|e| format!("field {key:?}: {e}"))?;
        if v == 0 {
            return Err(format!("field {key:?} must be nonzero"));
        }
    }
    // Phase shares are fractions of sampled transaction time: each must be
    // a finite value in [0, 1] (zero is legal — a phase can be unmeasurably
    // cheap at the sampling rate).
    for key in [
        "phase_tag_lookup_share",
        "phase_net_billing_share",
        "phase_mem_copy_share",
        "phase_directory_share",
    ] {
        let v: f64 = field(key)?
            .parse()
            .map_err(|e| format!("field {key:?}: {e}"))?;
        if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
            return Err(format!("field {key:?} must be a share in [0, 1], got {v}"));
        }
    }
    // A shard speedup below 1 means the parallel engine *lost* to serial.
    // That is expected overhead on a single-core host (the report records
    // where it was generated) but a regression anywhere else.
    let mut warnings = Vec::new();
    let cores: u64 = field("physical_cores")?
        .parse()
        .map_err(|e| format!("field \"physical_cores\": {e}"))?;
    let shard_speedup: f64 = field("shard_speedup")?
        .parse()
        .map_err(|e| format!("field \"shard_speedup\": {e}"))?;
    if shard_speedup < 1.0 {
        if cores == 1 {
            warnings.push(format!(
                "shard_speedup {shard_speedup} < 1 on a 1-core host (sharding \
                 overhead without parallelism; expected)"
            ));
        } else {
            return Err(format!(
                "shard_speedup {shard_speedup} < 1 on a {cores}-core host: the \
                 sharded engine regressed"
            ));
        }
    }
    // Checkpoint overhead sanity: a 10k-op cadence appends 10x as many
    // journal frames as 100k, but each append costs only its own frame
    // bytes, so the cell must hold at least half the 100k rate. Falling
    // below that means per-checkpoint cost became super-linear again
    // (e.g. a whole-journal rewrite per append). Single-core hosts time
    // every cell on one contended core, so there — as with
    // `shard_speedup` — it is only a warning.
    let ckpt_10k: f64 = field("checkpoint_every_10k_refs_per_sec")?
        .parse()
        .map_err(|e| format!("field \"checkpoint_every_10k_refs_per_sec\": {e}"))?;
    let ckpt_100k: f64 = field("checkpoint_every_100k_refs_per_sec")?
        .parse()
        .map_err(|e| format!("field \"checkpoint_every_100k_refs_per_sec\": {e}"))?;
    if ckpt_10k < 0.5 * ckpt_100k {
        if cores == 1 {
            warnings.push(format!(
                "checkpoint_every_10k {ckpt_10k:.0} refs/s is below half of \
                 checkpoint_every_100k {ckpt_100k:.0} on a 1-core host (timing \
                 noise; expected)"
            ));
        } else {
            return Err(format!(
                "checkpoint_every_10k {ckpt_10k:.0} refs/s is below half of \
                 checkpoint_every_100k {ckpt_100k:.0} on a {cores}-core host: \
                 journal append cost regressed"
            ));
        }
    }
    // Robustness counters: required by the schema, zero unless the report
    // was generated with TMC_PERF_FAULTS set.
    for key in [
        "faults_injected",
        "fault_retries",
        "fault_recoveries",
        "fault_degradations",
    ] {
        let _: u64 = field(key)?
            .parse()
            .map_err(|e| format!("field {key:?}: {e}"))?;
    }
    match field("deterministic")?.as_str() {
        "true" => Ok(warnings),
        other => Err(format!("deterministic must be true, got {other:?}")),
    }
}

/// Off-the-timed-path trace capture, gated on `TMC_TRACE_OUT`.
fn save_representative_trace() {
    use tmc_bench::tracecheck;
    use tmc_core::{ModePolicy, SystemConfig};
    use tmc_workload::Op;
    let Ok(path) = std::env::var("TMC_TRACE_OUT") else {
        return;
    };
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, 0.2)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(1003));
    let cfg = SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 64 });
    let text = tracecheck::capture(cfg, |sys| {
        let mut stamp = 1u64;
        for r in trace.iter() {
            match r.op {
                Op::Read => {
                    sys.read(r.proc, r.addr).expect("valid proc");
                }
                Op::Write => {
                    sys.write(r.proc, r.addr, stamp).expect("valid proc");
                    stamp += 1;
                }
            }
        }
    })
    .expect("default config is capturable");
    match std::fs::write(&path, &text) {
        Ok(()) => println!("trace            : wrote {path} (verify with trace_check)"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_sim.json");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf_report --check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match check_report(&text) {
            Ok(warnings) => {
                for w in &warnings {
                    println!("perf_report --check: warning: {w}");
                }
                println!("perf_report --check: {path} ok");
            }
            Err(e) => {
                eprintln!("perf_report --check: {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let threads = sweep::num_threads();
    let physical_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let cells = grid_cells();
    let n_cells = cells.len();

    println!(
        "perf_report: {n_cells}-cell sweep grid, {threads} sweep thread(s), \
         {physical_cores} physical core(s)"
    );

    let events_per_sec = event_queue_events_per_sec();
    println!("event queue      : {events_per_sec:.0} events/s (push+pop)");

    let refs_per_sec = protocol_refs_per_sec();
    println!("protocol (serial): {refs_per_sec:.0} refs/s (two-mode adaptive, w=0.2)");

    let (serial, serial_time) =
        timer::time_once(|| sweep::map_with_threads(1, cells.clone(), run_cell));
    println!("sweep serial     : {:.3} s", serial_time.as_secs_f64());

    let (parallel, parallel_time) =
        timer::time_once(|| sweep::map_with_threads(threads, cells, run_cell));
    println!("sweep parallel   : {:.3} s", parallel_time.as_secs_f64());

    assert_eq!(
        serial, parallel,
        "parallel sweep must be bit-for-bit identical to serial"
    );

    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!("speedup          : {speedup:.2}x on {threads} thread(s)");
    let sweep_refs = (n_cells * REFS) as f64;

    let (shard_serial_rps, shard_rps, shards, shard_workers) = shard_bench();
    let shard_speedup = shard_rps / shard_serial_rps;
    println!(
        "shard single-run : {shard_rps:.0} refs/s ({shards} shards, {shard_workers} workers, \
         {shard_speedup:.2}x vs {shard_serial_rps:.0} serial)"
    );

    // Big-machine scaling curve: N caches over 2^17 Zipf-touched blocks,
    // plus the 2^21-block footprint at N=1024.
    let bign_64 = big_cell(64, BIG_N_BLOCKS / 1024, 1_000_000);
    println!("bigN 64          : {bign_64:.0} refs/s (2^17 blocks)");
    let bign_256 = big_cell(256, BIG_N_BLOCKS / 1024, 1_000_000);
    println!("bigN 256         : {bign_256:.0} refs/s (2^17 blocks)");
    let bign_1024 = big_cell(1024, BIG_N_BLOCKS / 1024, 1_000_000);
    println!("bigN 1024        : {bign_1024:.0} refs/s (2^17 blocks)");
    let bigm_1024 = big_cell(1024, BIG_M_BLOCKS / 1024, 4_000_000);
    println!("bigM 1024        : {bigm_1024:.0} refs/s (2^21 blocks)");

    // Legacy-vs-batched comparison at N=1024 (bit-identity asserted), the
    // batch-size curve, and the gap the batched pipeline is closing.
    let (bign_1024_scalar, batch_rates) = big_cell_1024_comparison();
    let bign_gap = refs_per_sec / bign_1024;
    println!("bigN 1024 scalar : {bign_1024_scalar:.0} refs/s (legacy per-op driver)");
    println!(
        "batch sizes      : {:.0} / {:.0} / {:.0} refs/s at 1 / 64 / {}",
        batch_rates[0],
        batch_rates[1],
        batch_rates[2],
        shardsim::BATCH_CHUNK
    );
    println!("bigN gap         : {bign_gap:.2}x (protocol N=16 vs bigN 1024)");

    // Checkpoint overhead curve at N=1024: no checkpoints, every 10k
    // ops, every 100k ops — one shared warmup, interleaved repeats.
    let [ckpt_0, ckpt_10k, ckpt_100k] = checkpoint_cells([0, 10_000, 100_000]);
    println!(
        "checkpoints      : {ckpt_0:.0} / {ckpt_10k:.0} / {ckpt_100k:.0} refs/s at \
         every 0 / 10k / 100k ops (N=1024)"
    );

    // Per-phase attribution of the N=1024 cell (separate untimed pass).
    let (ph_tag, ph_net, ph_copy, ph_dir) = big_cell_phase_shares();
    println!(
        "phases (N=1024)  : tag {:.1}% | net {:.1}% | copy {:.1}% | directory {:.1}%",
        ph_tag * 100.0,
        ph_net * 100.0,
        ph_copy * 100.0,
        ph_dir * 100.0
    );

    let faults = match std::env::var("TMC_PERF_FAULTS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        Some(seed) => {
            let fc = fault_campaign(seed);
            println!(
                "fault campaign   : seed {seed}: {} injected, {} retries, {} recoveries, \
                 {} degradations",
                fc.injected, fc.retries, fc.recoveries, fc.degraded
            );
            fc
        }
        None => ZERO_FAULTS,
    };

    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"grid_cells\": {n_cells},\n  \"refs_per_cell\": {REFS},\n  \"sweep_threads\": {threads},\n  \"physical_cores\": {physical_cores},\n  \"event_queue_events_per_sec\": {events_per_sec:.1},\n  \"protocol_refs_per_sec\": {refs_per_sec:.1},\n  \"sweep_serial_seconds\": {:.6},\n  \"sweep_parallel_seconds\": {:.6},\n  \"sweep_parallel_refs_per_sec\": {:.1},\n  \"sweep_speedup\": {speedup:.4},\n  \"shards\": {shards},\n  \"shard_workers\": {shard_workers},\n  \"shard_refs\": {SHARD_REFS},\n  \"shard_serial_refs_per_sec\": {shard_serial_rps:.1},\n  \"shard_refs_per_sec\": {shard_rps:.1},\n  \"shard_speedup\": {shard_speedup:.4},\n  \"big_refs\": {BIG_REFS},\n  \"bigN_blocks\": {BIG_N_BLOCKS},\n  \"bigM_blocks\": {BIG_M_BLOCKS},\n  \"bigN_64_refs_per_sec\": {bign_64:.1},\n  \"bigN_256_refs_per_sec\": {bign_256:.1},\n  \"bigN_1024_refs_per_sec\": {bign_1024:.1},\n  \"bigM_1024_refs_per_sec\": {bigm_1024:.1},\n  \"bigN_1024_scalar_refs_per_sec\": {bign_1024_scalar:.1},\n  \"bigN_gap\": {bign_gap:.4},\n  \"batch_1_refs_per_sec\": {:.1},\n  \"batch_64_refs_per_sec\": {:.1},\n  \"batch_4096_refs_per_sec\": {:.1},\n  \"checkpoint_every_0_refs_per_sec\": {ckpt_0:.1},\n  \"checkpoint_every_10k_refs_per_sec\": {ckpt_10k:.1},\n  \"checkpoint_every_100k_refs_per_sec\": {ckpt_100k:.1},\n  \"phase_tag_lookup_share\": {ph_tag:.4},\n  \"phase_net_billing_share\": {ph_net:.4},\n  \"phase_mem_copy_share\": {ph_copy:.4},\n  \"phase_directory_share\": {ph_dir:.4},\n  \"faults_injected\": {},\n  \"fault_retries\": {},\n  \"fault_recoveries\": {},\n  \"fault_degradations\": {},\n  \"deterministic\": true\n}}\n",
        serial_time.as_secs_f64(),
        parallel_time.as_secs_f64(),
        sweep_refs / parallel_time.as_secs_f64(),
        batch_rates[0],
        batch_rates[1],
        batch_rates[2],
        faults.injected,
        faults.retries,
        faults.recoveries,
        faults.degraded,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
    save_representative_trace();
}

#[cfg(test)]
mod tests {
    use super::check_report;

    fn report(physical_cores: u64, shard_speedup: f64) -> String {
        format!(
            "{{\n  \"bench\": \"sim\",\n  \"grid_cells\": 48,\n  \"refs_per_cell\": 24000,\n  \
             \"sweep_threads\": 1,\n  \"physical_cores\": {physical_cores},\n  \
             \"event_queue_events_per_sec\": 1e6,\n  \"protocol_refs_per_sec\": 1e6,\n  \
             \"sweep_serial_seconds\": 1.0,\n  \"sweep_parallel_seconds\": 1.0,\n  \
             \"sweep_parallel_refs_per_sec\": 1e6,\n  \"sweep_speedup\": 1.0,\n  \
             \"shards\": 8,\n  \"shard_workers\": 8,\n  \"shard_refs\": 200000,\n  \
             \"shard_serial_refs_per_sec\": 1e6,\n  \"shard_refs_per_sec\": 1e6,\n  \
             \"shard_speedup\": {shard_speedup},\n  \"big_refs\": 120000,\n  \
             \"bigN_blocks\": 131072,\n  \"bigM_blocks\": 2097152,\n  \
             \"bigN_64_refs_per_sec\": 1e6,\n  \"bigN_256_refs_per_sec\": 1e6,\n  \
             \"bigN_1024_refs_per_sec\": 1e6,\n  \"bigM_1024_refs_per_sec\": 1e6,\n  \
             \"bigN_1024_scalar_refs_per_sec\": 1e6,\n  \"bigN_gap\": 2.5,\n  \
             \"batch_1_refs_per_sec\": 1e6,\n  \"batch_64_refs_per_sec\": 1e6,\n  \
             \"batch_4096_refs_per_sec\": 1e6,\n  \
             \"checkpoint_every_0_refs_per_sec\": 1e6,\n  \
             \"checkpoint_every_10k_refs_per_sec\": 9e5,\n  \
             \"checkpoint_every_100k_refs_per_sec\": 1e6,\n  \
             \"phase_tag_lookup_share\": 0.2,\n  \
             \"phase_net_billing_share\": 0.3,\n  \"phase_mem_copy_share\": 0.1,\n  \
             \"phase_directory_share\": 0.4,\n  \
             \"faults_injected\": 0,\n  \
             \"fault_retries\": 0,\n  \"fault_recoveries\": 0,\n  \
             \"fault_degradations\": 0,\n  \"deterministic\": true\n}}\n"
        )
    }

    #[test]
    fn speedup_below_one_warns_on_single_core() {
        let warnings = check_report(&report(1, 0.85)).expect("1-core slowdown passes");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("1-core"), "{warnings:?}");
    }

    #[test]
    fn speedup_below_one_fails_on_multi_core() {
        let err = check_report(&report(8, 0.85)).expect_err("8-core slowdown is a regression");
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn speedup_above_one_is_clean_anywhere() {
        for cores in [1, 8] {
            let warnings = check_report(&report(cores, 1.3)).expect("speedup passes");
            assert!(warnings.is_empty(), "{warnings:?}");
        }
    }

    #[test]
    fn missing_physical_cores_is_rejected() {
        let text = report(1, 1.3).replace("  \"physical_cores\": 1,\n", "");
        let err = check_report(&text).expect_err("schema requires physical_cores");
        assert!(err.contains("physical_cores"), "{err}");
    }

    /// The baseline report carries 10k at 0.9x of 100k — inside the bound.
    fn with_ckpt_10k(cores: u64, refs_per_sec: &str) -> String {
        report(cores, 1.3).replace(
            "\"checkpoint_every_10k_refs_per_sec\": 9e5",
            &format!("\"checkpoint_every_10k_refs_per_sec\": {refs_per_sec}"),
        )
    }

    #[test]
    fn checkpoint_cadence_collapse_fails_on_multi_core() {
        // 10k at 4e5 vs 100k at 1e6: below the 50% floor.
        let err = check_report(&with_ckpt_10k(8, "4e5"))
            .expect_err("sub-half 10k cell is a journal regression");
        assert!(err.contains("journal append cost regressed"), "{err}");
    }

    #[test]
    fn checkpoint_cadence_collapse_warns_on_single_core() {
        let warnings = check_report(&with_ckpt_10k(1, "4e5")).expect("1-core noise passes");
        assert!(
            warnings.iter().any(|w| w.contains("checkpoint_every_10k")),
            "{warnings:?}"
        );
    }

    #[test]
    fn checkpoint_cadence_within_half_is_clean() {
        for cores in [1, 8] {
            let warnings = check_report(&with_ckpt_10k(cores, "6e5")).expect("60% passes");
            assert!(warnings.is_empty(), "{warnings:?}");
        }
    }
}
