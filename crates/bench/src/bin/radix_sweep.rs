//! The §3 generalization, quantified: the same N-port machine built from
//! 2×2, 4×4 or 16×16 switches. Fewer, wider stages shorten every path and
//! shrink the per-stage routing tags, shifting the scheme-1/scheme-2
//! trade-off. Each destination count is one sweep cell
//! ([`tmc_bench::sweep`]); row pairs merge back in order.

use tmc_bench::{sweep, Table};
use tmc_omeganet::aary::AryOmega;
use tmc_omeganet::DestSet;

fn main() {
    let configs = [(8u32, 1u32, "2x2"), (4, 2, "4x4"), (2, 4, "16x16")];
    let m_bits = 20;

    let mut t = Table::new(vec![
        "n dests".into(),
        "scheme".into(),
        "2x2 (8 stages)".into(),
        "4x4 (4 stages)".into(),
        "16x16 (2 stages)".into(),
    ]);
    let row_pairs = sweep::map(vec![0u32, 2, 4, 6, 8], |k| {
        let n = 1usize << k;
        let dests = DestSet::worst_case_spread(256, n).expect("valid");
        let mut row1 = vec![n.to_string(), "1 (replicated)".into()];
        let mut row2 = vec![n.to_string(), "2 (bit-vector)".into()];
        for &(m, g, _) in &configs {
            let net = AryOmega::new(m, g).expect("valid shape");
            assert_eq!(net.ports(), 256);
            let mut traffic = net.traffic_matrix();
            let c1 = net
                .cast_replicated(0, &dests, m_bits, &mut traffic)
                .expect("valid")
                .cost_bits;
            traffic.clear();
            let c2 = net
                .cast_bitvector(0, &dests, m_bits, &mut traffic)
                .expect("valid")
                .cost_bits;
            assert_eq!(c1, net.cost_replicated(n as u64, m_bits));
            assert_eq!(c2, net.cost_bitvector(&dests, m_bits));
            row1.push(c1.to_string());
            row2.push(c2.to_string());
        }
        (row1, row2)
    });
    for (row1, row2) in row_pairs {
        t.row(row1);
        t.row(row2);
    }
    t.print("Multicast cost on N=256 omega networks of a x a switches (M=20, worst-case spread)");
    println!(
        "Wider switches shorten paths (m = log_a N stages), cutting scheme 1\n\
         roughly in proportion; scheme 2 also gains because each of the fewer\n\
         layers carries the same-total subvectors. The break-even between the\n\
         schemes moves accordingly — the generalization §3 alludes to."
    );
}
