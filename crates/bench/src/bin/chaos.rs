//! Chaos harness: seeded fault-injection campaigns over the two-mode
//! protocol engine, with correctness asserted the whole way through.
//!
//! ```text
//! Usage: chaos [--smoke]
//! ```
//!
//! Each campaign builds a [`System`] with a deterministic
//! [`tmc_core::FaultSpec`] plan — link outages, cache stalls, message
//! drops/duplicates/delays, bit flips, multicast NACKs — and drives a
//! seeded read/write workload across it. Every read is checked against a
//! software oracle, [`System::check_invariants`] runs at every quiescent
//! point (no outage active, no block degraded, no cache quarantined) and
//! again at the end, and the final memory image is compared to the oracle
//! word-for-word. Campaigns cycle through all four §3 multicast schemes
//! and all three mode policies, so recovery is exercised under every
//! protocol variant.
//!
//! The default run covers 12 seeds × 12 scheduled faults = 144 injected
//! faults; `--smoke` is the CI-sized version (4 seeds × 8 faults). Any
//! stale read, invariant violation, unfired fault, or unhealed
//! degradation aborts with a nonzero exit status.

use std::collections::BTreeMap;

use tmc_bench::Table;
use tmc_core::{decode_system, encode_system, FaultSpec, Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::WordAddr;
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;

const N_PROCS: usize = 8;
const WORDS: u64 = 48;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Replicated,
    SchemeKind::BitVector,
    SchemeKind::BroadcastTag,
    SchemeKind::Combined,
];

const POLICIES: [ModePolicy; 3] = [
    ModePolicy::Fixed(Mode::DistributedWrite),
    ModePolicy::Fixed(Mode::GlobalRead),
    ModePolicy::Adaptive { window: 8 },
];

struct CampaignOutcome {
    injected: u64,
    retries: u64,
    recoveries: u64,
    degradations: u64,
    quiescent_checks: u64,
    crash_thaws: u64,
}

/// Runs one seeded campaign and verifies it end to end.
///
/// # Panics
///
/// Panics on any stale read, invariant violation, unfired fault, or
/// unhealed degradation — chaos runs treat every deviation as fatal.
fn campaign(
    seed: u64,
    scheme: SchemeKind,
    policy: ModePolicy,
    faults: u64,
    horizon: u64,
    ops: usize,
) -> CampaignOutcome {
    let spec = FaultSpec::new(seed)
        .count(faults as usize)
        .horizon(horizon)
        .mean_outage(40);
    let cfg = SystemConfig::new(N_PROCS)
        .multicast(scheme)
        .mode_policy(policy)
        .faults(spec);
    let mut sys = System::new(cfg).expect("valid fault spec");

    let mut rng = SimRng::seed_from(seed ^ 0xc4a0_5eed);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut quiescent_checks = 0u64;
    let mut crash_thaws = 0u64;
    for i in 0..ops {
        let proc = rng.gen_range(0..N_PROCS);
        let a = rng.gen_range(0..WORDS);
        if rng.gen_bool(0.4) {
            let v = rng.next_u64();
            sys.write(proc, WordAddr::new(a), v).expect("valid proc");
            oracle.insert(a, v);
        } else {
            let got = sys.read(proc, WordAddr::new(a)).expect("valid proc");
            let want = oracle.get(&a).copied().unwrap_or(0);
            assert_eq!(got, want, "seed {seed}: stale read of word {a} at op {i}");
        }
        if sys.faults_quiescent() {
            sys.check_invariants()
                .unwrap_or_else(|v| panic!("seed {seed}: invariant at quiescent op {i}: {v}"));
            quiescent_checks += 1;
        }
        if i + 1 == ops / 3 || i + 1 == 2 * ops / 3 {
            // Crash sweep: freeze the machine through the checkpoint codec
            // and carry on from the thawed copy — mid-outage, mid-plan,
            // mid-adaptive-window. The rest of the campaign (oracle reads,
            // invariants, plan drain, final memory sweep) then proves the
            // resumed machine indistinguishable from the original.
            let frame = encode_system(&sys)
                .unwrap_or_else(|e| panic!("seed {seed}: snapshot at op {i}: {e}"));
            sys = decode_system(&frame)
                .unwrap_or_else(|e| panic!("seed {seed}: thaw at op {i}: {e}"));
            crash_thaws += 1;
        }
    }

    assert_eq!(
        sys.faults_injected(),
        faults,
        "seed {seed}: whole fault plan must fire within the run"
    );
    assert_eq!(sys.faults_pending(), 0, "seed {seed}: plan drained");
    sys.check_invariants()
        .unwrap_or_else(|v| panic!("seed {seed}: invariant at end of campaign: {v}"));
    for (&a, &v) in &oracle {
        assert_eq!(
            sys.peek_word(WordAddr::new(a)),
            v,
            "seed {seed}: memory image diverged from the oracle at word {a}"
        );
    }

    let c = sys.counters();
    CampaignOutcome {
        injected: c.get("faults_injected"),
        retries: c.get("fault_retries"),
        recoveries: c.get("fault_recoveries"),
        degradations: c.get("fault_degraded_blocks") + c.get("fault_quarantined_caches"),
        quiescent_checks,
        crash_thaws,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, faults_per, horizon, ops) = if smoke {
        (4u64, 8u64, 300u64, 800usize)
    } else {
        (12u64, 12u64, 900u64, 2_400usize)
    };

    let mut t = Table::new(vec![
        "seed".into(),
        "scheme".into(),
        "policy".into(),
        "injected".into(),
        "retries".into(),
        "recovered".into(),
        "degraded".into(),
        "quiescent checks".into(),
        "crash thaws".into(),
    ]);
    let mut total = CampaignOutcome {
        injected: 0,
        retries: 0,
        recoveries: 0,
        degradations: 0,
        quiescent_checks: 0,
        crash_thaws: 0,
    };
    for seed in 0..seeds {
        let scheme = SCHEMES[seed as usize % SCHEMES.len()];
        let policy = POLICIES[seed as usize % POLICIES.len()];
        let o = campaign(seed, scheme, policy, faults_per, horizon, ops);
        t.row(vec![
            seed.to_string(),
            tmc_bench::tracecheck::scheme_kind_str(scheme).into(),
            tmc_bench::tracecheck::policy_str(policy),
            o.injected.to_string(),
            o.retries.to_string(),
            o.recoveries.to_string(),
            o.degradations.to_string(),
            o.quiescent_checks.to_string(),
            o.crash_thaws.to_string(),
        ]);
        total.injected += o.injected;
        total.retries += o.retries;
        total.recoveries += o.recoveries;
        total.degradations += o.degradations;
        total.quiescent_checks += o.quiescent_checks;
        total.crash_thaws += o.crash_thaws;
    }
    t.print(if smoke {
        "chaos campaigns (smoke)"
    } else {
        "chaos campaigns"
    });

    assert_eq!(
        total.injected,
        seeds * faults_per,
        "every campaign drained its plan"
    );
    assert!(
        total.quiescent_checks > 0,
        "invariants were actually checked at quiescent points"
    );
    assert!(
        total.recoveries <= total.degradations,
        "recoveries only follow degradations"
    );
    assert_eq!(
        total.crash_thaws,
        seeds * 2,
        "every campaign crash-thawed twice mid-plan"
    );
    println!(
        "chaos: OK — {} campaigns, {} faults injected, {} retries, {}/{} degradations healed, \
         {} invariant checks, {} crash thaws",
        seeds,
        total.injected,
        total.retries,
        total.recoveries,
        total.degradations,
        total.quiescent_checks,
        total.crash_thaws,
    );
}
