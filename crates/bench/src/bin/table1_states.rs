//! Regenerates Table 1: the protocol states, their meaning, and the state
//! field encodings — printed from live `CacheLine` values so the table is
//! the implementation, not a transcription.

use tmc_bench::Table;
use tmc_core::{CacheLine, Mode, StateName};
use tmc_memsys::{BlockData, CacheId};

fn encoding(line: &CacheLine) -> String {
    let v = u8::from(line.is_valid());
    let o = u8::from(line.is_owned());
    if v == 0 {
        return "V=0".into();
    }
    if o == 0 {
        return "V=1, O=0".into();
    }
    let dw = u8::from(line.mode.dw_bit());
    let p: Vec<usize> = line.present.iter().collect();
    format!("V=1, O=1, DW={dw}, P={p:?}")
}

fn main() {
    let n = 4;
    let me = CacheId(1);
    let data = BlockData::zeroed(4);

    let mut invalid = CacheLine::invalid_hint(CacheId(0), n, 4);
    invalid.owner_hint = Some(CacheId(0));
    let unowned = CacheLine::unowned(data.clone(), CacheId(0), n);
    let mut oe_dw = CacheLine::owned_exclusive(data.clone(), me, Mode::DistributedWrite, n);
    let oe_gr = CacheLine::owned_exclusive(data.clone(), me, Mode::GlobalRead, n);
    let mut one_dw = CacheLine::owned_exclusive(data.clone(), me, Mode::DistributedWrite, n);
    one_dw.present.insert(3);
    let mut one_gr = CacheLine::owned_exclusive(data, me, Mode::GlobalRead, n);
    one_gr.present.insert(3);
    oe_dw.modified = true;

    let cases: Vec<(&CacheLine, &str)> = vec![
        (
            &invalid,
            "does not contain a valid copy; OWNER says where to go",
        ),
        (
            &unowned,
            "valid copy, not allowed to be modified; other copies exist",
        ),
        (&oe_dw, "owned, the only copy; copies are allowed"),
        (&oe_gr, "owned, the only copy; copies are not allowed"),
        (
            &one_dw,
            "owned; other valid copies exist and receive writes",
        ),
        (&one_gr, "owned; other (invalid) copies exist"),
    ];

    let mut t = Table::new(vec![
        "state".into(),
        "description".into(),
        "state field (cache 1 of 4)".into(),
    ]);
    for (line, desc) in cases {
        t.row(vec![
            line.state_name(me).to_string(),
            desc.to_string(),
            encoding(line),
        ]);
    }
    t.print("Table 1: states for cached blocks (regenerated from live lines)");

    println!(
        "Expected names: {:?}",
        [
            StateName::Invalid,
            StateName::UnOwned,
            StateName::OwnedExclusivelyDistributedWrite,
            StateName::OwnedExclusivelyGlobalRead,
            StateName::OwnedNonExclusivelyDistributedWrite,
            StateName::OwnedNonExclusivelyGlobalRead,
        ]
        .map(|s| s.to_string())
    );
}
