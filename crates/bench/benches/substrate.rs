//! Criterion benches for the substrate data structures: event queue, cache
//! array, destination sets and unicast routing.

use criterion::{criterion_group, criterion_main, Criterion};
use tmc_memsys::{BlockAddr, CacheArray, CacheGeometry};
use tmc_omeganet::{DestSet, Omega, TrafficMatrix};
use tmc_simcore::{EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::new((i * 7919) % 1000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache_array/insert_get", |b| {
        let mut cache: CacheArray<u64> = CacheArray::new(CacheGeometry::new(64, 4));
        b.iter(|| {
            for i in 0..512u64 {
                cache.insert(BlockAddr::new(i), i);
            }
            let mut acc = 0u64;
            for i in 0..512u64 {
                if let Some(&v) = cache.get(BlockAddr::new(i)) {
                    acc = acc.wrapping_add(v);
                }
            }
            acc
        })
    });
}

fn bench_destset(c: &mut Criterion) {
    c.bench_function("destset/build_and_iter_1024", |b| {
        b.iter(|| {
            let mut d = DestSet::empty(1024);
            for p in (0..1024).step_by(3) {
                d.insert(p);
            }
            d.iter().sum::<usize>()
        })
    });
    c.bench_function("destset/subcube_spec", |b| {
        let d = DestSet::subcube(1024, 128, 5).unwrap();
        b.iter(|| d.subcube_spec())
    });
}

fn bench_routing(c: &mut Criterion) {
    let net = Omega::new(10).unwrap();
    c.bench_function("omega/unicast_route", |b| {
        b.iter(|| net.route(17, 900))
    });
    c.bench_function("omega/unicast_with_traffic", |b| {
        let mut t = TrafficMatrix::new(&net);
        b.iter(|| net.unicast(17, 900, 164, &mut t).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(400))
        .sample_size(10)
        .without_plots();
    targets = bench_event_queue, bench_cache_array, bench_destset, bench_routing
}
criterion_main!(benches);
