//! Benches for the substrate data structures: event queue, cache array,
//! destination sets and unicast routing. Uses the in-tree
//! [`tmc_bench::timer`] harness (`cargo bench -p tmc-bench --bench substrate`).

use std::hint::black_box;

use tmc_bench::timer::bench;
use tmc_memsys::{BlockAddr, CacheArray, CacheGeometry};
use tmc_omeganet::{DestSet, Omega, TrafficMatrix};
use tmc_simcore::{EventQueue, SimTime};

fn bench_event_queue() {
    let r = bench("event_queue/push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::new((i * 7919) % 1000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc);
    });
    println!("{}", r.render());
}

fn bench_cache_array() {
    let mut cache: CacheArray<u64> = CacheArray::new(CacheGeometry::new(64, 4));
    let r = bench("cache_array/insert_get", || {
        for i in 0..512u64 {
            cache.insert(BlockAddr::new(i), i);
        }
        let mut acc = 0u64;
        for i in 0..512u64 {
            if let Some(&v) = cache.get(BlockAddr::new(i)) {
                acc = acc.wrapping_add(v);
            }
        }
        black_box(acc);
    });
    println!("{}", r.render());
}

fn bench_destset() {
    let r = bench("destset/build_and_iter_1024", || {
        let mut d = DestSet::empty(1024);
        for p in (0..1024).step_by(3) {
            d.insert(p);
        }
        black_box(d.iter().sum::<usize>());
    });
    println!("{}", r.render());
    let d = DestSet::subcube(1024, 128, 5).unwrap();
    let r = bench("destset/subcube_spec", || {
        black_box(d.subcube_spec());
    });
    println!("{}", r.render());
    let r = bench("destset/inline_build_and_iter_64", || {
        let mut d = DestSet::empty(64);
        for p in (0..64).step_by(3) {
            d.insert(p);
        }
        black_box(d.iter().sum::<usize>());
    });
    println!("{}", r.render());
}

fn bench_routing() {
    let net = Omega::new(10).unwrap();
    let r = bench("omega/unicast_route", || {
        black_box(net.route(17, 900));
    });
    println!("{}", r.render());
    let mut t = TrafficMatrix::new(&net);
    let r = bench("omega/unicast_with_traffic", || {
        black_box(net.unicast(17, 900, 164, &mut t).unwrap());
    });
    println!("{}", r.render());
}

fn main() {
    bench_event_queue();
    bench_cache_array();
    bench_destset();
    bench_routing();
}
