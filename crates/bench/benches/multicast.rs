//! Criterion benches for the three multicast schemes and the combined
//! selector on the simulated omega network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmc_omeganet::{DestSet, Omega, SchemeKind, TrafficMatrix};

fn bench_cast(c: &mut Criterion) {
    let net = Omega::new(10).expect("N = 1024");
    let mut group = c.benchmark_group("multicast_cast");
    group.sample_size(30);
    for &n in &[8usize, 64, 512] {
        let spread = DestSet::worst_case_spread(1024, n).expect("valid");
        let adjacent = DestSet::adjacent(1024, 0, n).expect("valid");
        for (kind, label) in [
            (SchemeKind::Replicated, "scheme1"),
            (SchemeKind::BitVector, "scheme2"),
            (SchemeKind::BroadcastTag, "scheme3"),
            (SchemeKind::Combined, "combined"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/spread"), n),
                &spread,
                |b, dests| {
                    let mut traffic = TrafficMatrix::new(&net);
                    b.iter(|| {
                        traffic.clear();
                        net.multicast(kind, 3, dests, 20, &mut traffic).unwrap()
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/adjacent"), n),
                &adjacent,
                |b, dests| {
                    let mut traffic = TrafficMatrix::new(&net);
                    b.iter(|| {
                        traffic.clear();
                        net.multicast(kind, 3, dests, 20, &mut traffic).unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_cost_only(c: &mut Criterion) {
    let net = Omega::new(10).expect("N = 1024");
    let dests = DestSet::worst_case_spread(1024, 64).expect("valid");
    c.bench_function("multicast_cost/combined_n64", |b| {
        b.iter(|| net.multicast_cost(SchemeKind::Combined, &dests, 20).unwrap())
    });
    c.bench_function("multicast_cost/cheapest_scheme_n64", |b| {
        b.iter(|| net.cheapest_scheme(&dests, 20))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(400))
        .sample_size(10)
        .without_plots();
    targets = bench_cast, bench_cost_only
}
criterion_main!(benches);
