//! Benches for the three multicast schemes and the combined selector on the
//! simulated omega network. Uses the in-tree [`tmc_bench::timer`] harness
//! (`cargo bench -p tmc-bench --bench multicast`).

use std::hint::black_box;

use tmc_bench::timer::bench;
use tmc_omeganet::{DestSet, Omega, SchemeKind, TrafficMatrix};

fn bench_cast(net: &Omega) {
    for &n in &[8usize, 64, 512] {
        let spread = DestSet::worst_case_spread(1024, n).expect("valid");
        let adjacent = DestSet::adjacent(1024, 0, n).expect("valid");
        for (kind, label) in [
            (SchemeKind::Replicated, "scheme1"),
            (SchemeKind::BitVector, "scheme2"),
            (SchemeKind::BroadcastTag, "scheme3"),
            (SchemeKind::Combined, "combined"),
        ] {
            for (dests, place) in [(&spread, "spread"), (&adjacent, "adjacent")] {
                let mut traffic = TrafficMatrix::new(net);
                let r = bench(&format!("multicast_cast/{label}/{place}/{n}"), || {
                    traffic.clear();
                    black_box(net.multicast(kind, 3, dests, 20, &mut traffic).unwrap());
                });
                println!("{}", r.render());
            }
        }
    }
}

fn bench_cost_only(net: &Omega) {
    let dests = DestSet::worst_case_spread(1024, 64).expect("valid");
    let r = bench("multicast_cost/combined_n64", || {
        black_box(
            net.multicast_cost(SchemeKind::Combined, &dests, 20)
                .unwrap(),
        );
    });
    println!("{}", r.render());
    let r = bench("multicast_cost/cheapest_scheme_n64", || {
        black_box(net.cheapest_scheme(&dests, 20));
    });
    println!("{}", r.render());
}

fn main() {
    let net = Omega::new(10).expect("N = 1024");
    bench_cast(&net);
    bench_cost_only(&net);
}
