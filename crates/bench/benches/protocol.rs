//! Benches for whole-protocol transaction throughput: the two-mode protocol
//! against the baselines on identical workloads. Uses the in-tree
//! [`tmc_bench::timer`] harness (`cargo bench -p tmc-bench --bench protocol`).

use std::hint::black_box;

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem, NoCacheSystem,
    UpdateOnlySystem,
};
use tmc_bench::drive;
use tmc_bench::timer::bench;
use tmc_core::Mode;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload, Trace};

const N_PROCS: usize = 16;

fn workload(w: f64) -> Trace {
    SharedBlockWorkload::new(8, 16, w)
        .references(1_200)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(42))
}

type SystemBuilder = Box<dyn Fn() -> Box<dyn CoherentSystem>>;

fn bench_protocols() {
    for &w in &[0.05f64, 0.5] {
        let trace = workload(w);
        let cases: Vec<(&str, SystemBuilder)> = vec![
            (
                "two_mode_dw",
                Box::new(|| Box::new(two_mode_fixed(N_PROCS, Mode::DistributedWrite))),
            ),
            (
                "two_mode_gr",
                Box::new(|| Box::new(two_mode_fixed(N_PROCS, Mode::GlobalRead))),
            ),
            (
                "two_mode_adaptive",
                Box::new(|| Box::new(two_mode_adaptive(N_PROCS, 64))),
            ),
            (
                "directory_invalidate",
                Box::new(|| Box::new(DirectoryInvalidateSystem::new(N_PROCS))),
            ),
            (
                "update_only",
                Box::new(|| Box::new(UpdateOnlySystem::new(N_PROCS))),
            ),
            (
                "no_cache",
                Box::new(|| Box::new(NoCacheSystem::new(N_PROCS))),
            ),
        ];
        for (label, build) in cases {
            let r = bench(&format!("protocol_throughput/{label}/{w}"), || {
                let mut sys = build();
                black_box(drive(sys.as_mut(), &trace));
            });
            println!("{}", r.render());
        }
    }
}

fn bench_single_ops() {
    let r = bench("two_mode/read_hit", || {
        let mut sys = two_mode_fixed(16, Mode::DistributedWrite);
        sys.write(0, tmc_memsys::WordAddr::new(0), 1);
        for _ in 0..64 {
            black_box(sys.read(0, tmc_memsys::WordAddr::new(0)));
        }
    });
    println!("{} (64 reads per iter)", r.render());
    let r = bench("two_mode/gr_remote_read", || {
        let mut sys = two_mode_fixed(16, Mode::GlobalRead);
        sys.write(0, tmc_memsys::WordAddr::new(0), 1);
        for _ in 0..64 {
            black_box(sys.read(1, tmc_memsys::WordAddr::new(0)));
        }
    });
    println!("{} (64 reads per iter)", r.render());
    let r = bench("two_mode/dw_update_write", || {
        let mut sys = two_mode_fixed(16, Mode::DistributedWrite);
        sys.write(0, tmc_memsys::WordAddr::new(0), 1);
        for p in 1..8 {
            sys.read(p, tmc_memsys::WordAddr::new(0));
        }
        for stamp in 2..66u64 {
            sys.write(0, tmc_memsys::WordAddr::new(0), stamp);
        }
        black_box(sys.total_traffic_bits());
    });
    println!("{} (64 writes per iter)", r.render());
}

fn main() {
    bench_protocols();
    bench_single_ops();
}
