//! Criterion benches for whole-protocol transaction throughput: the
//! two-mode protocol against the baselines on identical workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem,
    NoCacheSystem, UpdateOnlySystem,
};
use tmc_bench::drive;
use tmc_core::Mode;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload, Trace};

const N_PROCS: usize = 16;

fn workload(w: f64) -> Trace {
    SharedBlockWorkload::new(8, 16, w)
        .references(1_200)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(42))
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_throughput");
    group.sample_size(10);
    group.sampling_mode(criterion::SamplingMode::Flat);
    for &w in &[0.05f64, 0.5] {
        let trace = workload(w);
        group.bench_with_input(BenchmarkId::new("two_mode_dw", w), &trace, |b, t| {
            b.iter(|| {
                let mut sys = two_mode_fixed(N_PROCS, Mode::DistributedWrite);
                drive(&mut sys, t)
            })
        });
        group.bench_with_input(BenchmarkId::new("two_mode_gr", w), &trace, |b, t| {
            b.iter(|| {
                let mut sys = two_mode_fixed(N_PROCS, Mode::GlobalRead);
                drive(&mut sys, t)
            })
        });
        group.bench_with_input(BenchmarkId::new("two_mode_adaptive", w), &trace, |b, t| {
            b.iter(|| {
                let mut sys = two_mode_adaptive(N_PROCS, 64);
                drive(&mut sys, t)
            })
        });
        group.bench_with_input(BenchmarkId::new("directory_invalidate", w), &trace, |b, t| {
            b.iter(|| {
                let mut sys = DirectoryInvalidateSystem::new(N_PROCS);
                drive(&mut sys, t)
            })
        });
        group.bench_with_input(BenchmarkId::new("update_only", w), &trace, |b, t| {
            b.iter(|| {
                let mut sys = UpdateOnlySystem::new(N_PROCS);
                drive(&mut sys, t)
            })
        });
        group.bench_with_input(BenchmarkId::new("no_cache", w), &trace, |b, t| {
            b.iter(|| {
                let mut sys = NoCacheSystem::new(N_PROCS);
                drive(&mut sys, t)
            })
        });
    }
    group.finish();
}

fn bench_single_ops(c: &mut Criterion) {
    c.bench_function("two_mode/read_hit", |b| {
        let mut sys = two_mode_fixed(16, Mode::DistributedWrite);
        sys.write(0, tmc_memsys::WordAddr::new(0), 1);
        b.iter(|| sys.read(0, tmc_memsys::WordAddr::new(0)))
    });
    c.bench_function("two_mode/gr_remote_read", |b| {
        let mut sys = two_mode_fixed(16, Mode::GlobalRead);
        sys.write(0, tmc_memsys::WordAddr::new(0), 1);
        b.iter(|| sys.read(1, tmc_memsys::WordAddr::new(0)))
    });
    c.bench_function("two_mode/dw_update_write", |b| {
        let mut sys = two_mode_fixed(16, Mode::DistributedWrite);
        sys.write(0, tmc_memsys::WordAddr::new(0), 1);
        for p in 1..8 {
            sys.read(p, tmc_memsys::WordAddr::new(0));
        }
        b.iter(|| sys.write(0, tmc_memsys::WordAddr::new(0), 2))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(400))
        .sample_size(10)
        .without_plots();
    targets = bench_protocols, bench_single_ops
}
criterion_main!(benches);
