//! Ablation benches: the execution-time cost of the design choices whose
//! *traffic* effect is measured by the `ablation` binary — combined-scheme
//! selection, the adaptive mode controller, the OWNER bypass and transaction
//! logging. Uses the in-tree [`tmc_bench::timer`] harness
//! (`cargo bench -p tmc-bench --bench ablation`).

use std::hint::black_box;

use tmc_baselines::TwoModeAdapter;
use tmc_bench::drive;
use tmc_bench::timer::bench;
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload, Trace};

const N_PROCS: usize = 16;

fn workload() -> Trace {
    SharedBlockWorkload::new(8, 16, 0.2)
        .references(1_200)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(3))
}

fn run(cfg: SystemConfig, trace: &Trace) -> u64 {
    let mut sys = TwoModeAdapter::new(System::new(cfg).expect("valid"), "ablation");
    drive(&mut sys, trace).total_bits
}

fn bench_scheme_choice(trace: &Trace) {
    for (scheme, label) in [
        (SchemeKind::Replicated, "fixed_scheme1"),
        (SchemeKind::BitVector, "fixed_scheme2"),
        (SchemeKind::Combined, "combined"),
    ] {
        let r = bench(&format!("ablation_scheme/{label}"), || {
            black_box(run(
                SystemConfig::new(N_PROCS)
                    .multicast(scheme)
                    .mode_policy(ModePolicy::Fixed(Mode::DistributedWrite)),
                trace,
            ));
        });
        println!("{}", r.render());
    }
}

fn bench_policy_and_features(trace: &Trace) {
    let cases: Vec<(&str, SystemConfig)> = vec![
        ("fixed_gr", SystemConfig::new(N_PROCS)),
        (
            "adaptive",
            SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 64 }),
        ),
        ("bypass_off", SystemConfig::new(N_PROCS).owner_bypass(false)),
        (
            "logging_on",
            SystemConfig::new(N_PROCS).log_transactions(true),
        ),
        (
            "timing_on",
            SystemConfig::new(N_PROCS).timing(tmc_omeganet::TimingModel::default()),
        ),
    ];
    for (label, cfg) in cases {
        let r = bench(&format!("ablation_features/{label}"), || {
            black_box(run(cfg.clone(), trace));
        });
        println!("{}", r.render());
    }
}

fn main() {
    let trace = workload();
    bench_scheme_choice(&trace);
    bench_policy_and_features(&trace);
}
