//! Criterion ablation benches: the execution-time cost of the design
//! choices whose *traffic* effect is measured by the `ablation` binary —
//! combined-scheme selection, the adaptive mode controller, the OWNER
//! bypass and transaction logging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmc_baselines::TwoModeAdapter;
use tmc_bench::drive;
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload, Trace};

const N_PROCS: usize = 16;

fn workload() -> Trace {
    SharedBlockWorkload::new(8, 16, 0.2)
        .references(1_200)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(3))
}

fn run(cfg: SystemConfig, trace: &Trace) -> u64 {
    let mut sys = TwoModeAdapter::new(System::new(cfg).expect("valid"), "ablation");
    drive(&mut sys, trace).total_bits
}

fn bench_scheme_choice(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("ablation_scheme");
    group.sample_size(10);
    group.sampling_mode(criterion::SamplingMode::Flat);
    for (scheme, label) in [
        (SchemeKind::Replicated, "fixed_scheme1"),
        (SchemeKind::BitVector, "fixed_scheme2"),
        (SchemeKind::Combined, "combined"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &trace, |b, t| {
            b.iter(|| {
                run(
                    SystemConfig::new(N_PROCS)
                        .multicast(scheme)
                        .mode_policy(ModePolicy::Fixed(Mode::DistributedWrite)),
                    t,
                )
            })
        });
    }
    group.finish();
}

fn bench_policy_and_features(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("ablation_features");
    group.sample_size(10);
    group.sampling_mode(criterion::SamplingMode::Flat);
    let cases: Vec<(&str, SystemConfig)> = vec![
        ("fixed_gr", SystemConfig::new(N_PROCS)),
        (
            "adaptive",
            SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 64 }),
        ),
        ("bypass_off", SystemConfig::new(N_PROCS).owner_bypass(false)),
        ("logging_on", SystemConfig::new(N_PROCS).log_transactions(true)),
        (
            "timing_on",
            SystemConfig::new(N_PROCS).timing(tmc_omeganet::TimingModel::default()),
        ),
    ];
    for (label, cfg) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &trace, |b, t| {
            b.iter(|| run(cfg.clone(), t))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(400))
        .sample_size(10)
        .without_plots();
    targets = bench_scheme_choice, bench_policy_and_features
}
criterion_main!(benches);
