//! Big-machine coverage: the protocol invariants and the block-sharded
//! engine's bit-identity guarantee at N = 128 and N = 256 processors, over
//! the multi-tenant Zipfian workload. These configurations put `DestSet`
//! into its small-list/bitmap layouts and scatter writes across many pages
//! of the paged `MainMemory`/`BlockStore`, so a sharded `absorb` merge
//! exercises page-granular recombination rather than per-entry hash-map
//! moves.

use tmc_bench::shardsim::{self, ShardRunOptions};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{MultiTenantZipfWorkload, Trace};

fn zipf_trace(n_procs: usize, refs: usize, seed: u64) -> Trace {
    MultiTenantZipfWorkload::new(n_procs, 1_000_000, 0.3)
        .tenants(64)
        .blocks_per_tenant(512)
        .references(refs)
        .generate(n_procs, &mut SimRng::seed_from(seed))
}

#[test]
fn invariants_hold_at_big_n() {
    for n in [128usize, 256] {
        for policy in [
            ModePolicy::Fixed(Mode::DistributedWrite),
            ModePolicy::Fixed(Mode::GlobalRead),
            ModePolicy::Adaptive { window: 16 },
        ] {
            let mut sys = System::new(SystemConfig::new(n).mode_policy(policy)).expect("system");
            let trace = zipf_trace(n, 4000, 0xB16 ^ n as u64);
            let mut stamp = 1;
            for r in trace.iter() {
                match r.op {
                    tmc_workload::Op::Read => {
                        sys.read(r.proc, r.addr).expect("read");
                    }
                    tmc_workload::Op::Write => {
                        sys.write(r.proc, r.addr, stamp).expect("write");
                        stamp += 1;
                    }
                }
            }
            sys.check_invariants()
                .unwrap_or_else(|e| panic!("N={n} {policy:?}: {e}"));
            assert!(sys.counters().get("msgs_total") > 0);
        }
    }
}

#[test]
fn sharded_merge_is_bit_identical_at_n_256() {
    let n = 256;
    let cfg = SystemConfig::new(n)
        .multicast(SchemeKind::Combined)
        .mode_policy(ModePolicy::Adaptive { window: 16 });
    let trace = zipf_trace(n, 3000, 0x5AFE);
    let script = shardsim::script_from_trace(&trace);

    let mut serial = System::new(cfg.clone()).expect("serial system");
    serial.set_tracing(true);
    shardsim::apply_script(&mut serial, &script);
    let serial_events = serial.drain_trace();

    for shards in [2usize, 4, 8] {
        let got = shardsim::run(
            &cfg,
            &script,
            &ShardRunOptions::new(shards, shards.min(4))
                .tracing(true)
                .check(true),
        )
        .unwrap_or_else(|e| panic!("N=256 K={shards}: sharded run failed: {e}"));
        assert_eq!(
            got.system.protocol_fingerprint(),
            serial.protocol_fingerprint(),
            "N=256 K={shards}: fingerprint diverged"
        );
        assert_eq!(
            got.system.counters(),
            serial.counters(),
            "N=256 K={shards}: counters diverged"
        );
        assert_eq!(
            got.system.traffic(),
            serial.traffic(),
            "N=256 K={shards}: link charges diverged"
        );
        assert_eq!(
            got.events, serial_events,
            "N=256 K={shards}: trace events diverged"
        );
    }
}

#[test]
fn sharded_capture_replays_at_n_256() {
    let n = 256;
    let cfg = SystemConfig::new(n).mode_policy(ModePolicy::Adaptive { window: 16 });
    let trace = zipf_trace(n, 1500, 0xCA7);
    let script = shardsim::script_from_trace(&trace);
    let jsonl = shardsim::capture_sharded(&cfg, &script, 8, 4).expect("capture");
    let serial = tmc_bench::tracecheck::capture(cfg, |sys| shardsim::apply_script(sys, &script))
        .expect("serial capture");
    assert_eq!(jsonl, serial, "sharded capture must be byte-identical");
    tmc_bench::tracecheck::check(&jsonl).expect("replay");
}
