//! Property suite pinning the batched pipeline's bit-identity contract:
//! `System::execute_batch` must be indistinguishable from the scalar
//! `read`/`write` loop on every observable — protocol fingerprint, every
//! named counter, total and per-link bit charges, the typed event stream,
//! and the serialized JSONL trace — across
//!
//! * all 4 multicast schemes × all 3 mode policies,
//! * batch sizes 1, 7, 64, and 4096 (sub-batch, mixed, and super-batch
//!   chunking relative to the script),
//! * the sharded engine at K ∈ {2, 4, 8} shards, which feeds the batched
//!   driver per shard and merges.
//!
//! Each grid cell is CI-sized (a few thousand references at N = 64); the
//! heavyweight randomized sweep lives in the conformance fuzzer's
//! `batched-vs-scalar` pair.

use std::collections::BTreeMap;

use tmc_bench::shardsim::{self, apply_script_scalar, ShardOp, ShardRunOptions};
use tmc_bench::tracecheck;
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_obs::{LinkCharge, ProtocolEvent};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload};

const N_PROCS: usize = 64;
const REFS: usize = 4_000;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Replicated,
    SchemeKind::BitVector,
    SchemeKind::BroadcastTag,
    SchemeKind::Combined,
];

fn policies() -> [ModePolicy; 3] {
    [
        ModePolicy::Fixed(Mode::GlobalRead),
        ModePolicy::Fixed(Mode::DistributedWrite),
        ModePolicy::Adaptive { window: 32 },
    ]
}

/// A shared-block script with enough write traffic that every multicast
/// scheme and both fixed modes do real work.
fn script(seed: u64) -> Vec<ShardOp> {
    let trace = SharedBlockWorkload::new(16, 96, 0.3)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    shardsim::script_from_trace(&trace)
}

/// Every observable the batched pipeline promises to preserve.
struct Observables {
    fingerprint: Vec<u8>,
    counters: BTreeMap<&'static str, u64>,
    total_bits: u64,
    links: Vec<LinkCharge>,
    events: Vec<ProtocolEvent>,
}

fn observe(mut sys: System) -> Observables {
    Observables {
        events: sys.drain_trace(),
        fingerprint: sys.protocol_fingerprint(),
        counters: sys.counters().iter().collect(),
        total_bits: sys.traffic().total_bits(),
        links: tracecheck::nonzero_links(sys.traffic()),
    }
}

fn assert_identical(scalar: &Observables, batched: &Observables, what: &str) {
    assert_eq!(
        scalar.fingerprint, batched.fingerprint,
        "{what}: protocol fingerprints differ"
    );
    assert_eq!(scalar.counters, batched.counters, "{what}: counters differ");
    assert_eq!(
        scalar.total_bits, batched.total_bits,
        "{what}: total bits differ"
    );
    assert_eq!(
        scalar.links, batched.links,
        "{what}: per-link charges differ"
    );
    assert_eq!(
        scalar.events.len(),
        batched.events.len(),
        "{what}: event counts differ"
    );
    if let Some(i) = (0..scalar.events.len()).find(|&i| scalar.events[i] != batched.events[i]) {
        panic!(
            "{what}: event #{i} differs: scalar {:?} vs batched {:?}",
            scalar.events[i], batched.events[i]
        );
    }
}

fn run_scalar(cfg: &SystemConfig, ops: &[ShardOp]) -> Observables {
    let mut sys = System::new(cfg.clone()).expect("valid config");
    sys.set_tracing(true);
    apply_script_scalar(&mut sys, ops);
    observe(sys)
}

fn run_batched(cfg: &SystemConfig, ops: &[ShardOp], batch: usize) -> Observables {
    let mut sys = System::new(cfg.clone()).expect("valid config");
    sys.set_tracing(true);
    for chunk in ops.chunks(batch) {
        sys.execute_batch(chunk).expect("validated processors");
    }
    observe(sys)
}

/// 4 schemes × 3 policies, all at one representative batch size.
#[test]
fn batched_matches_scalar_across_schemes_and_policies() {
    let ops = script(0xBA7C);
    for scheme in SCHEMES {
        for policy in policies() {
            let cfg = SystemConfig::new(N_PROCS)
                .multicast(scheme)
                .mode_policy(policy);
            let scalar = run_scalar(&cfg, &ops);
            assert!(scalar.total_bits > 0, "workload moved no traffic");
            let batched = run_batched(&cfg, &ops, 64);
            assert_identical(&scalar, &batched, &format!("{scheme:?}/{policy:?}"));
        }
    }
}

/// Chunking must be invisible: size-1 batches (pure overhead), a prime
/// size that never divides the script, the default sweep chunk, and a
/// single batch larger than the whole script.
#[test]
fn batch_size_is_unobservable() {
    let ops = script(0x512E);
    let cfg = SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 32 });
    let scalar = run_scalar(&cfg, &ops);
    for batch in [1usize, 7, 64, 4096] {
        let batched = run_batched(&cfg, &ops, batch);
        assert_identical(&scalar, &batched, &format!("batch size {batch}"));
    }
}

/// The sharded engine (which drives each shard through the batched
/// pipeline) merges back to the exact scalar outcome at K ∈ {2, 4, 8}.
#[test]
fn sharded_batched_matches_scalar() {
    let ops = script(0x5AAD);
    let cfg = SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 32 });
    let scalar = run_scalar(&cfg, &ops);
    for shards in [2usize, 4, 8] {
        let run = shardsim::run(
            &cfg,
            &ops,
            &ShardRunOptions::new(shards, 2).tracing(true).check(true),
        )
        .expect("sharded run");
        assert_eq!(run.shards, shards, "shard count was clamped");
        let mut merged = observe(run.system);
        // Merged-system traces are empty; the canonical stream is merged
        // separately by the sharded engine.
        merged.events = run.events;
        assert_identical(&scalar, &merged, &format!("K={shards}"));
    }
}

/// Byte-level JSONL: a batched capture serializes to the identical trace
/// file a scalar capture produces.
#[test]
fn batched_jsonl_capture_is_byte_identical() {
    let ops = script(0x1503);
    let cfg = SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 32 });
    let scalar = tracecheck::capture(cfg.clone(), |sys| {
        apply_script_scalar(sys, &ops);
    })
    .expect("scalar capture");
    let batched = tracecheck::capture(cfg, |sys| {
        for chunk in ops.chunks(64) {
            sys.execute_batch(chunk).expect("validated processors");
        }
    })
    .expect("batched capture");
    assert_eq!(scalar, batched, "JSONL captures differ");
}
