//! The parallel sweep engine must be a drop-in for serial iteration: same
//! cells, same results, same order, bit-for-bit — regardless of thread
//! count, stealing order or finish order. This drives the sim_fig8 grid
//! (write fraction × protocol) both ways and compares exactly.

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem, NoCacheSystem,
    UpdateOnlySystem,
};
use tmc_bench::{drive_steady_state, sweep};
use tmc_core::Mode;
use tmc_simcore::SimRng;
use tmc_workload::{Placement, SharedBlockWorkload};

const N_PROCS: usize = 16;
const N_TASKS: usize = 8;
const N_BLOCKS: u64 = 16;
const REFS: usize = 6_000;
const WARMUP: usize = 1_000;
const N_SYSTEMS: usize = 6;

fn run_cell((w, seed, sys_idx): (f64, u64, usize)) -> (u64, f64) {
    let trace = SharedBlockWorkload::new(N_TASKS, N_BLOCKS, w)
        .references(REFS)
        .placement(Placement::Adjacent { base: 0 })
        .generate(N_PROCS, &mut SimRng::seed_from(seed));
    let mut sys: Box<dyn CoherentSystem> = match sys_idx {
        0 => Box::new(NoCacheSystem::new(N_PROCS)),
        1 => Box::new(DirectoryInvalidateSystem::new(N_PROCS)),
        2 => Box::new(UpdateOnlySystem::new(N_PROCS)),
        3 => Box::new(two_mode_fixed(N_PROCS, Mode::DistributedWrite)),
        4 => Box::new(two_mode_fixed(N_PROCS, Mode::GlobalRead)),
        _ => Box::new(two_mode_adaptive(N_PROCS, 64)),
    };
    let report = drive_steady_state(sys.as_mut(), &trace, WARMUP);
    // Compare total bits (exact integers) AND the derived float,
    // bit-for-bit.
    (report.total_bits, report.bits_per_ref)
}

fn grid() -> Vec<(f64, u64, usize)> {
    let ws = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    ws.iter()
        .enumerate()
        .flat_map(|(i, &w)| (0..N_SYSTEMS).map(move |s| (w, 1000 + i as u64, s)))
        .collect()
}

#[test]
fn parallel_sim_fig8_grid_is_bit_identical_to_serial() {
    let plain: Vec<(u64, f64)> = grid().into_iter().map(run_cell).collect();
    let serial = sweep::map_with_threads(1, grid(), run_cell);
    assert_eq!(serial.len(), plain.len());
    for threads in [2, 4, 7] {
        let parallel = sweep::map_with_threads(threads, grid(), run_cell);
        for (i, ((pb, pf), (sb, sf))) in parallel.iter().zip(&plain).enumerate() {
            assert_eq!(pb, sb, "threads={threads} cell {i}: total_bits differ");
            assert_eq!(
                pf.to_bits(),
                sf.to_bits(),
                "threads={threads} cell {i}: bits_per_ref differ bitwise"
            );
        }
        assert_eq!(parallel, serial, "threads={threads}");
    }
}

#[test]
fn default_map_matches_explicit_serial() {
    // Exercise sweep::map (env-driven thread count, whatever it is here).
    let via_map = sweep::map(grid(), run_cell);
    let serial: Vec<(u64, f64)> = grid().into_iter().map(run_cell).collect();
    assert_eq!(via_map, serial);
}
