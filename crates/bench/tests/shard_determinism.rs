//! Property test: the block-sharded engine is bit-identical to the serial
//! `System` — protocol fingerprint, counters, per-link charges, trace
//! events, and the replayable JSONL capture — across randomized workloads,
//! every multicast scheme, both fixed modes plus the adaptive policy, and
//! explicit mode-switch storms.

use tmc_bench::shardsim::{self, ShardOp, ShardRunOptions};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{HotSpotWorkload, MigratingWorkload, SharedBlockWorkload, Trace};

const N_PROCS: usize = 8;

fn configs() -> Vec<SystemConfig> {
    let mut cfgs = Vec::new();
    for scheme in [
        SchemeKind::Replicated,
        SchemeKind::BitVector,
        SchemeKind::BroadcastTag,
        SchemeKind::Combined,
    ] {
        for policy in [
            ModePolicy::Fixed(Mode::DistributedWrite),
            ModePolicy::Fixed(Mode::GlobalRead),
            ModePolicy::Adaptive { window: 16 },
        ] {
            cfgs.push(
                SystemConfig::new(N_PROCS)
                    .multicast(scheme)
                    .mode_policy(policy),
            );
        }
    }
    // Bypass off exercises the redirect path under sharding too.
    cfgs.push(SystemConfig::new(N_PROCS).owner_bypass(false));
    cfgs
}

fn workloads(seed: u64) -> Vec<Trace> {
    let mut rng = SimRng::seed_from(seed);
    vec![
        SharedBlockWorkload::new(4, 24, 0.35)
            .references(700)
            .generate(N_PROCS, &mut rng),
        MigratingWorkload::new(4, 16, 0.5, 40)
            .references(700)
            .generate(N_PROCS, &mut rng),
        HotSpotWorkload::new(4, 0.2, 0.4)
            .references(700)
            .generate(N_PROCS, &mut rng),
    ]
}

/// Interleaves explicit software mode directives into a script so sharding
/// is exercised while blocks flip modes under it ("mode-switch storm").
fn storm(script: &mut Vec<ShardOp>, rng: &mut SimRng) {
    let mut i = 5;
    while i < script.len() {
        let (ShardOp::Read { proc, addr } | ShardOp::Write { proc, addr, .. }) = script[i] else {
            i += 13;
            continue;
        };
        let mode = if rng.next_u64() & 1 == 0 {
            Mode::DistributedWrite
        } else {
            Mode::GlobalRead
        };
        script.insert(i, ShardOp::SetMode { proc, addr, mode });
        i += 13;
    }
}

fn assert_identical(cfg: &SystemConfig, script: &[ShardOp], label: &str) {
    let mut serial = System::new(cfg.clone()).expect("serial system");
    serial.set_tracing(true);
    shardsim::apply_script(&mut serial, script);
    let serial_events = serial.drain_trace();

    for (shards, threads) in [(2, 2), (4, 4), (8, 2)] {
        let got = shardsim::run(
            cfg,
            script,
            &ShardRunOptions::new(shards, threads)
                .tracing(true)
                .check(true),
        )
        .unwrap_or_else(|e| panic!("{label}: sharded run failed: {e}"));
        assert_eq!(
            got.system.protocol_fingerprint(),
            serial.protocol_fingerprint(),
            "{label}: fingerprint diverged at {shards} shards"
        );
        assert_eq!(
            got.system.counters(),
            serial.counters(),
            "{label}: counters diverged at {shards} shards"
        );
        // TrafficMatrix equality covers every per-link bit charge.
        assert_eq!(
            got.system.traffic(),
            serial.traffic(),
            "{label}: link charges diverged at {shards} shards"
        );
        assert_eq!(
            got.events, serial_events,
            "{label}: trace events diverged at {shards} shards"
        );
    }
}

#[test]
fn sharded_matches_serial_across_schemes_policies_and_workloads() {
    for cfg in configs() {
        for (w, trace) in workloads(0xC0FFEE).into_iter().enumerate() {
            let script = shardsim::script_from_trace(&trace);
            assert_identical(&cfg, &script, &format!("cfg {cfg:?} workload {w}"));
        }
    }
}

#[test]
fn sharded_matches_serial_under_mode_switch_storms() {
    let mut rng = SimRng::seed_from(0xBAD5EED);
    for policy in [
        ModePolicy::Fixed(Mode::DistributedWrite),
        ModePolicy::Adaptive { window: 8 },
    ] {
        let cfg = SystemConfig::new(N_PROCS).mode_policy(policy);
        for trace in workloads(0xD15EA5E) {
            let mut script = shardsim::script_from_trace(&trace);
            storm(&mut script, &mut rng);
            assert_identical(&cfg, &script, &format!("storm {policy:?}"));
        }
    }
}

#[test]
fn sharded_capture_replays_through_tracecheck() {
    let cfg = SystemConfig::new(N_PROCS).mode_policy(ModePolicy::Adaptive { window: 16 });
    let trace = SharedBlockWorkload::new(4, 24, 0.4)
        .references(500)
        .generate(N_PROCS, &mut SimRng::seed_from(77));
    let script = shardsim::script_from_trace(&trace);
    let jsonl = shardsim::capture_sharded(&cfg, &script, 8, 4).expect("capture");
    let serial = tmc_bench::tracecheck::capture(cfg, |sys| shardsim::apply_script(sys, &script))
        .expect("serial capture");
    assert_eq!(jsonl, serial, "sharded capture must be byte-identical");
    tmc_bench::tracecheck::check(&jsonl).expect("replay");
}
