//! Pins the allocation-free hot paths at full machine scale: N = 1024
//! ports and an M = 2^21-block multi-tenant Zipfian footprint. A counting
//! global allocator proves — not just claims — that after one warmup pass
//! the steady-state paths touch the heap exactly zero times:
//!
//! * `MultiTenantZipfWorkload::generate_into` on reused buffers,
//! * `DestSet` algebra in both its small-list and bitmap layouts,
//! * re-writes and reads against already-materialized `MainMemory` /
//!   `BlockStore` pages,
//! * the `CastCache` memo-hit path through a 1024-port omega network.
//!
//! Everything lives in one `#[test]` and the counter is thread-local, so
//! concurrently running tests in this binary cannot pollute the counts.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::cell::Cell;
use std::hint::black_box;

use tmc_core::{BatchOp, System, SystemConfig};
use tmc_memsys::{BlockAddr, BlockData, BlockSpec, BlockStore, CacheId, MainMemory, WordAddr};
use tmc_omeganet::{CastCache, DestSet, Omega, SchemeKind, TrafficMatrix};
use tmc_simcore::SimRng;
use tmc_workload::{MultiTenantZipfWorkload, Trace};

/// Counts heap acquisitions on the current thread. Deallocation is free
/// to happen (dropping a demoted bitmap is fine); what the hot paths must
/// never do after warmup is *acquire* memory.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap acquisitions it performed.
fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

const N_PORTS: usize = 1024;
/// 2048 tenants × 1024 blocks each = 2^21 distinct blocks.
const TENANTS: u64 = 2048;
const BLOCKS_PER_TENANT: u64 = 1024;
const REFS: usize = 20_000;

#[test]
fn hot_paths_allocate_nothing_after_warmup() {
    workload_regeneration_is_allocation_free();
    destset_small_and_bitmap_ops_are_allocation_free();
    materialized_pages_are_allocation_free();
    castcache_hits_are_allocation_free();
    batched_pipeline_is_allocation_free();
}

/// The big-M cell's trace generation: after the first pass sizes the
/// trace and assignment buffers, regenerating 20k references over a
/// 2^21-block footprint is pure arithmetic.
fn workload_regeneration_is_allocation_free() {
    let wl = MultiTenantZipfWorkload::new(N_PORTS, 1 << 20, 0.3)
        .tenants(TENANTS)
        .blocks_per_tenant(BLOCKS_PER_TENANT)
        .references(REFS);
    assert_eq!(wl.total_blocks(), 1 << 21);

    let mut rng = SimRng::seed_from(0xA110C);
    let mut trace = Trace::with_capacity(N_PORTS, REFS);
    let mut assignment = Vec::new();
    wl.generate_into(&mut rng, &mut trace, &mut assignment);
    assert_eq!(trace.len(), REFS);

    let n = allocations(|| {
        wl.generate_into(&mut rng, &mut trace, &mut assignment);
    });
    assert_eq!(n, 0, "generate_into allocated {n} times on reused buffers");
    assert_eq!(trace.len(), REFS);
}

/// Sharer-set algebra at N = 1024 in both post-inline layouts. The
/// small-list arm stays strictly under the promotion threshold; the
/// bitmap arm stays strictly above the demotion threshold, so neither
/// crosses a representation boundary mid-measurement.
fn destset_small_and_bitmap_ops_are_allocation_free() {
    let small_ports = [3usize, 64, 65, 127, 512, 700, 1023];
    let n = allocations(|| {
        let mut s = DestSet::empty(N_PORTS);
        for p in small_ports {
            s.insert(p);
        }
        let t = s.clone();
        assert!(t.contains_all(&s) && s.contains_all(&t));
        assert!(s.intersects(&t));
        assert!(s.any_in_range(512, 513));
        assert!(!s.any_in_range(128, 512));
        let mut sum = 0usize;
        for p in s.iter() {
            sum += p;
        }
        let mut u = t.clone();
        u.union_with(&s);
        u.difference_with(&s);
        assert!(u.is_empty());
        s.remove(700);
        assert_eq!(s.len(), small_ports.len() - 1);
        black_box(sum);
    });
    assert_eq!(n, 0, "small-list DestSet ops allocated {n} times");

    // Bitmap layout: 40 members is far above the 12-entry small list.
    let mut a = DestSet::from_ports(N_PORTS, (0..40).map(|i| i * 25)).expect("ports");
    let b = DestSet::from_ports(N_PORTS, (0..40).map(|i| i * 25 + 1)).expect("ports");
    let n = allocations(|| {
        assert!(a.contains(975) && !a.contains(976));
        assert!(!a.intersects(&b));
        assert!(a.any_in_range(970, N_PORTS));
        let mut sum = 0usize;
        for p in a.iter() {
            sum += p;
        }
        a.remove(0);
        a.insert(0);
        assert_eq!(a.len(), 40);
        black_box(sum);
    });
    assert_eq!(n, 0, "bitmap DestSet ops allocated {n} times");
    // In-place union over already-sized words grows len without new words.
    let n = allocations(|| {
        a.union_with(&b);
        assert_eq!(a.len(), 80);
    });
    assert_eq!(n, 0, "bitmap union_with allocated {n} times");
}

/// Once a page is materialized by first touch, re-writing and reading its
/// blocks is plain indexed access — across a footprint wide enough to
/// span many pages of the sparse directory.
fn materialized_pages_are_allocation_free() {
    let spec = BlockSpec::new(2);
    let mut mem = MainMemory::new(spec);
    let mut store = BlockStore::new();
    let data = BlockData::from_words(vec![0xD15E_A5E5; spec.words_per_block()]);

    // Warmup: touch 64 blocks strided across 16 pages.
    let blocks: Vec<BlockAddr> = (0..64u64).map(|i| BlockAddr::new(i * 251)).collect();
    for &b in &blocks {
        mem.write_block(b, &data);
        store.set_owner(b, CacheId(3));
    }
    assert!(mem.resident_pages() >= 16);

    let n = allocations(|| {
        for &b in &blocks {
            mem.write_block(b, &data);
            assert_eq!(mem.read_block(b)[0], 0xD15E_A5E5);
            assert_eq!(store.owner(b), Some(CacheId(3)));
            store.clear(b);
            store.set_owner(b, CacheId(7));
        }
        assert_eq!(mem.iter().count(), blocks.len());
        assert_eq!(store.iter().count(), blocks.len());
    });
    assert_eq!(n, 0, "materialized-page access allocated {n} times");
}

/// The multicast memo table at full network width: after one recorded
/// miss, repeat casts of the same sharer set replay link charges and
/// refill the caller's delivery buffer without touching the heap.
fn castcache_hits_are_allocation_free() {
    let net = Omega::new(10).expect("1024-port omega");
    let mut cache = CastCache::new();
    let mut traffic = TrafficMatrix::new(&net);
    let mut delivered = Vec::new();
    let dests = DestSet::from_ports(N_PORTS, (0..48).map(|i| i * 21)).expect("ports");

    cache
        .multicast_into(
            &net,
            SchemeKind::Combined,
            5,
            &dests,
            128,
            &mut traffic,
            &mut delivered,
            None,
        )
        .expect("warmup cast");
    assert_eq!(cache.misses(), 1);

    let n = allocations(|| {
        for _ in 0..64 {
            cache
                .multicast_into(
                    &net,
                    SchemeKind::Combined,
                    5,
                    &dests,
                    128,
                    &mut traffic,
                    &mut delivered,
                    None,
                )
                .expect("hit cast");
        }
        assert_eq!(delivered.len(), 48);
    });
    assert_eq!(n, 0, "CastCache hit path allocated {n} times");
    assert_eq!(cache.hits(), 64);
}

/// The batched reference pipeline end to end at full machine scale:
/// N = 1024 ports with each processor's stripe strided so the footprint
/// spans the 2^21-block address space. After warmup materializes cache
/// entries, directory pages, counter slots, and the deferred-billing
/// scratch, a full `execute_batch` call — unicast routing through the
/// 10-stage omega, link-delta accumulation, and the end-of-batch
/// counter/traffic flush included — acquires heap memory exactly zero
/// times.
fn batched_pipeline_is_allocation_free() {
    const BLOCKS_PER_PROC: u64 = 4;
    // 1024 stripes of this stride cover block indices up to 2^21.
    const STRIDE: u64 = (1u64 << 21) / N_PORTS as u64;

    let mut sys = System::new(SystemConfig::new(N_PORTS)).expect("valid config");
    let spec = sys.config().spec;
    let addr =
        |proc: u64, j: u64| WordAddr::new((proc * STRIDE + j) * spec.words_per_block() as u64);

    // Every processor first takes ownership of its own stripe.
    let mut script: Vec<BatchOp> = Vec::new();
    for p in 0..N_PORTS as u64 {
        for j in 0..BLOCKS_PER_PROC {
            script.push(BatchOp::Write {
                proc: p as usize,
                addr: addr(p, j),
                value: p ^ j,
            });
        }
    }
    sys.execute_batch(&script).expect("ownership warmup pass");

    // Steady state: read a neighbour's stripe (remote-datum service, two
    // unicasts per reference) and re-write its own. Stripes map to
    // distinct cache sets, so nothing ever evicts.
    script.clear();
    for p in 0..N_PORTS as u64 {
        let neighbour = (p + 1) % N_PORTS as u64;
        for j in 0..BLOCKS_PER_PROC {
            script.push(BatchOp::Read {
                proc: p as usize,
                addr: addr(neighbour, j),
            });
            script.push(BatchOp::Write {
                proc: p as usize,
                addr: addr(p, j),
                value: p + j,
            });
        }
    }
    // Two passes converge every structure: sharer sets, invalid-hint
    // entries, counter slots, link-delta touch lists, batch scratch.
    sys.execute_batch(&script).expect("first steady pass");
    sys.execute_batch(&script).expect("second steady pass");

    let bits_before = sys.traffic().total_bits();
    let n = allocations(|| {
        sys.execute_batch(&script).expect("measured steady pass");
    });
    assert_eq!(n, 0, "batched pipeline allocated {n} times after warmup");
    assert!(
        sys.traffic().total_bits() > bits_before,
        "measured pass moved no network traffic"
    );
}
