//! End-to-end trace replay: capture a run as JSONL, re-execute it against
//! a fresh system, and verify every trailer obligation — plus the
//! zero-perturbation guarantee that tracing never changes what it records.

use tmc_bench::tracecheck::{capture, check, config_from, header_for, roundtrip};
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::WordAddr;
use tmc_obs::fnv1a64;
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{Op, Placement, SharedBlockWorkload, Trace};

fn workload(seed: u64, refs: usize) -> Trace {
    SharedBlockWorkload::new(4, 8, 0.3)
        .references(refs)
        .placement(Placement::Adjacent { base: 0 })
        .generate(8, &mut SimRng::seed_from(seed))
}

fn drive(sys: &mut System, trace: &Trace) {
    let mut stamp = 1u64;
    for r in trace.iter() {
        match r.op {
            Op::Read => {
                sys.read(r.proc, r.addr).unwrap();
            }
            Op::Write => {
                sys.write(r.proc, r.addr, stamp).unwrap();
                stamp += 1;
            }
        }
    }
}

#[test]
fn roundtrip_verifies_under_every_policy_and_scheme() {
    let policies = [
        ModePolicy::Fixed(Mode::DistributedWrite),
        ModePolicy::Fixed(Mode::GlobalRead),
        ModePolicy::Adaptive { window: 32 },
    ];
    let schemes = [SchemeKind::Combined, SchemeKind::BitVector];
    for (pi, &policy) in policies.iter().enumerate() {
        for (si, &scheme) in schemes.iter().enumerate() {
            let cfg = SystemConfig::new(8).mode_policy(policy).multicast(scheme);
            let trace = workload(40 + (pi * 2 + si) as u64, 600);
            let report = roundtrip(cfg, |sys| drive(sys, &trace))
                .unwrap_or_else(|e| panic!("policy {policy:?} scheme {scheme:?}: {e}"));
            assert_eq!(report.replayed, 600, "every reference replays");
            assert!(report.events >= report.replayed);
            assert!(report.reads_checked > 0);
            assert!(report.words_checked > 0);
        }
    }
}

#[test]
fn roundtrip_covers_mode_directives_and_small_caches() {
    // A 2-set cache forces replacements and ownership handoffs into the
    // trace; directives exercise SetMode replay.
    let cfg = SystemConfig::new(4)
        .cache_blocks(8)
        .mode_policy(ModePolicy::Adaptive { window: 8 });
    let trace = workload(7, 800);
    let report = roundtrip(cfg, |sys| {
        sys.set_mode(0, WordAddr::new(0), Mode::DistributedWrite)
            .unwrap();
        drive(sys, &trace);
        sys.set_mode(2, WordAddr::new(0), Mode::GlobalRead).unwrap();
        sys.read(1, WordAddr::new(0)).unwrap();
    })
    .unwrap();
    assert_eq!(report.replayed, 803);
}

#[test]
fn tracing_does_not_perturb_the_run() {
    // The zero-cost-when-disabled claim, measured: the same drive with
    // tracing on and off must land on identical fingerprints and traffic.
    let cfg = SystemConfig::new(8).mode_policy(ModePolicy::Adaptive { window: 32 });
    let trace = workload(11, 1_000);

    let mut plain = System::new(cfg.clone()).unwrap();
    drive(&mut plain, &trace);

    let mut traced = System::new(cfg).unwrap();
    traced.set_tracing(true);
    drive(&mut traced, &trace);

    assert_eq!(
        fnv1a64(&plain.protocol_fingerprint()),
        fnv1a64(&traced.protocol_fingerprint())
    );
    assert_eq!(plain.traffic().total_bits(), traced.traffic().total_bits());
    assert!(plain.trace_events().is_empty());
    assert!(!traced.trace_events().is_empty());
}

#[test]
fn corrupted_traces_are_rejected() {
    let cfg = SystemConfig::new(4);
    let trace = workload(3, 200);
    let text = capture(cfg, |sys| drive(sys, &trace)).unwrap();

    // Baseline: the pristine trace verifies.
    check(&text).unwrap();

    // Tamper with the trailer's total_bits: the replay must notice.
    let lines: Vec<&str> = text.lines().collect();
    let trailer = lines.last().unwrap();
    let tampered = trailer.replace("\"total_bits\":", "\"total_bits\":9");
    assert_ne!(*trailer, tampered);
    let mut bad = lines[..lines.len() - 1].join("\n");
    bad.push('\n');
    bad.push_str(&tampered);
    let err = check(&bad).unwrap_err();
    assert!(err.contains("total link bits"), "unexpected error: {err}");

    // Drop an event: the count check must notice.
    let event_line = lines
        .iter()
        .position(|l| l.contains("\"type\":\"write\""))
        .expect("trace has writes");
    let mut dropped: Vec<&str> = lines.clone();
    dropped.remove(event_line);
    let err = check(&dropped.join("\n")).unwrap_err();
    assert!(
        err.contains("events") || err.contains("regenerated"),
        "unexpected error: {err}"
    );
}

#[test]
fn headers_pin_the_machine_exactly() {
    let cfg = SystemConfig::new(16)
        .mode_policy(ModePolicy::Adaptive { window: 64 })
        .multicast(SchemeKind::BroadcastTag)
        .owner_bypass(false);
    let sys = System::new(cfg.clone()).unwrap();
    let header = header_for(&sys).unwrap();
    assert_eq!(header.policy, "adaptive:64");
    assert_eq!(header.scheme, "broadcast-tag");
    assert_eq!(config_from(&header).unwrap(), cfg);
}
