//! Determinism and transparency properties of the fault-injection
//! subsystem, checked at the harness layer:
//!
//! 1. a **zero-fault plan is bit-identical** to no fault plan at all —
//!    fingerprint, counters, per-link charges, event stream, and the
//!    serialised JSONL trace;
//! 2. **same seed ⇒ same campaign**, under every multicast scheme and
//!    mode policy;
//! 3. small **litmus patterns stay coherent under single-fault plans**
//!    regardless of where the fault lands.

use std::collections::BTreeMap;

use tmc_bench::tracecheck::{header_for, nonzero_links, trailer_for};
use tmc_core::{FaultSpec, Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::WordAddr;
use tmc_obs::TraceWriter;
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Replicated,
    SchemeKind::BitVector,
    SchemeKind::BroadcastTag,
    SchemeKind::Combined,
];

const POLICIES: [ModePolicy; 3] = [
    ModePolicy::Fixed(Mode::DistributedWrite),
    ModePolicy::Fixed(Mode::GlobalRead),
    ModePolicy::Adaptive { window: 8 },
];

/// Drives a seeded mixed workload, checking every read against an oracle.
fn drive_checked(sys: &mut System, seed: u64, ops: usize) {
    let mut rng = SimRng::seed_from(seed);
    let n = sys.n_procs();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..ops {
        let proc = rng.gen_range(0..n);
        let a = rng.gen_range(0..48u64);
        if rng.gen_bool(0.4) {
            let v = rng.next_u64();
            sys.write(proc, WordAddr::new(a), v).unwrap();
            oracle.insert(a, v);
        } else {
            let got = sys.read(proc, WordAddr::new(a)).unwrap();
            assert_eq!(got, oracle.get(&a).copied().unwrap_or(0));
        }
    }
}

#[test]
fn zero_fault_plan_is_bit_identical_including_jsonl() {
    for (i, &scheme) in SCHEMES.iter().enumerate() {
        let base = SystemConfig::new(8)
            .multicast(scheme)
            .mode_policy(ModePolicy::Adaptive { window: 8 });
        let mut plain = System::new(base.clone()).unwrap();
        let mut zeroed = System::new(base.faults(FaultSpec::new(99).count(0))).unwrap();
        plain.set_tracing(true);
        zeroed.set_tracing(true);
        drive_checked(&mut plain, 31 + i as u64, 500);
        drive_checked(&mut zeroed, 31 + i as u64, 500);

        assert_eq!(plain.protocol_fingerprint(), zeroed.protocol_fingerprint());
        assert_eq!(plain.counters(), zeroed.counters());
        assert_eq!(
            nonzero_links(plain.traffic()),
            nonzero_links(zeroed.traffic())
        );

        // The serialised JSONL traces must be byte-identical too. The
        // fault-enabled config cannot produce a header (traces don't
        // encode fault plans), so both streams are written under the
        // plain header — what matters is that the *events and trailer
        // obligations* carry no trace of the zero-fault plan.
        let header = header_for(&plain).unwrap();
        let to_jsonl = |sys: &mut System| -> String {
            let events = sys.drain_trace();
            let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
            for e in &events {
                w.event(e).unwrap();
            }
            String::from_utf8(w.finish(trailer_for(sys)).unwrap()).unwrap()
        };
        assert_eq!(
            to_jsonl(&mut plain),
            to_jsonl(&mut zeroed),
            "scheme {scheme:?}: JSONL capture diverged"
        );
    }
}

#[test]
fn same_seed_same_campaign_under_every_scheme_and_policy() {
    let run = |scheme: SchemeKind, policy: ModePolicy, seed: u64| {
        let spec = FaultSpec::new(seed).count(16).horizon(400).mean_outage(30);
        let cfg = SystemConfig::new(8)
            .multicast(scheme)
            .mode_policy(policy)
            .faults(spec);
        let mut sys = System::new(cfg).unwrap();
        sys.set_tracing(true);
        drive_checked(&mut sys, seed ^ 0x0b5e55, 900);
        sys.check_invariants().unwrap();
        (
            sys.protocol_fingerprint(),
            sys.counters().clone(),
            sys.traffic().total_bits(),
            sys.drain_trace(),
        )
    };
    for &scheme in &SCHEMES {
        for &policy in &POLICIES {
            let a = run(scheme, policy, 17);
            let b = run(scheme, policy, 17);
            assert_eq!(
                a, b,
                "scheme {scheme:?} policy {policy:?}: same seed must replay identically"
            );
            assert_eq!(a.1.get("faults_injected"), 16, "whole plan fired");
        }
    }
}

#[test]
fn litmus_patterns_hold_under_single_fault_plans() {
    // Two processors ping-pong writes and reads over three words while a
    // one-fault plan lands at a seed-dependent op. Wherever it lands —
    // outage, stall, drop, flip — every read must still return the last
    // written value and the machine must end quiescent and invariant-clean.
    for seed in 0..24u64 {
        let spec = FaultSpec::new(seed).count(1).horizon(40).mean_outage(10);
        let mut sys = System::new(SystemConfig::new(4).faults(spec)).unwrap();
        let words = [WordAddr::new(0), WordAddr::new(17), WordAddr::new(33)];
        let mut last = [0u64; 3];
        for round in 0..30 {
            let stamp = round as u64 + 1;
            let w = round % words.len();
            let writer = round % 4;
            let reader = (round + 1) % 4;
            sys.write(writer, words[w], stamp).unwrap();
            last[w] = stamp;
            assert_eq!(
                sys.read(reader, words[w]).unwrap(),
                last[w],
                "seed {seed}: reader saw a stale value in round {round}"
            );
            for (i, &word) in words.iter().enumerate() {
                assert_eq!(
                    sys.read((round + 2) % 4, word).unwrap(),
                    last[i],
                    "seed {seed}: third-party read stale in round {round}"
                );
            }
        }
        assert_eq!(sys.faults_injected(), 1, "seed {seed}: the fault fired");
        sys.check_invariants()
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}
