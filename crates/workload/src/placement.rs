//! Task→processor placement policies.
//!
//! The paper's §3.4 shows that multicast cost drops sharply when the tasks
//! sharing a structure run on *adjacently placed* processors (the scheme-3
//! requirement and the scheme-2 region bound both come from adjacency).
//! Placement is therefore a first-class experiment parameter.

use tmc_simcore::SimRng;

/// How `n_tasks` logical tasks map onto `n_procs` processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// Task `t` runs on processor `base + t` — the allocation the paper
    /// recommends ("tasks that share a data structure are allocated to
    /// adjacent processors").
    Adjacent {
        /// First processor of the region.
        base: usize,
    },
    /// Task `t` runs on processor `(base + t·stride) mod n_procs` —
    /// deliberately scattered, approximating the scheme-2 worst case when
    /// `stride = n_procs / n_tasks`.
    Strided {
        /// First processor.
        base: usize,
        /// Distance between consecutive tasks.
        stride: usize,
    },
    /// A uniformly random one-to-one assignment.
    Random,
}

impl Placement {
    /// Resolves the policy to a concrete assignment: element `t` is the
    /// processor running task `t`. The assignment is injective.
    ///
    /// # Panics
    ///
    /// Panics if the policy cannot place `n_tasks` distinct tasks on
    /// `n_procs` processors (too many tasks, region out of range, or a
    /// stride colliding modulo `n_procs`).
    pub fn assign(&self, n_tasks: usize, n_procs: usize, rng: &mut SimRng) -> Vec<usize> {
        let mut out = Vec::with_capacity(n_tasks);
        self.assign_into(n_tasks, n_procs, rng, &mut out);
        out
    }

    /// Like [`assign`](Self::assign), but appends into a caller-provided
    /// vector so repeated placements (one per sweep cell) can reuse its
    /// allocation. Consumes exactly the same rng stream as
    /// [`assign`](Self::assign).
    ///
    /// # Panics
    ///
    /// Same conditions as [`assign`](Self::assign).
    pub fn assign_into(
        &self,
        n_tasks: usize,
        n_procs: usize,
        rng: &mut SimRng,
        out: &mut Vec<usize>,
    ) {
        assert!(n_tasks <= n_procs, "more tasks than processors");
        match *self {
            Placement::Adjacent { base } => {
                assert!(
                    base + n_tasks <= n_procs,
                    "adjacent region [{base}, {}) exceeds {n_procs} processors",
                    base + n_tasks
                );
                out.extend((0..n_tasks).map(|t| base + t));
            }
            Placement::Strided { base, stride } => {
                assert!(stride > 0, "stride must be positive");
                let start = out.len();
                out.extend((0..n_tasks).map(|t| (base + t * stride) % n_procs));
                let mut sorted = out[start..].to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert!(
                    sorted.len() == n_tasks,
                    "stride {stride} collides modulo {n_procs}"
                );
            }
            Placement::Random => out.extend(rng.sample_distinct(n_procs, n_tasks)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_is_contiguous() {
        let mut rng = SimRng::seed_from(0);
        let a = Placement::Adjacent { base: 4 }.assign(3, 16, &mut rng);
        assert_eq!(a, [4, 5, 6]);
    }

    #[test]
    fn strided_spreads_maximally() {
        let mut rng = SimRng::seed_from(0);
        let a = Placement::Strided { base: 0, stride: 4 }.assign(4, 16, &mut rng);
        assert_eq!(a, [0, 4, 8, 12]);
    }

    #[test]
    fn random_is_injective_and_in_range() {
        let mut rng = SimRng::seed_from(7);
        let a = Placement::Random.assign(10, 32, &mut rng);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(a.iter().all(|&p| p < 32));
    }

    #[test]
    fn random_is_reproducible_from_the_seed() {
        let mut a = SimRng::seed_from(3);
        let mut b = SimRng::seed_from(3);
        assert_eq!(
            Placement::Random.assign(6, 16, &mut a),
            Placement::Random.assign(6, 16, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn adjacent_region_bounds_checked() {
        let mut rng = SimRng::seed_from(0);
        Placement::Adjacent { base: 14 }.assign(4, 16, &mut rng);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn colliding_stride_rejected() {
        let mut rng = SimRng::seed_from(0);
        Placement::Strided { base: 0, stride: 8 }.assign(4, 16, &mut rng);
    }

    #[test]
    #[should_panic(expected = "more tasks than processors")]
    fn too_many_tasks_rejected() {
        let mut rng = SimRng::seed_from(0);
        Placement::Random.assign(17, 16, &mut rng);
    }
}
