//! A no-sharing workload: disjoint per-task working sets.
//!
//! The sanity baseline: once each task's blocks are resident, a coherent
//! cache system should serve essentially every reference locally, so
//! consistency traffic should be near zero regardless of protocol.

use tmc_memsys::{BlockAddr, BlockSpec};
use tmc_simcore::SimRng;

use crate::placement::Placement;
use crate::trace::{Op, Reference, Trace};

/// Generator producing uniformly random references where task `t` only ever
/// touches its own `blocks_per_task` blocks.
///
/// # Example
///
/// ```
/// use tmc_simcore::SimRng;
/// use tmc_workload::PrivateWorkload;
///
/// let mut rng = SimRng::seed_from(8);
/// let trace = PrivateWorkload::new(4, 4, 0.5).references(100).generate(8, &mut rng);
/// assert_eq!(trace.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrivateWorkload {
    n_tasks: usize,
    blocks_per_task: u64,
    write_fraction: f64,
    references: usize,
    block_base: u64,
    spec: BlockSpec,
    placement: Placement,
}

impl PrivateWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n_tasks` or `blocks_per_task` is zero, or the write
    /// fraction is outside `0.0..=1.0`.
    pub fn new(n_tasks: usize, blocks_per_task: u64, write_fraction: f64) -> Self {
        assert!(n_tasks > 0 && blocks_per_task > 0);
        assert!((0.0..=1.0).contains(&write_fraction));
        PrivateWorkload {
            n_tasks,
            blocks_per_task,
            write_fraction,
            references: 1000,
            block_base: 0,
            spec: BlockSpec::new(2),
            placement: Placement::Adjacent { base: 0 },
        }
    }

    /// Sets the number of references.
    pub fn references(mut self, count: usize) -> Self {
        self.references = count;
        self
    }

    /// Sets the first block address.
    pub fn block_base(mut self, base: u64) -> Self {
        self.block_base = base;
        self
    }

    /// Sets the block geometry.
    pub fn block_spec(mut self, spec: BlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the task→processor placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The block geometry in use.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// The blocks task `t` owns.
    pub fn blocks_of_task(&self, task: usize) -> impl Iterator<Item = BlockAddr> + '_ {
        let start = self.block_base + task as u64 * self.blocks_per_task;
        (start..start + self.blocks_per_task).map(BlockAddr::new)
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks.
    pub fn generate(self, n_procs: usize, rng: &mut SimRng) -> Trace {
        let assignment = self.placement.assign(self.n_tasks, n_procs, rng);
        let mut trace = Trace::with_capacity(n_procs, self.references);
        for _ in 0..self.references {
            let task = rng.gen_range(0..self.n_tasks);
            let block = BlockAddr::new(
                self.block_base
                    + task as u64 * self.blocks_per_task
                    + rng.gen_range(0..self.blocks_per_task),
            );
            let offset = rng.gen_range(0..self.spec.words_per_block());
            let op = if rng.gen_bool(self.write_fraction) {
                Op::Write
            } else {
                Op::Read
            };
            trace.push(Reference {
                proc: assignment[task],
                addr: self.spec.word_at(block, offset),
                op,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_sets_are_disjoint() {
        let mut rng = SimRng::seed_from(2);
        let wl = PrivateWorkload::new(4, 4, 0.5);
        let spec = wl.spec();
        let trace = wl.clone().references(2000).generate(4, &mut rng);
        for r in trace.iter() {
            let b = spec.block_of(r.addr).index();
            let task = r.proc; // adjacent placement at base 0: task == proc
            assert!(
                wl.blocks_of_task(task).any(|tb| tb.index() == b),
                "proc {task} touched foreign block {b}"
            );
        }
    }

    #[test]
    fn blocks_of_task_are_contiguous() {
        let wl = PrivateWorkload::new(3, 2, 0.5).block_base(10);
        let blocks: Vec<u64> = wl.blocks_of_task(1).map(|b| b.index()).collect();
        assert_eq!(blocks, [12, 13]);
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            PrivateWorkload::new(2, 2, 0.3)
                .references(100)
                .generate(4, &mut SimRng::seed_from(seed))
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }
}
