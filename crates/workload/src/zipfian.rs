//! A multi-tenant Zipfian workload.
//!
//! The big-machine stressor: millions of logical users, each hashed onto a
//! tenant and onto one block of that tenant's working set, with user
//! popularity following a Zipf law (a few users are referenced constantly,
//! the long tail rarely). This is the access shape that actually exercises
//! the paged stores and hybrid sharer sets at N = 1024 caches over block
//! counts up to 2²¹: total footprint is huge, the hot set is small, and the
//! tenant hash scatters it across the whole address space — exactly the
//! sparse-touch pattern a dense O(M) directory layout cannot afford.
//!
//! The paper's §4 single-writer discipline is preserved: each block has one
//! writer task (chosen by block hash), so the trace stays comparable to the
//! rest of the workload family and the protocol's distributed-write mode
//! still gets exercised.

use tmc_memsys::{BlockAddr, BlockSpec};
use tmc_simcore::SimRng;

use crate::placement::Placement;
use crate::trace::{Op, Reference, Trace};

/// SplitMix64: a cheap, high-quality 64-bit mixer for user→tenant and
/// user→block hashing (stateless, so the mapping is a pure function of the
/// user id).
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rejection-free Zipfian rank sampler (the YCSB construction): draws rank
/// `r ∈ 0..n` with `P(r) ∝ 1/(r+1)^θ` using one uniform variate and a
/// handful of floating-point ops — no tables, no allocation.
///
/// The `O(n)` harmonic-sum precompute happens once in [`ZipfSampler::new`];
/// sampling is `O(1)`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `0..n` with skew `theta` (`θ = 0` is
    /// uniform; YCSB's default hot skew is `θ = 0.99`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `0.0..1.0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf population must be nonempty");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1) (got {theta})"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(n.min(2), theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfSampler {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// Generalized harmonic number `Σ_{i=1..n} 1/i^θ`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.gen_unit();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1.min(self.n - 1);
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Generator for the multi-tenant Zipfian mix.
///
/// Each reference draws a logical user by Zipfian popularity, hashes the
/// user to a tenant and to one block of that tenant's `blocks_per_tenant`
/// working set, and issues a read from a uniformly random task or a write
/// from the block's single designated writer (Bernoulli
/// `write_fraction`).
///
/// # Example
///
/// ```
/// use tmc_simcore::SimRng;
/// use tmc_workload::MultiTenantZipfWorkload;
///
/// let mut rng = SimRng::seed_from(9);
/// let wl = MultiTenantZipfWorkload::new(16, 1_000_000, 0.2)
///     .tenants(64)
///     .blocks_per_tenant(256);
/// assert_eq!(wl.total_blocks(), 64 * 256);
/// let trace = wl.references(1000).generate(16, &mut rng);
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiTenantZipfWorkload {
    n_tasks: usize,
    users: u64,
    write_fraction: f64,
    theta: f64,
    tenants: u64,
    blocks_per_tenant: u64,
    references: usize,
    block_base: u64,
    spec: BlockSpec,
    placement: Placement,
}

impl MultiTenantZipfWorkload {
    /// Creates the workload: `users` logical users with YCSB-default skew
    /// `θ = 0.99`, `write_fraction` of references are writes. Defaults:
    /// 16 tenants × 64 blocks each, 1000 references, adjacent placement.
    ///
    /// # Panics
    ///
    /// Panics if `n_tasks` or `users` is zero or `write_fraction` is
    /// outside `0.0..=1.0`.
    pub fn new(n_tasks: usize, users: u64, write_fraction: f64) -> Self {
        assert!(n_tasks > 0);
        assert!(users > 0);
        assert!((0.0..=1.0).contains(&write_fraction));
        MultiTenantZipfWorkload {
            n_tasks,
            users,
            write_fraction,
            theta: 0.99,
            tenants: 16,
            blocks_per_tenant: 64,
            references: 1000,
            block_base: 0,
            spec: BlockSpec::new(2),
            placement: Placement::Adjacent { base: 0 },
        }
    }

    /// Sets the Zipf skew (`0.0` = uniform users, `0.99` = YCSB default).
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `0.0..1.0`.
    pub fn theta(mut self, theta: f64) -> Self {
        assert!((0.0..1.0).contains(&theta));
        self.theta = theta;
        self
    }

    /// Sets the number of tenants.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn tenants(mut self, tenants: u64) -> Self {
        assert!(tenants > 0);
        self.tenants = tenants;
        self
    }

    /// Sets each tenant's working-set size in blocks; the total footprint
    /// is `tenants × blocks_per_tenant`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn blocks_per_tenant(mut self, blocks: u64) -> Self {
        assert!(blocks > 0);
        self.blocks_per_tenant = blocks;
        self
    }

    /// Sets the number of references.
    pub fn references(mut self, count: usize) -> Self {
        self.references = count;
        self
    }

    /// Sets the first block of the footprint.
    pub fn block_base(mut self, base: u64) -> Self {
        self.block_base = base;
        self
    }

    /// Sets the block geometry.
    pub fn block_spec(mut self, spec: BlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the task→processor placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The block geometry in use.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// Total addressable footprint in blocks (`tenants × blocks_per_tenant`).
    pub fn total_blocks(&self) -> u64 {
        self.tenants * self.blocks_per_tenant
    }

    /// The single task allowed to write `block` (§4 discipline, by hash).
    pub fn writer_of_block(&self, block: BlockAddr) -> usize {
        (splitmix64(block.index()) % self.n_tasks as u64) as usize
    }

    /// The block a given user id maps to: tenant by one hash stream, the
    /// slot inside the tenant's working set by an independent one.
    pub fn block_of_user(&self, user: u64) -> BlockAddr {
        let tenant = splitmix64(user) % self.tenants;
        let slot = splitmix64(user ^ 0xC0FF_EE00_D15E_A5E5) % self.blocks_per_tenant;
        BlockAddr::new(self.block_base + tenant * self.blocks_per_tenant + slot)
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks (see
    /// [`Placement::assign`]).
    pub fn generate(self, n_procs: usize, rng: &mut SimRng) -> Trace {
        let mut trace = Trace::with_capacity(n_procs, self.references);
        let mut assignment = Vec::with_capacity(self.n_tasks);
        self.generate_into(rng, &mut trace, &mut assignment);
        trace
    }

    /// Allocation-free variant of [`generate`](Self::generate): clears and
    /// refills the caller's `trace` and task-assignment scratch vector,
    /// reusing both allocations. The reference stream is identical to
    /// [`generate`](Self::generate) for the same rng state.
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks (see
    /// [`Placement::assign`]).
    pub fn generate_into(&self, rng: &mut SimRng, trace: &mut Trace, assignment: &mut Vec<usize>) {
        let n_procs = trace.n_procs();
        assignment.clear();
        self.placement
            .assign_into(self.n_tasks, n_procs, rng, assignment);
        trace.clear();
        let zipf = ZipfSampler::new(self.users, self.theta);
        for _ in 0..self.references {
            let user = zipf.sample(rng);
            let block = self.block_of_user(user);
            let offset = rng.gen_range(0..self.spec.words_per_block());
            let addr = self.spec.word_at(block, offset);
            if rng.gen_bool(self.write_fraction) {
                trace.push(Reference {
                    proc: assignment[self.writer_of_block(block)],
                    addr,
                    op: Op::Write,
                });
            } else {
                let task = rng.gen_range(0..self.n_tasks);
                trace.push(Reference {
                    proc: assignment[task],
                    addr,
                    op: Op::Read,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_stays_in_range_and_skews_low() {
        let mut rng = SimRng::seed_from(2);
        let zipf = ZipfSampler::new(1_000_000, 0.99);
        let mut head = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            let r = zipf.sample(&mut rng);
            assert!(r < 1_000_000);
            if r < 10_000 {
                head += 1;
            }
        }
        // Under θ=0.99 the top 1% of a 10^6 population draws the large
        // majority of references; uniform would give ~1%.
        let frac = head as f64 / DRAWS as f64;
        assert!(frac > 0.5, "top-1% share {frac} not Zipf-skewed");
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(3);
        let zipf = ZipfSampler::new(1000, 0.0);
        let mut head = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        let frac = head as f64 / DRAWS as f64;
        assert!((frac - 0.1).abs() < 0.03, "top-10% share {frac} under θ=0");
    }

    #[test]
    fn one_writer_per_block_holds() {
        let mut rng = SimRng::seed_from(11);
        let wl = MultiTenantZipfWorkload::new(8, 500_000, 0.5)
            .tenants(32)
            .blocks_per_tenant(64);
        let spec = wl.spec();
        let trace = wl.clone().references(5000).generate(8, &mut rng);
        use std::collections::HashMap;
        let mut writers: HashMap<u64, usize> = HashMap::new();
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            let b = spec.block_of(r.addr).index();
            if let Some(prev) = writers.insert(b, r.proc) {
                assert_eq!(prev, r.proc, "block {b} written by two processors");
            }
        }
        assert!(!writers.is_empty());
    }

    #[test]
    fn footprint_stays_inside_the_tenant_grid() {
        let mut rng = SimRng::seed_from(7);
        let wl = MultiTenantZipfWorkload::new(4, 100_000, 0.3)
            .tenants(8)
            .blocks_per_tenant(16)
            .block_base(4096);
        let spec = wl.spec();
        let total = wl.total_blocks();
        let trace = wl.references(3000).generate(4, &mut rng);
        for r in trace.iter() {
            let b = spec.block_of(r.addr).index();
            assert!((4096..4096 + total).contains(&b), "block {b} off-grid");
        }
    }

    #[test]
    fn generate_into_matches_generate_and_reuses_buffers() {
        let wl = MultiTenantZipfWorkload::new(8, 250_000, 0.25).references(2000);
        let mut rng_a = SimRng::seed_from(21);
        let expect = wl.clone().generate(16, &mut rng_a);

        let mut rng_b = SimRng::seed_from(21);
        let mut trace = Trace::with_capacity(16, 2000);
        let mut assignment = Vec::new();
        wl.generate_into(&mut rng_b, &mut trace, &mut assignment);
        assert_eq!(
            trace.iter().collect::<Vec<_>>(),
            expect.iter().collect::<Vec<_>>()
        );

        // Re-generating reuses the same allocations and is deterministic.
        let mut rng_c = SimRng::seed_from(21);
        wl.generate_into(&mut rng_c, &mut trace, &mut assignment);
        assert_eq!(trace.len(), 2000);
    }

    #[test]
    fn hot_users_concentrate_traffic_on_few_blocks() {
        let mut rng = SimRng::seed_from(13);
        let wl = MultiTenantZipfWorkload::new(8, 2_000_000, 0.2)
            .tenants(128)
            .blocks_per_tenant(1024);
        let spec = wl.spec();
        let trace = wl.references(20_000).generate(8, &mut rng);
        use std::collections::HashMap;
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in trace.iter() {
            *counts.entry(spec.block_of(r.addr).index()).or_default() += 1;
        }
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = by_count.iter().take(10).sum();
        // The footprint is 128×1024 = 131072 blocks, but Zipf users pile
        // onto a handful: the 10 hottest blocks carry well over 10% of all
        // references (uniform would give them ~0.008%).
        assert!(
            top10 * 10 > trace.len(),
            "hottest 10 blocks carry {top10}/{} refs",
            trace.len()
        );
    }
}
