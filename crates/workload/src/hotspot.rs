//! A hot-spot workload.
//!
//! The paper opens by citing network contention as *the* problem of
//! shared-memory multiprocessors (the author's own reference \[14\],
//! "Reducing Contention in Shared-Memory Multiprocessors"). The classic
//! contention stressor is a hot spot: a fraction `h` of all references
//! target one block (a lock, a counter, a work queue head), the rest go to
//! private per-task data. This generator produces that mix, which is what
//! the latency/throughput experiments use to expose link contention.

use tmc_memsys::{BlockAddr, BlockSpec};
use tmc_simcore::SimRng;

use crate::placement::Placement;
use crate::trace::{Op, Reference, Trace};

/// Generator for the hot-spot mix.
///
/// Hot references are reads or writes of the single hot block (writes by
/// one designated task — the lock owner pattern — unless
/// [`HotSpotWorkload::any_writer`] is set); background references go to the
/// issuing task's private blocks.
///
/// # Example
///
/// ```
/// use tmc_simcore::SimRng;
/// use tmc_workload::HotSpotWorkload;
///
/// let mut rng = SimRng::seed_from(5);
/// let trace = HotSpotWorkload::new(4, 0.2, 0.1).references(1000).generate(8, &mut rng);
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HotSpotWorkload {
    n_tasks: usize,
    hot_fraction: f64,
    write_fraction: f64,
    any_writer: bool,
    references: usize,
    hot_block: u64,
    private_base: u64,
    private_blocks_per_task: u64,
    spec: BlockSpec,
    placement: Placement,
}

impl HotSpotWorkload {
    /// Creates the workload: fraction `hot_fraction` of references hit the
    /// hot block; `write_fraction` of *hot* references are writes.
    /// Background references are private reads/writes (50/50).
    ///
    /// # Panics
    ///
    /// Panics if `n_tasks` is zero or either fraction is outside
    /// `0.0..=1.0`.
    pub fn new(n_tasks: usize, hot_fraction: f64, write_fraction: f64) -> Self {
        assert!(n_tasks > 0);
        assert!((0.0..=1.0).contains(&hot_fraction));
        assert!((0.0..=1.0).contains(&write_fraction));
        HotSpotWorkload {
            n_tasks,
            hot_fraction,
            write_fraction,
            any_writer: false,
            references: 1000,
            hot_block: 0,
            private_base: 1024,
            private_blocks_per_task: 8,
            spec: BlockSpec::new(2),
            placement: Placement::Adjacent { base: 0 },
        }
    }

    /// Lets every task write the hot block (ownership migrates on every
    /// writer change — the paper's worst case). Default: one writer.
    pub fn any_writer(mut self, yes: bool) -> Self {
        self.any_writer = yes;
        self
    }

    /// Sets the number of references.
    pub fn references(mut self, count: usize) -> Self {
        self.references = count;
        self
    }

    /// Sets the hot block's address.
    pub fn hot_block(mut self, block: u64) -> Self {
        self.hot_block = block;
        self
    }

    /// Sets the task→processor placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The block geometry in use.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// The hot block.
    pub fn hot(&self) -> BlockAddr {
        BlockAddr::new(self.hot_block)
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks.
    pub fn generate(self, n_procs: usize, rng: &mut SimRng) -> Trace {
        let assignment = self.placement.assign(self.n_tasks, n_procs, rng);
        let mut trace = Trace::with_capacity(n_procs, self.references);
        for _ in 0..self.references {
            if rng.gen_bool(self.hot_fraction) {
                let offset = rng.gen_range(0..self.spec.words_per_block());
                let addr = self.spec.word_at(self.hot(), offset);
                if rng.gen_bool(self.write_fraction) {
                    let writer = if self.any_writer {
                        rng.gen_range(0..self.n_tasks)
                    } else {
                        0
                    };
                    trace.push(Reference {
                        proc: assignment[writer],
                        addr,
                        op: Op::Write,
                    });
                } else {
                    let task = rng.gen_range(0..self.n_tasks);
                    trace.push(Reference {
                        proc: assignment[task],
                        addr,
                        op: Op::Read,
                    });
                }
            } else {
                let task = rng.gen_range(0..self.n_tasks);
                let block = BlockAddr::new(
                    self.private_base
                        + task as u64 * self.private_blocks_per_task
                        + rng.gen_range(0..self.private_blocks_per_task),
                );
                let offset = rng.gen_range(0..self.spec.words_per_block());
                trace.push(Reference {
                    proc: assignment[task],
                    addr: self.spec.word_at(block, offset),
                    op: if rng.gen_bool(0.5) {
                        Op::Write
                    } else {
                        Op::Read
                    },
                });
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_fraction_is_respected() {
        let mut rng = SimRng::seed_from(3);
        let wl = HotSpotWorkload::new(4, 0.25, 0.2);
        let spec = wl.spec();
        let hot = wl.hot();
        let trace = wl.references(20_000).generate(8, &mut rng);
        let hot_refs = trace
            .iter()
            .filter(|r| spec.block_of(r.addr) == hot)
            .count();
        let frac = hot_refs as f64 / trace.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn single_writer_by_default() {
        let mut rng = SimRng::seed_from(3);
        let wl = HotSpotWorkload::new(4, 0.5, 0.5);
        let spec = wl.spec();
        let hot = wl.hot();
        let trace = wl.references(2000).generate(8, &mut rng);
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            if spec.block_of(r.addr) == hot {
                assert_eq!(r.proc, 0, "hot writes come from task 0");
            }
        }
    }

    #[test]
    fn any_writer_spreads_hot_writes() {
        let mut rng = SimRng::seed_from(3);
        let wl = HotSpotWorkload::new(4, 0.8, 0.8).any_writer(true);
        let spec = wl.spec();
        let hot = wl.hot();
        let trace = wl.references(2000).generate(8, &mut rng);
        let writers: std::collections::HashSet<usize> = trace
            .iter()
            .filter(|r| r.op == Op::Write && spec.block_of(r.addr) == hot)
            .map(|r| r.proc)
            .collect();
        assert!(writers.len() > 1, "expected several hot writers");
    }

    #[test]
    fn private_blocks_stay_private() {
        let mut rng = SimRng::seed_from(7);
        let wl = HotSpotWorkload::new(4, 0.3, 0.5);
        let spec = wl.spec();
        let hot = wl.hot();
        let trace = wl.references(3000).generate(4, &mut rng);
        use std::collections::HashMap;
        let mut owners: HashMap<u64, usize> = HashMap::new();
        for r in trace.iter() {
            let b = spec.block_of(r.addr);
            if b == hot {
                continue;
            }
            if let Some(prev) = owners.insert(b.index(), r.proc) {
                assert_eq!(prev, r.proc, "private block {b} touched by two procs");
            }
        }
    }
}
