//! Synthetic reference-trace generators.
//!
//! The paper's evaluation (§4) assumes a specific sharing pattern: `n` tasks
//! access a shared read–write data structure, **exactly one task writes each
//! block**, and the write fraction is `w`. This crate generates reference
//! traces with exactly those statistics, plus richer variants:
//!
//! * [`SharedBlockWorkload`] — the §4 model verbatim: Bernoulli(w) writes by
//!   each block's single writer, reads by all sharers,
//! * [`StencilWorkload`] — the "algorithms based on matrix operations" the
//!   paper's discussion motivates: an iterative grid sweep where each task
//!   writes its own rows and reads its neighbors' boundary rows,
//! * [`PrivateWorkload`] — disjoint per-task working sets (no sharing), the
//!   sanity baseline where a coherent cache should generate almost no
//!   consistency traffic,
//! * [`MultiTenantZipfWorkload`] — the big-machine stressor: millions of
//!   Zipf-popular logical users hashed onto per-tenant block working sets,
//!   preserving the §4 single-writer discipline,
//! * [`Placement`] — task→processor allocation policies (adjacent, strided,
//!   random); adjacency is what makes scheme 3 applicable (§3.4).
//!
//! # Example
//!
//! ```
//! use tmc_simcore::SimRng;
//! use tmc_workload::{Placement, SharedBlockWorkload};
//!
//! let mut rng = SimRng::seed_from(1);
//! let trace = SharedBlockWorkload::new(4, 8, 0.25)
//!     .references(1000)
//!     .placement(Placement::Adjacent { base: 0 })
//!     .generate(16, &mut rng);
//! assert_eq!(trace.len(), 1000);
//! let w = trace.write_fraction();
//! assert!(w > 0.15 && w < 0.35, "empirical w ≈ 0.25, got {w}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotspot;
pub mod io;
pub mod migrating;
pub mod placement;
pub mod private;
pub mod shared_block;
pub mod stencil;
pub mod trace;
pub mod zipfian;

pub use hotspot::HotSpotWorkload;
pub use io::{format_trace, parse_trace, ParseTraceError};
pub use migrating::MigratingWorkload;
pub use placement::Placement;
pub use private::PrivateWorkload;
pub use shared_block::SharedBlockWorkload;
pub use stencil::StencilWorkload;
pub use trace::{Op, Reference, Trace};
pub use zipfian::{MultiTenantZipfWorkload, ZipfSampler};
