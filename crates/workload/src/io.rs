//! A plain-text trace format, so traces can be saved, inspected, diffed and
//! replayed across runs (or fed in from external trace generators).
//!
//! Format, one record per line:
//!
//! ```text
//! tmctrace v1 procs=16
//! 3 R 0x1a0
//! 0 W 0x1a1
//! # comments and blank lines are ignored
//! ```

use std::error::Error;
use std::fmt;

use tmc_memsys::WordAddr;

use crate::trace::{Op, Reference, Trace};

/// Errors from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A record line failed to parse.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        why: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadHeader(h) => write!(f, "bad trace header: {h:?}"),
            ParseTraceError::BadRecord { line, why } => {
                write!(f, "bad trace record on line {line}: {why}")
            }
        }
    }
}

impl Error for ParseTraceError {}

/// Renders a trace in the text format.
///
/// # Example
///
/// ```
/// use tmc_memsys::WordAddr;
/// use tmc_workload::{format_trace, parse_trace, Op, Reference, Trace};
///
/// let mut t = Trace::new(4);
/// t.push(Reference { proc: 1, addr: WordAddr::new(26), op: Op::Write });
/// let text = format_trace(&t);
/// assert_eq!(parse_trace(&text)?, t);
/// # Ok::<(), tmc_workload::ParseTraceError>(())
/// ```
pub fn format_trace(trace: &Trace) -> String {
    let mut out = format!("tmctrace v1 procs={}\n", trace.n_procs());
    for r in trace.iter() {
        let op = match r.op {
            Op::Read => 'R',
            Op::Write => 'W',
        };
        out.push_str(&format!("{} {} {:#x}\n", r.proc, op, r.addr.value()));
    }
    out
}

/// Parses the text format back into a [`Trace`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on a malformed header or record, including
/// processor indices at or beyond the header's `procs=` count.
pub fn parse_trace(text: &str) -> Result<Trace, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseTraceError::BadHeader("empty input".into()))?;
    let n_procs = header
        .strip_prefix("tmctrace v1 procs=")
        .and_then(|n| n.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| ParseTraceError::BadHeader(header.to_string()))?;
    let mut trace = Trace::new(n_procs);
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |why: &str| ParseTraceError::BadRecord {
            line: idx + 1,
            why: why.to_string(),
        };
        let mut parts = line.split_whitespace();
        let proc: usize = parts
            .next()
            .ok_or_else(|| bad("missing processor"))?
            .parse()
            .map_err(|_| bad("unparsable processor"))?;
        if proc >= n_procs {
            return Err(bad(&format!("processor {proc} >= procs={n_procs}")));
        }
        let op = match parts.next() {
            Some("R") => Op::Read,
            Some("W") => Op::Write,
            other => return Err(bad(&format!("bad op {other:?}"))),
        };
        let addr_str = parts.next().ok_or_else(|| bad("missing address"))?;
        let addr = if let Some(hex) = addr_str.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| bad("unparsable hex address"))?
        } else {
            addr_str.parse().map_err(|_| bad("unparsable address"))?
        };
        if parts.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        trace.push(Reference {
            proc,
            addr: WordAddr::new(addr),
            op,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedBlockWorkload;
    use tmc_simcore::SimRng;

    #[test]
    fn roundtrips_generated_traces() {
        let mut rng = SimRng::seed_from(13);
        let trace = SharedBlockWorkload::new(4, 8, 0.3)
            .references(500)
            .generate(8, &mut rng);
        let text = format_trace(&trace);
        assert_eq!(parse_trace(&text).unwrap(), trace);
    }

    #[test]
    fn tolerates_comments_blanks_and_decimal_addresses() {
        let text = "tmctrace v1 procs=2\n# hello\n\n0 R 10\n1 W 0xff\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().next().unwrap().addr, WordAddr::new(10));
        assert_eq!(t.iter().nth(1).unwrap().addr, WordAddr::new(255));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            parse_trace(""),
            Err(ParseTraceError::BadHeader(_))
        ));
        assert!(matches!(
            parse_trace("tmctrace v2 procs=2\n"),
            Err(ParseTraceError::BadHeader(_))
        ));
        assert!(matches!(
            parse_trace("tmctrace v1 procs=0\n"),
            Err(ParseTraceError::BadHeader(_))
        ));
        let cases = [
            "tmctrace v1 procs=2\nx R 1\n",
            "tmctrace v1 procs=2\n0 Q 1\n",
            "tmctrace v1 procs=2\n0 R\n",
            "tmctrace v1 procs=2\n0 R zz\n",
            "tmctrace v1 procs=2\n0 R 1 extra\n",
            "tmctrace v1 procs=2\n5 R 1\n",
        ];
        for c in cases {
            assert!(
                matches!(parse_trace(c), Err(ParseTraceError::BadRecord { .. })),
                "accepted {c:?}"
            );
        }
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_trace("tmctrace v1 procs=2\n0 R 1\nbroken\n").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }
}
