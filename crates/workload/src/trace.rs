//! Reference traces: the input every protocol engine consumes.

use tmc_memsys::WordAddr;

/// A memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One memory reference issued by one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Reference {
    /// Issuing processor (cache / network port index).
    pub proc: usize,
    /// Word address accessed.
    pub addr: WordAddr,
    /// Read or write.
    pub op: Op,
}

/// An ordered sequence of references for an `n_procs`-processor machine.
///
/// # Example
///
/// ```
/// use tmc_memsys::WordAddr;
/// use tmc_workload::{Op, Reference, Trace};
///
/// let mut t = Trace::new(4);
/// t.push(Reference { proc: 1, addr: WordAddr::new(8), op: Op::Write });
/// t.push(Reference { proc: 2, addr: WordAddr::new(8), op: Op::Read });
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.write_fraction(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    refs: Vec<Reference>,
    n_procs: usize,
}

impl Trace {
    /// Creates an empty trace for an `n_procs`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    pub fn new(n_procs: usize) -> Self {
        Trace::with_capacity(n_procs, 0)
    }

    /// Creates an empty trace with room for `capacity` references — lets
    /// generators that know their reference count up front fill the trace
    /// without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    pub fn with_capacity(n_procs: usize, capacity: usize) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        Trace {
            refs: Vec::with_capacity(capacity),
            n_procs,
        }
    }

    /// Removes every reference, keeping the allocation (and the machine
    /// size) for reuse.
    pub fn clear(&mut self) {
        self.refs.clear();
    }

    /// Number of processors this trace targets.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Appends a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference names a processor outside the machine.
    pub fn push(&mut self, r: Reference) {
        assert!(r.proc < self.n_procs, "processor {} out of range", r.proc);
        self.refs.push(r);
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Iterates over references in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Reference> {
        self.refs.iter()
    }

    /// Fraction of references that are writes (0 for an empty trace).
    pub fn write_fraction(&self) -> f64 {
        if self.refs.is_empty() {
            return 0.0;
        }
        let writes = self.refs.iter().filter(|r| r.op == Op::Write).count();
        writes as f64 / self.refs.len() as f64
    }

    /// Number of distinct processors that issue at least one reference.
    pub fn active_procs(&self) -> usize {
        let mut seen = vec![false; self.n_procs];
        for r in &self.refs {
            seen[r.proc] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// References issued by one processor, in program order.
    pub fn by_proc(&self, proc: usize) -> impl Iterator<Item = &Reference> {
        self.refs.iter().filter(move |r| r.proc == proc)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Reference;
    type IntoIter = std::slice::Iter<'a, Reference>;

    fn into_iter(self) -> Self::IntoIter {
        self.refs.iter()
    }
}

impl Extend<Reference> for Trace {
    fn extend<T: IntoIterator<Item = Reference>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(proc: usize, addr: u64, op: Op) -> Reference {
        Reference {
            proc,
            addr: WordAddr::new(addr),
            op,
        }
    }

    #[test]
    fn push_iter_and_stats() {
        let mut t = Trace::new(3);
        t.extend([
            r(0, 1, Op::Read),
            r(1, 2, Op::Write),
            r(1, 3, Op::Read),
            r(2, 1, Op::Write),
        ]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.write_fraction(), 0.5);
        assert_eq!(t.active_procs(), 3);
        assert_eq!(t.by_proc(1).count(), 2);
        assert_eq!(t.iter().next().unwrap().addr, WordAddr::new(1));
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new(2);
        assert!(t.is_empty());
        assert_eq!(t.write_fraction(), 0.0);
        assert_eq!(t.active_procs(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_processor() {
        let mut t = Trace::new(2);
        t.push(r(2, 0, Op::Read));
    }

    #[test]
    fn with_capacity_and_clear_reuse_storage() {
        let mut t = Trace::with_capacity(2, 8);
        t.push(r(0, 1, Op::Read));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.n_procs(), 2);
        t.push(r(1, 2, Op::Write));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clone_preserves_content() {
        let mut t = Trace::new(2);
        t.push(r(0, 5, Op::Write));
        assert_eq!(t, t.clone());
    }
}
