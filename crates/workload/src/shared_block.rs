//! The paper's §4 sharing model: one writer per block, n sharers, write
//! fraction w.

use tmc_memsys::{BlockAddr, BlockSpec};
use tmc_simcore::SimRng;

use crate::placement::Placement;
use crate::trace::{Op, Reference, Trace};

/// Generator for the paper's evaluation workload:
///
/// > "Consider a parallel application where n tasks access a shared
/// > read-write data structure. For each block in the data structure we
/// > assume that exactly one task modifies it and all other tasks access it.
/// > The fraction of writes to the block is w."
///
/// Each reference picks a block uniformly; with probability `w` it is a
/// write issued by that block's unique writer task (task `block mod n`),
/// otherwise a read issued by a uniformly random task.
///
/// # Example
///
/// ```
/// use tmc_simcore::SimRng;
/// use tmc_workload::{Op, Placement, SharedBlockWorkload};
///
/// let mut rng = SimRng::seed_from(42);
/// let wl = SharedBlockWorkload::new(4, 8, 0.3);
/// let trace = wl.clone().references(500).generate(8, &mut rng);
/// // One-writer property: every write to a block comes from one processor.
/// let writers = wl.writer_of_block(tmc_memsys::BlockAddr::new(5));
/// for r in trace.iter().filter(|r| r.op == Op::Write) {
///     let b = wl.spec().block_of(r.addr);
///     assert_eq!(r.proc, wl.writer_proc(b, &[0, 1, 2, 3]));
/// }
/// # let _ = writers;
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SharedBlockWorkload {
    n_tasks: usize,
    n_blocks: u64,
    write_fraction: f64,
    references: usize,
    block_base: u64,
    spec: BlockSpec,
    placement: Placement,
}

impl SharedBlockWorkload {
    /// Creates the model with `n_tasks` sharers over `n_blocks` blocks and
    /// write fraction `write_fraction`.
    ///
    /// Defaults: 1000 references, blocks starting at address 0, 4-word
    /// blocks, adjacent placement at processor 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_tasks` or `n_blocks` is zero, or `write_fraction` is
    /// outside `0.0..=1.0`.
    pub fn new(n_tasks: usize, n_blocks: u64, write_fraction: f64) -> Self {
        assert!(n_tasks > 0, "need at least one task");
        assert!(n_blocks > 0, "need at least one block");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction out of range"
        );
        SharedBlockWorkload {
            n_tasks,
            n_blocks,
            write_fraction,
            references: 1000,
            block_base: 0,
            spec: BlockSpec::new(2),
            placement: Placement::Adjacent { base: 0 },
        }
    }

    /// Sets the number of references to generate.
    pub fn references(mut self, count: usize) -> Self {
        self.references = count;
        self
    }

    /// Sets the first block address of the shared region.
    pub fn block_base(mut self, base: u64) -> Self {
        self.block_base = base;
        self
    }

    /// Sets the block geometry.
    pub fn block_spec(mut self, spec: BlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the task→processor placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The block geometry in use.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// Number of sharer tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// The unique writer *task* for `block`.
    pub fn writer_of_block(&self, block: BlockAddr) -> usize {
        (block.index() % self.n_tasks as u64) as usize
    }

    /// The processor running `block`'s writer under `assignment`.
    pub fn writer_proc(&self, block: BlockAddr, assignment: &[usize]) -> usize {
        assignment[self.writer_of_block(block)]
    }

    /// Generates the trace for an `n_procs`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks (see
    /// [`Placement::assign`]).
    pub fn generate(self, n_procs: usize, rng: &mut SimRng) -> Trace {
        let mut trace = Trace::with_capacity(n_procs, self.references);
        let mut assignment = Vec::with_capacity(self.n_tasks);
        self.generate_into(rng, &mut trace, &mut assignment);
        trace
    }

    /// Allocation-free variant of [`generate`](Self::generate): clears and
    /// refills the caller's `trace` and task-assignment scratch vector,
    /// reusing both allocations. Sweeps that regenerate a trace per cell
    /// can hoist the buffers out of the loop. The reference stream is
    /// identical to [`generate`](Self::generate) for the same rng state.
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks (see
    /// [`Placement::assign`]).
    pub fn generate_into(&self, rng: &mut SimRng, trace: &mut Trace, assignment: &mut Vec<usize>) {
        let n_procs = trace.n_procs();
        assignment.clear();
        self.placement
            .assign_into(self.n_tasks, n_procs, rng, assignment);
        trace.clear();
        for _ in 0..self.references {
            let block = BlockAddr::new(self.block_base + rng.gen_range(0..self.n_blocks));
            let offset = rng.gen_range(0..self.spec.words_per_block());
            let addr = self.spec.word_at(block, offset);
            if rng.gen_bool(self.write_fraction) {
                trace.push(Reference {
                    proc: self.writer_proc(block, assignment),
                    addr,
                    op: Op::Write,
                });
            } else {
                let task = rng.gen_range(0..self.n_tasks);
                trace.push(Reference {
                    proc: assignment[task],
                    addr,
                    op: Op::Read,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_writer_per_block_holds() {
        let mut rng = SimRng::seed_from(11);
        let wl = SharedBlockWorkload::new(4, 16, 0.5);
        let spec = wl.spec();
        let trace = wl.clone().references(2000).generate(8, &mut rng);
        use std::collections::HashMap;
        let mut writers: HashMap<u64, usize> = HashMap::new();
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            let b = spec.block_of(r.addr).index();
            let prev = writers.insert(b, r.proc);
            if let Some(p) = prev {
                assert_eq!(p, r.proc, "block {b} written by two processors");
            }
        }
        assert!(!writers.is_empty());
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut rng = SimRng::seed_from(5);
        let trace = SharedBlockWorkload::new(8, 32, 0.2)
            .references(20_000)
            .generate(16, &mut rng);
        let w = trace.write_fraction();
        assert!((w - 0.2).abs() < 0.02, "empirical w = {w}");
    }

    #[test]
    fn extreme_write_fractions() {
        let mut rng = SimRng::seed_from(5);
        let all_reads = SharedBlockWorkload::new(2, 4, 0.0)
            .references(100)
            .generate(4, &mut rng);
        assert_eq!(all_reads.write_fraction(), 0.0);
        let all_writes = SharedBlockWorkload::new(2, 4, 1.0)
            .references(100)
            .generate(4, &mut rng);
        assert_eq!(all_writes.write_fraction(), 1.0);
    }

    #[test]
    fn addresses_stay_in_the_shared_region() {
        let mut rng = SimRng::seed_from(9);
        let wl = SharedBlockWorkload::new(2, 4, 0.5).block_base(100);
        let spec = wl.spec();
        let trace = wl.references(500).generate(4, &mut rng);
        for r in trace.iter() {
            let b = spec.block_of(r.addr).index();
            assert!((100..104).contains(&b), "block {b} outside region");
        }
    }

    #[test]
    fn placement_confines_processors() {
        let mut rng = SimRng::seed_from(1);
        let trace = SharedBlockWorkload::new(4, 8, 0.5)
            .placement(Placement::Adjacent { base: 8 })
            .references(500)
            .generate(16, &mut rng);
        for r in trace.iter() {
            assert!((8..12).contains(&r.proc));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t1 = SharedBlockWorkload::new(4, 8, 0.3)
            .references(200)
            .generate(8, &mut SimRng::seed_from(77));
        let t2 = SharedBlockWorkload::new(4, 8, 0.3)
            .references(200)
            .generate(8, &mut SimRng::seed_from(77));
        assert_eq!(t1, t2);
    }
}
