//! A task-migration workload — §5's cautionary case.
//!
//! The paper: "for applications where several tasks can modify a block, or
//! when tasks can migrate, ownership will change which increases the
//! network traffic." This generator keeps the one-writer-at-a-time
//! property but rotates *which* task writes each block every
//! `migration_period` references, forcing ownership to migrate at a
//! controllable rate.

use tmc_memsys::{BlockAddr, BlockSpec};
use tmc_simcore::SimRng;

use crate::placement::Placement;
use crate::trace::{Op, Reference, Trace};

/// Generator for the migrating-writer workload.
///
/// # Example
///
/// ```
/// use tmc_simcore::SimRng;
/// use tmc_workload::MigratingWorkload;
///
/// let mut rng = SimRng::seed_from(4);
/// let trace = MigratingWorkload::new(4, 8, 0.3, 100)
///     .references(1000)
///     .generate(8, &mut rng);
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MigratingWorkload {
    n_tasks: usize,
    n_blocks: u64,
    write_fraction: f64,
    migration_period: usize,
    references: usize,
    block_base: u64,
    spec: BlockSpec,
    placement: Placement,
}

impl MigratingWorkload {
    /// Creates the workload: every `migration_period` references, each
    /// block's writer moves to the next task.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the write fraction is out of
    /// `0.0..=1.0`.
    pub fn new(
        n_tasks: usize,
        n_blocks: u64,
        write_fraction: f64,
        migration_period: usize,
    ) -> Self {
        assert!(n_tasks > 0 && n_blocks > 0 && migration_period > 0);
        assert!((0.0..=1.0).contains(&write_fraction));
        MigratingWorkload {
            n_tasks,
            n_blocks,
            write_fraction,
            migration_period,
            references: 1000,
            block_base: 0,
            spec: BlockSpec::new(2),
            placement: Placement::Adjacent { base: 0 },
        }
    }

    /// Sets the number of references.
    pub fn references(mut self, count: usize) -> Self {
        self.references = count;
        self
    }

    /// Sets the first block address.
    pub fn block_base(mut self, base: u64) -> Self {
        self.block_base = base;
        self
    }

    /// Sets the block geometry.
    pub fn block_spec(mut self, spec: BlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the task→processor placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The block geometry in use.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// The task writing `block` during the epoch containing reference
    /// index `ref_index`.
    pub fn writer_at(&self, block: BlockAddr, ref_index: usize) -> usize {
        let epoch = ref_index / self.migration_period;
        ((block.index() as usize) + epoch) % self.n_tasks
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks.
    pub fn generate(self, n_procs: usize, rng: &mut SimRng) -> Trace {
        let assignment = self.placement.assign(self.n_tasks, n_procs, rng);
        let mut trace = Trace::with_capacity(n_procs, self.references);
        for i in 0..self.references {
            let block = BlockAddr::new(self.block_base + rng.gen_range(0..self.n_blocks));
            let offset = rng.gen_range(0..self.spec.words_per_block());
            let addr = self.spec.word_at(block, offset);
            if rng.gen_bool(self.write_fraction) {
                trace.push(Reference {
                    proc: assignment[self.writer_at(block, i)],
                    addr,
                    op: Op::Write,
                });
            } else {
                trace.push(Reference {
                    proc: assignment[rng.gen_range(0..self.n_tasks)],
                    addr,
                    op: Op::Read,
                });
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_rotates_by_epoch() {
        let wl = MigratingWorkload::new(4, 8, 0.5, 100);
        let b = BlockAddr::new(2);
        assert_eq!(wl.writer_at(b, 0), 2);
        assert_eq!(wl.writer_at(b, 99), 2);
        assert_eq!(wl.writer_at(b, 100), 3);
        assert_eq!(wl.writer_at(b, 200), 0); // wraps around 4 tasks
    }

    #[test]
    fn writes_within_an_epoch_come_from_one_task() {
        let mut rng = SimRng::seed_from(6);
        let wl = MigratingWorkload::new(4, 4, 0.5, 200);
        let spec = wl.spec();
        let trace = wl.clone().references(200).generate(4, &mut rng);
        use std::collections::HashMap;
        let mut writers: HashMap<u64, usize> = HashMap::new();
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            let b = spec.block_of(r.addr).index();
            if let Some(prev) = writers.insert(b, r.proc) {
                assert_eq!(prev, r.proc, "block {b}: two writers inside one epoch");
            }
        }
    }

    #[test]
    fn writers_do_change_across_epochs() {
        let mut rng = SimRng::seed_from(6);
        let wl = MigratingWorkload::new(4, 2, 0.9, 50);
        let spec = wl.spec();
        let trace = wl.references(400).generate(4, &mut rng);
        use std::collections::HashSet;
        let mut writers: HashSet<(u64, usize)> = HashSet::new();
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            writers.insert((spec.block_of(r.addr).index(), r.proc));
        }
        // With 8 epochs over 4 tasks, each block sees several writers.
        assert!(writers.len() > 4, "expected migration, got {writers:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            MigratingWorkload::new(4, 4, 0.3, 50)
                .references(200)
                .generate(8, &mut SimRng::seed_from(seed))
        };
        assert_eq!(gen(9), gen(9));
    }
}
