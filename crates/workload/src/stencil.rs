//! An iterative stencil (matrix) workload.
//!
//! The paper argues the protocol suits "many supercomputing applications
//! such as algorithms based on matrix operations", where each block of the
//! shared structure is modified by at most one task. This generator models
//! a 1-D domain decomposition of an iterative grid sweep (Jacobi/SOR
//! style): task `t` owns `rows_per_task` rows; every iteration it reads its
//! own rows plus the boundary rows of its two neighbors, then writes its own
//! rows. Ownership never migrates — the paper's best case.

use tmc_memsys::{BlockAddr, BlockSpec};
use tmc_simcore::SimRng;

use crate::placement::Placement;
use crate::trace::{Op, Reference, Trace};

/// Generator for the stencil workload.
///
/// Rows map to blocks one-to-one: row `r` lives in block `base + r`, and is
/// written only by its owning task.
///
/// # Example
///
/// ```
/// use tmc_simcore::SimRng;
/// use tmc_workload::StencilWorkload;
///
/// let mut rng = SimRng::seed_from(3);
/// let trace = StencilWorkload::new(4, 2, 3).generate(8, &mut rng);
/// assert!(!trace.is_empty());
/// // All four tasks participate.
/// assert_eq!(trace.active_procs(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StencilWorkload {
    n_tasks: usize,
    rows_per_task: usize,
    iterations: usize,
    block_base: u64,
    spec: BlockSpec,
    placement: Placement,
}

impl StencilWorkload {
    /// Creates a stencil over `n_tasks` tasks, each owning `rows_per_task`
    /// rows, swept `iterations` times.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(n_tasks: usize, rows_per_task: usize, iterations: usize) -> Self {
        assert!(n_tasks > 0 && rows_per_task > 0 && iterations > 0);
        StencilWorkload {
            n_tasks,
            rows_per_task,
            iterations,
            block_base: 0,
            spec: BlockSpec::new(2),
            placement: Placement::Adjacent { base: 0 },
        }
    }

    /// Sets the first block address of the grid.
    pub fn block_base(mut self, base: u64) -> Self {
        self.block_base = base;
        self
    }

    /// Sets the block geometry.
    pub fn block_spec(mut self, spec: BlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the task→processor placement.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The block geometry in use.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// The block holding row `row`.
    pub fn block_of_row(&self, row: usize) -> BlockAddr {
        BlockAddr::new(self.block_base + row as u64)
    }

    /// The task owning (writing) `row`.
    pub fn owner_of_row(&self, row: usize) -> usize {
        row / self.rows_per_task
    }

    /// Total rows in the grid.
    pub fn total_rows(&self) -> usize {
        self.n_tasks * self.rows_per_task
    }

    /// Generates the trace for an `n_procs`-processor machine.
    ///
    /// Per iteration, per task: read every word of the task's own rows and
    /// of the neighbor boundary rows, then write every word of the task's
    /// own rows. Tasks proceed round-robin within an iteration (a static
    /// interleaving; the protocol engines only need program order per
    /// processor plus some global order, which this provides).
    ///
    /// # Panics
    ///
    /// Panics if the placement cannot host the tasks.
    pub fn generate(self, n_procs: usize, rng: &mut SimRng) -> Trace {
        let assignment = self.placement.assign(self.n_tasks, n_procs, rng);
        let words = self.spec.words_per_block();
        // Per task and iteration: reads of own + boundary rows (at most
        // rows_per_task + 2), then writes of own rows.
        let per_task = (2 * self.rows_per_task + 2) * words;
        let mut trace = Trace::with_capacity(n_procs, self.iterations * self.n_tasks * per_task);
        let mut reads: Vec<usize> = Vec::with_capacity(self.rows_per_task + 2);
        for _ in 0..self.iterations {
            for (task, &proc) in assignment.iter().enumerate() {
                let first = task * self.rows_per_task;
                let last = first + self.rows_per_task - 1;
                // Boundary rows of the neighbors.
                reads.clear();
                if task > 0 {
                    reads.push(first - 1);
                }
                reads.extend(first..=last);
                if task + 1 < self.n_tasks {
                    reads.push(last + 1);
                }
                for &row in &reads {
                    for w in 0..words {
                        trace.push(Reference {
                            proc,
                            addr: self.spec.word_at(self.block_of_row(row), w),
                            op: Op::Read,
                        });
                    }
                }
                for row in first..=last {
                    for w in 0..words {
                        trace.push(Reference {
                            proc,
                            addr: self.spec.word_at(self.block_of_row(row), w),
                            op: Op::Write,
                        });
                    }
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_writer_per_row_holds() {
        let mut rng = SimRng::seed_from(0);
        let wl = StencilWorkload::new(4, 2, 2);
        let spec = wl.spec();
        let trace = wl.clone().generate(8, &mut rng);
        use std::collections::HashMap;
        let mut writers: HashMap<u64, usize> = HashMap::new();
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            let b = spec.block_of(r.addr).index();
            if let Some(prev) = writers.insert(b, r.proc) {
                assert_eq!(prev, r.proc);
            }
        }
        assert_eq!(writers.len(), wl.total_rows());
    }

    #[test]
    fn neighbors_read_boundary_rows() {
        let mut rng = SimRng::seed_from(0);
        let wl = StencilWorkload::new(3, 2, 1);
        let spec = wl.spec();
        let trace = wl.generate(4, &mut rng);
        // Task 1 (processor 1) must read row 1 (task 0's boundary) and
        // row 4 (task 2's boundary).
        let read_rows: Vec<u64> = trace
            .by_proc(1)
            .filter(|r| r.op == Op::Read)
            .map(|r| spec.block_of(r.addr).index())
            .collect();
        assert!(read_rows.contains(&1));
        assert!(read_rows.contains(&4));
    }

    #[test]
    fn interior_tasks_touch_only_adjacent_blocks() {
        let mut rng = SimRng::seed_from(0);
        let wl = StencilWorkload::new(4, 3, 1);
        let spec = wl.spec();
        let trace = wl.generate(8, &mut rng);
        for r in trace.by_proc(2) {
            let b = spec.block_of(r.addr).index() as usize;
            assert!((5..=9).contains(&b), "task 2 touched row {b}");
        }
    }

    #[test]
    fn reference_count_is_deterministic() {
        let mut rng = SimRng::seed_from(0);
        let wl = StencilWorkload::new(4, 2, 3);
        let words = wl.spec().words_per_block();
        let trace = wl.generate(8, &mut rng);
        // Per iteration: each task reads its 2 rows + boundaries, writes 2
        // rows. Tasks 0 and 3 have one neighbor, tasks 1 and 2 have two.
        let reads_per_iter = (2 + 1) + (2 + 2) + (2 + 2) + (2 + 1);
        let writes_per_iter = 4 * 2;
        assert_eq!(trace.len(), 3 * words * (reads_per_iter + writes_per_iter));
    }

    #[test]
    fn single_task_has_no_neighbors() {
        let mut rng = SimRng::seed_from(0);
        let trace = StencilWorkload::new(1, 2, 1).generate(2, &mut rng);
        assert_eq!(trace.active_procs(), 1);
        // 2 rows read + 2 rows written, 4 words each.
        assert_eq!(trace.len(), 4 * 4);
    }
}
