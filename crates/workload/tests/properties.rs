//! Randomized tests for the workload generators and the trace format,
//! driven by the in-tree [`SimRng`] (no external crates needed).

use tmc_simcore::SimRng;
use tmc_workload::{
    format_trace, parse_trace, HotSpotWorkload, MigratingWorkload, Op, Placement, PrivateWorkload,
    SharedBlockWorkload, StencilWorkload, Trace,
};

const CASES: usize = 48;

/// Every generator: references stay within the machine, counts are
/// exact, and generation is a pure function of the seed.
#[test]
fn generators_are_deterministic_and_in_range() {
    let mut meta = SimRng::seed_from(0xDE7E);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let n_tasks = meta.gen_range(1..=8usize);
        let refs = meta.gen_range(1..400usize);
        let w = meta.gen_unit();
        let n_procs = 16;
        let traces: Vec<Trace> = (0..2)
            .map(|_| {
                let mut rng = SimRng::seed_from(seed);
                SharedBlockWorkload::new(n_tasks, 8, w)
                    .references(refs)
                    .generate(n_procs, &mut rng)
            })
            .collect();
        assert_eq!(&traces[0], &traces[1]);
        assert_eq!(traces[0].len(), refs);
        for r in traces[0].iter() {
            assert!(r.proc < n_procs);
        }
    }
}

/// The one-writer invariant holds for every generator that promises it.
#[test]
fn one_writer_invariant() {
    let mut meta = SimRng::seed_from(0x0E13);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let n_tasks = meta.gen_range(1..=6usize);
        let mut rng = SimRng::seed_from(seed);
        let wl = SharedBlockWorkload::new(n_tasks, 12, 0.4);
        let spec = wl.spec();
        let trace = wl.references(400).generate(8, &mut rng);
        let mut writers = std::collections::HashMap::new();
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            let b = spec.block_of(r.addr);
            if let Some(prev) = writers.insert(b, r.proc) {
                assert_eq!(prev, r.proc);
            }
        }
    }
}

/// Trace text format round-trips every generator's output.
#[test]
fn trace_text_roundtrip() {
    let mut meta = SimRng::seed_from(0x2077);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let pick = meta.gen_range(0..5usize);
        let mut rng = SimRng::seed_from(seed);
        let n_procs = 16;
        let trace = match pick {
            0 => SharedBlockWorkload::new(4, 8, 0.3)
                .references(120)
                .generate(n_procs, &mut rng),
            1 => StencilWorkload::new(4, 2, 2).generate(n_procs, &mut rng),
            2 => PrivateWorkload::new(4, 4, 0.5)
                .references(120)
                .generate(n_procs, &mut rng),
            3 => MigratingWorkload::new(4, 8, 0.3, 40)
                .references(120)
                .generate(n_procs, &mut rng),
            _ => HotSpotWorkload::new(4, 0.3, 0.2)
                .references(120)
                .generate(n_procs, &mut rng),
        };
        let text = format_trace(&trace);
        assert_eq!(parse_trace(&text).unwrap(), trace);
    }
}

/// Placements are injective and land inside the machine.
#[test]
fn placements_are_injective() {
    let mut meta = SimRng::seed_from(0x14CE);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let n_tasks = meta.gen_range(1..=16usize);
        let pick = meta.gen_range(0..3usize);
        let n_procs = 32;
        let placement = match pick {
            0 => Placement::Adjacent { base: 0 },
            1 => Placement::Strided {
                base: 0,
                stride: n_procs / n_tasks.next_power_of_two(),
            },
            _ => Placement::Random,
        };
        if let Placement::Strided { stride, .. } = placement {
            if !(stride > 0 && n_tasks * stride < n_procs + stride) {
                continue;
            }
        }
        let mut rng = SimRng::seed_from(seed);
        let a = placement.assign(n_tasks, n_procs, &mut rng);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n_tasks, "{placement:?}");
        assert!(a.iter().all(|&p| p < n_procs));
    }
}

/// Empirical write fraction converges to the configured one.
#[test]
fn write_fraction_converges() {
    let mut meta = SimRng::seed_from(0xF2AC);
    for _ in 0..16 {
        let seed = meta.next_u64();
        let w = 0.05 + meta.gen_unit() * 0.9;
        let mut rng = SimRng::seed_from(seed);
        let trace = SharedBlockWorkload::new(4, 8, w)
            .references(8000)
            .generate(8, &mut rng);
        assert!((trace.write_fraction() - w).abs() < 0.05);
    }
}
