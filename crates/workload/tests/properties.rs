//! Property-based tests for the workload generators and the trace format.

use proptest::prelude::*;
use tmc_simcore::SimRng;
use tmc_workload::{
    format_trace, parse_trace, HotSpotWorkload, MigratingWorkload, Op, Placement,
    PrivateWorkload, SharedBlockWorkload, StencilWorkload, Trace,
};

proptest! {
    /// Every generator: references stay within the machine, counts are
    /// exact, and generation is a pure function of the seed.
    #[test]
    fn generators_are_deterministic_and_in_range(
        seed in any::<u64>(),
        n_tasks in 1usize..=8,
        refs in 1usize..400,
        w in 0.0f64..=1.0,
    ) {
        let n_procs = 16;
        let traces: Vec<Trace> = (0..2)
            .map(|_| {
                let mut rng = SimRng::seed_from(seed);
                SharedBlockWorkload::new(n_tasks, 8, w)
                    .references(refs)
                    .generate(n_procs, &mut rng)
            })
            .collect();
        prop_assert_eq!(&traces[0], &traces[1]);
        prop_assert_eq!(traces[0].len(), refs);
        for r in traces[0].iter() {
            prop_assert!(r.proc < n_procs);
        }
    }

    /// The one-writer invariant holds for every generator that promises it.
    #[test]
    fn one_writer_invariant(seed in any::<u64>(), n_tasks in 1usize..=6) {
        let mut rng = SimRng::seed_from(seed);
        let wl = SharedBlockWorkload::new(n_tasks, 12, 0.4);
        let spec = wl.spec();
        let trace = wl.references(400).generate(8, &mut rng);
        let mut writers = std::collections::HashMap::new();
        for r in trace.iter().filter(|r| r.op == Op::Write) {
            let b = spec.block_of(r.addr);
            if let Some(prev) = writers.insert(b, r.proc) {
                prop_assert_eq!(prev, r.proc);
            }
        }
    }

    /// Trace text format round-trips every generator's output.
    #[test]
    fn trace_text_roundtrip(seed in any::<u64>(), pick in 0usize..5) {
        let mut rng = SimRng::seed_from(seed);
        let n_procs = 16;
        let trace = match pick {
            0 => SharedBlockWorkload::new(4, 8, 0.3)
                .references(120)
                .generate(n_procs, &mut rng),
            1 => StencilWorkload::new(4, 2, 2).generate(n_procs, &mut rng),
            2 => PrivateWorkload::new(4, 4, 0.5)
                .references(120)
                .generate(n_procs, &mut rng),
            3 => MigratingWorkload::new(4, 8, 0.3, 40)
                .references(120)
                .generate(n_procs, &mut rng),
            _ => HotSpotWorkload::new(4, 0.3, 0.2)
                .references(120)
                .generate(n_procs, &mut rng),
        };
        let text = format_trace(&trace);
        prop_assert_eq!(parse_trace(&text).unwrap(), trace);
    }

    /// Placements are injective and land inside the machine.
    #[test]
    fn placements_are_injective(
        seed in any::<u64>(),
        n_tasks in 1usize..=16,
        pick in 0usize..3,
    ) {
        let n_procs = 32;
        let placement = match pick {
            0 => Placement::Adjacent { base: 0 },
            1 => Placement::Strided { base: 0, stride: n_procs / n_tasks.next_power_of_two() },
            _ => Placement::Random,
        };
        if let Placement::Strided { stride, .. } = placement {
            prop_assume!(stride > 0 && n_tasks * stride < n_procs + stride);
        }
        let mut rng = SimRng::seed_from(seed);
        let a = placement.assign(n_tasks, n_procs, &mut rng);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n_tasks, "{:?}", placement);
        prop_assert!(a.iter().all(|&p| p < n_procs));
    }

    /// Empirical write fraction converges to the configured one.
    #[test]
    fn write_fraction_converges(seed in any::<u64>(), w in 0.05f64..=0.95) {
        let mut rng = SimRng::seed_from(seed);
        let trace = SharedBlockWorkload::new(4, 8, w)
            .references(8000)
            .generate(8, &mut rng);
        prop_assert!((trace.write_fraction() - w).abs() < 0.05);
    }
}
