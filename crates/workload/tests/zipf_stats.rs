//! Statistical properties of the Zipfian samplers that the scenario
//! corpus leans on: rank-frequency monotonicity, θ sensitivity, and the
//! single-writer discipline surviving `generate_into` buffer reuse.

use std::collections::BTreeMap;

use tmc_simcore::SimRng;
use tmc_workload::{MultiTenantZipfWorkload, Op, Placement, Trace, ZipfSampler};

const DRAWS: usize = 60_000;

/// Average per-rank frequency inside geometric rank bins
/// `[1,2) [2,4) [4,8) …` must decrease as rank grows — the defining
/// rank-frequency shape of a Zipfian law, robust to per-rank noise.
#[test]
fn rank_frequency_is_monotone_across_geometric_bins() {
    let mut rng = SimRng::seed_from(11);
    let zipf = ZipfSampler::new(1 << 16, 0.9);
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..DRAWS {
        *counts.entry(zipf.sample(&mut rng)).or_insert(0) += 1;
    }
    let mut densities = Vec::new();
    let mut lo = 1u64;
    while lo < zipf.population() {
        let hi = (lo * 2).min(zipf.population());
        let total: u64 = counts.range(lo..hi).map(|(_, c)| c).sum();
        densities.push(total as f64 / (hi - lo) as f64);
        lo = hi;
    }
    for pair in densities.windows(2) {
        assert!(
            pair[0] >= pair[1],
            "per-rank density must fall with rank: {densities:?}"
        );
    }
    // And rank 0 alone beats the whole first bin's per-rank density.
    let rank0 = counts.get(&0).copied().unwrap_or(0) as f64;
    assert!(
        rank0 > densities[0],
        "rank 0 not the mode: {rank0} vs {densities:?}"
    );
}

/// Larger θ concentrates more mass on the head of the distribution.
#[test]
fn theta_controls_head_concentration() {
    let population = 1u64 << 20;
    let head = population / 100; // top 1%
    let share = |theta: f64, seed: u64| {
        let mut rng = SimRng::seed_from(seed);
        let zipf = ZipfSampler::new(population, theta);
        let hits = (0..DRAWS).filter(|_| zipf.sample(&mut rng) < head).count();
        hits as f64 / DRAWS as f64
    };
    let low = share(0.2, 5);
    let mid = share(0.6, 5);
    let high = share(0.95, 5);
    assert!(
        low < mid && mid < high,
        "head share must grow with theta: {low} < {mid} < {high}"
    );
    // θ→0 approaches uniform: the top 1% draws about 1%.
    assert!(low < 0.1, "theta=0.2 head share {low} suspiciously skewed");
    assert!(high > 0.5, "theta=0.95 head share {high} not skewed enough");
}

/// Every block is written by exactly one processor — the designated
/// `writer_of_block` under the trace's task assignment — and the
/// discipline survives reusing the `generate_into` buffers across
/// differently-sized generations.
#[test]
fn single_writer_discipline_survives_generate_into_reuse() {
    let wl_big = MultiTenantZipfWorkload::new(8, 100_000, 0.3)
        .tenants(8)
        .blocks_per_tenant(16)
        .references(4000)
        .placement(Placement::Strided { base: 0, stride: 2 });
    let wl_small = MultiTenantZipfWorkload::new(4, 1000, 0.5)
        .tenants(2)
        .blocks_per_tenant(4)
        .references(600)
        .placement(Placement::Adjacent { base: 0 });

    let mut trace = Trace::new(16);
    let mut assignment = Vec::new();
    let mut rng = SimRng::seed_from(23);
    // Interleave two workloads through the same buffers; each generation
    // must stand alone.
    for (round, wl) in [&wl_big, &wl_small, &wl_big].into_iter().enumerate() {
        wl.generate_into(&mut rng, &mut trace, &mut assignment);
        let expected_refs = if round == 1 { 600 } else { 4000 };
        assert_eq!(trace.len(), expected_refs, "round {round}: stale buffer");

        let mut writer_seen: BTreeMap<u64, usize> = BTreeMap::new();
        for r in trace.iter() {
            let block = wl.spec().block_of(r.addr);
            if r.op == Op::Write {
                let designated = assignment[wl.writer_of_block(block)];
                assert_eq!(
                    r.proc,
                    designated,
                    "round {round}: write to block {} from P{} instead of designated P{designated}",
                    block.index(),
                    r.proc
                );
                let prev = writer_seen.insert(block.index(), r.proc);
                assert!(
                    prev.is_none_or(|p| p == r.proc),
                    "round {round}: block {} written by two processors",
                    block.index()
                );
            }
        }
        assert!(!writer_seen.is_empty(), "round {round}: no writes sampled");
    }
}

/// `generate_into` is deterministic for a given rng state, with or
/// without buffer reuse.
#[test]
fn generate_into_matches_fresh_generation() {
    let wl = MultiTenantZipfWorkload::new(8, 50_000, 0.2)
        .tenants(4)
        .blocks_per_tenant(8)
        .references(1500);

    let mut rng_a = SimRng::seed_from(99);
    let fresh = wl.clone().generate(8, &mut rng_a);

    let mut rng_b = SimRng::seed_from(99);
    let mut trace = Trace::new(8);
    let mut assignment = vec![7usize; 64]; // dirty scratch on purpose
    wl.generate_into(&mut rng_b, &mut trace, &mut assignment);

    assert_eq!(fresh.len(), trace.len());
    for (a, b) in fresh.iter().zip(trace.iter()) {
        assert_eq!(a, b);
    }
}
