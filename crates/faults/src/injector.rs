//! The runtime side of a fault plan: which outages are active *now*,
//! which message faults are pending, and when things heal.

use std::collections::VecDeque;

use tmc_omeganet::LinkId;

use crate::plan::{FaultKind, FaultPlan, RetryPolicy, ScheduledFault};

/// A transient per-message fault, consumed by the engine's send path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFault {
    /// The message is lost; the sender retransmits (route billed twice).
    Drop,
    /// The message is duplicated in flight (route billed twice).
    Duplicate,
    /// The message is delayed by this many simulated cycles.
    Delay(u64),
}

/// Advances through a [`FaultPlan`] in simulated op order, tracking active
/// link outages, cache stalls and pending message faults.
///
/// The engine calls [`FaultInjector::advance`] once per public transaction;
/// everything the injector reports is a pure function of the plan and the
/// op sequence, so runs are reproducible bit for bit.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    op: u64,
    down_links: Vec<(LinkId, u64)>,
    stalled: Vec<(usize, u64)>,
    pending_msgs: VecDeque<MsgFault>,
    injected: u64,
}

impl FaultInjector {
    /// Wraps a generated plan, positioned before op 1.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            cursor: 0,
            op: 0,
            down_links: Vec::new(),
            stalled: Vec::new(),
            pending_msgs: VecDeque::new(),
            injected: 0,
        }
    }

    /// Moves simulated time forward to `op` (monotone): expires outages
    /// whose heal op has passed, activates every scheduled fault with
    /// `at <= op`, and returns the newly fired faults so the engine can
    /// count and trace them.
    pub fn advance(&mut self, op: u64) -> Vec<ScheduledFault> {
        debug_assert!(op >= self.op, "ops must advance monotonically");
        self.op = op;
        if !self.down_links.is_empty() {
            self.down_links.retain(|&(_, heal)| heal > op);
        }
        if !self.stalled.is_empty() {
            self.stalled.retain(|&(_, heal)| heal > op);
        }
        let mut fired = Vec::new();
        while let Some(&f) = self.plan.faults().get(self.cursor) {
            if f.at > op {
                break;
            }
            self.cursor += 1;
            self.injected += 1;
            match f.kind {
                FaultKind::LinkDown { link, heal_at } => {
                    if heal_at > op && !self.link_is_down(link) {
                        self.down_links.push((link, heal_at));
                    }
                }
                FaultKind::CacheStall { cache, heal_at } => {
                    if heal_at > op && !self.cache_stalled(cache) {
                        self.stalled.push((cache, heal_at));
                    }
                }
                FaultKind::MsgDrop => self.pending_msgs.push_back(MsgFault::Drop),
                FaultKind::MsgDup => self.pending_msgs.push_back(MsgFault::Duplicate),
                FaultKind::MsgDelay { cycles } => {
                    self.pending_msgs.push_back(MsgFault::Delay(cycles))
                }
                // Bit flips and handoff NAKs carry no injector-side state;
                // the engine acts on the returned schedule entry.
                FaultKind::BitFlip { .. } | FaultKind::HandoffNak { .. } => {}
            }
            fired.push(f);
        }
        fired
    }

    /// Whether `link` is currently out of service.
    pub fn link_is_down(&self, link: LinkId) -> bool {
        self.down_links.iter().any(|&(l, _)| l == link)
    }

    /// Whether any link is currently out of service (cheap gate for the
    /// engine's multicast NACK scan).
    pub fn any_link_down(&self) -> bool {
        !self.down_links.is_empty()
    }

    /// The op at which `link` heals, if it is currently down.
    pub fn link_heal_at(&self, link: LinkId) -> Option<u64> {
        self.down_links
            .iter()
            .find(|&&(l, _)| l == link)
            .map(|&(_, heal)| heal)
    }

    /// Whether `cache` is currently stalled.
    pub fn cache_stalled(&self, cache: usize) -> bool {
        self.stalled.iter().any(|&(c, _)| c == cache)
    }

    /// The op at which `cache` recovers, if it is currently stalled.
    pub fn stall_heal_at(&self, cache: usize) -> Option<u64> {
        self.stalled
            .iter()
            .find(|&&(c, _)| c == cache)
            .map(|&(_, heal)| heal)
    }

    /// Pops the next pending per-message fault, if any. The engine applies
    /// it to the next protocol message it sends.
    pub fn take_msg_fault(&mut self) -> Option<MsgFault> {
        self.pending_msgs.pop_front()
    }

    /// Whether any per-message fault is waiting to be applied.
    pub fn has_pending_msg_faults(&self) -> bool {
        !self.pending_msgs.is_empty()
    }

    /// True when nothing is active or pending — the engine's license to
    /// skip all fault handling for this op (future scheduled faults are
    /// still picked up by the next [`FaultInjector::advance`]).
    pub fn is_idle(&self) -> bool {
        self.down_links.is_empty() && self.stalled.is_empty() && self.pending_msgs.is_empty()
    }

    /// Faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total faults in the plan.
    pub fn plan_len(&self) -> usize {
        self.plan.len()
    }

    /// The plan's retry policy.
    pub fn retry(&self) -> RetryPolicy {
        self.plan.retry()
    }

    /// Captures the injector's dynamic state for a checkpoint. The plan
    /// itself is *not* part of the state: it is a pure function of the
    /// `FaultSpec`, so a resuming process regenerates it and re-attaches
    /// via [`FaultInjector::restore`].
    pub fn state(&self) -> InjectorState {
        InjectorState {
            cursor: self.cursor,
            op: self.op,
            down_links: self.down_links.clone(),
            stalled: self.stalled.clone(),
            pending_msgs: self.pending_msgs.iter().copied().collect(),
            injected: self.injected,
        }
    }

    /// Rebuilds an injector mid-flight from a regenerated `plan` and the
    /// dynamic `state` captured by [`FaultInjector::state`].
    ///
    /// Returns `None` (instead of panicking) when the state is inconsistent
    /// with the plan — a cursor past the schedule end, which can only come
    /// from a corrupted or mismatched checkpoint.
    pub fn restore(plan: FaultPlan, state: InjectorState) -> Option<Self> {
        if state.cursor > plan.len() {
            return None;
        }
        Some(FaultInjector {
            plan,
            cursor: state.cursor,
            op: state.op,
            down_links: state.down_links,
            stalled: state.stalled,
            pending_msgs: state.pending_msgs.into_iter().collect(),
            injected: state.injected,
        })
    }
}

/// The dynamic half of a [`FaultInjector`], as captured by
/// [`FaultInjector::state`] — everything a checkpoint must persist beyond
/// the (regenerable) plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectorState {
    /// Index of the next scheduled fault to fire.
    pub cursor: usize,
    /// Last op passed to [`FaultInjector::advance`].
    pub op: u64,
    /// Active link outages as `(link, heal_at)`.
    pub down_links: Vec<(LinkId, u64)>,
    /// Active cache stalls as `(cache, heal_at)`.
    pub stalled: Vec<(usize, u64)>,
    /// Per-message faults not yet consumed, in queue order.
    pub pending_msgs: Vec<MsgFault>,
    /// Faults fired so far.
    pub injected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    #[test]
    fn outages_activate_and_heal_on_schedule() {
        let mut inj = FaultInjector::new(FaultPlan::empty());
        assert!(inj.is_idle());
        assert!(inj.advance(1).is_empty());

        // Hand-build a plan through the generator for a seed that is known
        // to include every kind (count is large enough to cover all 7).
        let spec = FaultSpec::new(3).count(64).horizon(64).mean_outage(4);
        let plan = FaultPlan::generate(&spec, 8, 3).unwrap();
        let mut inj = FaultInjector::new(plan.clone());
        let mut fired_total = 0;
        for op in 1..=200 {
            let fired = inj.advance(op);
            fired_total += fired.len();
            for f in &fired {
                if let FaultKind::LinkDown { link, heal_at } = f.kind {
                    if heal_at > op {
                        assert!(inj.link_is_down(link));
                        assert_eq!(inj.link_heal_at(link), Some(heal_at));
                    }
                }
            }
        }
        assert_eq!(fired_total, plan.len());
        assert_eq!(inj.injected(), plan.len() as u64);
        // Every outage in the plan healed within the horizon + 2*outage.
        assert!(!inj.any_link_down());
        assert!(inj.is_idle() || inj.has_pending_msg_faults());
    }

    #[test]
    fn advance_is_deterministic() {
        let spec = FaultSpec::new(11).count(32).horizon(100);
        let run = || {
            let plan = FaultPlan::generate(&spec, 16, 4).unwrap();
            let mut inj = FaultInjector::new(plan);
            let mut log = Vec::new();
            for op in 1..=150 {
                log.push(inj.advance(op));
                while let Some(f) = inj.take_msg_fault() {
                    log.push(vec![]);
                    let _ = f;
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn state_roundtrip_resumes_mid_plan() {
        let spec = FaultSpec::new(21).count(48).horizon(100).mean_outage(16);
        let plan = FaultPlan::generate(&spec, 8, 3).unwrap();
        let mut live = FaultInjector::new(plan.clone());
        for op in 1..=40 {
            live.advance(op);
        }
        let state = live.state();
        let mut resumed = FaultInjector::restore(plan.clone(), state).unwrap();
        for op in 41..=200 {
            assert_eq!(live.advance(op), resumed.advance(op));
            loop {
                let (a, b) = (live.take_msg_fault(), resumed.take_msg_fault());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
        assert_eq!(live.injected(), resumed.injected());
        assert_eq!(live.state(), resumed.state());
        // A cursor past the schedule end is rejected, not trusted.
        let mut bad = live.state();
        bad.cursor = plan.len() + 1;
        assert!(FaultInjector::restore(plan, bad).is_none());
    }

    #[test]
    fn msg_faults_queue_in_order() {
        let spec = FaultSpec::new(5).count(40).horizon(10);
        let plan = FaultPlan::generate(&spec, 8, 3).unwrap();
        let mut inj = FaultInjector::new(plan);
        inj.advance(10);
        let mut drained = 0;
        while inj.take_msg_fault().is_some() {
            drained += 1;
        }
        assert!(drained > 0, "40 faults over 10 ops must include msg faults");
        assert!(!inj.has_pending_msg_faults());
    }
}
