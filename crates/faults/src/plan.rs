//! Fault specification and the deterministic schedule generated from it.

use tmc_omeganet::LinkId;
use tmc_simcore::SimRng;

use crate::error::FaultError;

/// Bounded retry with exponential backoff, in **simulated** cycles.
///
/// A transaction whose message path is blocked times out and retries up to
/// `max_retries` times; attempt `k` (zero-based) backs off
/// `backoff_base << k` cycles before probing again. Outages heal at op
/// granularity, so retries against a hard outage exhaust deterministically
/// and the engine falls back to graceful degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RetryPolicy {
    /// Retry attempts after the first timeout (≤ 32).
    pub max_retries: u32,
    /// Base backoff in simulated cycles (attempt `k` waits `base << k`).
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: 8,
        }
    }
}

impl RetryPolicy {
    /// Largest shift applied by [`RetryPolicy::backoff_cycles`]. Attempts
    /// past this clamp to `backoff_base << BACKOFF_SHIFT_CAP`: any higher
    /// shift would make `1u64 << attempt` undefined behavior territory
    /// (shift ≥ 64) long before the simulated-cycle budget matters, and
    /// `validate` already bounds `max_retries` to the same cap.
    pub const BACKOFF_SHIFT_CAP: u32 = 32;

    /// Backoff before (zero-based) retry `attempt`. The shift is clamped at
    /// [`RetryPolicy::BACKOFF_SHIFT_CAP`] and the multiply saturates, so
    /// absurd attempt counts (or an absurd base) can neither overflow nor
    /// panic — they pin at the cap.
    pub fn backoff_cycles(self, attempt: u32) -> u64 {
        self.backoff_base
            .saturating_mul(1u64 << attempt.min(Self::BACKOFF_SHIFT_CAP))
    }
}

/// One concrete fault, ready to fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// A network link goes out of service until op `heal_at`; every route
    /// crossing it is unreachable in the meantime.
    LinkDown {
        /// The dead link.
        link: LinkId,
        /// First op at which the link carries traffic again.
        heal_at: u64,
    },
    /// A cache stops answering until op `heal_at`; the engine quarantines
    /// it (flush + present-vector scrub) and serves its processor uncached.
    CacheStall {
        /// The stalled cache.
        cache: usize,
        /// First op at which the cache answers again.
        heal_at: u64,
    },
    /// The next protocol message is lost in the network and must be
    /// retransmitted (its route is billed twice).
    MsgDrop,
    /// The next protocol message is duplicated in flight (billed twice;
    /// the protocol's transactions are idempotent at the receiver).
    MsgDup,
    /// The next protocol message is delayed by `cycles` of simulated time.
    MsgDelay {
        /// Added latency in simulated cycles.
        cycles: u64,
    },
    /// A single bit of a resident cache line flips; the engine models
    /// detection + repair (ECC scrub in place, or a refetch from the
    /// owning cache).
    BitFlip {
        /// The affected cache.
        cache: usize,
        /// Deterministic selector for which resident line is hit.
        pick: u64,
    },
    /// The next `count` ownership offers (replacement case 5b) are
    /// negatively acknowledged; handoff still terminates on the final
    /// candidate.
    HandoffNak {
        /// Offers to refuse.
        count: usize,
    },
}

/// A fault and the simulated op index at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduledFault {
    /// Op index (1-based public-transaction count) at which the fault fires.
    pub at: u64,
    /// What fires.
    pub kind: FaultKind,
}

/// Seed-driven fault campaign parameters.
///
/// Lives in `tmc_core::SystemConfig` so every engine can see (and, for the
/// sharded/baseline engines, explicitly reject) fault-enabled configs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultSpec {
    /// Seed for the schedule (and nothing else — workloads seed separately).
    pub seed: u64,
    /// Total faults to schedule. Zero means an empty plan: the injector
    /// never fires and the run is bit-identical to a fault-free one.
    pub count: usize,
    /// Op-index window `1..=horizon` over which fire times are drawn.
    pub horizon: u64,
    /// Mean outage length in ops for link-down and cache-stall faults
    /// (durations are drawn uniformly from `1..=2*mean_outage`).
    pub mean_outage: u64,
    /// Timeout/retry behavior for transactions that hit an outage.
    pub retry: RetryPolicy,
}

impl FaultSpec {
    /// A small default campaign: 8 faults over 4096 ops, mean outage 64
    /// ops, default retry policy.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            count: 8,
            horizon: 4096,
            mean_outage: 64,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the number of faults to schedule.
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the op window over which faults fire.
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the mean outage length in ops.
    pub fn mean_outage(mut self, ops: u64) -> Self {
        self.mean_outage = ops;
        self
    }

    /// Sets the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Checks the spec for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::BadSpec`] for a zero horizon or zero mean
    /// outage with a nonzero fault count, or an excessive retry count.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.count > 0 && self.horizon == 0 {
            return Err(FaultError::BadSpec(
                "horizon must be >= 1 when faults are scheduled".into(),
            ));
        }
        if self.count > 0 && self.mean_outage == 0 {
            return Err(FaultError::BadSpec(
                "mean_outage must be >= 1 when faults are scheduled".into(),
            ));
        }
        if self.retry.max_retries > 32 {
            return Err(FaultError::BadSpec(format!(
                "max_retries {} exceeds the supported bound of 32",
                self.retry.max_retries
            )));
        }
        Ok(())
    }
}

/// The deterministic schedule generated from a [`FaultSpec`]: scheduled
/// faults sorted by fire op (ties keep generation order).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
    retry: RetryPolicy,
}

impl FaultPlan {
    /// Generates the schedule for a machine with `ports` network ports and
    /// link layers `0..=link_layers` (i.e. `m + 1` layers for an m-stage
    /// omega network). Deterministic in `spec` alone: the spec seed is
    /// forked into decorrelated streams for fire times and fault shapes.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::BadSpec`] if `spec` fails
    /// [`FaultSpec::validate`] or `ports` is zero.
    pub fn generate(spec: &FaultSpec, ports: usize, link_layers: u32) -> Result<Self, FaultError> {
        spec.validate()?;
        if ports == 0 {
            return Err(FaultError::BadSpec("ports must be >= 1".into()));
        }
        let base = SimRng::seed_from(spec.seed);
        let mut when = base.fork(0x5eed_0001);
        let mut what = base.fork(0x5eed_0002);
        let mut faults = Vec::with_capacity(spec.count);
        for _ in 0..spec.count {
            let at = when.gen_range(1..=spec.horizon.max(1));
            let outage = what.gen_range(1..=2 * spec.mean_outage.max(1));
            let kind = match what.gen_range(0u32..7) {
                0 => FaultKind::LinkDown {
                    link: LinkId {
                        layer: what.gen_range(0..=link_layers),
                        line: what.gen_range(0..ports),
                    },
                    heal_at: at + outage,
                },
                1 => FaultKind::CacheStall {
                    cache: what.gen_range(0..ports),
                    heal_at: at + outage,
                },
                2 => FaultKind::MsgDrop,
                3 => FaultKind::MsgDup,
                4 => FaultKind::MsgDelay {
                    cycles: what.gen_range(1..=4 * spec.retry.backoff_base.max(1)),
                },
                5 => FaultKind::BitFlip {
                    cache: what.gen_range(0..ports),
                    pick: what.next_u64(),
                },
                _ => FaultKind::HandoffNak {
                    count: what.gen_range(1..=3usize),
                },
            };
            faults.push(ScheduledFault { at, kind });
        }
        // Stable sort: equal fire ops keep generation order, so the
        // schedule is a pure function of the spec.
        faults.sort_by_key(|f| f.at);
        Ok(FaultPlan {
            faults,
            retry: spec.retry,
        })
    }

    /// An empty plan (never fires).
    pub fn empty() -> Self {
        FaultPlan {
            faults: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The schedule, sorted by fire op.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// The retry policy the engine should apply.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let spec = FaultSpec::new(7).count(32).horizon(1000);
        let a = FaultPlan::generate(&spec, 16, 4).unwrap();
        let b = FaultPlan::generate(&spec, 16, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let c = FaultPlan::generate(&FaultSpec::new(8).count(32).horizon(1000), 16, 4).unwrap();
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn schedule_is_sorted_and_in_bounds() {
        let spec = FaultSpec::new(99).count(64).horizon(500).mean_outage(10);
        let plan = FaultPlan::generate(&spec, 8, 3).unwrap();
        let mut last = 0;
        for f in plan.faults() {
            assert!(f.at >= 1 && f.at <= 500);
            assert!(f.at >= last, "schedule must be sorted");
            last = f.at;
            match f.kind {
                FaultKind::LinkDown { link, heal_at } => {
                    assert!(link.layer <= 3 && link.line < 8);
                    assert!(heal_at > f.at);
                }
                FaultKind::CacheStall { cache, heal_at } => {
                    assert!(cache < 8);
                    assert!(heal_at > f.at);
                }
                FaultKind::MsgDelay { cycles } => assert!(cycles >= 1),
                FaultKind::HandoffNak { count } => assert!((1..=3).contains(&count)),
                FaultKind::MsgDrop | FaultKind::MsgDup | FaultKind::BitFlip { .. } => {}
            }
        }
    }

    #[test]
    fn zero_count_gives_an_empty_plan() {
        let spec = FaultSpec::new(1).count(0);
        let plan = FaultPlan::generate(&spec, 4, 2).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(FaultSpec::new(1).horizon(0).validate().is_err());
        assert!(FaultSpec::new(1).mean_outage(0).validate().is_err());
        let bad = FaultSpec::new(1).retry(RetryPolicy {
            max_retries: 33,
            backoff_base: 1,
        });
        assert!(bad.validate().is_err());
        // All three are fine with a zero fault count (except retries).
        assert!(FaultSpec::new(1).count(0).horizon(0).validate().is_ok());
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let r = RetryPolicy {
            max_retries: 3,
            backoff_base: 8,
        };
        assert_eq!(r.backoff_cycles(0), 8);
        assert_eq!(r.backoff_cycles(1), 16);
        assert_eq!(r.backoff_cycles(2), 32);
        assert!(r.backoff_cycles(200) >= r.backoff_cycles(32));
    }

    #[test]
    fn backoff_clamps_at_the_cap_for_huge_attempts() {
        let r = RetryPolicy {
            max_retries: 32,
            backoff_base: 8,
        };
        let cap = r.backoff_cycles(RetryPolicy::BACKOFF_SHIFT_CAP);
        assert_eq!(cap, 8u64 << 32);
        // Attempt ≥ 64 would be a shift-overflow panic without the clamp.
        assert_eq!(r.backoff_cycles(64), cap);
        assert_eq!(r.backoff_cycles(200), cap);
        assert_eq!(r.backoff_cycles(u32::MAX), cap);
        // A saturating base cannot overflow the multiply either.
        let huge = RetryPolicy {
            max_retries: 1,
            backoff_base: u64::MAX,
        };
        assert_eq!(huge.backoff_cycles(64), u64::MAX);
        assert_eq!(huge.backoff_cycles(0), u64::MAX);
    }
}
