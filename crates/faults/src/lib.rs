//! Deterministic fault injection for the two-mode coherence simulator.
//!
//! The paper's protocol assumes a perfectly reliable omega network. This
//! crate supplies the adversary: a seed-driven **fault plan** that injects
//! link outages, message drops/duplicates/delays, cache stalls and
//! single-bit cache-line flips into a run, plus the bookkeeping the
//! protocol engine needs to survive them (which outages are active, which
//! message faults are pending, when things heal).
//!
//! Everything is driven by [`tmc_simcore::SimRng`] and scheduled in
//! **simulated op order** — the index of the public transaction being
//! executed — never wall-clock time. Two runs with the same
//! [`FaultSpec`] therefore see byte-identical fault schedules and, because
//! the protocol engine reacts deterministically, byte-identical outcomes.
//! A spec with `count == 0` produces an empty plan whose injector never
//! fires, so a zero-fault run is bit-identical to a run with no fault
//! machinery attached at all (`tmc-bench/tests/chaos_determinism.rs` pins
//! exactly that).
//!
//! # Example
//!
//! ```
//! use tmc_faults::{FaultInjector, FaultPlan, FaultSpec};
//!
//! let spec = FaultSpec::new(42).count(4).horizon(100);
//! let plan = FaultPlan::generate(&spec, 8, 3).unwrap();
//! assert_eq!(plan.len(), 4);
//! let mut inj = FaultInjector::new(plan);
//! for op in 1..=100 {
//!     let fired = inj.advance(op);
//!     for f in &fired {
//!         assert!(f.at <= op);
//!     }
//! }
//! assert_eq!(inj.injected(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod injector;
pub mod plan;

pub use error::FaultError;
pub use injector::{FaultInjector, InjectorState, MsgFault};
pub use plan::{FaultKind, FaultPlan, FaultSpec, RetryPolicy, ScheduledFault};
