//! Error type for fault-plan construction and use.

use std::error::Error;
use std::fmt;

/// Errors surfaced by fault-plan validation and fault-aware engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A [`crate::FaultSpec`] field combination that cannot produce a
    /// well-defined schedule.
    BadSpec(String),
    /// Fault injection was requested from an engine that cannot honor its
    /// determinism contract under faults (e.g. the block-sharded parallel
    /// engine, whose shards share no global op order).
    Unsupported(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadSpec(why) => write!(f, "invalid fault spec: {why}"),
            FaultError::Unsupported(what) => {
                write!(f, "fault injection not supported here: {what}")
            }
        }
    }
}

impl Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FaultError::BadSpec("zero horizon".into());
        assert!(e.to_string().contains("zero horizon"));
        let e = FaultError::Unsupported("sharded runs".into());
        assert!(e.to_string().contains("sharded runs"));
    }
}
