//! The no-cache baseline (eq. 9).

use tmc_memsys::{MainMemory, ModuleMap, MsgSizing, WordAddr};
use tmc_obs::{ProtocolEvent, Tracer};
use tmc_omeganet::{Omega, TrafficMatrix};
use tmc_simcore::CounterSet;

use crate::CoherentSystem;

/// Every reference goes to the memory module: a read is a request plus a
/// datum reply (two network traversals), a write is a single datum-bearing
/// message — exactly the costs behind eq. 9,
/// `CC_NC = (1−w)·2·CC₁ + w·CC₁`.
#[derive(Debug)]
pub struct NoCacheSystem {
    net: Omega,
    traffic: TrafficMatrix,
    memory: MainMemory,
    modules: ModuleMap,
    sizing: MsgSizing,
    counters: CounterSet,
    tracer: Tracer,
    n_procs: usize,
}

impl NoCacheSystem {
    /// Builds the baseline for an `n_procs`-port machine with default
    /// message sizing.
    ///
    /// # Panics
    ///
    /// Panics unless `n_procs` is a power of two in `2..=65536`.
    pub fn new(n_procs: usize) -> Self {
        Self::with_sizing(n_procs, MsgSizing::default())
    }

    /// Builds the baseline with explicit message sizing.
    ///
    /// # Panics
    ///
    /// Panics unless `n_procs` is a power of two in `2..=65536`.
    pub fn with_sizing(n_procs: usize, sizing: MsgSizing) -> Self {
        let net = Omega::with_ports(n_procs).expect("valid port count");
        assert_eq!(net.ports(), n_procs, "port count must be a power of two");
        let traffic = TrafficMatrix::new(&net);
        NoCacheSystem {
            memory: MainMemory::new(tmc_memsys::BlockSpec::new(
                sizing.block_words.trailing_zeros(),
            )),
            modules: ModuleMap::new(n_procs),
            counters: CounterSet::new(),
            tracer: Tracer::new(),
            n_procs,
            sizing,
            net,
            traffic,
        }
    }

    fn send(&mut self, from: usize, to: usize, bits: u64) {
        let r = self
            .net
            .unicast(from, to, bits, &mut self.traffic)
            .expect("valid ports");
        self.counters.add("bits_total", r.cost_bits);
        self.counters.incr("msgs_total");
    }

    fn locate(&self, addr: WordAddr) -> (tmc_memsys::BlockAddr, usize, usize) {
        let spec = self.memory.spec();
        let block = spec.block_of(addr);
        (block, spec.offset_of(addr), self.modules.module_of(block))
    }
}

impl CoherentSystem for NoCacheSystem {
    fn name(&self) -> &'static str {
        "no-cache"
    }

    fn read(&mut self, proc: usize, addr: WordAddr) -> u64 {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let (block, offset, home) = self.locate(addr);
        self.send(proc, home, self.sizing.request_bits());
        self.send(home, proc, self.sizing.datum_bits());
        self.counters.incr("reads");
        let value = self.memory.read_block(block)[offset];
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Read {
                proc,
                addr,
                value,
                hit: false,
                cost_bits,
                latency: None,
                mode: None,
            });
        }
        value
    }

    fn write(&mut self, proc: usize, addr: WordAddr, value: u64) {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let (block, offset, home) = self.locate(addr);
        self.send(proc, home, self.sizing.update_bits());
        self.counters.incr("writes");
        let mut data = self.memory.block_data(block);
        data.set_word(offset, value);
        self.memory.write_block(block, &data);
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Write {
                proc,
                addr,
                value,
                hit: false,
                cost_bits,
                latency: None,
                mode: None,
            });
        }
    }

    fn total_traffic_bits(&self) -> u64 {
        self.traffic.total_bits()
    }

    fn counters(&self) -> &CounterSet {
        &self.counters
    }

    fn flush(&mut self) {
        // Nothing cached: memory is always current.
    }

    fn peek_word(&self, addr: WordAddr) -> u64 {
        let (block, offset, _) = self.locate(addr);
        self.memory.read_block(block)[offset]
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    fn drain_trace(&mut self) -> Vec<ProtocolEvent> {
        self.tracer.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_through_memory() {
        let mut sys = NoCacheSystem::new(4);
        sys.write(0, WordAddr::new(10), 42);
        assert_eq!(sys.read(3, WordAddr::new(10)), 42);
        assert_eq!(sys.read(3, WordAddr::new(11)), 0);
        assert_eq!(sys.peek_word(WordAddr::new(10)), 42);
    }

    #[test]
    fn every_reference_costs_traffic() {
        let mut sys = NoCacheSystem::new(4);
        let t0 = sys.total_traffic_bits();
        sys.read(0, WordAddr::new(0));
        let t1 = sys.total_traffic_bits();
        sys.read(0, WordAddr::new(0)); // same word: still remote
        let t2 = sys.total_traffic_bits();
        assert!(t1 > t0);
        assert_eq!(t2 - t1, t1 - t0, "no caching: identical cost each time");
    }

    #[test]
    fn reads_take_two_traversals_writes_one() {
        // Eq. 9's structure: a read is request + reply (two network
        // traversals), a write is a single datum-bearing message.
        let mut sys = NoCacheSystem::new(16);
        let a = WordAddr::new(0);
        let m0 = sys.counters().get("msgs_total");
        sys.read(3, a);
        assert_eq!(sys.counters().get("msgs_total") - m0, 2);
        let m0 = sys.counters().get("msgs_total");
        sys.write(3, a, 1);
        assert_eq!(sys.counters().get("msgs_total") - m0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_processor() {
        NoCacheSystem::new(4).read(4, WordAddr::new(0));
    }
}
