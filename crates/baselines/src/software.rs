//! The §1 software approach: blocks are tagged cacheable or noncacheable
//! by software; there is no coherence hardware at all.
//!
//! "In the software approach, memory blocks are tagged as cacheable or
//! noncacheable depending on the access pattern to shared data. … They all
//! suffer from high cache miss ratio for shared read-write data structures
//! … Another disadvantage is that the cache system as viewed by the
//! software is not coherent; the user (or compiler) is responsible for
//! tagging data."
//!
//! Accordingly: noncacheable blocks behave like [`crate::NoCacheSystem`];
//! cacheable blocks are cached privately with **no consistency actions
//! whatsoever** — if software mis-tags a shared read–write block as
//! cacheable, the system silently returns stale data, exactly the hazard
//! the paper criticizes (and a test demonstrates).

use std::collections::HashSet;

use tmc_memsys::{
    BlockAddr, BlockData, BlockSpec, CacheArray, CacheGeometry, MainMemory, ModuleMap, MsgSizing,
    WordAddr,
};
use tmc_obs::{ProtocolEvent, Tracer};
use tmc_omeganet::{Omega, TrafficMatrix};
use tmc_simcore::CounterSet;

use crate::CoherentSystem;

#[derive(Debug, Clone)]
struct Line {
    data: BlockData,
    dirty: bool,
}

/// The software-tagged system.
///
/// # Example
///
/// ```
/// use tmc_baselines::{CoherentSystem, SoftwareMarkedSystem};
/// use tmc_memsys::{BlockAddr, WordAddr};
///
/// let mut sys = SoftwareMarkedSystem::new(4);
/// sys.mark_noncacheable(BlockAddr::new(0)); // shared read-write block
/// sys.write(0, WordAddr::new(0), 1);
/// assert_eq!(sys.read(3, WordAddr::new(0)), 1); // served by memory
/// ```
pub struct SoftwareMarkedSystem {
    net: Omega,
    traffic: TrafficMatrix,
    caches: Vec<CacheArray<Line>>,
    memory: MainMemory,
    noncacheable: HashSet<BlockAddr>,
    modules: ModuleMap,
    sizing: MsgSizing,
    spec: BlockSpec,
    counters: CounterSet,
    tracer: Tracer,
    n_procs: usize,
}

impl SoftwareMarkedSystem {
    /// Builds the system with everything cacheable by default; mark shared
    /// read–write blocks with [`SoftwareMarkedSystem::mark_noncacheable`].
    ///
    /// # Panics
    ///
    /// Panics unless `n_procs` is a power of two in `2..=65536`.
    pub fn new(n_procs: usize) -> Self {
        let net = Omega::with_ports(n_procs).expect("valid port count");
        assert_eq!(net.ports(), n_procs, "port count must be a power of two");
        let traffic = TrafficMatrix::new(&net);
        let spec = BlockSpec::new(2);
        SoftwareMarkedSystem {
            caches: (0..n_procs)
                .map(|_| CacheArray::new(CacheGeometry::new(64, 4)))
                .collect(),
            memory: MainMemory::new(spec),
            noncacheable: HashSet::new(),
            modules: ModuleMap::new(n_procs),
            sizing: MsgSizing::default(),
            counters: CounterSet::new(),
            tracer: Tracer::new(),
            n_procs,
            spec,
            net,
            traffic,
        }
    }

    /// Tags `block` noncacheable (what a correct compiler does for every
    /// shared read–write block).
    pub fn mark_noncacheable(&mut self, block: BlockAddr) {
        self.noncacheable.insert(block);
    }

    /// Whether `block` is tagged noncacheable.
    pub fn is_noncacheable(&self, block: BlockAddr) -> bool {
        self.noncacheable.contains(&block)
    }

    fn send(&mut self, from: usize, to: usize, bits: u64) {
        let r = self
            .net
            .unicast(from, to, bits, &mut self.traffic)
            .expect("valid ports");
        self.counters.add("bits_total", r.cost_bits);
        self.counters.incr("msgs_total");
    }

    fn home(&self, block: BlockAddr) -> usize {
        self.modules.module_of(block)
    }

    fn fill(&mut self, proc: usize, block: BlockAddr) {
        let home = self.home(block);
        self.send(proc, home, self.sizing.request_bits());
        self.send(home, proc, self.sizing.block_transfer_bits());
        let data = self.memory.block_data(block);
        if let Some((victim, _)) = self.caches[proc].would_evict(block) {
            self.evict(proc, victim);
        }
        self.caches[proc].insert(block, Line { data, dirty: false });
    }

    fn evict(&mut self, proc: usize, victim: BlockAddr) {
        let line = self.caches[proc].remove(victim).expect("victim exists");
        if line.dirty {
            let home = self.home(victim);
            self.send(proc, home, self.sizing.block_transfer_bits());
            self.counters.incr("writebacks");
            self.memory.write_block(victim, &line.data);
        }
    }
}

impl CoherentSystem for SoftwareMarkedSystem {
    fn name(&self) -> &'static str {
        "software-marked"
    }

    fn read(&mut self, proc: usize, addr: WordAddr) -> u64 {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        let (value, hit) = if self.is_noncacheable(block) {
            let home = self.home(block);
            self.send(proc, home, self.sizing.request_bits());
            self.send(home, proc, self.sizing.datum_bits());
            self.counters.incr("uncached_reads");
            (self.memory.read_block(block)[offset], false)
        } else {
            let hit = self.caches[proc].get(block).is_some();
            if hit {
                self.counters.incr("read_hit");
            } else {
                self.counters.incr("read_miss");
                self.fill(proc, block);
            }
            let value = self.caches[proc]
                .peek(block)
                .expect("resident")
                .data
                .word(offset);
            (value, hit)
        };
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Read {
                proc,
                addr,
                value,
                hit,
                cost_bits,
                latency: None,
                mode: None,
            });
        }
        value
    }

    fn write(&mut self, proc: usize, addr: WordAddr, value: u64) {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        let hit;
        if self.is_noncacheable(block) {
            hit = false;
            let home = self.home(block);
            self.send(proc, home, self.sizing.update_bits());
            self.counters.incr("uncached_writes");
            let mut data = self.memory.block_data(block);
            data.set_word(offset, value);
            self.memory.write_block(block, &data);
        } else {
            hit = self.caches[proc].get(block).is_some();
            if !hit {
                self.counters.incr("write_miss");
                self.fill(proc, block);
            }
            let line = self.caches[proc].peek_mut(block).expect("resident");
            line.data.set_word(offset, value);
            line.dirty = true;
        }
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Write {
                proc,
                addr,
                value,
                hit,
                cost_bits,
                latency: None,
                mode: None,
            });
        }
    }

    fn total_traffic_bits(&self) -> u64 {
        self.traffic.total_bits()
    }

    fn counters(&self) -> &CounterSet {
        &self.counters
    }

    fn flush(&mut self) {
        for proc in 0..self.n_procs {
            let dirty: Vec<BlockAddr> = self.caches[proc]
                .iter()
                .filter(|(_, l)| l.dirty)
                .map(|(b, _)| b)
                .collect();
            for block in dirty {
                let data = self.caches[proc].peek(block).expect("listed").data.clone();
                let home = self.home(block);
                self.send(proc, home, self.sizing.block_transfer_bits());
                self.counters.incr("writebacks");
                self.memory.write_block(block, &data);
                self.caches[proc].peek_mut(block).expect("listed").dirty = false;
            }
        }
    }

    fn peek_word(&self, addr: WordAddr) -> u64 {
        // With correct tagging, memory + any private copy agree for
        // noncacheable blocks; for cacheable blocks the last writer's copy
        // (if dirty) is authoritative — scan for it.
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        for cache in &self.caches {
            if let Some(line) = cache.peek(block) {
                if line.dirty {
                    return line.data.word(offset);
                }
            }
        }
        self.memory.read_block(block)[offset]
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    fn drain_trace(&mut self) -> Vec<ProtocolEvent> {
        self.tracer.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correctly_tagged_shared_blocks_stay_coherent() {
        let mut sys = SoftwareMarkedSystem::new(4);
        sys.mark_noncacheable(BlockAddr::new(0));
        sys.write(0, WordAddr::new(0), 1);
        assert_eq!(sys.read(1, WordAddr::new(0)), 1);
        sys.write(2, WordAddr::new(0), 2);
        assert_eq!(sys.read(3, WordAddr::new(0)), 2);
    }

    #[test]
    fn mis_tagged_shared_blocks_go_stale() {
        // The §1 hazard the paper criticizes, demonstrated: block 0 is
        // shared read-write but left cacheable.
        let mut sys = SoftwareMarkedSystem::new(4);
        sys.write(0, WordAddr::new(0), 1);
        sys.flush(); // value 1 reaches memory
        assert_eq!(sys.read(1, WordAddr::new(0)), 1); // proc 1 caches it
        sys.write(0, WordAddr::new(0), 2); // proc 0 writes privately
                                           // Proc 1 still sees the stale value — no hardware coherence.
        assert_eq!(sys.read(1, WordAddr::new(0)), 1);
    }

    #[test]
    fn private_cacheable_blocks_are_cheap() {
        let mut sys = SoftwareMarkedSystem::new(4);
        sys.write(0, WordAddr::new(0), 1);
        let t = sys.total_traffic_bits();
        for _ in 0..10 {
            assert_eq!(sys.read(0, WordAddr::new(0)), 1);
            sys.write(0, WordAddr::new(1), 9);
        }
        assert_eq!(sys.total_traffic_bits(), t, "hits are free");
    }

    #[test]
    fn noncacheable_blocks_pay_every_time() {
        let mut sys = SoftwareMarkedSystem::new(4);
        sys.mark_noncacheable(BlockAddr::new(0));
        sys.read(0, WordAddr::new(0));
        let t0 = sys.total_traffic_bits();
        sys.read(0, WordAddr::new(0));
        assert!(sys.total_traffic_bits() > t0);
        assert_eq!(sys.counters().get("uncached_reads"), 2);
    }

    #[test]
    fn eviction_writes_back_dirty_cacheable_lines() {
        let mut sys = SoftwareMarkedSystem::new(4);
        // Fill one set beyond capacity: blocks 0, 64, 128, 192, 256 share
        // set 0 of the 64-set cache.
        for i in 0..5u64 {
            sys.write(0, WordAddr::new(i * 64 * 4), i);
        }
        assert!(sys.counters().get("writebacks") >= 1);
        // The evicted block's value survives in memory.
        assert_eq!(sys.peek_word(WordAddr::new(0)), 0);
    }
}
