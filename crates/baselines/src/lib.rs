//! Baseline coherence protocols on the same simulated substrate.
//!
//! The paper's §4 compares its two-mode protocol against: keeping the block
//! at memory (no cache), the write-once protocol (modeled as a two-state
//! global Markov chain: shared ↔ exclusive with an invalidation multicast on
//! each shared→exclusive transition), a pure distributed-write protocol and
//! a pure global-read policy. This crate makes all of them runnable on the
//! identical network/memory substrate so measured traffic is apples to
//! apples:
//!
//! * [`NoCacheSystem`] — every reference crosses the network (eq. 9),
//! * [`DirectoryInvalidateSystem`] — a Censier–Feautrier full-map
//!   write-invalidate directory; globally it behaves exactly like the
//!   paper's write-once Markov model (eq. 10): blocks oscillate between
//!   shared (copies everywhere) and exclusive (one writer, everyone else
//!   invalidated),
//! * [`UpdateOnlySystem`] — a Dragon-flavoured always-update protocol
//!   (eq. 11): reads are local once cached, every write multicasts,
//! * fixed-mode instances of the paper's own protocol
//!   ([`two_mode_fixed`]) — pure distributed-write and pure global-read
//!   (eqs. 11 and 12) as degenerate cases of [`tmc_core::System`].
//!
//! All of them implement [`CoherentSystem`], the common harness interface.
//!
//! # Example
//!
//! ```
//! use tmc_baselines::{CoherentSystem, NoCacheSystem};
//! use tmc_memsys::WordAddr;
//!
//! let mut sys = NoCacheSystem::new(8);
//! sys.write(0, WordAddr::new(4), 9);
//! assert_eq!(sys.read(5, WordAddr::new(4)), 9);
//! assert!(sys.total_traffic_bits() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod no_cache;
pub mod software;
pub mod two_mode;
pub mod update;

pub use directory::DirectoryInvalidateSystem;
pub use no_cache::NoCacheSystem;
pub use software::SoftwareMarkedSystem;
pub use two_mode::{two_mode_adaptive, two_mode_fixed, TwoModeAdapter};
pub use update::UpdateOnlySystem;

use tmc_memsys::WordAddr;
use tmc_obs::ProtocolEvent;
use tmc_simcore::CounterSet;

/// The common harness interface every protocol engine implements.
///
/// Implementations must be sequentially consistent under the harness's
/// one-reference-at-a-time execution: a read returns exactly the last value
/// written to that word.
pub trait CoherentSystem {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Processor `proc` reads `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    fn read(&mut self, proc: usize, addr: WordAddr) -> u64;

    /// Processor `proc` writes `value` to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    fn write(&mut self, proc: usize, addr: WordAddr, value: u64);

    /// Total bits pushed across network links so far.
    fn total_traffic_bits(&self) -> u64;

    /// Event counters.
    fn counters(&self) -> &CounterSet;

    /// Writes every dirty copy back to memory (end of run).
    fn flush(&mut self);

    /// Oracle view of a word (no traffic generated).
    fn peek_word(&self, addr: WordAddr) -> u64;

    /// Turns structured protocol-event tracing on or off. Engines without a
    /// tracer ignore the request and stay silent.
    fn set_tracing(&mut self, _on: bool) {}

    /// Whether structured tracing is currently recording.
    fn tracing_enabled(&self) -> bool {
        false
    }

    /// Takes every recorded protocol event (empty for engines without a
    /// tracer, or with tracing off).
    fn drain_trace(&mut self) -> Vec<ProtocolEvent> {
        Vec::new()
    }
}
