//! A Censier–Feautrier full-map write-invalidate directory — the
//! write-once-equivalent baseline.
//!
//! Globally a block oscillates between *shared* (copies in many caches,
//! memory current) and *exclusive* (one dirty copy, everyone else
//! invalidated), which is exactly the two-state Markov chain the paper uses
//! to model write-once (Figure 7 / eq. 10): each shared→exclusive
//! transition multicasts an invalidation to the sharers, each
//! exclusive→shared transition moves the block.
//!
//! The directory stores a full present-bit vector per block at the memory
//! module — the `O(N·M)` state cost the paper's distributed scheme avoids.

use std::collections::HashMap;

use tmc_memsys::{
    BlockAddr, BlockData, BlockSpec, CacheArray, CacheGeometry, MainMemory, ModuleMap, MsgSizing,
    WordAddr,
};
use tmc_obs::{ProtocolEvent, Tracer};
use tmc_omeganet::{DestSet, Omega, SchemeKind, TrafficMatrix};
use tmc_simcore::CounterSet;

use crate::CoherentSystem;

/// Per-line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Clean copy, memory current, others may share.
    Shared,
    /// The only copy, dirty.
    Exclusive,
}

#[derive(Debug, Clone)]
struct Line {
    state: LineState,
    data: BlockData,
}

#[derive(Debug, Clone, Default)]
struct DirEntry {
    sharers: Vec<usize>,
    dirty: bool,
}

/// The full-map write-invalidate system.
///
/// # Example
///
/// ```
/// use tmc_baselines::{CoherentSystem, DirectoryInvalidateSystem};
/// use tmc_memsys::WordAddr;
///
/// let mut sys = DirectoryInvalidateSystem::new(8);
/// sys.write(0, WordAddr::new(0), 5);
/// assert_eq!(sys.read(3, WordAddr::new(0)), 5);
/// sys.write(1, WordAddr::new(0), 6); // invalidates the other copies
/// assert_eq!(sys.read(3, WordAddr::new(0)), 6);
/// ```
pub struct DirectoryInvalidateSystem {
    net: Omega,
    traffic: TrafficMatrix,
    caches: Vec<CacheArray<Line>>,
    memory: MainMemory,
    directory: HashMap<BlockAddr, DirEntry>,
    modules: ModuleMap,
    sizing: MsgSizing,
    spec: BlockSpec,
    counters: CounterSet,
    tracer: Tracer,
    multicast: SchemeKind,
    n_procs: usize,
}

impl DirectoryInvalidateSystem {
    /// Builds the baseline with default geometry (64×4 caches, 4-word
    /// blocks, combined multicast).
    ///
    /// # Panics
    ///
    /// Panics unless `n_procs` is a power of two in `2..=65536`.
    pub fn new(n_procs: usize) -> Self {
        Self::with_geometry(n_procs, CacheGeometry::new(64, 4))
    }

    /// Builds the baseline with an explicit cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `n_procs` is a power of two in `2..=65536`.
    pub fn with_geometry(n_procs: usize, geometry: CacheGeometry) -> Self {
        let net = Omega::with_ports(n_procs).expect("valid port count");
        assert_eq!(net.ports(), n_procs, "port count must be a power of two");
        let traffic = TrafficMatrix::new(&net);
        let spec = BlockSpec::new(2);
        DirectoryInvalidateSystem {
            caches: (0..n_procs).map(|_| CacheArray::new(geometry)).collect(),
            memory: MainMemory::new(spec),
            directory: HashMap::new(),
            modules: ModuleMap::new(n_procs),
            sizing: MsgSizing::default(),
            counters: CounterSet::new(),
            tracer: Tracer::new(),
            multicast: SchemeKind::Combined,
            n_procs,
            spec,
            net,
            traffic,
        }
    }

    /// Selects the invalidation multicast scheme.
    pub fn multicast(mut self, scheme: SchemeKind) -> Self {
        self.multicast = scheme;
        self
    }

    fn send(&mut self, from: usize, to: usize, bits: u64) {
        let r = self
            .net
            .unicast(from, to, bits, &mut self.traffic)
            .expect("valid ports");
        self.counters.add("bits_total", r.cost_bits);
        self.counters.incr("msgs_total");
    }

    fn mcast(&mut self, from: usize, dests: &DestSet, bits: u64) -> Vec<usize> {
        let r = self
            .net
            .multicast(self.multicast, from, dests, bits, &mut self.traffic)
            .expect("valid dests");
        self.counters.add("bits_total", r.cost_bits);
        self.counters.incr("msgs_total");
        r.delivered
    }

    fn home(&self, block: BlockAddr) -> usize {
        self.modules.module_of(block)
    }

    /// Invalidates every sharer except `keep`; returns nothing. Sharer list
    /// in the directory is reduced to `keep` (if it was a sharer).
    fn invalidate_others(&mut self, block: BlockAddr, keep: usize) {
        let home = self.home(block);
        let entry = self.directory.entry(block).or_default();
        let others: Vec<usize> = entry
            .sharers
            .iter()
            .copied()
            .filter(|&c| c != keep)
            .collect();
        entry.sharers.retain(|&c| c == keep);
        if others.is_empty() {
            return;
        }
        self.counters.incr("invalidations_multicast");
        let dests = DestSet::from_ports(self.n_procs, others).expect("valid ports");
        let delivered = self.mcast(home, &dests, self.sizing.invalidate_bits());
        for d in delivered {
            if d != keep {
                self.caches[d].remove(block);
            }
        }
    }

    /// If the block is dirty somewhere (other than `requester`), recalls it
    /// to memory. `drop_holder` also invalidates the holder's copy.
    fn recall_if_dirty(&mut self, block: BlockAddr, drop_holder: bool) {
        let home = self.home(block);
        let holder = {
            let entry = self.directory.entry(block).or_default();
            if !entry.dirty {
                return;
            }
            debug_assert_eq!(entry.sharers.len(), 1, "dirty implies one holder");
            entry.sharers[0]
        };
        self.counters.incr("dirty_recalls");
        self.send(home, holder, self.sizing.request_bits());
        let data = self.caches[holder]
            .peek(block)
            .expect("directory says holder has it")
            .data
            .clone();
        self.send(holder, home, self.sizing.block_transfer_bits());
        self.memory.write_block(block, &data);
        let entry = self.directory.get_mut(&block).expect("present");
        entry.dirty = false;
        if drop_holder {
            self.caches[holder].remove(block);
            entry.sharers.clear();
        } else if let Some(line) = self.caches[holder].peek_mut(block) {
            line.state = LineState::Shared;
        }
    }

    /// Installs a line, running replacement actions for the evicted victim.
    fn install(&mut self, proc: usize, block: BlockAddr, line: Line) {
        if let Some((victim, _)) = self.caches[proc].would_evict(block) {
            self.replace(proc, victim);
        }
        let evicted = self.caches[proc].insert(block, line);
        debug_assert!(evicted.is_none());
    }

    fn replace(&mut self, proc: usize, victim: BlockAddr) {
        self.counters.incr("replacements");
        let home = self.home(victim);
        let line = self.caches[proc]
            .peek(victim)
            .expect("victim exists")
            .clone();
        match line.state {
            LineState::Exclusive => {
                self.send(proc, home, self.sizing.block_transfer_bits());
                self.counters.incr("writebacks");
                self.memory.write_block(victim, &line.data);
                let entry = self.directory.entry(victim).or_default();
                entry.dirty = false;
                entry.sharers.clear();
            }
            LineState::Shared => {
                self.send(proc, home, self.sizing.request_bits());
                let entry = self.directory.entry(victim).or_default();
                entry.sharers.retain(|&c| c != proc);
            }
        }
        self.caches[proc].remove(victim);
    }
}

impl CoherentSystem for DirectoryInvalidateSystem {
    fn name(&self) -> &'static str {
        "directory-invalidate"
    }

    fn read(&mut self, proc: usize, addr: WordAddr) -> u64 {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        let hit = self.caches[proc].get(block).is_some();
        let value = if hit {
            self.counters.incr("read_hit");
            self.caches[proc]
                .peek(block)
                .expect("hit verified")
                .data
                .word(offset)
        } else {
            self.counters.incr("read_miss");
            let home = self.home(block);
            self.send(proc, home, self.sizing.request_bits());
            self.recall_if_dirty(block, false);
            let data = self.memory.block_data(block);
            self.send(home, proc, self.sizing.block_transfer_bits());
            let value = data.word(offset);
            self.install(
                proc,
                block,
                Line {
                    state: LineState::Shared,
                    data,
                },
            );
            let entry = self.directory.entry(block).or_default();
            if !entry.sharers.contains(&proc) {
                entry.sharers.push(proc);
            }
            value
        };
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Read {
                proc,
                addr,
                value,
                hit,
                cost_bits,
                latency: None,
                mode: None,
            });
        }
        value
    }

    fn write(&mut self, proc: usize, addr: WordAddr, value: u64) {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        let home = self.home(block);
        let state = self.caches[proc].get(block).map(|l| l.state);
        match state {
            Some(LineState::Exclusive) => {
                self.counters.incr("write_hit_exclusive");
            }
            Some(LineState::Shared) => {
                // Upgrade: invalidate the other sharers.
                self.counters.incr("write_upgrade");
                self.send(proc, home, self.sizing.request_bits());
                self.invalidate_others(block, proc);
                let entry = self.directory.entry(block).or_default();
                entry.dirty = true;
                if !entry.sharers.contains(&proc) {
                    entry.sharers.push(proc);
                }
                self.caches[proc].peek_mut(block).expect("shared hit").state = LineState::Exclusive;
            }
            None => {
                self.counters.incr("write_miss");
                self.send(proc, home, self.sizing.request_bits());
                self.recall_if_dirty(block, true);
                self.invalidate_others(block, usize::MAX);
                let data = self.memory.block_data(block);
                self.send(home, proc, self.sizing.block_transfer_bits());
                self.install(
                    proc,
                    block,
                    Line {
                        state: LineState::Exclusive,
                        data,
                    },
                );
                let entry = self.directory.entry(block).or_default();
                entry.sharers = vec![proc];
                entry.dirty = true;
            }
        }
        let line = self.caches[proc].peek_mut(block).expect("resident");
        line.data.set_word(offset, value);
        debug_assert_eq!(line.state, LineState::Exclusive);
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Write {
                proc,
                addr,
                value,
                hit: state.is_some(),
                cost_bits,
                latency: None,
                mode: None,
            });
        }
    }

    fn total_traffic_bits(&self) -> u64 {
        self.traffic.total_bits()
    }

    fn counters(&self) -> &CounterSet {
        &self.counters
    }

    fn flush(&mut self) {
        for proc in 0..self.n_procs {
            let dirty: Vec<BlockAddr> = self.caches[proc]
                .iter()
                .filter(|(_, l)| l.state == LineState::Exclusive)
                .map(|(b, _)| b)
                .collect();
            for block in dirty {
                let home = self.home(block);
                let data = self.caches[proc].peek(block).expect("listed").data.clone();
                self.send(proc, home, self.sizing.block_transfer_bits());
                self.counters.incr("writebacks");
                self.memory.write_block(block, &data);
                self.caches[proc].peek_mut(block).expect("listed").state = LineState::Shared;
                self.directory.entry(block).or_default().dirty = false;
            }
        }
    }

    fn peek_word(&self, addr: WordAddr) -> u64 {
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        if let Some(entry) = self.directory.get(&block) {
            if entry.dirty {
                let holder = entry.sharers[0];
                if let Some(line) = self.caches[holder].peek(block) {
                    return line.data.word(offset);
                }
            }
        }
        self.memory.read_block(block)[offset]
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    fn drain_trace(&mut self) -> Vec<ProtocolEvent> {
        self.tracer.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_to_exclusive_invalidates() {
        let mut sys = DirectoryInvalidateSystem::new(4);
        sys.write(0, WordAddr::new(0), 1);
        assert_eq!(sys.read(1, WordAddr::new(0)), 1);
        assert_eq!(sys.read(2, WordAddr::new(0)), 1);
        let inv_before = sys.counters().get("invalidations_multicast");
        sys.write(0, WordAddr::new(0), 2);
        assert!(sys.counters().get("invalidations_multicast") > inv_before);
        // The invalidated sharers re-fetch and see the new value.
        assert_eq!(sys.read(1, WordAddr::new(0)), 2);
        assert_eq!(sys.read(2, WordAddr::new(0)), 2);
    }

    #[test]
    fn read_hits_are_free_when_shared() {
        let mut sys = DirectoryInvalidateSystem::new(4);
        sys.write(0, WordAddr::new(0), 1);
        sys.read(1, WordAddr::new(0));
        let t = sys.total_traffic_bits();
        sys.read(1, WordAddr::new(0));
        sys.read(1, WordAddr::new(1));
        assert_eq!(sys.total_traffic_bits(), t, "shared read hits are local");
    }

    #[test]
    fn dirty_recall_serves_latest_value() {
        let mut sys = DirectoryInvalidateSystem::new(4);
        sys.write(0, WordAddr::new(0), 7); // dirty at C0
        assert_eq!(sys.read(3, WordAddr::new(0)), 7, "recalled from C0");
        // Now shared; memory is current too.
        assert_eq!(sys.peek_word(WordAddr::new(0)), 7);
    }

    #[test]
    fn replacement_writes_back_dirty_lines() {
        let mut sys = DirectoryInvalidateSystem::with_geometry(4, CacheGeometry::new(1, 1));
        sys.write(0, WordAddr::new(0), 9);
        sys.write(0, WordAddr::new(4), 8); // evicts dirty block 0
        assert!(sys.counters().get("writebacks") >= 1);
        assert_eq!(sys.read(1, WordAddr::new(0)), 9);
    }

    #[test]
    fn oracle_random_run() {
        use tmc_simcore::SimRng;
        let mut sys = DirectoryInvalidateSystem::with_geometry(4, CacheGeometry::new(2, 1));
        let mut oracle = tmc_memsys::ReferenceMemory::new();
        let mut rng = SimRng::seed_from(5);
        for step in 0..2000 {
            let proc = rng.gen_range(0..4usize);
            let a = WordAddr::new(rng.gen_range(0..32u64));
            if rng.gen_bool(0.35) {
                let v = oracle.stamp();
                sys.write(proc, a, v);
                oracle.write(a, v);
            } else {
                assert_eq!(sys.read(proc, a), oracle.read(a), "step {step}");
            }
        }
        sys.flush();
        for (a, v) in oracle.iter() {
            assert_eq!(sys.peek_word(a), v);
        }
    }
}
