//! A Dragon-flavoured always-update protocol — the pure distributed-write
//! baseline (eq. 11).
//!
//! Once a cache holds a copy it keeps it; every write multicasts the new
//! word to all other copy holders, so reads are always local after the
//! first fill. Memory goes stale while a block has a "last writer"; read
//! misses are served by that writer through the home module.

use std::collections::HashMap;

use tmc_memsys::{
    BlockAddr, BlockData, BlockSpec, CacheArray, CacheGeometry, MainMemory, ModuleMap, MsgSizing,
    WordAddr,
};
use tmc_obs::{ProtocolEvent, Tracer};
use tmc_omeganet::{DestSet, Omega, SchemeKind, TrafficMatrix};
use tmc_simcore::CounterSet;

use crate::CoherentSystem;

#[derive(Debug, Clone)]
struct Line {
    data: BlockData,
}

#[derive(Debug, Clone, Default)]
struct DirEntry {
    sharers: Vec<usize>,
    /// The cache holding the authoritative copy while memory is stale.
    last_writer: Option<usize>,
}

/// The always-update system.
///
/// # Example
///
/// ```
/// use tmc_baselines::{CoherentSystem, UpdateOnlySystem};
/// use tmc_memsys::WordAddr;
///
/// let mut sys = UpdateOnlySystem::new(8);
/// sys.write(0, WordAddr::new(0), 1);
/// assert_eq!(sys.read(5, WordAddr::new(0)), 1); // takes a copy
/// sys.write(0, WordAddr::new(0), 2);            // update multicast
/// assert_eq!(sys.read(5, WordAddr::new(0)), 2); // served locally
/// ```
pub struct UpdateOnlySystem {
    net: Omega,
    traffic: TrafficMatrix,
    caches: Vec<CacheArray<Line>>,
    memory: MainMemory,
    directory: HashMap<BlockAddr, DirEntry>,
    modules: ModuleMap,
    sizing: MsgSizing,
    spec: BlockSpec,
    counters: CounterSet,
    tracer: Tracer,
    multicast: SchemeKind,
    n_procs: usize,
}

impl UpdateOnlySystem {
    /// Builds the baseline with default geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `n_procs` is a power of two in `2..=65536`.
    pub fn new(n_procs: usize) -> Self {
        Self::with_geometry(n_procs, CacheGeometry::new(64, 4))
    }

    /// Builds the baseline with an explicit cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `n_procs` is a power of two in `2..=65536`.
    pub fn with_geometry(n_procs: usize, geometry: CacheGeometry) -> Self {
        let net = Omega::with_ports(n_procs).expect("valid port count");
        assert_eq!(net.ports(), n_procs, "port count must be a power of two");
        let traffic = TrafficMatrix::new(&net);
        let spec = BlockSpec::new(2);
        UpdateOnlySystem {
            caches: (0..n_procs).map(|_| CacheArray::new(geometry)).collect(),
            memory: MainMemory::new(spec),
            directory: HashMap::new(),
            modules: ModuleMap::new(n_procs),
            sizing: MsgSizing::default(),
            counters: CounterSet::new(),
            tracer: Tracer::new(),
            multicast: SchemeKind::Combined,
            n_procs,
            spec,
            net,
            traffic,
        }
    }

    /// Selects the update multicast scheme.
    pub fn multicast(mut self, scheme: SchemeKind) -> Self {
        self.multicast = scheme;
        self
    }

    fn send(&mut self, from: usize, to: usize, bits: u64) {
        let r = self
            .net
            .unicast(from, to, bits, &mut self.traffic)
            .expect("valid ports");
        self.counters.add("bits_total", r.cost_bits);
        self.counters.incr("msgs_total");
    }

    fn home(&self, block: BlockAddr) -> usize {
        self.modules.module_of(block)
    }

    /// The current authoritative data for `block`.
    fn authoritative(&self, block: BlockAddr) -> BlockData {
        if let Some(entry) = self.directory.get(&block) {
            if let Some(w) = entry.last_writer {
                if let Some(line) = self.caches[w].peek(block) {
                    return line.data.clone();
                }
            }
        }
        self.memory.block_data(block)
    }

    fn install(&mut self, proc: usize, block: BlockAddr, line: Line) {
        if let Some((victim, _)) = self.caches[proc].would_evict(block) {
            self.replace(proc, victim);
        }
        let evicted = self.caches[proc].insert(block, line);
        debug_assert!(evicted.is_none());
    }

    fn replace(&mut self, proc: usize, victim: BlockAddr) {
        self.counters.incr("replacements");
        let home = self.home(victim);
        let is_writer = self
            .directory
            .get(&victim)
            .is_some_and(|e| e.last_writer == Some(proc));
        if is_writer {
            // Our copy is the authoritative one: write it back.
            let data = self.caches[proc]
                .peek(victim)
                .expect("resident")
                .data
                .clone();
            self.send(proc, home, self.sizing.block_transfer_bits());
            self.counters.incr("writebacks");
            self.memory.write_block(victim, &data);
        } else {
            self.send(proc, home, self.sizing.request_bits());
        }
        let entry = self.directory.entry(victim).or_default();
        entry.sharers.retain(|&c| c != proc);
        if entry.last_writer == Some(proc) {
            entry.last_writer = None;
        }
        self.caches[proc].remove(victim);
    }

    /// Fills `proc`'s cache with the block, generating the fill traffic.
    fn fill(&mut self, proc: usize, block: BlockAddr) {
        let home = self.home(block);
        self.send(proc, home, self.sizing.request_bits());
        let writer = self
            .directory
            .get(&block)
            .and_then(|e| e.last_writer)
            .filter(|&w| w != proc);
        let data = if let Some(w) = writer {
            // Memory is stale: forward to the last writer, which supplies
            // the block through the network.
            self.counters.incr("writer_supplies");
            self.send(home, w, self.sizing.request_bits());
            let data = self.caches[w]
                .peek(block)
                .expect("writer resident")
                .data
                .clone();
            self.send(w, proc, self.sizing.block_transfer_bits());
            data
        } else {
            self.send(home, proc, self.sizing.block_transfer_bits());
            self.memory.block_data(block)
        };
        self.install(proc, block, Line { data });
        let entry = self.directory.entry(block).or_default();
        if !entry.sharers.contains(&proc) {
            entry.sharers.push(proc);
        }
    }
}

impl CoherentSystem for UpdateOnlySystem {
    fn name(&self) -> &'static str {
        "update-only"
    }

    fn read(&mut self, proc: usize, addr: WordAddr) -> u64 {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        let hit = self.caches[proc].get(block).is_some();
        let value = if hit {
            self.counters.incr("read_hit");
            self.caches[proc]
                .peek(block)
                .expect("hit verified")
                .data
                .word(offset)
        } else {
            self.counters.incr("read_miss");
            self.fill(proc, block);
            self.caches[proc]
                .peek(block)
                .expect("just filled")
                .data
                .word(offset)
        };
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Read {
                proc,
                addr,
                value,
                hit,
                cost_bits,
                latency: None,
                mode: None,
            });
        }
        value
    }

    fn write(&mut self, proc: usize, addr: WordAddr, value: u64) {
        assert!(proc < self.n_procs, "processor out of range");
        let before = if self.tracer.is_enabled() {
            self.traffic.total_bits()
        } else {
            0
        };
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        let hit = self.caches[proc].get(block).is_some();
        if !hit {
            self.counters.incr("write_miss");
            self.fill(proc, block);
        }
        self.caches[proc]
            .peek_mut(block)
            .expect("resident")
            .data
            .set_word(offset, value);
        let others: Vec<usize> = self
            .directory
            .get(&block)
            .map(|e| e.sharers.iter().copied().filter(|&c| c != proc).collect())
            .unwrap_or_default();
        if !others.is_empty() {
            self.counters.incr("updates_multicast");
            let dests = DestSet::from_ports(self.n_procs, others).expect("valid");
            let r = self
                .net
                .multicast(
                    self.multicast,
                    proc,
                    &dests,
                    self.sizing.update_bits(),
                    &mut self.traffic,
                )
                .expect("valid");
            self.counters.add("bits_total", r.cost_bits);
            self.counters.incr("msgs_total");
            for d in r.delivered {
                if d == proc {
                    continue;
                }
                if let Some(line) = self.caches[d].peek_mut(block) {
                    line.data.set_word(offset, value);
                }
            }
        }
        let entry = self.directory.entry(block).or_default();
        entry.last_writer = Some(proc);
        if !entry.sharers.contains(&proc) {
            entry.sharers.push(proc);
        }
        if self.tracer.is_enabled() {
            let cost_bits = self.traffic.total_bits() - before;
            self.tracer.push(ProtocolEvent::Write {
                proc,
                addr,
                value,
                hit,
                cost_bits,
                latency: None,
                mode: None,
            });
        }
    }

    fn total_traffic_bits(&self) -> u64 {
        self.traffic.total_bits()
    }

    fn counters(&self) -> &CounterSet {
        &self.counters
    }

    fn flush(&mut self) {
        let dirty: Vec<(usize, BlockAddr)> = self
            .directory
            .iter()
            .filter_map(|(&b, e)| e.last_writer.map(|w| (w, b)))
            .collect();
        for (w, block) in dirty {
            if let Some(line) = self.caches[w].peek(block) {
                let data = line.data.clone();
                let home = self.home(block);
                self.send(w, home, self.sizing.block_transfer_bits());
                self.counters.incr("writebacks");
                self.memory.write_block(block, &data);
            }
            self.directory.get_mut(&block).expect("listed").last_writer = None;
        }
    }

    fn peek_word(&self, addr: WordAddr) -> u64 {
        let block = self.spec.block_of(addr);
        let offset = self.spec.offset_of(addr);
        self.authoritative(block).word(offset)
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    fn drain_trace(&mut self) -> Vec<ProtocolEvent> {
        self.tracer.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_local_after_first_fill() {
        let mut sys = UpdateOnlySystem::new(4);
        sys.write(0, WordAddr::new(0), 1);
        sys.read(1, WordAddr::new(0));
        let t = sys.total_traffic_bits();
        for _ in 0..10 {
            assert_eq!(sys.read(1, WordAddr::new(0)), 1);
        }
        assert_eq!(sys.total_traffic_bits(), t, "all hits");
    }

    #[test]
    fn every_write_updates_all_copies() {
        let mut sys = UpdateOnlySystem::new(4);
        sys.write(0, WordAddr::new(0), 1);
        sys.read(1, WordAddr::new(0));
        sys.read(2, WordAddr::new(0));
        let u = sys.counters().get("updates_multicast");
        sys.write(0, WordAddr::new(0), 2);
        assert_eq!(sys.counters().get("updates_multicast"), u + 1);
        assert_eq!(sys.read(1, WordAddr::new(0)), 2);
        assert_eq!(sys.read(2, WordAddr::new(0)), 2);
    }

    #[test]
    fn stale_memory_is_refreshed_through_the_writer() {
        let mut sys = UpdateOnlySystem::new(4);
        sys.write(0, WordAddr::new(0), 5);
        assert_eq!(sys.read(3, WordAddr::new(0)), 5);
        assert!(sys.counters().get("writer_supplies") >= 1);
    }

    #[test]
    fn writer_eviction_writes_back() {
        let mut sys = UpdateOnlySystem::with_geometry(4, CacheGeometry::new(1, 1));
        sys.write(0, WordAddr::new(0), 9);
        sys.write(0, WordAddr::new(4), 1); // evicts block 0
        assert!(sys.counters().get("writebacks") >= 1);
        assert_eq!(sys.read(2, WordAddr::new(0)), 9);
    }

    #[test]
    fn oracle_random_run() {
        use tmc_simcore::SimRng;
        let mut sys = UpdateOnlySystem::with_geometry(4, CacheGeometry::new(2, 1));
        let mut oracle = tmc_memsys::ReferenceMemory::new();
        let mut rng = SimRng::seed_from(17);
        for step in 0..2000 {
            let proc = rng.gen_range(0..4usize);
            let a = WordAddr::new(rng.gen_range(0..32u64));
            if rng.gen_bool(0.35) {
                let v = oracle.stamp();
                sys.write(proc, a, v);
                oracle.write(a, v);
            } else {
                assert_eq!(sys.read(proc, a), oracle.read(a), "step {step}");
            }
        }
        sys.flush();
        for (a, v) in oracle.iter() {
            assert_eq!(sys.peek_word(a), v);
        }
    }
}
