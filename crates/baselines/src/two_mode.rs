//! The paper's own protocol, adapted to the common harness interface —
//! including its degenerate fixed-mode instances, which are the paper's
//! "distributed write protocol" (eq. 11) and "global read" (eq. 12)
//! comparison points.

use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::WordAddr;
use tmc_simcore::CounterSet;

use crate::CoherentSystem;

/// Wraps [`tmc_core::System`] as a [`CoherentSystem`].
///
/// # Example
///
/// ```
/// use tmc_baselines::{two_mode_fixed, CoherentSystem};
/// use tmc_core::Mode;
/// use tmc_memsys::WordAddr;
///
/// let mut sys = two_mode_fixed(8, Mode::DistributedWrite);
/// sys.write(0, WordAddr::new(0), 1);
/// assert_eq!(sys.read(3, WordAddr::new(0)), 1);
/// ```
pub struct TwoModeAdapter {
    inner: System,
    name: &'static str,
}

impl TwoModeAdapter {
    /// Wraps an already-configured system under a report `name`.
    ///
    /// # Panics
    ///
    /// Panics if `inner` has fault injection enabled: the baseline harness
    /// is the paper's *fault-free* comparison surface, and its
    /// `expect`-based [`CoherentSystem`] calls could not surface recovery
    /// behaviour meaningfully. Run fault campaigns on [`System`] directly
    /// (see the `chaos` binary in `tmc-bench`).
    pub fn new(inner: System, name: &'static str) -> Self {
        assert!(
            !inner.faults_enabled(),
            "the baseline harness is fault-free; drive fault-injected systems directly"
        );
        TwoModeAdapter { inner, name }
    }

    /// The wrapped system.
    pub fn inner(&self) -> &System {
        &self.inner
    }

    /// Mutable access to the wrapped system (e.g. for `set_mode`).
    pub fn inner_mut(&mut self) -> &mut System {
        &mut self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> System {
        self.inner
    }
}

/// The two-mode protocol pinned to a single mode for every block.
///
/// # Panics
///
/// Panics if the configuration is rejected (non-power-of-two `n_procs`).
pub fn two_mode_fixed(n_procs: usize, mode: Mode) -> TwoModeAdapter {
    let sys = System::new(SystemConfig::new(n_procs).mode_policy(ModePolicy::Fixed(mode)))
        .expect("valid configuration");
    let name = match mode {
        Mode::DistributedWrite => "two-mode (fixed distributed-write)",
        Mode::GlobalRead => "two-mode (fixed global-read)",
    };
    TwoModeAdapter::new(sys, name)
}

/// The two-mode protocol with the §5 adaptive controller.
///
/// # Panics
///
/// Panics if the configuration is rejected (non-power-of-two `n_procs`).
pub fn two_mode_adaptive(n_procs: usize, window: u32) -> TwoModeAdapter {
    let sys = System::new(SystemConfig::new(n_procs).mode_policy(ModePolicy::Adaptive { window }))
        .expect("valid configuration");
    TwoModeAdapter::new(sys, "two-mode (adaptive)")
}

impl CoherentSystem for TwoModeAdapter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn read(&mut self, proc: usize, addr: WordAddr) -> u64 {
        self.inner
            .read(proc, addr)
            .expect("harness uses valid processors")
    }

    fn write(&mut self, proc: usize, addr: WordAddr, value: u64) {
        self.inner
            .write(proc, addr, value)
            .expect("harness uses valid processors");
    }

    fn total_traffic_bits(&self) -> u64 {
        self.inner.traffic().total_bits()
    }

    fn counters(&self) -> &CounterSet {
        self.inner.counters()
    }

    fn flush(&mut self) {
        self.inner.flush();
    }

    fn peek_word(&self, addr: WordAddr) -> u64 {
        self.inner.peek_word(addr)
    }

    fn set_tracing(&mut self, on: bool) {
        self.inner.set_tracing(on);
    }

    fn tracing_enabled(&self) -> bool {
        self.inner.tracing_enabled()
    }

    fn drain_trace(&mut self) -> Vec<tmc_obs::ProtocolEvent> {
        self.inner.drain_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_delegates_and_names() {
        let mut dw = two_mode_fixed(4, Mode::DistributedWrite);
        assert!(dw.name().contains("distributed-write"));
        dw.write(0, WordAddr::new(0), 3);
        assert_eq!(dw.read(1, WordAddr::new(0)), 3);
        assert!(dw.total_traffic_bits() > 0);
        dw.flush();
        assert_eq!(dw.peek_word(WordAddr::new(0)), 3);
        dw.inner().check_invariants().unwrap();

        let gr = two_mode_fixed(4, Mode::GlobalRead);
        assert!(gr.name().contains("global-read"));
        let ad = two_mode_adaptive(4, 32);
        assert!(ad.name().contains("adaptive"));
    }

    #[test]
    #[should_panic(expected = "baseline harness is fault-free")]
    fn fault_injected_systems_are_rejected() {
        let cfg = SystemConfig::new(4).faults(tmc_core::FaultSpec::new(1));
        let sys = System::new(cfg).unwrap();
        TwoModeAdapter::new(sys, "faulty");
    }
}
