//! Randomized oracle tests for every baseline protocol, driven by the
//! in-tree [`SimRng`] (no external crates needed).

use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem, NoCacheSystem,
    SoftwareMarkedSystem, UpdateOnlySystem,
};
use tmc_core::Mode;
use tmc_memsys::{BlockAddr, CacheGeometry, ReferenceMemory, WordAddr};
use tmc_simcore::SimRng;

const CASES: usize = 64;

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(usize, u64),
    Write(usize, u64),
}

fn arb_ops(rng: &mut SimRng) -> Vec<Op> {
    let len = rng.gen_range(1..250usize);
    (0..len)
        .map(|_| {
            let p = rng.gen_range(0..4usize);
            let a = rng.gen_range(0..24u64);
            if rng.gen_bool(0.5) {
                Op::Read(p, a)
            } else {
                Op::Write(p, a)
            }
        })
        .collect()
}

fn check(sys: &mut dyn CoherentSystem, ops: &[Op]) {
    let mut oracle = ReferenceMemory::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Read(p, a) => {
                let addr = WordAddr::new(a);
                assert_eq!(
                    sys.read(p, addr),
                    oracle.read(addr),
                    "{} step {i}",
                    sys.name()
                );
            }
            Op::Write(p, a) => {
                let addr = WordAddr::new(a);
                let v = oracle.stamp();
                sys.write(p, addr, v);
                oracle.write(addr, v);
            }
        }
    }
    sys.flush();
    for (a, v) in oracle.iter() {
        assert_eq!(sys.peek_word(a), v, "{} post-flush", sys.name());
    }
}

#[test]
fn no_cache_is_an_oracle() {
    let mut rng = SimRng::seed_from(0x90CA);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng);
        check(&mut NoCacheSystem::new(4), &ops);
    }
}

#[test]
fn directory_invalidate_matches_oracle() {
    let mut rng = SimRng::seed_from(0xD12EC);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng);
        check(
            &mut DirectoryInvalidateSystem::with_geometry(4, CacheGeometry::new(1, 2)),
            &ops,
        );
    }
}

#[test]
fn update_only_matches_oracle() {
    let mut rng = SimRng::seed_from(0x0DA7E);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng);
        check(
            &mut UpdateOnlySystem::with_geometry(4, CacheGeometry::new(1, 2)),
            &ops,
        );
    }
}

#[test]
fn two_mode_adapters_match_oracle() {
    let mut rng = SimRng::seed_from(0x7703E);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng);
        let mut sys: Box<dyn CoherentSystem> = match rng.gen_range(0..3usize) {
            0 => Box::new(two_mode_fixed(4, Mode::DistributedWrite)),
            1 => Box::new(two_mode_fixed(4, Mode::GlobalRead)),
            _ => Box::new(two_mode_adaptive(4, 16)),
        };
        check(sys.as_mut(), &ops);
    }
}

#[test]
fn software_marking_is_coherent_when_all_shared_blocks_are_tagged() {
    let mut rng = SimRng::seed_from(0x50F7);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng);
        let mut sys = SoftwareMarkedSystem::new(4);
        // Everything in this workload may be shared: mark it all.
        for b in 0..8 {
            sys.mark_noncacheable(BlockAddr::new(b));
        }
        check(&mut sys, &ops);
    }
}

/// Traffic sanity across all baselines: monotone, and zero only until
/// the first reference.
#[test]
fn traffic_is_monotone_everywhere() {
    let mut rng = SimRng::seed_from(0x7124F);
    for _ in 0..16 {
        let ops = arb_ops(&mut rng);
        let mut systems: Vec<Box<dyn CoherentSystem>> = vec![
            Box::new(NoCacheSystem::new(4)),
            Box::new(DirectoryInvalidateSystem::new(4)),
            Box::new(UpdateOnlySystem::new(4)),
            Box::new(two_mode_fixed(4, Mode::GlobalRead)),
        ];
        for sys in &mut systems {
            let mut last = 0;
            for &op in &ops {
                match op {
                    Op::Read(p, a) => {
                        sys.read(p, WordAddr::new(a));
                    }
                    Op::Write(p, a) => {
                        sys.write(p, WordAddr::new(a), 1);
                    }
                }
                let now = sys.total_traffic_bits();
                assert!(now >= last, "{} went backwards", sys.name());
                last = now;
            }
        }
    }
}
