//! Property-based oracle tests for every baseline protocol.

use proptest::prelude::*;
use tmc_baselines::{
    two_mode_adaptive, two_mode_fixed, CoherentSystem, DirectoryInvalidateSystem,
    NoCacheSystem, SoftwareMarkedSystem, UpdateOnlySystem,
};
use tmc_core::Mode;
use tmc_memsys::{BlockAddr, CacheGeometry, ReferenceMemory, WordAddr};

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(usize, u64),
    Write(usize, u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..4, 0u64..24).prop_map(|(p, a)| Op::Read(p, a)),
            (0usize..4, 0u64..24).prop_map(|(p, a)| Op::Write(p, a)),
        ],
        1..250,
    )
}

fn check(sys: &mut dyn CoherentSystem, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut oracle = ReferenceMemory::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Read(p, a) => {
                let addr = WordAddr::new(a);
                prop_assert_eq!(
                    sys.read(p, addr),
                    oracle.read(addr),
                    "{} step {}",
                    sys.name(),
                    i
                );
            }
            Op::Write(p, a) => {
                let addr = WordAddr::new(a);
                let v = oracle.stamp();
                sys.write(p, addr, v);
                oracle.write(addr, v);
            }
        }
    }
    sys.flush();
    for (a, v) in oracle.iter() {
        prop_assert_eq!(sys.peek_word(a), v, "{} post-flush", sys.name());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_cache_is_an_oracle(ops in arb_ops()) {
        check(&mut NoCacheSystem::new(4), &ops)?;
    }

    #[test]
    fn directory_invalidate_matches_oracle(ops in arb_ops()) {
        check(
            &mut DirectoryInvalidateSystem::with_geometry(4, CacheGeometry::new(1, 2)),
            &ops,
        )?;
    }

    #[test]
    fn update_only_matches_oracle(ops in arb_ops()) {
        check(
            &mut UpdateOnlySystem::with_geometry(4, CacheGeometry::new(1, 2)),
            &ops,
        )?;
    }

    #[test]
    fn two_mode_adapters_match_oracle(ops in arb_ops(), pick in 0usize..3) {
        let mut sys: Box<dyn CoherentSystem> = match pick {
            0 => Box::new(two_mode_fixed(4, Mode::DistributedWrite)),
            1 => Box::new(two_mode_fixed(4, Mode::GlobalRead)),
            _ => Box::new(two_mode_adaptive(4, 16)),
        };
        check(sys.as_mut(), &ops)?;
    }

    #[test]
    fn software_marking_is_coherent_when_all_shared_blocks_are_tagged(ops in arb_ops()) {
        let mut sys = SoftwareMarkedSystem::new(4);
        // Everything in this workload may be shared: mark it all.
        for b in 0..8 {
            sys.mark_noncacheable(BlockAddr::new(b));
        }
        check(&mut sys, &ops)?;
    }

    /// Traffic sanity across all baselines: monotone, and zero only until
    /// the first reference.
    #[test]
    fn traffic_is_monotone_everywhere(ops in arb_ops()) {
        let mut systems: Vec<Box<dyn CoherentSystem>> = vec![
            Box::new(NoCacheSystem::new(4)),
            Box::new(DirectoryInvalidateSystem::new(4)),
            Box::new(UpdateOnlySystem::new(4)),
            Box::new(two_mode_fixed(4, Mode::GlobalRead)),
        ];
        for sys in &mut systems {
            let mut last = 0;
            for &op in &ops {
                match op {
                    Op::Read(p, a) => {
                        sys.read(p, WordAddr::new(a));
                    }
                    Op::Write(p, a) => {
                        sys.write(p, WordAddr::new(a), 1);
                    }
                }
                let now = sys.total_traffic_bits();
                prop_assert!(now >= last, "{} went backwards", sys.name());
                last = now;
            }
        }
    }
}
