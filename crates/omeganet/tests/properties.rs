//! Randomized invariant tests for routing, destination sets and multicast,
//! driven by the in-tree [`SimRng`] (no external crates needed).

use tmc_omeganet::{
    CastCache, DestSet, LinkSchedule, Omega, SchemeKind, TimingModel, TrafficMatrix,
};
use tmc_simcore::{SimRng, SimTime};

const CASES: usize = 48;

/// Random `(m, ports)` pair: a network size and a (possibly repeating)
/// destination port list, mirroring the old proptest strategy.
fn arb_ports(rng: &mut SimRng, max_m: u32) -> (u32, Vec<usize>) {
    let m = rng.gen_range(1..=max_m);
    let n = 1usize << m;
    let len = rng.gen_range(1..(2 * n).min(40));
    let ports = (0..len).map(|_| rng.gen_range(0..n)).collect();
    (m, ports)
}

#[test]
fn route_always_lands_on_destination() {
    let mut rng = SimRng::seed_from(0x07E1);
    for _ in 0..CASES {
        let m = rng.gen_range(1..=10u32);
        let net = Omega::new(m).unwrap();
        let src = rng.gen_range(0..net.ports());
        let dst = rng.gen_range(0..net.ports());
        let path = net.route(src, dst);
        assert_eq!(path.len() as u32, m + 1);
        assert_eq!(path[0].line, src);
        assert_eq!(path.last().unwrap().line, dst);
        // Layers strictly increase 0..=m.
        for (i, link) in path.iter().enumerate() {
            assert_eq!(link.layer as usize, i);
        }
    }
}

#[test]
fn exact_schemes_deliver_exactly_the_requested_set() {
    let mut rng = SimRng::seed_from(0xDE11);
    for _ in 0..CASES {
        let (m, ports) = arb_ports(&mut rng, 8);
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        let want: Vec<usize> = dests.iter().collect();
        for kind in [SchemeKind::Replicated, SchemeKind::BitVector] {
            let mut t = TrafficMatrix::new(&net);
            let r = net.multicast(kind, 0, &dests, 20, &mut t).unwrap();
            assert_eq!(&r.delivered, &want, "{kind:?}");
        }
    }
}

#[test]
fn broadcast_tag_delivers_a_superset() {
    let mut rng = SimRng::seed_from(0xB7A6);
    for _ in 0..CASES {
        let (m, ports) = arb_ports(&mut rng, 8);
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        let mut t = TrafficMatrix::new(&net);
        let r = net
            .multicast(
                SchemeKind::BroadcastTag,
                1 % net.ports(),
                &dests,
                20,
                &mut t,
            )
            .unwrap();
        for d in dests.iter() {
            assert!(r.delivered.contains(&d), "missing destination {d}");
        }
        // And the superset is exactly the enclosing subcube when the set
        // is not already a subcube.
        if dests.subcube_spec().is_none() {
            let (anchor, l) = dests.enclosing_low_subcube().unwrap();
            assert_eq!(r.delivered.len(), 1usize << l);
            assert!(r
                .delivered
                .iter()
                .all(|&p| p & !((1usize << l) - 1) == anchor));
        }
    }
}

#[test]
fn receipt_cost_always_equals_matrix_total() {
    let mut rng = SimRng::seed_from(0x0257);
    for _ in 0..CASES {
        let (m, ports) = arb_ports(&mut rng, 8);
        let payload = rng.gen_range(0..500u64);
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        for kind in [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
            SchemeKind::Combined,
        ] {
            let mut t = TrafficMatrix::new(&net);
            let r = net.multicast(kind, 0, &dests, payload, &mut t).unwrap();
            assert_eq!(r.cost_bits, t.total_bits());
            assert_eq!(
                r.cost_bits,
                net.multicast_cost(kind, &dests, payload).unwrap()
            );
        }
    }
}

#[test]
fn combined_never_loses() {
    let mut rng = SimRng::seed_from(0xC0B1);
    for _ in 0..CASES {
        let (m, ports) = arb_ports(&mut rng, 8);
        let payload = rng.gen_range(0..500u64);
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        let c = net
            .multicast_cost(SchemeKind::Combined, &dests, payload)
            .unwrap();
        for kind in [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
        ] {
            assert!(c <= net.multicast_cost(kind, &dests, payload).unwrap());
        }
    }
}

#[test]
fn timed_multicast_reaches_the_same_ports() {
    let mut rng = SimRng::seed_from(0x71ED);
    for _ in 0..CASES {
        let (m, ports) = arb_ports(&mut rng, 7);
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        let model = TimingModel::default();
        for kind in [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
        ] {
            let mut t = TrafficMatrix::new(&net);
            let cast = net.multicast(kind, 0, &dests, 64, &mut t).unwrap();
            let mut sched = LinkSchedule::new(&net);
            let timed = sched
                .timed_multicast(&net, model, cast.scheme, 0, &dests, 64, SimTime::ZERO)
                .unwrap();
            let timed_ports: Vec<usize> = timed.iter().map(|&(p, _)| p).collect();
            assert_eq!(timed_ports, cast.delivered);
            // Arrivals are strictly after departure.
            assert!(timed.iter().all(|&(_, t)| t > SimTime::ZERO));
        }
    }
}

#[test]
fn castcache_replay_charges_links_identically_to_uncached_traversal() {
    let mut rng = SimRng::seed_from(0xCAC4E);
    let schemes = [
        SchemeKind::Replicated,
        SchemeKind::BitVector,
        SchemeKind::BroadcastTag,
        SchemeKind::Combined,
    ];
    for _ in 0..CASES {
        let (m, ports) = arb_ports(&mut rng, 7);
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        let src = rng.gen_range(0..net.ports());
        let payload = rng.gen_range(0..300u64);
        let kind = schemes[rng.gen_range(0..schemes.len())];
        let mut cache = CastCache::new();
        let mut direct = TrafficMatrix::new(&net);
        let want = net
            .multicast(kind, src, &dests, payload, &mut direct)
            .unwrap();
        // Drive the same cast through the cache repeatedly: the first call
        // is a miss (full traversal), the rest replay memoized charges.
        // Every pass must reproduce the uncached matrix link-for-link.
        for pass in 0..3 {
            let mut via = TrafficMatrix::new(&net);
            let mut rec = Vec::new();
            let got = cache
                .multicast_recording(&net, kind, src, &dests, payload, &mut via, Some(&mut rec))
                .unwrap();
            assert_eq!(got, want, "pass {pass}");
            assert_eq!(via, direct, "pass {pass}: matrices diverge");
            // The recorded charge list is exactly the nonzero links.
            let rec_total: u64 = rec.iter().map(|&(_, bits)| bits).sum();
            assert_eq!(rec_total, via.total_bits(), "pass {pass}");
            for &(link, bits) in &rec {
                assert!(bits > 0, "pass {pass}: zero-bit link recorded");
                assert_eq!(via.link_bits(link), bits, "pass {pass}");
            }
        }
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
    }
}

#[test]
fn destset_roundtrips_sorted_unique() {
    let mut rng = SimRng::seed_from(0x5027);
    for _ in 0..CASES {
        let (m, ports) = arb_ports(&mut rng, 9);
        let n = 1usize << m;
        let dests = DestSet::from_ports(n, ports.clone()).unwrap();
        let mut want = ports;
        want.sort_unstable();
        want.dedup();
        assert_eq!(dests.iter().collect::<Vec<_>>(), want.clone());
        assert_eq!(dests.len(), want.len());
        for p in 0..n {
            assert_eq!(dests.contains(p), want.contains(&p));
        }
    }
}

#[test]
fn constructed_subcubes_are_recognized() {
    let mut rng = SimRng::seed_from(0x5CBE);
    for _ in 0..CASES {
        let m = rng.gen_range(2..=9u32);
        let n = 1usize << m;
        let mask = rng.gen_range(0..512usize) % n;
        let anchor = (rng.gen_range(0..512usize) % n) & !mask;
        let bits: Vec<usize> = (0..m as usize).filter(|&b| mask >> b & 1 == 1).collect();
        let members = (0..1usize << bits.len()).map(|combo| {
            let mut p = anchor;
            for (i, &b) in bits.iter().enumerate() {
                if combo >> i & 1 == 1 {
                    p |= 1 << b;
                }
            }
            p
        });
        let set = DestSet::from_ports(n, members).unwrap();
        assert_eq!(set.subcube_spec(), Some((anchor, mask)));
    }
}
