//! Property-based tests for routing, destination sets and multicast.

use proptest::prelude::*;
use tmc_omeganet::{DestSet, LinkSchedule, Omega, SchemeKind, TimingModel, TrafficMatrix};
use tmc_simcore::SimTime;

fn arb_ports(max_m: u32) -> impl Strategy<Value = (u32, Vec<usize>)> {
    (1u32..=max_m).prop_flat_map(|m| {
        let n = 1usize << m;
        (
            Just(m),
            proptest::collection::vec(0..n, 1..(2 * n).min(40)),
        )
    })
}

proptest! {
    #[test]
    fn route_always_lands_on_destination((m, pair) in (1u32..=10).prop_flat_map(|m| {
        let n = 1usize << m;
        (Just(m), (0..n, 0..n))
    })) {
        let net = Omega::new(m).unwrap();
        let (src, dst) = pair;
        let path = net.route(src, dst);
        prop_assert_eq!(path.len() as u32, m + 1);
        prop_assert_eq!(path[0].line, src);
        prop_assert_eq!(path.last().unwrap().line, dst);
        // Layers strictly increase 0..=m.
        for (i, link) in path.iter().enumerate() {
            prop_assert_eq!(link.layer as usize, i);
        }
    }

    #[test]
    fn exact_schemes_deliver_exactly_the_requested_set((m, ports) in arb_ports(8)) {
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        prop_assume!(!dests.is_empty());
        let want: Vec<usize> = dests.iter().collect();
        for kind in [SchemeKind::Replicated, SchemeKind::BitVector] {
            let mut t = TrafficMatrix::new(&net);
            let r = net.multicast(kind, 0, &dests, 20, &mut t).unwrap();
            prop_assert_eq!(&r.delivered, &want, "{:?}", kind);
        }
    }

    #[test]
    fn broadcast_tag_delivers_a_superset((m, ports) in arb_ports(8)) {
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        prop_assume!(!dests.is_empty());
        let mut t = TrafficMatrix::new(&net);
        let r = net
            .multicast(SchemeKind::BroadcastTag, 1 % net.ports(), &dests, 20, &mut t)
            .unwrap();
        for d in dests.iter() {
            prop_assert!(r.delivered.contains(&d), "missing destination {d}");
        }
        // And the superset is exactly the enclosing subcube when the set
        // is not already a subcube.
        if dests.subcube_spec().is_none() {
            let (anchor, l) = dests.enclosing_low_subcube().unwrap();
            prop_assert_eq!(r.delivered.len(), 1usize << l);
            prop_assert!(r.delivered.iter().all(|&p| p & !((1usize << l) - 1) == anchor));
        }
    }

    #[test]
    fn receipt_cost_always_equals_matrix_total((m, ports) in arb_ports(8), payload in 0u64..500) {
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        prop_assume!(!dests.is_empty());
        for kind in [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
            SchemeKind::Combined,
        ] {
            let mut t = TrafficMatrix::new(&net);
            let r = net.multicast(kind, 0, &dests, payload, &mut t).unwrap();
            prop_assert_eq!(r.cost_bits, t.total_bits());
            prop_assert_eq!(
                r.cost_bits,
                net.multicast_cost(kind, &dests, payload).unwrap()
            );
        }
    }

    #[test]
    fn combined_never_loses((m, ports) in arb_ports(8), payload in 0u64..500) {
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        prop_assume!(!dests.is_empty());
        let c = net.multicast_cost(SchemeKind::Combined, &dests, payload).unwrap();
        for kind in [SchemeKind::Replicated, SchemeKind::BitVector, SchemeKind::BroadcastTag] {
            prop_assert!(c <= net.multicast_cost(kind, &dests, payload).unwrap());
        }
    }

    #[test]
    fn timed_multicast_reaches_the_same_ports((m, ports) in arb_ports(7)) {
        let net = Omega::new(m).unwrap();
        let dests = DestSet::from_ports(net.ports(), ports).unwrap();
        prop_assume!(!dests.is_empty());
        let model = TimingModel::default();
        for kind in [SchemeKind::Replicated, SchemeKind::BitVector, SchemeKind::BroadcastTag] {
            let mut t = TrafficMatrix::new(&net);
            let cast = net.multicast(kind, 0, &dests, 64, &mut t).unwrap();
            let mut sched = LinkSchedule::new(&net);
            let timed = sched
                .timed_multicast(&net, model, cast.scheme, 0, &dests, 64, SimTime::ZERO)
                .unwrap();
            let timed_ports: Vec<usize> = timed.iter().map(|&(p, _)| p).collect();
            prop_assert_eq!(timed_ports, cast.delivered);
            // Arrivals are strictly after departure.
            prop_assert!(timed.iter().all(|&(_, t)| t > SimTime::ZERO));
        }
    }

    #[test]
    fn destset_roundtrips_sorted_unique((m, ports) in arb_ports(9)) {
        let n = 1usize << m;
        let dests = DestSet::from_ports(n, ports.clone()).unwrap();
        let mut want = ports;
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(dests.iter().collect::<Vec<_>>(), want.clone());
        prop_assert_eq!(dests.len(), want.len());
        for p in 0..n {
            prop_assert_eq!(dests.contains(p), want.contains(&p));
        }
    }

    #[test]
    fn constructed_subcubes_are_recognized(
        m in 2u32..=9,
        anchor_seed in 0usize..512,
        mask_seed in 0usize..512,
    ) {
        let n = 1usize << m;
        let mask = mask_seed % n;
        let anchor = (anchor_seed % n) & !mask;
        let bits: Vec<usize> = (0..m as usize).filter(|&b| mask >> b & 1 == 1).collect();
        let members = (0..1usize << bits.len()).map(|combo| {
            let mut p = anchor;
            for (i, &b) in bits.iter().enumerate() {
                if combo >> i & 1 == 1 {
                    p |= 1 << b;
                }
            }
            p
        });
        let set = DestSet::from_ports(n, members).unwrap();
        prop_assert_eq!(set.subcube_spec(), Some((anchor, mask)));
    }
}
