//! Differential tests for the hybrid `DestSet` representation.
//!
//! Every operation is diffed against a naive `HashSet<usize>` reference
//! model across network sizes straddling each representation boundary:
//! inline u64 (N ≤ 64), sorted small list (N = 65, 128, 1024 while sparse),
//! and multi-word bitmap (dense sets at the same sizes). Driven by the
//! in-tree [`SimRng`] — no external crates.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use tmc_omeganet::DestSet;
use tmc_simcore::SimRng;

/// Sizes spanning inline, small-list and bitmap layouts, including the
/// promotion boundary at 64→65 and the big-machine point N = 1024.
const SIZES: [usize; 5] = [16, 64, 65, 128, 1024];

const CASES: usize = 24;
const OPS_PER_CASE: usize = 400;

fn hash_of(set: &DestSet) -> u64 {
    let mut h = DefaultHasher::new();
    set.hash(&mut h);
    h.finish()
}

/// Checks every observation the hybrid set offers against the reference.
fn assert_matches(set: &DestSet, model: &HashSet<usize>, n: usize) {
    assert_eq!(set.len(), model.len());
    assert_eq!(set.is_empty(), model.is_empty());
    let mut sorted: Vec<usize> = model.iter().copied().collect();
    sorted.sort_unstable();
    let iterated: Vec<usize> = set.iter().collect();
    assert_eq!(iterated, sorted, "iteration must be ascending and exact");
    for &p in &sorted {
        assert!(set.contains(p));
    }
    // Membership probes on non-members (cheap spot checks).
    for probe in [0, n / 2, n - 1] {
        assert_eq!(set.contains(probe), model.contains(&probe));
    }
    // The canonical rebuild must be indistinguishable: same Eq and Hash
    // regardless of the insert/remove history that produced `set`.
    let rebuilt = DestSet::from_ports(n, sorted).unwrap();
    assert_eq!(*set, rebuilt, "history must not leak into the repr");
    assert_eq!(hash_of(set), hash_of(&rebuilt));
}

#[test]
fn insert_remove_matches_reference_model() {
    for &n in &SIZES {
        let mut rng = SimRng::seed_from(0xD5E7 ^ n as u64);
        for _ in 0..CASES {
            let mut set = DestSet::empty(n);
            let mut model: HashSet<usize> = HashSet::new();
            for _ in 0..OPS_PER_CASE {
                let p = rng.gen_range(0..n);
                if rng.gen_range(0..3) == 0 {
                    assert_eq!(set.remove(p), model.remove(&p), "remove({p}) at N={n}");
                } else {
                    assert_eq!(set.insert(p), model.insert(p), "insert({p}) at N={n}");
                }
            }
            assert_matches(&set, &model, n);
        }
    }
}

#[test]
fn range_probe_matches_reference_model() {
    for &n in &SIZES {
        let mut rng = SimRng::seed_from(0xA3 ^ n as u64);
        for _ in 0..CASES {
            let mut set = DestSet::empty(n);
            let mut model: HashSet<usize> = HashSet::new();
            let members = rng.gen_range(0..=n.min(200));
            for _ in 0..members {
                let p = rng.gen_range(0..n);
                set.insert(p);
                model.insert(p);
            }
            for _ in 0..40 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let want = model.iter().any(|&p| lo <= p && p < hi);
                assert_eq!(
                    set.any_in_range(lo, hi),
                    want,
                    "any_in_range({lo}, {hi}) at N={n}"
                );
            }
        }
    }
}

#[test]
fn set_algebra_matches_reference_model() {
    for &n in &SIZES {
        let mut rng = SimRng::seed_from(0x5E7A ^ n as u64);
        for _ in 0..CASES {
            // Mixed densities so Small×Small, Small×Bitmap, Bitmap×Small
            // and Bitmap×Bitmap pairings all occur.
            fn draw(rng: &mut SimRng, n: usize, dense: bool) -> (DestSet, HashSet<usize>) {
                let count = if dense {
                    rng.gen_range(0..=n)
                } else {
                    rng.gen_range(0..=n.min(10))
                };
                let mut s = DestSet::empty(n);
                let mut m = HashSet::new();
                for _ in 0..count {
                    let p = rng.gen_range(0..n);
                    s.insert(p);
                    m.insert(p);
                }
                (s, m)
            }
            let a_dense = rng.gen_range(0..2) == 0;
            let (a, am) = draw(&mut rng, n, a_dense);
            let b_dense = rng.gen_range(0..2) == 0;
            let (b, bm) = draw(&mut rng, n, b_dense);

            let mut union = a.clone();
            union.union_with(&b);
            let union_model: HashSet<usize> = am.union(&bm).copied().collect();
            assert_matches(&union, &union_model, n);

            let mut diff = a.clone();
            diff.difference_with(&b);
            let diff_model: HashSet<usize> = am.difference(&bm).copied().collect();
            assert_matches(&diff, &diff_model, n);

            assert_eq!(
                a.intersects(&b),
                !am.is_disjoint(&bm),
                "intersects at N={n}"
            );
            assert_eq!(
                a.contains_all(&b),
                bm.is_subset(&am),
                "contains_all at N={n}"
            );
        }
    }
}

#[test]
fn subcube_detection_matches_definition_across_layouts() {
    for &n in &[64usize, 128, 1024] {
        let mut rng = SimRng::seed_from(0x5CB ^ n as u64);
        let max_l = n.trailing_zeros();
        for _ in 0..CASES {
            // A genuine subcube is recognized whatever repr holds it.
            let l = rng.gen_range(0..=max_l.min(6));
            let span = 1usize << l;
            let base = (rng.gen_range(0..n / span)) * span;
            let cube = DestSet::subcube(n, base, l).unwrap();
            // spec is (anchor, free-bit mask); a low-aligned cube of span
            // 2^l frees exactly the low l bits.
            assert_eq!(cube.subcube_spec(), Some((base, span - 1)));

            // Perturbing one member off the cube must break recognition.
            if l > 0 && span < n {
                let mut bent = cube.clone();
                bent.remove(base);
                let outside = (base + span) % n;
                bent.insert(outside);
                assert_eq!(bent.len(), span);
                assert!(bent.subcube_spec().is_none(), "bent cube at N={n} l={l}");
            }
        }
    }
}

#[test]
fn promotion_boundary_round_trips_exactly() {
    // Walk a set up through the small→bitmap promotion and back down,
    // diffing against the model at every step.
    for &n in &[65usize, 128, 1024] {
        let mut set = DestSet::empty(n);
        let mut model = HashSet::new();
        let members: Vec<usize> = (0..40).map(|i| (i * 97 + 13) % n).collect();
        for (i, &p) in members.iter().enumerate() {
            set.insert(p);
            model.insert(p);
            if i % 7 == 0 {
                assert_matches(&set, &model, n);
            }
        }
        assert_matches(&set, &model, n);
        for (i, &p) in members.iter().rev().enumerate() {
            set.remove(p);
            model.remove(&p);
            if i % 7 == 0 {
                assert_matches(&set, &model, n);
            }
        }
        assert!(set.is_empty());
        assert_eq!(set, DestSet::empty(n));
        assert_eq!(hash_of(&set), hash_of(&DestSet::empty(n)));
    }
}
