//! Per-link traffic accounting.
//!
//! The paper's communication-cost metric (eq. 1) is "the amount of
//! information that has to pass each link summed over all links":
//! `CC = Σ_{i=0}^{m} Lᵢ`. A [`TrafficMatrix`] records exactly that — bits per
//! physical link, grouped into the `m + 1` link layers of the topology — so
//! measured totals are directly comparable to the paper's closed forms.

use crate::topology::{LinkId, Omega};

/// Bits transferred over every link of an omega network.
///
/// # Example
///
/// ```
/// use tmc_omeganet::{LinkId, Omega, TrafficMatrix};
///
/// let net = Omega::new(2)?;
/// let mut t = TrafficMatrix::new(&net);
/// for link in net.route(0, 3) {
///     t.add(link, 10);
/// }
/// assert_eq!(t.total_bits(), 30);            // 3 layers × 10 bits
/// assert_eq!(t.layer_bits(0), 10);
/// assert_eq!(t.link_bits(LinkId { layer: 0, line: 0 }), 10);
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficMatrix {
    /// `bits[layer][line]`.
    bits: Vec<Vec<u64>>,
    n_ports: usize,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix shaped for `net`.
    pub fn new(net: &Omega) -> Self {
        TrafficMatrix::with_shape(net.link_layers() as usize, net.ports())
    }

    /// Creates an all-zero matrix with an explicit shape (`layers` link
    /// layers of `lines` links each) — for non-2×2 topologies such as
    /// [`crate::aary::AryOmega`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_shape(layers: usize, lines: usize) -> Self {
        assert!(layers > 0 && lines > 0, "matrix must have a nonzero shape");
        TrafficMatrix {
            bits: vec![vec![0; lines]; layers],
            n_ports: lines,
        }
    }

    /// Network size this matrix is shaped for.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Number of link layers (`m + 1`).
    pub fn layers(&self) -> usize {
        self.bits.len()
    }

    /// Records `bits` crossing `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of shape for this matrix.
    pub fn add(&mut self, link: LinkId, bits: u64) {
        self.bits[link.layer as usize][link.line] += bits;
    }

    /// Bits recorded on one link.
    pub fn link_bits(&self, link: LinkId) -> u64 {
        self.bits[link.layer as usize][link.line]
    }

    /// Total bits over all links of one layer — the paper's `Lᵢ`.
    pub fn layer_bits(&self, layer: u32) -> u64 {
        self.bits[layer as usize].iter().sum()
    }

    /// Total bits over all links — the paper's `CC` (eq. 1).
    pub fn total_bits(&self) -> u64 {
        self.bits.iter().flatten().sum()
    }

    /// The most loaded link and its bit count, or `None` if no traffic.
    pub fn hottest_link(&self) -> Option<(LinkId, u64)> {
        let mut best: Option<(LinkId, u64)> = None;
        for (layer, row) in self.bits.iter().enumerate() {
            for (line, &b) in row.iter().enumerate() {
                if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                    best = Some((
                        LinkId {
                            layer: layer as u32,
                            line,
                        },
                        b,
                    ));
                }
            }
        }
        best
    }

    /// Number of links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.bits.iter().flatten().filter(|&&b| b > 0).count()
    }

    /// Zeroes every link.
    pub fn clear(&mut self) {
        for row in &mut self.bits {
            row.fill(0);
        }
    }

    /// Adds every cell of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices have different shapes.
    pub fn merge(&mut self, other: &TrafficMatrix) {
        assert_eq!(self.n_ports, other.n_ports, "traffic matrix shape mismatch");
        for (mine, theirs) in self.bits.iter_mut().zip(&other.bits) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    /// Per-layer totals `L₀..L_m`, a compact profile for reports.
    pub fn layer_profile(&self) -> Vec<u64> {
        (0..self.layers() as u32)
            .map(|l| self.layer_bits(l))
            .collect()
    }
}

/// Anything that can absorb per-link bit charges.
///
/// The billed routing fast paths ([`Omega::charge_unicast`] and friends)
/// are generic over this trait so the same digit-loop can charge either
/// the live [`TrafficMatrix`] or a deferred [`LinkDeltas`] batch buffer.
///
/// [`Omega::charge_unicast`]: crate::Omega::charge_unicast
pub trait ChargeSink {
    /// Records `bits` crossing `link`.
    fn charge(&mut self, link: LinkId, bits: u64);
}

impl ChargeSink for TrafficMatrix {
    #[inline]
    fn charge(&mut self, link: LinkId, bits: u64) {
        self.bits[link.layer as usize][link.line] += bits;
    }
}

/// A compact buffer of per-link charge deltas, accumulated during a batch
/// and flushed into a [`TrafficMatrix`] in one pass.
///
/// Deferral is *charge-exact*: link charges are nonnegative integers
/// combined only by addition, so `flush_into` commutes with interleaved
/// direct billing — the matrix after a flush is bit-identical to one
/// charged link-by-link in message order. The `touched` index list keeps
/// the flush proportional to the links actually used by the batch, not
/// the network size.
///
/// # Example
///
/// ```
/// use tmc_omeganet::{ChargeSink, LinkDeltas, LinkId, Omega, TrafficMatrix};
///
/// let net = Omega::new(2)?;
/// let mut direct = TrafficMatrix::new(&net);
/// let mut deferred = TrafficMatrix::new(&net);
/// let mut deltas = LinkDeltas::new(&net);
/// for link in net.route(0, 3) {
///     direct.charge(link, 10);
///     deltas.charge(link, 10);
/// }
/// deltas.flush_into(&mut deferred);
/// assert_eq!(direct, deferred);
/// assert!(deltas.is_empty());
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinkDeltas {
    /// `bits[layer * lines + line]`, flat for one-load indexing.
    bits: Vec<u64>,
    /// Flat indices holding a nonzero delta, in first-touch order.
    touched: Vec<u32>,
    lines: usize,
}

impl LinkDeltas {
    /// Creates an empty delta buffer shaped for `net`.
    pub fn new(net: &Omega) -> Self {
        LinkDeltas::with_shape(net.link_layers() as usize, net.ports())
    }

    /// Creates an empty delta buffer with an explicit shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_shape(layers: usize, lines: usize) -> Self {
        assert!(layers > 0 && lines > 0, "deltas must have a nonzero shape");
        LinkDeltas {
            bits: vec![0; layers * lines],
            touched: Vec::new(),
            lines,
        }
    }

    /// Whether no deltas are pending.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Links holding a pending delta.
    pub fn touched_links(&self) -> usize {
        self.touched.len()
    }

    /// Sum of every pending delta.
    pub fn total_bits(&self) -> u64 {
        self.touched.iter().map(|&i| self.bits[i as usize]).sum()
    }

    /// Adds every pending delta into `traffic` and resets the buffer,
    /// keeping its capacity for the next batch.
    ///
    /// # Panics
    ///
    /// Panics if `traffic` has a different shape.
    pub fn flush_into(&mut self, traffic: &mut TrafficMatrix) {
        assert_eq!(traffic.n_ports, self.lines, "traffic matrix shape mismatch");
        for &i in &self.touched {
            let i = i as usize;
            traffic.bits[i / self.lines][i % self.lines] += self.bits[i];
            self.bits[i] = 0;
        }
        self.touched.clear();
    }
}

impl ChargeSink for LinkDeltas {
    #[inline]
    fn charge(&mut self, link: LinkId, bits: u64) {
        let i = link.layer as usize * self.lines + link.line;
        if self.bits[i] == 0 {
            self.touched.push(i as u32);
        }
        self.bits[i] += bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Omega;

    fn net() -> Omega {
        Omega::new(3).unwrap()
    }

    #[test]
    fn totals_sum_layers_and_links() {
        let n = net();
        let mut t = TrafficMatrix::new(&n);
        t.add(LinkId { layer: 0, line: 1 }, 5);
        t.add(LinkId { layer: 0, line: 2 }, 7);
        t.add(LinkId { layer: 3, line: 7 }, 11);
        assert_eq!(t.layer_bits(0), 12);
        assert_eq!(t.layer_bits(1), 0);
        assert_eq!(t.layer_bits(3), 11);
        assert_eq!(t.total_bits(), 23);
        assert_eq!(t.links_used(), 3);
        assert_eq!(t.layer_profile(), vec![12, 0, 0, 11]);
    }

    #[test]
    fn hottest_link_and_clear() {
        let n = net();
        let mut t = TrafficMatrix::new(&n);
        assert_eq!(t.hottest_link(), None);
        t.add(LinkId { layer: 1, line: 4 }, 9);
        t.add(LinkId { layer: 2, line: 0 }, 3);
        assert_eq!(t.hottest_link(), Some((LinkId { layer: 1, line: 4 }, 9)));
        t.clear();
        assert_eq!(t.total_bits(), 0);
    }

    #[test]
    fn merge_adds_cellwise() {
        let n = net();
        let mut a = TrafficMatrix::new(&n);
        let mut b = TrafficMatrix::new(&n);
        a.add(LinkId { layer: 0, line: 0 }, 1);
        b.add(LinkId { layer: 0, line: 0 }, 2);
        b.add(LinkId { layer: 2, line: 5 }, 4);
        a.merge(&b);
        assert_eq!(a.link_bits(LinkId { layer: 0, line: 0 }), 3);
        assert_eq!(a.total_bits(), 7);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_different_shapes() {
        let mut a = TrafficMatrix::new(&Omega::new(2).unwrap());
        let b = TrafficMatrix::new(&Omega::new(3).unwrap());
        a.merge(&b);
    }

    #[test]
    fn deltas_flush_is_charge_exact() {
        let n = net();
        let mut direct = TrafficMatrix::new(&n);
        let mut deferred = TrafficMatrix::new(&n);
        let mut deltas = LinkDeltas::new(&n);
        // Interleave deferred unicast charges with direct multicast-style
        // charges on overlapping links, the way a batch does.
        for (src, dst) in [(0, 5), (3, 5), (0, 5), (7, 1)] {
            for link in n.route(src, dst) {
                direct.charge(link, 10);
                deltas.charge(link, 10);
            }
            let shared = LinkId { layer: 1, line: 2 };
            direct.charge(shared, 3);
            deferred.charge(shared, 3);
        }
        assert!(!deltas.is_empty());
        assert_eq!(
            deltas.total_bits() + deferred.total_bits(),
            direct.total_bits()
        );
        deltas.flush_into(&mut deferred);
        assert_eq!(deferred, direct);
        assert!(deltas.is_empty());
        assert_eq!(deltas.total_bits(), 0);
        // The buffer is reusable after a flush.
        deltas.charge(LinkId { layer: 0, line: 0 }, 4);
        assert_eq!(deltas.touched_links(), 1);
        deltas.flush_into(&mut deferred);
        assert_eq!(
            deferred.link_bits(LinkId { layer: 0, line: 0 }),
            direct.link_bits(LinkId { layer: 0, line: 0 }) + 4
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn deltas_flush_rejects_different_shapes() {
        let mut d = LinkDeltas::new(&Omega::new(2).unwrap());
        let mut t = TrafficMatrix::new(&Omega::new(3).unwrap());
        d.flush_into(&mut t);
    }
}
