//! Destination sets for multicast, with the constructors used by the
//! paper's analysis.

use std::fmt;

use crate::error::NetError;
use crate::topology::{Omega, PortId};

/// Bit storage for a [`DestSet`]: a single inline word for networks of up
/// to 64 ports (the common case — the paper's machines top out at N = 1024
/// but the simulated protocol grids run at N = 16), a heap vector beyond.
/// The variant is a function of `n_ports` alone, so sets built for the same
/// network always compare and hash consistently.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum WordStore {
    Inline(u64),
    Heap(Vec<u64>),
}

impl WordStore {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            WordStore::Inline(w) => std::slice::from_ref(w),
            WordStore::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            WordStore::Inline(w) => std::slice::from_mut(w),
            WordStore::Heap(v) => v,
        }
    }
}

/// A set of destination ports for a multicast, sized for a specific network.
///
/// Internally a bitset; iteration is always in ascending port order. Sets
/// for networks of at most 64 ports live in a single inline `u64` — no heap
/// allocation on the multicast fast path. The constructors mirror the
/// destination placements the paper analyzes:
///
/// * [`DestSet::adjacent`] — `n` consecutive ports (tasks allocated to
///   adjacent processors, §3.3–3.4),
/// * [`DestSet::worst_case_spread`] — `n` ports splitting the routing tree at
///   the earliest stages (the scheme-2 worst case of eq. 3),
/// * [`DestSet::subcube`] — an aligned 2^l subcube (the only sets scheme 3
///   can address).
///
/// # Example
///
/// ```
/// use tmc_omeganet::DestSet;
///
/// let d = DestSet::adjacent(16, 4, 4)?;
/// assert_eq!(d.iter().collect::<Vec<_>>(), [4, 5, 6, 7]);
/// assert!(d.is_subcube());
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DestSet {
    words: WordStore,
    n_ports: usize,
    len: usize,
}

impl DestSet {
    /// Creates an empty set for an `n_ports`-port network.
    ///
    /// # Panics
    ///
    /// Panics if `n_ports` is zero.
    pub fn empty(n_ports: usize) -> Self {
        assert!(n_ports > 0, "network must have at least one port");
        let words = if n_ports <= 64 {
            WordStore::Inline(0)
        } else {
            WordStore::Heap(vec![0; n_ports.div_ceil(64)])
        };
        DestSet {
            words,
            n_ports,
            len: 0,
        }
    }

    /// Creates the full set `{0, …, n_ports−1}` in `O(n_ports / 64)`: whole
    /// words are filled directly, plus a masked tail word.
    pub fn all(n_ports: usize) -> Self {
        let mut set = DestSet::empty(n_ports);
        let full_words = n_ports / 64;
        let tail_bits = n_ports % 64;
        let words = set.words.as_mut_slice();
        for w in &mut words[..full_words] {
            *w = u64::MAX;
        }
        if tail_bits > 0 {
            words[full_words] = (1u64 << tail_bits) - 1;
        }
        set.len = n_ports;
        set
    }

    /// Creates a set from an iterator of ports.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if any port is `≥ n_ports`.
    pub fn from_ports<I>(n_ports: usize, ports: I) -> Result<Self, NetError>
    where
        I: IntoIterator<Item = PortId>,
    {
        let mut set = DestSet::empty(n_ports);
        for p in ports {
            if p >= n_ports {
                return Err(NetError::PortOutOfRange { port: p, n_ports });
            }
            set.insert(p);
        }
        Ok(set)
    }

    /// `n` consecutive ports starting at `base` — the "neighbors" placement.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if `base + n` exceeds the
    /// network size.
    pub fn adjacent(n_ports: usize, base: PortId, n: usize) -> Result<Self, NetError> {
        if base + n > n_ports {
            return Err(NetError::PortOutOfRange {
                port: base + n.saturating_sub(1),
                n_ports,
            });
        }
        DestSet::from_ports(n_ports, base..base + n)
    }

    /// `n` ports spread maximally: `{i·N/n : i in 0..n}` for a power-of-two
    /// `n`. These destinations differ in their most significant bits, so a
    /// scheme-2 multicast forks at every one of the first `log₂ n` stages —
    /// the worst case assumed by eq. 3 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyDestSet`] if `n == 0` and
    /// [`NetError::PortOutOfRange`] if `n > n_ports`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `n_ports` is not a power of two.
    pub fn worst_case_spread(n_ports: usize, n: usize) -> Result<Self, NetError> {
        assert!(n_ports.is_power_of_two(), "N must be a power of two");
        if n == 0 {
            return Err(NetError::EmptyDestSet);
        }
        assert!(n.is_power_of_two(), "n must be a power of two");
        if n > n_ports {
            return Err(NetError::PortOutOfRange {
                port: n - 1,
                n_ports,
            });
        }
        let stride = n_ports / n;
        DestSet::from_ports(n_ports, (0..n).map(|i| i * stride))
    }

    /// An aligned subcube: all ports agreeing with `base` outside the `l`
    /// low bit positions. Size `2^l`; exactly the sets addressable by
    /// scheme 3 when tasks sit on adjacent processors.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if `base ≥ n_ports`.
    ///
    /// # Panics
    ///
    /// Panics if `n_ports` is not a power of two or `2^l > n_ports`.
    pub fn subcube(n_ports: usize, base: PortId, l: u32) -> Result<Self, NetError> {
        assert!(n_ports.is_power_of_two(), "N must be a power of two");
        assert!(
            (1usize << l) <= n_ports,
            "subcube of 2^{l} ports exceeds the network"
        );
        if base >= n_ports {
            return Err(NetError::PortOutOfRange {
                port: base,
                n_ports,
            });
        }
        let anchor = base & !((1usize << l) - 1);
        DestSet::from_ports(n_ports, (0..(1usize << l)).map(|low| anchor | low))
    }

    /// Network size this set was built for.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Number of destinations in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `port` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    #[inline]
    pub fn insert(&mut self, port: PortId) -> bool {
        assert!(port < self.n_ports, "port {port} out of range");
        let word = match &mut self.words {
            WordStore::Inline(w) => w,
            WordStore::Heap(v) => &mut v[port / 64],
        };
        let bit = 1u64 << (port % 64);
        let fresh = *word & bit == 0;
        if fresh {
            *word |= bit;
            self.len += 1;
        }
        fresh
    }

    /// Removes `port` from the set. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, port: PortId) -> bool {
        if port >= self.n_ports {
            return false;
        }
        let word = match &mut self.words {
            WordStore::Inline(w) => w,
            WordStore::Heap(v) => &mut v[port / 64],
        };
        let bit = 1u64 << (port % 64);
        let present = *word & bit != 0;
        if present {
            *word &= !bit;
            self.len -= 1;
        }
        present
    }

    /// Whether `port` is in the set.
    #[inline]
    pub fn contains(&self, port: PortId) -> bool {
        if port >= self.n_ports {
            return false;
        }
        let word = match &self.words {
            WordStore::Inline(w) => *w,
            WordStore::Heap(v) => v[port / 64],
        };
        word & (1 << (port % 64)) != 0
    }

    /// Iterates over member ports in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PortId> + '_ {
        self.words
            .as_slice()
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| {
                let mut rest = word;
                std::iter::from_fn(move || {
                    if rest == 0 {
                        None
                    } else {
                        let bit = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// Validates that this set matches the network's size.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::SizeMismatch`] on mismatch.
    pub fn check_net(&self, net: &Omega) -> Result<(), NetError> {
        if self.n_ports == net.ports() {
            Ok(())
        } else {
            Err(NetError::SizeMismatch {
                set_ports: self.n_ports,
                net_ports: net.ports(),
            })
        }
    }

    /// Whether the members form an aligned subcube (including singletons and
    /// the full set). Empty sets are not subcubes.
    pub fn is_subcube(&self) -> bool {
        self.subcube_spec().is_some()
    }

    /// If the members form a subcube, returns `(anchor, free_mask)`: the
    /// common bits and a mask of the positions that vary. General subcubes
    /// (any free-bit positions) are recognized, not only low-bit-aligned
    /// ones.
    pub fn subcube_spec(&self) -> Option<(PortId, usize)> {
        if self.is_empty() || !self.len.is_power_of_two() {
            return None;
        }
        let mut iter = self.iter();
        let first = iter.next().expect("nonempty");
        let mut free_mask = 0usize;
        for p in self.iter() {
            free_mask |= p ^ first;
        }
        if free_mask.count_ones() != self.len.trailing_zeros() {
            return None;
        }
        // All 2^l combinations of free bits must be present; since we have
        // exactly 2^l distinct members all differing from `first` only in
        // free positions, membership is guaranteed by counting — but verify
        // anchor bits to be safe against duplicates (impossible in a set).
        let anchor = first & !free_mask;
        for p in self.iter() {
            if p & !free_mask != anchor {
                return None;
            }
        }
        Some((anchor, free_mask))
    }

    /// The smallest aligned low-bit subcube containing the whole set:
    /// returns `(anchor, l)` with the set contained in
    /// `{anchor .. anchor + 2^l}`. Used when upgrading an arbitrary set to a
    /// scheme-3-addressable superset.
    ///
    /// Returns `None` for an empty set.
    pub fn enclosing_low_subcube(&self) -> Option<(PortId, u32)> {
        let first = self.iter().next()?;
        let mut diff = 0usize;
        for p in self.iter() {
            diff |= p ^ first;
        }
        let l = if diff == 0 {
            0
        } else {
            usize::BITS - diff.leading_zeros()
        };
        Some((first & !((1usize << l) - 1), l))
    }
}

impl fmt::Debug for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DestSet(N={}, {{", self.n_ports)?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}})")
    }
}

impl<'a> IntoIterator for &'a DestSet {
    type Item = PortId;
    type IntoIter = Box<dyn Iterator<Item = PortId> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DestSet::empty(128);
        assert!(s.insert(0));
        assert!(s.insert(127));
        assert!(!s.insert(127));
        assert_eq!(s.len(), 2);
        assert!(s.contains(0));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn small_sets_use_inline_storage() {
        let mut s = DestSet::empty(64);
        assert!(matches!(s.words, WordStore::Inline(_)));
        assert!(s.insert(63));
        assert!(s.contains(63));
        assert!(!s.contains(62));
        let big = DestSet::empty(65);
        assert!(matches!(big.words, WordStore::Heap(_)));
    }

    #[test]
    fn iter_is_sorted_across_words() {
        let s = DestSet::from_ports(256, [200usize, 3, 64, 65, 199]).unwrap();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, [3, 64, 65, 199, 200]);
    }

    #[test]
    fn from_ports_rejects_out_of_range() {
        assert_eq!(
            DestSet::from_ports(8, [8usize]),
            Err(NetError::PortOutOfRange {
                port: 8,
                n_ports: 8
            })
        );
    }

    #[test]
    fn adjacent_and_bounds() {
        let s = DestSet::adjacent(8, 6, 2).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), [6, 7]);
        assert!(DestSet::adjacent(8, 6, 3).is_err());
        assert_eq!(DestSet::adjacent(8, 0, 0).unwrap().len(), 0);
    }

    #[test]
    fn all_fills_whole_words_and_tail() {
        // Inline, exactly one word, word-boundary and odd sizes.
        for n in [1usize, 5, 63, 64] {
            let s = DestSet::all(n);
            assert_eq!(s.len(), n);
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        }
        // Heap: multiple words plus a masked tail.
        for n in [65usize, 128, 130, 1024] {
            let s = DestSet::all(n);
            assert_eq!(s.len(), n);
            assert_eq!(s.iter().count(), n);
            assert!(s.contains(n - 1));
            assert!(!s.contains(n));
            assert_eq!(s.iter().last(), Some(n - 1));
        }
    }

    #[test]
    fn worst_case_spread_has_maximal_prefixes() {
        let s = DestSet::worst_case_spread(16, 4).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), [0, 4, 8, 12]);
        // Top two bits all distinct.
        let tops: Vec<_> = s.iter().map(|p| p >> 2).collect();
        assert_eq!(tops, [0, 1, 2, 3]);
        assert!(DestSet::worst_case_spread(16, 0).is_err());
        assert!(DestSet::worst_case_spread(16, 32).is_err());
    }

    #[test]
    fn subcube_construction_and_recognition() {
        let s = DestSet::subcube(32, 13, 2).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), [12, 13, 14, 15]);
        assert!(s.is_subcube());
        assert_eq!(s.subcube_spec(), Some((12, 0b11)));

        // A general (non-low-aligned) subcube is still recognized.
        let g = DestSet::from_ports(16, [1usize, 3, 9, 11]).unwrap();
        assert_eq!(g.subcube_spec(), Some((1, 0b1010)));

        // Not a subcube: wrong structure despite power-of-two size.
        let bad = DestSet::from_ports(16, [0usize, 1, 2, 4]).unwrap();
        assert!(!bad.is_subcube());

        // Size not a power of two.
        let odd = DestSet::from_ports(16, [0usize, 1, 2]).unwrap();
        assert!(!odd.is_subcube());

        // Singleton and full set are subcubes.
        assert!(DestSet::from_ports(8, [5usize]).unwrap().is_subcube());
        assert!(DestSet::all(8).is_subcube());
        assert!(!DestSet::empty(8).is_subcube());
    }

    #[test]
    fn enclosing_low_subcube_is_tight() {
        let s = DestSet::from_ports(64, [17usize, 18, 22]).unwrap();
        let (anchor, l) = s.enclosing_low_subcube().unwrap();
        assert_eq!((anchor, l), (16, 3));
        let singleton = DestSet::from_ports(64, [9usize]).unwrap();
        assert_eq!(singleton.enclosing_low_subcube(), Some((9, 0)));
        assert_eq!(DestSet::empty(64).enclosing_low_subcube(), None);
    }

    #[test]
    fn debug_lists_members() {
        let s = DestSet::from_ports(8, [1usize, 4]).unwrap();
        assert_eq!(format!("{s:?}"), "DestSet(N=8, {1, 4})");
    }
}
