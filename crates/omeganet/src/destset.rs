//! Destination sets for multicast, with the constructors used by the
//! paper's analysis.

use std::fmt;

use crate::error::NetError;
use crate::topology::{Omega, PortId};

/// Members a sparse set holds inline before promoting to a heap bitmap.
const SMALL_CAP: usize = 12;

/// Largest network whose ports fit the inline `u16` member list. One short
/// of `1 << 16`: the list pads unused slots with `u16::MAX`, so that value
/// must never be a legal port.
const SMALL_MAX_PORTS: usize = (1 << 16) - 1;

/// Storage for a [`DestSet`]. The variant is a *canonical* function of
/// `(n_ports, len)`:
///
/// * `Inline` — networks of up to 64 ports: a single word, as before.
/// * `Small` — networks of 65..=65535 ports holding at most [`SMALL_CAP`]
///   members: a sorted inline `u16` list padded with `u16::MAX`. Sparse
///   sharer sets (the overwhelmingly common case at N = 128..1024) never
///   touch the heap.
/// * `Bitmap` — everything denser: a multi-word heap bitmap.
///
/// Because the variant depends only on the network size and the member
/// count, equal sets always share a representation, so the derived
/// `PartialEq`/`Hash` (used by the multicast memo cache) stay consistent
/// across promotion and demotion.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Repr {
    Inline(u64),
    Small([u16; SMALL_CAP]),
    Bitmap(Vec<u64>),
}

/// Whether a set of `len` members in an `n_ports` network uses `Small`.
#[inline]
fn small_fits(n_ports: usize, len: usize) -> bool {
    n_ports > 64 && n_ports <= SMALL_MAX_PORTS && len <= SMALL_CAP
}

/// Bits `lo..hi` of a word (`hi − lo ≤ 64`, `hi ≤ 64`).
#[inline]
fn range_mask(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo < hi && hi <= 64);
    let width = hi - lo;
    if width == 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << lo
    }
}

/// A set of destination ports for a multicast, sized for a specific network.
///
/// Iteration is always in ascending port order. Sets for networks of at most
/// 64 ports live in a single inline `u64`; larger networks keep sparse sets
/// (up to 12 members) in an inline sorted list and only dense sets on the
/// heap — no allocation on the multicast fast path at any supported N. The
/// constructors mirror the destination placements the paper analyzes:
///
/// * [`DestSet::adjacent`] — `n` consecutive ports (tasks allocated to
///   adjacent processors, §3.3–3.4),
/// * [`DestSet::worst_case_spread`] — `n` ports splitting the routing tree at
///   the earliest stages (the scheme-2 worst case of eq. 3),
/// * [`DestSet::subcube`] — an aligned 2^l subcube (the only sets scheme 3
///   can address).
///
/// # Example
///
/// ```
/// use tmc_omeganet::DestSet;
///
/// let d = DestSet::adjacent(16, 4, 4)?;
/// assert_eq!(d.iter().collect::<Vec<_>>(), [4, 5, 6, 7]);
/// assert!(d.is_subcube());
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DestSet {
    repr: Repr,
    n_ports: usize,
    len: usize,
}

impl Clone for DestSet {
    fn clone(&self) -> Self {
        DestSet {
            repr: self.repr.clone(),
            n_ports: self.n_ports,
            len: self.len,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Reuse an existing heap bitmap's capacity: callers that key a memo
        // table by DestSet re-clone the same shapes over and over.
        self.n_ports = source.n_ports;
        self.len = source.len;
        match (&mut self.repr, &source.repr) {
            (Repr::Bitmap(dst), Repr::Bitmap(src)) => {
                dst.clear();
                dst.extend_from_slice(src);
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl DestSet {
    /// Creates an empty set for an `n_ports`-port network.
    ///
    /// # Panics
    ///
    /// Panics if `n_ports` is zero.
    pub fn empty(n_ports: usize) -> Self {
        assert!(n_ports > 0, "network must have at least one port");
        let repr = if n_ports <= 64 {
            Repr::Inline(0)
        } else if small_fits(n_ports, 0) {
            Repr::Small([u16::MAX; SMALL_CAP])
        } else {
            Repr::Bitmap(vec![0; n_ports.div_ceil(64)])
        };
        DestSet {
            repr,
            n_ports,
            len: 0,
        }
    }

    /// Creates the full set `{0, …, n_ports−1}` in `O(n_ports / 64)`: whole
    /// words are filled directly, plus a masked tail word.
    pub fn all(n_ports: usize) -> Self {
        assert!(n_ports > 0, "network must have at least one port");
        if n_ports <= 64 {
            return DestSet {
                repr: Repr::Inline(range_mask(0, n_ports)),
                n_ports,
                len: n_ports,
            };
        }
        // n_ports > 64 > SMALL_CAP members: always a bitmap.
        let mut words = vec![0u64; n_ports.div_ceil(64)];
        let full_words = n_ports / 64;
        let tail_bits = n_ports % 64;
        for w in &mut words[..full_words] {
            *w = u64::MAX;
        }
        if tail_bits > 0 {
            words[full_words] = (1u64 << tail_bits) - 1;
        }
        DestSet {
            repr: Repr::Bitmap(words),
            n_ports,
            len: n_ports,
        }
    }

    /// Creates a set from an iterator of ports.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if any port is `≥ n_ports`.
    pub fn from_ports<I>(n_ports: usize, ports: I) -> Result<Self, NetError>
    where
        I: IntoIterator<Item = PortId>,
    {
        let mut set = DestSet::empty(n_ports);
        for p in ports {
            if p >= n_ports {
                return Err(NetError::PortOutOfRange { port: p, n_ports });
            }
            set.insert(p);
        }
        Ok(set)
    }

    /// `n` consecutive ports starting at `base` — the "neighbors" placement.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if `base + n` exceeds the
    /// network size.
    pub fn adjacent(n_ports: usize, base: PortId, n: usize) -> Result<Self, NetError> {
        if base + n > n_ports {
            return Err(NetError::PortOutOfRange {
                port: base + n.saturating_sub(1),
                n_ports,
            });
        }
        DestSet::from_ports(n_ports, base..base + n)
    }

    /// `n` ports spread maximally: `{i·N/n : i in 0..n}` for a power-of-two
    /// `n`. These destinations differ in their most significant bits, so a
    /// scheme-2 multicast forks at every one of the first `log₂ n` stages —
    /// the worst case assumed by eq. 3 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyDestSet`] if `n == 0` and
    /// [`NetError::PortOutOfRange`] if `n > n_ports`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `n_ports` is not a power of two.
    pub fn worst_case_spread(n_ports: usize, n: usize) -> Result<Self, NetError> {
        assert!(n_ports.is_power_of_two(), "N must be a power of two");
        if n == 0 {
            return Err(NetError::EmptyDestSet);
        }
        assert!(n.is_power_of_two(), "n must be a power of two");
        if n > n_ports {
            return Err(NetError::PortOutOfRange {
                port: n - 1,
                n_ports,
            });
        }
        let stride = n_ports / n;
        DestSet::from_ports(n_ports, (0..n).map(|i| i * stride))
    }

    /// An aligned subcube: all ports agreeing with `base` outside the `l`
    /// low bit positions. Size `2^l`; exactly the sets addressable by
    /// scheme 3 when tasks sit on adjacent processors.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if `base ≥ n_ports`.
    ///
    /// # Panics
    ///
    /// Panics if `n_ports` is not a power of two or `2^l > n_ports`.
    pub fn subcube(n_ports: usize, base: PortId, l: u32) -> Result<Self, NetError> {
        assert!(n_ports.is_power_of_two(), "N must be a power of two");
        assert!(
            (1usize << l) <= n_ports,
            "subcube of 2^{l} ports exceeds the network"
        );
        if base >= n_ports {
            return Err(NetError::PortOutOfRange {
                port: base,
                n_ports,
            });
        }
        let anchor = base & !((1usize << l) - 1);
        DestSet::from_ports(n_ports, (0..(1usize << l)).map(|low| anchor | low))
    }

    /// Network size this set was built for.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Number of destinations in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rebuilds `self.repr` as a heap bitmap regardless of density. Only
    /// meaningful for `Small` (Inline never coexists with Bitmap at one
    /// `n_ports`).
    fn promote(&mut self) {
        if let Repr::Small(list) = &self.repr {
            let mut words = vec![0u64; self.n_ports.div_ceil(64)];
            for &p in &list[..self.len] {
                words[p as usize / 64] |= 1u64 << (p as usize % 64);
            }
            self.repr = Repr::Bitmap(words);
        }
    }

    /// Rebuilds a bitmap that has shrunk back to `SMALL_CAP` members as an
    /// inline list, keeping the representation canonical in `(n_ports, len)`.
    fn demote(&mut self) {
        if let Repr::Bitmap(words) = &self.repr {
            debug_assert!(small_fits(self.n_ports, self.len));
            let mut list = [u16::MAX; SMALL_CAP];
            let mut i = 0;
            for (wi, &word) in words.iter().enumerate() {
                let mut rest = word;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    list[i] = (wi * 64 + bit) as u16;
                    i += 1;
                }
            }
            debug_assert_eq!(i, self.len);
            self.repr = Repr::Small(list);
        }
    }

    /// Adds `port` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    #[inline]
    pub fn insert(&mut self, port: PortId) -> bool {
        assert!(port < self.n_ports, "port {port} out of range");
        match &mut self.repr {
            Repr::Inline(w) => {
                let bit = 1u64 << port;
                let fresh = *w & bit == 0;
                if fresh {
                    *w |= bit;
                    self.len += 1;
                }
                fresh
            }
            Repr::Small(list) => {
                let mut i = 0;
                while i < self.len && (list[i] as usize) < port {
                    i += 1;
                }
                if i < self.len && list[i] as usize == port {
                    return false;
                }
                if self.len < SMALL_CAP {
                    for j in (i..self.len).rev() {
                        list[j + 1] = list[j];
                    }
                    list[i] = port as u16;
                } else {
                    self.promote();
                    let Repr::Bitmap(words) = &mut self.repr else {
                        unreachable!("promote yields a bitmap")
                    };
                    words[port / 64] |= 1u64 << (port % 64);
                }
                self.len += 1;
                true
            }
            Repr::Bitmap(words) => {
                let word = &mut words[port / 64];
                let bit = 1u64 << (port % 64);
                let fresh = *word & bit == 0;
                if fresh {
                    *word |= bit;
                    self.len += 1;
                }
                fresh
            }
        }
    }

    /// Removes `port` from the set. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, port: PortId) -> bool {
        if port >= self.n_ports {
            return false;
        }
        match &mut self.repr {
            Repr::Inline(w) => {
                let bit = 1u64 << port;
                let present = *w & bit != 0;
                if present {
                    *w &= !bit;
                    self.len -= 1;
                }
                present
            }
            Repr::Small(list) => {
                let Some(i) = list[..self.len].iter().position(|&p| p as usize == port) else {
                    return false;
                };
                for j in i..self.len - 1 {
                    list[j] = list[j + 1];
                }
                list[self.len - 1] = u16::MAX;
                self.len -= 1;
                true
            }
            Repr::Bitmap(words) => {
                let word = &mut words[port / 64];
                let bit = 1u64 << (port % 64);
                let present = *word & bit != 0;
                if present {
                    *word &= !bit;
                    self.len -= 1;
                    if small_fits(self.n_ports, self.len) {
                        self.demote();
                    }
                }
                present
            }
        }
    }

    /// Whether `port` is in the set.
    #[inline]
    pub fn contains(&self, port: PortId) -> bool {
        if port >= self.n_ports {
            return false;
        }
        match &self.repr {
            Repr::Inline(w) => w & (1 << port) != 0,
            Repr::Small(list) => {
                for &p in &list[..self.len] {
                    let p = p as usize;
                    if p >= port {
                        return p == port;
                    }
                }
                false
            }
            Repr::Bitmap(words) => words[port / 64] & (1 << (port % 64)) != 0,
        }
    }

    /// Whether any member lies in `lo..hi` — a word-level range probe, used
    /// by the bit-vector multicast traversal to test whether a switch's
    /// subtree covers a destination without enumerating ports.
    pub fn any_in_range(&self, lo: PortId, hi: PortId) -> bool {
        let hi = hi.min(self.n_ports);
        if lo >= hi {
            return false;
        }
        match &self.repr {
            Repr::Inline(w) => w & range_mask(lo, hi) != 0,
            Repr::Small(list) => list[..self.len]
                .iter()
                .any(|&p| (lo..hi).contains(&(p as usize))),
            Repr::Bitmap(words) => {
                let (w0, w1) = (lo / 64, (hi - 1) / 64);
                if w0 == w1 {
                    return words[w0] & range_mask(lo % 64, (hi - 1) % 64 + 1) != 0;
                }
                if words[w0] & range_mask(lo % 64, 64) != 0 {
                    return true;
                }
                if words[w1] & range_mask(0, (hi - 1) % 64 + 1) != 0 {
                    return true;
                }
                words[w0 + 1..w1].iter().any(|&w| w != 0)
            }
        }
    }

    /// Adds every member of `other` to `self` — word-parallel when both
    /// sides are bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if the sets were built for different network sizes.
    pub fn union_with(&mut self, other: &DestSet) {
        assert_eq!(self.n_ports, other.n_ports, "DestSet size mismatch");
        match &other.repr {
            Repr::Inline(ow) => {
                let Repr::Inline(w) = &mut self.repr else {
                    unreachable!("same n_ports implies same word layout")
                };
                *w |= ow;
                self.len = w.count_ones() as usize;
            }
            Repr::Small(list) => {
                for &p in &list[..other.len] {
                    self.insert(p as usize);
                }
            }
            Repr::Bitmap(ow) => {
                // other has > SMALL_CAP members, so the union does too.
                self.promote();
                let Repr::Bitmap(words) = &mut self.repr else {
                    unreachable!("promote yields a bitmap")
                };
                let mut len = 0;
                for (w, o) in words.iter_mut().zip(ow) {
                    *w |= o;
                    len += w.count_ones() as usize;
                }
                self.len = len;
            }
        }
    }

    /// Removes every member of `other` from `self` — word-parallel when both
    /// sides are bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if the sets were built for different network sizes.
    pub fn difference_with(&mut self, other: &DestSet) {
        assert_eq!(self.n_ports, other.n_ports, "DestSet size mismatch");
        match &other.repr {
            Repr::Inline(ow) => {
                let Repr::Inline(w) = &mut self.repr else {
                    unreachable!("same n_ports implies same word layout")
                };
                *w &= !ow;
                self.len = w.count_ones() as usize;
            }
            Repr::Small(olist) => {
                let olist = *olist;
                let olen = other.len;
                for &p in &olist[..olen] {
                    self.remove(p as usize);
                }
            }
            Repr::Bitmap(ow) => match &mut self.repr {
                Repr::Small(list) => {
                    let mut out = 0;
                    for i in 0..self.len {
                        let p = list[i];
                        if ow[p as usize / 64] & (1u64 << (p as usize % 64)) == 0 {
                            list[out] = p;
                            out += 1;
                        }
                    }
                    for slot in &mut list[out..self.len] {
                        *slot = u16::MAX;
                    }
                    self.len = out;
                }
                Repr::Bitmap(words) => {
                    let mut len = 0;
                    for (w, o) in words.iter_mut().zip(ow) {
                        *w &= !o;
                        len += w.count_ones() as usize;
                    }
                    self.len = len;
                    if small_fits(self.n_ports, self.len) {
                        self.demote();
                    }
                }
                Repr::Inline(_) => unreachable!("same n_ports implies same word layout"),
            },
        }
    }

    /// Whether the sets share at least one member — word-parallel when both
    /// sides are bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if the sets were built for different network sizes.
    pub fn intersects(&self, other: &DestSet) -> bool {
        assert_eq!(self.n_ports, other.n_ports, "DestSet size mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a & b != 0,
            (Repr::Bitmap(a), Repr::Bitmap(b)) => a.iter().zip(b).any(|(x, y)| x & y != 0),
            (Repr::Inline(_), Repr::Bitmap(_)) | (Repr::Bitmap(_), Repr::Inline(_)) => {
                unreachable!("same n_ports implies same word layout")
            }
            (Repr::Small(list), other_set) | (other_set, Repr::Small(list)) => {
                let len = if matches!(self.repr, Repr::Small(_)) {
                    self.len
                } else {
                    other.len
                };
                let probe = |p: usize| match other_set {
                    Repr::Inline(w) => w & (1 << p) != 0,
                    Repr::Small(l) => l.contains(&(p as u16)),
                    Repr::Bitmap(ws) => ws[p / 64] & (1 << (p % 64)) != 0,
                };
                list[..len].iter().any(|&p| probe(p as usize))
            }
        }
    }

    /// Whether every member of `other` is in `self` — word-parallel when
    /// both sides are bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if the sets were built for different network sizes.
    pub fn contains_all(&self, other: &DestSet) -> bool {
        assert_eq!(self.n_ports, other.n_ports, "DestSet size mismatch");
        if other.len > self.len {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => b & !a == 0,
            (Repr::Bitmap(a), Repr::Bitmap(b)) => a.iter().zip(b).all(|(x, y)| y & !x == 0),
            _ => other.iter().all(|p| self.contains(p)),
        }
    }

    /// Iterates over member ports in ascending order.
    pub fn iter(&self) -> DestIter<'_> {
        DestIter {
            state: match &self.repr {
                Repr::Inline(w) => IterState::Words {
                    words: std::slice::from_ref(w),
                    wi: 0,
                    rest: *w,
                },
                Repr::Small(list) => IterState::List {
                    list: &list[..self.len],
                    i: 0,
                },
                Repr::Bitmap(words) => IterState::Words {
                    words,
                    wi: 0,
                    rest: words[0],
                },
            },
        }
    }

    /// Validates that this set matches the network's size.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::SizeMismatch`] on mismatch.
    pub fn check_net(&self, net: &Omega) -> Result<(), NetError> {
        if self.n_ports == net.ports() {
            Ok(())
        } else {
            Err(NetError::SizeMismatch {
                set_ports: self.n_ports,
                net_ports: net.ports(),
            })
        }
    }

    /// Whether the members form an aligned subcube (including singletons and
    /// the full set). Empty sets are not subcubes.
    pub fn is_subcube(&self) -> bool {
        self.subcube_spec().is_some()
    }

    /// If the members form a subcube, returns `(anchor, free_mask)`: the
    /// common bits and a mask of the positions that vary. General subcubes
    /// (any free-bit positions) are recognized, not only low-bit-aligned
    /// ones.
    pub fn subcube_spec(&self) -> Option<(PortId, usize)> {
        if self.is_empty() || !self.len.is_power_of_two() {
            return None;
        }
        let mut iter = self.iter();
        let first = iter.next().expect("nonempty");
        let mut free_mask = 0usize;
        for p in self.iter() {
            free_mask |= p ^ first;
        }
        if free_mask.count_ones() != self.len.trailing_zeros() {
            return None;
        }
        // All 2^l combinations of free bits must be present; since we have
        // exactly 2^l distinct members all differing from `first` only in
        // free positions, membership is guaranteed by counting — but verify
        // anchor bits to be safe against duplicates (impossible in a set).
        let anchor = first & !free_mask;
        for p in self.iter() {
            if p & !free_mask != anchor {
                return None;
            }
        }
        Some((anchor, free_mask))
    }

    /// The smallest aligned low-bit subcube containing the whole set:
    /// returns `(anchor, l)` with the set contained in
    /// `{anchor .. anchor + 2^l}`. Used when upgrading an arbitrary set to a
    /// scheme-3-addressable superset.
    ///
    /// Returns `None` for an empty set.
    pub fn enclosing_low_subcube(&self) -> Option<(PortId, u32)> {
        let first = self.iter().next()?;
        let mut diff = 0usize;
        for p in self.iter() {
            diff |= p ^ first;
        }
        let l = if diff == 0 {
            0
        } else {
            usize::BITS - diff.leading_zeros()
        };
        Some((first & !((1usize << l) - 1), l))
    }
}

enum IterState<'a> {
    Words {
        words: &'a [u64],
        wi: usize,
        rest: u64,
    },
    List {
        list: &'a [u16],
        i: usize,
    },
}

/// Ascending iterator over a [`DestSet`]'s members: word-wise
/// `trailing_zeros` extraction over bitmap storage, a plain scan over the
/// inline sorted list. No allocation either way.
pub struct DestIter<'a> {
    state: IterState<'a>,
}

impl Iterator for DestIter<'_> {
    type Item = PortId;

    #[inline]
    fn next(&mut self) -> Option<PortId> {
        match &mut self.state {
            IterState::Words { words, wi, rest } => loop {
                if *rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    *rest &= *rest - 1;
                    return Some(*wi * 64 + bit);
                }
                *wi += 1;
                if *wi >= words.len() {
                    return None;
                }
                *rest = words[*wi];
            },
            IterState::List { list, i } => {
                let p = list.get(*i)?;
                *i += 1;
                Some(*p as usize)
            }
        }
    }
}

impl fmt::Debug for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DestSet(N={}, {{", self.n_ports)?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}})")
    }
}

impl<'a> IntoIterator for &'a DestSet {
    type Item = PortId;
    type IntoIter = DestIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DestSet::empty(128);
        assert!(s.insert(0));
        assert!(s.insert(127));
        assert!(!s.insert(127));
        assert_eq!(s.len(), 2);
        assert!(s.contains(0));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn small_sets_use_inline_storage() {
        let mut s = DestSet::empty(64);
        assert!(matches!(s.repr, Repr::Inline(_)));
        assert!(s.insert(63));
        assert!(s.contains(63));
        assert!(!s.contains(62));
        // Sparse sets beyond 64 ports stay inline too — as a sorted list.
        let mut big = DestSet::empty(65);
        assert!(matches!(big.repr, Repr::Small(_)));
        for p in 0..SMALL_CAP {
            big.insert(p * 5);
        }
        assert!(matches!(big.repr, Repr::Small(_)));
        // Only past SMALL_CAP members does the heap bitmap appear.
        big.insert(64);
        assert!(matches!(big.repr, Repr::Bitmap(_)));
    }

    #[test]
    fn promotion_and_demotion_round_trip() {
        let mut s = DestSet::empty(1024);
        let members: Vec<usize> = (0..SMALL_CAP + 3).map(|i| i * 71).collect();
        for &p in &members {
            assert!(s.insert(p));
        }
        assert!(matches!(s.repr, Repr::Bitmap(_)));
        assert_eq!(s.iter().collect::<Vec<_>>(), members);
        // Shrink back: representation demotes and stays equal to a set
        // built small from scratch (canonical repr ⇒ consistent Eq/Hash).
        for &p in &members[SMALL_CAP..] {
            assert!(s.remove(p));
        }
        assert!(matches!(s.repr, Repr::Small(_)));
        let rebuilt = DestSet::from_ports(1024, members[..SMALL_CAP].iter().copied()).unwrap();
        assert_eq!(s, rebuilt);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |d: &DestSet| {
            let mut h = DefaultHasher::new();
            d.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&s), hash(&rebuilt));
    }

    #[test]
    fn iter_is_sorted_across_words() {
        let s = DestSet::from_ports(256, [200usize, 3, 64, 65, 199]).unwrap();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, [3, 64, 65, 199, 200]);
    }

    #[test]
    fn from_ports_rejects_out_of_range() {
        assert_eq!(
            DestSet::from_ports(8, [8usize]),
            Err(NetError::PortOutOfRange {
                port: 8,
                n_ports: 8
            })
        );
    }

    #[test]
    fn adjacent_and_bounds() {
        let s = DestSet::adjacent(8, 6, 2).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), [6, 7]);
        assert!(DestSet::adjacent(8, 6, 3).is_err());
        assert_eq!(DestSet::adjacent(8, 0, 0).unwrap().len(), 0);
    }

    #[test]
    fn all_fills_whole_words_and_tail() {
        // Inline, exactly one word, word-boundary and odd sizes.
        for n in [1usize, 5, 63, 64] {
            let s = DestSet::all(n);
            assert_eq!(s.len(), n);
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        }
        // Heap: multiple words plus a masked tail.
        for n in [65usize, 128, 130, 1024] {
            let s = DestSet::all(n);
            assert_eq!(s.len(), n);
            assert_eq!(s.iter().count(), n);
            assert!(s.contains(n - 1));
            assert!(!s.contains(n));
            assert_eq!(s.iter().last(), Some(n - 1));
        }
    }

    #[test]
    fn any_in_range_matches_iteration() {
        for n in [16usize, 64, 65, 256, 1024] {
            let s = DestSet::from_ports(n, [0usize, 5, n / 2, n - 1]).unwrap();
            for lo in 0..n.min(80) {
                for hi in lo..=n.min(80) {
                    let want = s.iter().any(|p| p >= lo && p < hi);
                    assert_eq!(s.any_in_range(lo, hi), want, "N={n} [{lo},{hi})");
                }
            }
            // Ranges straddling and past the end clamp.
            assert!(s.any_in_range(n - 1, n + 100));
            assert!(!s.any_in_range(n, n + 100));
        }
        // Dense bitmap with interior whole-word gaps.
        let s = DestSet::from_ports(512, [10usize, 400]).unwrap();
        let dense = DestSet::all(512);
        assert!(!s.any_in_range(11, 400));
        assert!(s.any_in_range(11, 401));
        assert!(dense.any_in_range(64, 128));
    }

    #[test]
    fn union_and_difference_match_reference() {
        for n in [16usize, 64, 65, 128, 1024] {
            let a: Vec<usize> = (0..n).step_by(3).collect();
            let b: Vec<usize> = (0..n).step_by(5).collect();
            let sa = DestSet::from_ports(n, a.iter().copied()).unwrap();
            let sb = DestSet::from_ports(n, b.iter().copied()).unwrap();

            let mut u = sa.clone();
            u.union_with(&sb);
            let mut want: Vec<usize> = a.iter().chain(&b).copied().collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(u.iter().collect::<Vec<_>>(), want, "N={n} union");
            assert_eq!(u.len(), want.len());

            let mut d = sa.clone();
            d.difference_with(&sb);
            let want: Vec<usize> = a.iter().copied().filter(|p| !b.contains(p)).collect();
            assert_eq!(d.iter().collect::<Vec<_>>(), want, "N={n} difference");
            assert_eq!(d.len(), want.len());

            assert!(sa.intersects(&sb)); // both contain 0
            assert!(u.contains_all(&sa) && u.contains_all(&sb));
            assert!(!d.intersects(&sb));
        }
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let big = DestSet::all(1024);
        let small = DestSet::from_ports(1024, [1usize, 900]).unwrap();
        let mut target = DestSet::empty(1024);
        target.clone_from(&big);
        assert_eq!(target, big);
        target.clone_from(&small);
        assert_eq!(target, small);
        let mut inline = DestSet::empty(16);
        inline.clone_from(&DestSet::all(16));
        assert_eq!(inline, DestSet::all(16));
    }

    #[test]
    fn worst_case_spread_has_maximal_prefixes() {
        let s = DestSet::worst_case_spread(16, 4).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), [0, 4, 8, 12]);
        // Top two bits all distinct.
        let tops: Vec<_> = s.iter().map(|p| p >> 2).collect();
        assert_eq!(tops, [0, 1, 2, 3]);
        assert!(DestSet::worst_case_spread(16, 0).is_err());
        assert!(DestSet::worst_case_spread(16, 32).is_err());
    }

    #[test]
    fn subcube_construction_and_recognition() {
        let s = DestSet::subcube(32, 13, 2).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), [12, 13, 14, 15]);
        assert!(s.is_subcube());
        assert_eq!(s.subcube_spec(), Some((12, 0b11)));

        // A general (non-low-aligned) subcube is still recognized.
        let g = DestSet::from_ports(16, [1usize, 3, 9, 11]).unwrap();
        assert_eq!(g.subcube_spec(), Some((1, 0b1010)));

        // Not a subcube: wrong structure despite power-of-two size.
        let bad = DestSet::from_ports(16, [0usize, 1, 2, 4]).unwrap();
        assert!(!bad.is_subcube());

        // Size not a power of two.
        let odd = DestSet::from_ports(16, [0usize, 1, 2]).unwrap();
        assert!(!odd.is_subcube());

        // Singleton and full set are subcubes.
        assert!(DestSet::from_ports(8, [5usize]).unwrap().is_subcube());
        assert!(DestSet::all(8).is_subcube());
        assert!(!DestSet::empty(8).is_subcube());

        // Subcube detection crosses the small/bitmap boundary at big N.
        let wide = DestSet::subcube(1024, 512, 4).unwrap();
        assert_eq!(wide.subcube_spec(), Some((512, 0b1111)));
        let sparse = DestSet::from_ports(1024, [5usize, 517]).unwrap();
        assert_eq!(sparse.subcube_spec(), Some((5, 512)));
    }

    #[test]
    fn enclosing_low_subcube_is_tight() {
        let s = DestSet::from_ports(64, [17usize, 18, 22]).unwrap();
        let (anchor, l) = s.enclosing_low_subcube().unwrap();
        assert_eq!((anchor, l), (16, 3));
        let singleton = DestSet::from_ports(64, [9usize]).unwrap();
        assert_eq!(singleton.enclosing_low_subcube(), Some((9, 0)));
        assert_eq!(DestSet::empty(64).enclosing_low_subcube(), None);
    }

    #[test]
    fn debug_lists_members() {
        let s = DestSet::from_ports(8, [1usize, 4]).unwrap();
        assert_eq!(format!("{s:?}"), "DestSet(N=8, {1, 4})");
    }
}
