//! Omega networks of a×a switches — the paper's generalization.
//!
//! §3 of the paper restricts the exposition to 2×2 switches "even if the
//! results can be generalized to other topologies of multistage networks
//! with other switches". This module carries out that generalization for
//! power-of-two switch radices `a = 2^g`: an `N = a^m` network with `m`
//! stages of `N/a` switches, destination-tag routing consuming one base-`a`
//! digit (`g` bits) per stage, and the scheme-1/scheme-2 multicasts. (Wen's
//! scheme 3 is defined in terms of 2×2 broadcast bits; it stays on
//! [`crate::Omega`].)

use crate::destset::DestSet;
use crate::error::NetError;
use crate::multicast::{CastReceipt, SchemeChoice};
use crate::topology::{LinkId, PortId};
use crate::traffic::TrafficMatrix;

/// An `N×N` omega network of `a×a` switches, `a = 2^g`, `N = a^m`.
///
/// # Example
///
/// ```
/// use tmc_omeganet::aary::AryOmega;
///
/// let net = AryOmega::new(3, 2)?; // 4x4 switches, 3 stages: N = 64
/// assert_eq!(net.ports(), 64);
/// assert_eq!(net.stages(), 3);
/// let path = net.route(5, 42);
/// assert_eq!(path.last().unwrap().line, 42);
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AryOmega {
    /// Number of stages (base-`a` digits of a port number).
    m: u32,
    /// log₂ of the switch radix.
    g: u32,
    n: usize,
}

impl AryOmega {
    /// Creates a network with `m` stages of `2^g × 2^g` switches.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadStageCount`] unless `1 ≤ m`, `1 ≤ g` and
    /// `m·g ≤ 16` (at most 2¹⁶ ports, as for [`crate::Omega`]).
    pub fn new(m: u32, g: u32) -> Result<Self, NetError> {
        if m == 0 || g == 0 || m * g > 16 {
            return Err(NetError::BadStageCount { m: m * g });
        }
        Ok(AryOmega {
            m,
            g,
            n: 1usize << (m * g),
        })
    }

    /// Number of stages `m = log_a N`.
    pub fn stages(&self) -> u32 {
        self.m
    }

    /// Switch radix `a = 2^g`.
    pub fn radix(&self) -> usize {
        1 << self.g
    }

    /// Number of ports `N = a^m`.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Bits per routing digit, `g = log₂ a`.
    pub fn digit_bits(&self) -> u32 {
        self.g
    }

    /// The perfect a-shuffle: rotate the base-`a` digit string left by one
    /// digit (`g` bits).
    #[inline]
    pub fn shuffle(&self, line: usize) -> usize {
        let total = self.m * self.g;
        ((line << self.g) | (line >> (total - self.g))) & (self.n - 1)
    }

    /// The routing digit used at `stage` for destination `dst` (most
    /// significant digit first).
    #[inline]
    pub fn routing_digit(&self, dst: PortId, stage: u32) -> usize {
        (dst >> (self.g * (self.m - 1 - stage))) & (self.radix() - 1)
    }

    /// The unique path from `src` to `dst` as `m + 1` [`LinkId`]s.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range.
    pub fn route(&self, src: PortId, dst: PortId) -> Vec<LinkId> {
        assert!(src < self.n && dst < self.n, "port out of range");
        let mut links = Vec::with_capacity(self.m as usize + 1);
        links.push(LinkId {
            layer: 0,
            line: src,
        });
        let mut line = src;
        for stage in 0..self.m {
            line = self.shuffle(line);
            let sw = line >> self.g;
            line = (sw << self.g) | self.routing_digit(dst, stage);
            links.push(LinkId {
                layer: stage + 1,
                line,
            });
        }
        debug_assert_eq!(line, dst);
        links
    }

    /// A traffic matrix shaped for this network.
    pub fn traffic_matrix(&self) -> TrafficMatrix {
        TrafficMatrix::with_shape(self.m as usize + 1, self.n)
    }

    /// Scheme 1 on an a-ary network: one tagged unicast per destination;
    /// the tag at layer `j` holds `m − j` digits of `g` bits.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyDestSet`] / [`NetError::SizeMismatch`] /
    /// [`NetError::PortOutOfRange`] as for the 2×2 network.
    pub fn cast_replicated(
        &self,
        src: PortId,
        dests: &DestSet,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
    ) -> Result<CastReceipt, NetError> {
        self.validate(src, dests)?;
        let mut cost = 0;
        let mut links = 0;
        let mut delivered = Vec::with_capacity(dests.len());
        for dst in dests.iter() {
            for link in self.route(src, dst) {
                let bits = payload_bits + ((self.m - link.layer) * self.g) as u64;
                traffic.add(link, bits);
                cost += bits;
                links += 1;
            }
            delivered.push(dst);
        }
        debug_assert_eq!(cost, self.cost_replicated(dests.len() as u64, payload_bits));
        Ok(CastReceipt {
            scheme: SchemeChoice::Replicated,
            delivered,
            cost_bits: cost,
            links_crossed: links,
        })
    }

    /// Scheme 2 on an a-ary network: the N-bit vector splits `a` ways at
    /// each switch; the subvector at layer `j` holds `N/a^j` bits.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyDestSet`] / [`NetError::SizeMismatch`] /
    /// [`NetError::PortOutOfRange`] as for the 2×2 network.
    pub fn cast_bitvector(
        &self,
        src: PortId,
        dests: &DestSet,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
    ) -> Result<CastReceipt, NetError> {
        self.validate(src, dests)?;
        let n_ports = self.n as u64;
        let mut cost = 0u64;
        let mut links = 0usize;
        let mut delivered = Vec::with_capacity(dests.len());

        let bits0 = payload_bits + n_ports;
        traffic.add(
            LinkId {
                layer: 0,
                line: src,
            },
            bits0,
        );
        cost += bits0;
        links += 1;

        let all: Vec<PortId> = dests.iter().collect();
        let mut work: Vec<(u32, usize, Vec<PortId>)> = vec![(0, src, all)];
        while let Some((stage, line, subset)) = work.pop() {
            let sw = self.shuffle(line) >> self.g;
            let mut groups: Vec<Vec<PortId>> = vec![Vec::new(); self.radix()];
            for d in subset {
                groups[self.routing_digit(d, stage)].push(d);
            }
            for (digit, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let out_line = (sw << self.g) | digit;
                let layer = stage + 1;
                let bits = payload_bits + (n_ports >> (self.g * layer));
                traffic.add(
                    LinkId {
                        layer,
                        line: out_line,
                    },
                    bits,
                );
                cost += bits;
                links += 1;
                if layer == self.m {
                    debug_assert_eq!(group, vec![out_line]);
                    delivered.push(out_line);
                } else {
                    work.push((layer, out_line, group));
                }
            }
        }
        delivered.sort_unstable();
        debug_assert_eq!(cost, self.cost_bitvector(dests, payload_bits));
        Ok(CastReceipt {
            scheme: SchemeChoice::BitVector,
            delivered,
            cost_bits: cost,
            links_crossed: links,
        })
    }

    /// Exact scheme-1 cost: `n · Σ_{j=0}^{m} (M + (m−j)·g)`.
    pub fn cost_replicated(&self, n: u64, payload: u64) -> u64 {
        let m = self.m as u64;
        let g = self.g as u64;
        n * ((m + 1) * payload + g * m * (m + 1) / 2)
    }

    /// Exact scheme-2 cost for a destination set (source independent).
    pub fn cost_bitvector(&self, dests: &DestSet, payload: u64) -> u64 {
        let n_ports = self.n as u64;
        let mut cost = payload + n_ports;
        let mut prefixes: Vec<usize> = dests.iter().collect();
        for j in (1..=self.m).rev() {
            let shift = self.g * (self.m - j);
            prefixes.dedup_by_key(|d| *d >> shift);
            cost += prefixes.len() as u64 * (payload + (n_ports >> (self.g * j)));
        }
        cost
    }

    fn validate(&self, src: PortId, dests: &DestSet) -> Result<(), NetError> {
        if src >= self.n {
            return Err(NetError::PortOutOfRange {
                port: src,
                n_ports: self.n,
            });
        }
        if dests.n_ports() != self.n {
            return Err(NetError::SizeMismatch {
                set_ports: dests.n_ports(),
                net_ports: self.n,
            });
        }
        if dests.is_empty() {
            return Err(NetError::EmptyDestSet);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Omega;

    #[test]
    fn radix_2_matches_the_binary_network() {
        let ary = AryOmega::new(4, 1).unwrap();
        let bin = Omega::new(4).unwrap();
        assert_eq!(ary.ports(), bin.ports());
        for src in 0..16 {
            for dst in 0..16 {
                assert_eq!(ary.route(src, dst), bin.route(src, dst));
            }
        }
        let dests = DestSet::from_ports(16, [1usize, 7, 9, 14]).unwrap();
        let mut ta = ary.traffic_matrix();
        let mut tb = TrafficMatrix::new(&bin);
        let ra = ary.cast_bitvector(3, &dests, 20, &mut ta).unwrap();
        let rb = bin
            .multicast(
                crate::multicast::SchemeKind::BitVector,
                3,
                &dests,
                20,
                &mut tb,
            )
            .unwrap();
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
        let ra = {
            let mut t = ary.traffic_matrix();
            ary.cast_replicated(3, &dests, 20, &mut t).unwrap()
        };
        let rb = {
            let mut t = TrafficMatrix::new(&bin);
            bin.multicast(
                crate::multicast::SchemeKind::Replicated,
                3,
                &dests,
                20,
                &mut t,
            )
            .unwrap()
        };
        assert_eq!(ra, rb);
    }

    #[test]
    fn routes_land_for_all_radices() {
        for (m, g) in [(2u32, 2u32), (3, 2), (2, 3), (4, 2), (2, 4)] {
            let net = AryOmega::new(m, g).unwrap();
            for src in (0..net.ports()).step_by(7) {
                for dst in (0..net.ports()).step_by(5) {
                    let path = net.route(src, dst);
                    assert_eq!(path.len() as u32, m + 1);
                    assert_eq!(path[0].line, src);
                    assert_eq!(path.last().unwrap().line, dst);
                }
            }
        }
    }

    #[test]
    fn bitvector_delivers_exact_set_any_radix() {
        let net = AryOmega::new(3, 2).unwrap(); // N = 64, 4x4 switches
        let dests = DestSet::from_ports(64, [0usize, 17, 18, 40, 63]).unwrap();
        let mut t = net.traffic_matrix();
        let r = net.cast_bitvector(9, &dests, 20, &mut t).unwrap();
        assert_eq!(r.delivered, vec![0, 17, 18, 40, 63]);
        assert_eq!(r.cost_bits, t.total_bits());
    }

    #[test]
    fn higher_radix_shortens_paths_and_cheapens_unicasts() {
        // N = 256 as 8 stages of 2x2 or 4 stages of 4x4 or 2 stages of
        // 16x16: fewer stages means fewer link crossings per message.
        let dests = DestSet::from_ports(256, [200usize]).unwrap();
        let mut costs = Vec::new();
        for (m, g) in [(8u32, 1u32), (4, 2), (2, 4)] {
            let net = AryOmega::new(m, g).unwrap();
            assert_eq!(net.ports(), 256);
            let mut t = net.traffic_matrix();
            let r = net.cast_replicated(3, &dests, 100, &mut t).unwrap();
            costs.push(r.cost_bits);
        }
        assert!(costs[0] > costs[1] && costs[1] > costs[2], "{costs:?}");
    }

    #[test]
    fn wide_multicast_vector_costs_drop_with_radix() {
        // The full-broadcast bit-vector cost also falls with radix: fewer
        // layers each carrying the (same-sized) subvectors.
        let all = DestSet::all(256);
        let mut costs = Vec::new();
        for (m, g) in [(8u32, 1u32), (4, 2)] {
            let net = AryOmega::new(m, g).unwrap();
            costs.push(net.cost_bitvector(&all, 20));
        }
        assert!(costs[1] < costs[0], "{costs:?}");
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(AryOmega::new(0, 2).is_err());
        assert!(AryOmega::new(3, 0).is_err());
        assert!(AryOmega::new(9, 2).is_err()); // 2^18 ports
        let net = AryOmega::new(2, 2).unwrap();
        let foreign = DestSet::all(8);
        let mut t = net.traffic_matrix();
        assert!(matches!(
            net.cast_bitvector(0, &foreign, 20, &mut t),
            Err(NetError::SizeMismatch { .. })
        ));
        assert!(matches!(
            net.cast_replicated(99, &DestSet::all(16), 20, &mut t),
            Err(NetError::PortOutOfRange { .. })
        ));
    }
}
