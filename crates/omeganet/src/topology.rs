//! Omega network topology: perfect-shuffle wiring and destination-tag
//! routing.
//!
//! Following the paper (§3) we model an N×N omega network of 2×2 switches:
//! `m = log₂ N` stages, `N/2` switches per stage, a perfect shuffle
//! preceding every stage. Stages are numbered `0..m`; the paper additionally
//! speaks of "links to stage i" for `i = 0..=m`, where *layer* `m` is the
//! final hop into the destinations. We adopt that numbering: a message
//! traverses `m + 1` link layers, each layer containing `N` links.
//!
//! Routing is Lawrie's destination-tag scheme: with the destination written
//! `D = ⟨d₀ d₁ … d_{m−1}⟩` (d₀ the most significant bit), stage `i` sends the
//! message out of switch output `dᵢ` and strips that bit from the tag.

use crate::destset::DestSet;
use crate::error::NetError;

/// A network port number in `0..N`.
///
/// Cache `i` and memory module `i` of the simulated machine both attach to
/// port `i`; the type is a plain alias because ports appear pervasively in
/// index positions.
pub type PortId = usize;

/// Identifies one physical link: `layer` in `0..=m`, `line` in `0..N`.
///
/// * Layer `0` is the wire from input port `line` into its stage-0 switch.
/// * Layer `i` (for `1 ≤ i ≤ m−1`) is the wire leaving output line `line` of
///   stage `i−1` (the perfect shuffle permutes which stage-`i` switch input
///   it feeds, but it is the same physical wire).
/// * Layer `m` is the wire from the last stage into output port `line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkId {
    /// Link layer, `0..=m`.
    pub layer: u32,
    /// Line number within the layer, `0..N`.
    pub line: usize,
}

/// Lazily yields the links of one unicast route, layer 0 first — the
/// allocation-free form of [`Omega::route`]. Built by [`Omega::route_iter`];
/// self-contained (it copies the network's shape), so it borrows nothing.
#[derive(Debug, Clone)]
pub struct RouteIter {
    m: u32,
    mask: usize,
    line: usize,
    dst: PortId,
    layer: u32,
}

impl Iterator for RouteIter {
    type Item = LinkId;

    #[inline]
    fn next(&mut self) -> Option<LinkId> {
        if self.layer > self.m {
            return None;
        }
        let layer = self.layer;
        if layer > 0 {
            // Perfect shuffle into stage `layer − 1`, then exit on the
            // destination-tag bit that stage consumes.
            let stage = layer - 1;
            let shuffled = ((self.line << 1) | (self.line >> (self.m - 1))) & self.mask;
            self.line = (shuffled & !1) | ((self.dst >> (self.m - 1 - stage)) & 1);
            if layer == self.m {
                debug_assert_eq!(
                    self.line, self.dst,
                    "destination-tag routing must land on dst"
                );
            }
        }
        self.layer += 1;
        Some(LinkId {
            layer,
            line: self.line,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.m + 1 - self.layer) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for RouteIter {}

/// An N×N omega network of 2×2 switches.
///
/// # Example
///
/// ```
/// use tmc_omeganet::Omega;
///
/// let net = Omega::new(3)?; // N = 8
/// assert_eq!(net.ports(), 8);
/// assert_eq!(net.stages(), 3);
/// let path = net.route(5, 2);
/// assert_eq!(path.len(), 4);             // m + 1 link layers
/// assert_eq!(path[0].line, 5);           // leaves the source port
/// assert_eq!(path.last().unwrap().line, 2); // arrives at the destination
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Omega {
    m: u32,
    n: usize,
}

impl Omega {
    /// Creates an omega network with `m` stages (`N = 2^m` ports).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadStageCount`] unless `1 ≤ m ≤ 16`; beyond 2¹⁶
    /// ports the per-link traffic matrix would dominate memory for no
    /// experimental gain (the paper evaluates up to N = 2048).
    pub fn new(m: u32) -> Result<Self, NetError> {
        if !(1..=16).contains(&m) {
            return Err(NetError::BadStageCount { m });
        }
        Ok(Omega { m, n: 1usize << m })
    }

    /// Creates a network with at least `ports` ports (next power of two).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadStageCount`] if the resulting stage count is
    /// outside `1..=16`.
    pub fn with_ports(ports: usize) -> Result<Self, NetError> {
        let m = ports.next_power_of_two().trailing_zeros().max(1);
        Omega::new(m)
    }

    /// Number of stages `m = log₂ N`.
    pub fn stages(&self) -> u32 {
        self.m
    }

    /// Number of ports `N`.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Number of link layers a message crosses, `m + 1`.
    pub fn link_layers(&self) -> u32 {
        self.m + 1
    }

    /// Number of 2×2 switches per stage, `N/2`.
    pub fn switches_per_stage(&self) -> usize {
        self.n / 2
    }

    /// Validates that `port < N`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] otherwise.
    pub fn check_port(&self, port: PortId) -> Result<(), NetError> {
        if port < self.n {
            Ok(())
        } else {
            Err(NetError::PortOutOfRange {
                port,
                n_ports: self.n,
            })
        }
    }

    /// The perfect shuffle: rotate the `m`-bit line number left by one.
    #[inline]
    pub fn shuffle(&self, line: usize) -> usize {
        ((line << 1) | (line >> (self.m - 1))) & (self.n - 1)
    }

    /// Routing bit used at stage `stage` for destination `dst`: `d_stage`,
    /// i.e. bit `m − 1 − stage` of the destination (MSB first).
    #[inline]
    pub fn routing_bit(&self, dst: PortId, stage: u32) -> usize {
        (dst >> (self.m - 1 - stage)) & 1
    }

    /// The unique path from `src` to `dst`, as `m + 1` [`LinkId`]s,
    /// layer 0 first.
    ///
    /// This form allocates a fresh `Vec` per call and is kept for cold
    /// paths (tests, diagnostics, the blocking analyzer's collision
    /// report). Hot callers use [`Omega::route_iter`] (no allocation) or
    /// [`Omega::route_into`] (caller-provided scratch).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range (use [`Omega::check_port`]
    /// to validate untrusted input first).
    pub fn route(&self, src: PortId, dst: PortId) -> Vec<LinkId> {
        let mut links = Vec::with_capacity(self.m as usize + 1);
        self.route_into(src, dst, &mut links);
        links
    }

    /// Appends the `src`→`dst` path to `links` without allocating beyond
    /// the scratch vector's capacity — the `multicast_into` idiom for
    /// unicast routes.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn route_into(&self, src: PortId, dst: PortId, links: &mut Vec<LinkId>) {
        links.extend(self.route_iter(src, dst));
    }

    /// Iterates the `src`→`dst` path layer by layer, computing each link
    /// from the routing digits — no link list is ever materialized. This
    /// is the hot-path form behind every billed unicast.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use tmc_omeganet::Omega;
    ///
    /// let net = Omega::new(3)?;
    /// let collected: Vec<_> = net.route_iter(2, 6).collect();
    /// assert_eq!(collected, net.route(2, 6));
    /// # Ok::<(), tmc_omeganet::NetError>(())
    /// ```
    pub fn route_iter(&self, src: PortId, dst: PortId) -> RouteIter {
        assert!(src < self.n && dst < self.n, "port out of range");
        RouteIter {
            m: self.m,
            mask: self.n - 1,
            line: src,
            dst,
            layer: 0,
        }
    }

    /// The switch (stage, index) a layer-`layer` link feeds, or `None` for
    /// the final layer (which feeds an output port).
    pub fn link_feeds_switch(&self, link: LinkId) -> Option<(u32, usize)> {
        if link.layer >= self.m {
            return None;
        }
        // The wire is shuffled into the stage it feeds.
        let in_line = self.shuffle(link.line);
        Some((link.layer, in_line >> 1))
    }

    /// The set of switches reached at each stage when multicasting from
    /// `src` to `dests` — the "binary tree" view of Figure 3 in the paper.
    ///
    /// Element `s` of the result lists the distinct switch indices active at
    /// stage `s`, in ascending order.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::SizeMismatch`] if `dests` was built for another
    /// network size, or [`NetError::PortOutOfRange`] if `src` is invalid.
    pub fn tree_view(&self, src: PortId, dests: &DestSet) -> Result<Vec<Vec<usize>>, NetError> {
        self.check_port(src)?;
        dests.check_net(self)?;
        let mut stages: Vec<Vec<usize>> = Vec::with_capacity(self.m as usize);
        for _ in 0..self.m {
            stages.push(Vec::new());
        }
        for dst in dests.iter() {
            let mut line = src;
            for stage in 0..self.m {
                line = self.shuffle(line);
                let sw = line >> 1;
                if !stages[stage as usize].contains(&sw) {
                    stages[stage as usize].push(sw);
                }
                line = (sw << 1) | self.routing_bit(dst, stage);
            }
        }
        for s in &mut stages {
            s.sort_unstable();
        }
        Ok(stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_sizes() {
        assert_eq!(Omega::new(0), Err(NetError::BadStageCount { m: 0 }));
        assert_eq!(Omega::new(17), Err(NetError::BadStageCount { m: 17 }));
        assert!(Omega::new(1).is_ok());
        assert!(Omega::new(16).is_ok());
    }

    #[test]
    fn with_ports_rounds_up() {
        assert_eq!(Omega::with_ports(8).unwrap().ports(), 8);
        assert_eq!(Omega::with_ports(9).unwrap().ports(), 16);
        assert_eq!(Omega::with_ports(1).unwrap().ports(), 2);
    }

    #[test]
    fn shuffle_is_rotate_left() {
        let net = Omega::new(3).unwrap();
        assert_eq!(net.shuffle(0b001), 0b010);
        assert_eq!(net.shuffle(0b100), 0b001);
        assert_eq!(net.shuffle(0b110), 0b101);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        for m in 1..=6 {
            let net = Omega::new(m).unwrap();
            let mut seen = vec![false; net.ports()];
            for line in 0..net.ports() {
                let s = net.shuffle(line);
                assert!(!seen[s]);
                seen[s] = true;
            }
        }
    }

    #[test]
    fn route_reaches_destination_for_all_pairs() {
        for m in 1..=5 {
            let net = Omega::new(m).unwrap();
            for src in 0..net.ports() {
                for dst in 0..net.ports() {
                    let path = net.route(src, dst);
                    assert_eq!(path.len(), m as usize + 1);
                    assert_eq!(
                        path[0],
                        LinkId {
                            layer: 0,
                            line: src
                        }
                    );
                    assert_eq!(
                        *path.last().unwrap(),
                        LinkId {
                            layer: m,
                            line: dst
                        }
                    );
                    for (i, link) in path.iter().enumerate() {
                        assert_eq!(link.layer as usize, i);
                        assert!(link.line < net.ports());
                    }
                }
            }
        }
    }

    #[test]
    fn route_iter_matches_route_for_all_pairs() {
        for m in 1..=5 {
            let net = Omega::new(m).unwrap();
            for src in 0..net.ports() {
                for dst in 0..net.ports() {
                    let it = net.route_iter(src, dst);
                    assert_eq!(it.len(), m as usize + 1);
                    let lazy: Vec<LinkId> = it.collect();
                    assert_eq!(lazy, net.route(src, dst), "m={m} {src}->{dst}");
                    let mut scratch = Vec::new();
                    net.route_into(src, dst, &mut scratch);
                    assert_eq!(scratch, lazy);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "port out of range")]
    fn route_iter_validates_ports() {
        let _ = Omega::new(2).unwrap().route_iter(0, 4);
    }

    #[test]
    fn routes_from_different_sources_converge_only_by_suffix() {
        // After stage i the low i+1 bits of the line are destination bits, so
        // two sources' paths to the same destination must share the final
        // link and may share earlier ones only when lines coincide.
        let net = Omega::new(4).unwrap();
        let a = net.route(3, 9);
        let b = net.route(12, 9);
        assert_eq!(a.last(), b.last());
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn link_feeds_switch_matches_route() {
        let net = Omega::new(3).unwrap();
        let path = net.route(5, 2);
        // Layer-0 link from port 5 feeds the switch that the shuffled line
        // 5 -> 3 belongs to: switch 1 of stage 0.
        assert_eq!(net.link_feeds_switch(path[0]), Some((0, 0b011 >> 1)));
        // The final layer feeds a port, not a switch.
        assert_eq!(net.link_feeds_switch(path[3]), None);
    }

    #[test]
    fn tree_view_covers_all_switches_for_full_broadcast() {
        let net = Omega::new(3).unwrap();
        let all = DestSet::all(net.ports());
        let tree = net.tree_view(0, &all).unwrap();
        // Figure 3: a full broadcast reaches 1, then 2, then 4 switches.
        assert_eq!(tree[0].len(), 1);
        assert_eq!(tree[1].len(), 2);
        assert_eq!(tree[2].len(), 4);
    }

    #[test]
    fn tree_view_single_destination_is_a_path() {
        let net = Omega::new(4).unwrap();
        let one = DestSet::from_ports(16, [11usize]).unwrap();
        let tree = net.tree_view(6, &one).unwrap();
        assert!(tree.iter().all(|s| s.len() == 1));
    }
}
