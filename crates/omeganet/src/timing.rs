//! Optional latency model with per-link contention.
//!
//! The paper evaluates communication *cost* (bits × links) only; latency is
//! implementation dependent. For the latency extension experiments we add a
//! simple store-and-forward model: each hop transmits the message over the
//! link at a fixed link bandwidth, waits out any earlier transmission still
//! holding the link, then pays a fixed switch traversal latency. This is
//! enough to expose the contention differences between the multicast
//! schemes (scheme 1 loads shared early links n times; scheme 2 once).

use tmc_simcore::SimTime;

use crate::destset::DestSet;
use crate::error::NetError;
use crate::multicast::SchemeChoice;
use crate::topology::{LinkId, Omega, PortId};

/// Link/switch timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingModel {
    /// Cycles to traverse one switch (added after every non-final hop).
    pub switch_latency: u64,
    /// Link bandwidth in bits per cycle.
    pub bits_per_cycle: u64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            switch_latency: 1,
            bits_per_cycle: 16,
        }
    }
}

impl TimingModel {
    /// Cycles to clock `bits` onto a link (at least one).
    pub fn xmit_cycles(&self, bits: u64) -> u64 {
        bits.div_ceil(self.bits_per_cycle).max(1)
    }
}

/// Tracks when each physical link next becomes free.
///
/// # Example
///
/// ```
/// use tmc_omeganet::{LinkSchedule, Omega, TimingModel};
/// use tmc_simcore::SimTime;
///
/// let net = Omega::new(3)?;
/// let model = TimingModel::default();
/// let mut sched = LinkSchedule::new(&net);
/// let first = sched.timed_unicast(&net, model, 0, 5, 64, SimTime::ZERO);
/// // A second identical message contends on the same links and lands later.
/// let second = sched.timed_unicast(&net, model, 0, 5, 64, SimTime::ZERO);
/// assert!(second > first);
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinkSchedule {
    next_free: Vec<Vec<SimTime>>,
}

impl LinkSchedule {
    /// Creates an all-idle schedule shaped for `net`.
    pub fn new(net: &Omega) -> Self {
        LinkSchedule {
            next_free: vec![vec![SimTime::ZERO; net.ports()]; net.link_layers() as usize],
        }
    }

    fn occupy(&mut self, link: LinkId, ready: SimTime, xmit: u64) -> SimTime {
        let slot = &mut self.next_free[link.layer as usize][link.line];
        let start = ready.max(*slot);
        let done = start + xmit;
        *slot = done;
        done
    }

    /// Sends one `bits`-bit message from `src` to `dst` departing at
    /// `depart`; returns its arrival time. Header (routing-tag) bits are
    /// charged per the scheme-1 per-layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn timed_unicast(
        &mut self,
        net: &Omega,
        model: TimingModel,
        src: PortId,
        dst: PortId,
        bits: u64,
        depart: SimTime,
    ) -> SimTime {
        let m = net.stages();
        let mut t = depart;
        for link in net.route(src, dst) {
            let size = bits + (m - link.layer) as u64;
            let done = self.occupy(link, t, model.xmit_cycles(size));
            t = if link.layer == m {
                done
            } else {
                done + model.switch_latency
            };
        }
        t
    }

    /// Multicasts with `scheme` and returns per-destination arrival times
    /// (ascending destination order).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyDestSet`] / [`NetError::SizeMismatch`] /
    /// [`NetError::PortOutOfRange`] as appropriate.
    #[allow(clippy::too_many_arguments)] // mirrors the untimed multicast API plus time
    pub fn timed_multicast(
        &mut self,
        net: &Omega,
        model: TimingModel,
        scheme: SchemeChoice,
        src: PortId,
        dests: &DestSet,
        bits: u64,
        depart: SimTime,
    ) -> Result<Vec<(PortId, SimTime)>, NetError> {
        net.check_port(src)?;
        dests.check_net(net)?;
        if dests.is_empty() {
            return Err(NetError::EmptyDestSet);
        }
        let m = net.stages();
        let mut arrivals: Vec<(PortId, SimTime)> = match scheme {
            SchemeChoice::Replicated => dests
                .iter()
                .map(|d| (d, self.timed_unicast(net, model, src, d, bits, depart)))
                .collect(),
            SchemeChoice::BitVector => {
                let n_ports = net.ports() as u64;
                let mut out = Vec::with_capacity(dests.len());
                let link0 = LinkId {
                    layer: 0,
                    line: src,
                };
                let t0 = self.occupy(link0, depart, model.xmit_cycles(bits + n_ports))
                    + model.switch_latency;
                let all: Vec<PortId> = dests.iter().collect();
                let mut work = vec![(0u32, src, all, t0)];
                while let Some((stage, line, subset, t)) = work.pop() {
                    let sw = net.shuffle(line) >> 1;
                    let (zeros, ones): (Vec<PortId>, Vec<PortId>) = subset
                        .into_iter()
                        .partition(|&d| net.routing_bit(d, stage) == 0);
                    for (bit, group) in [(0usize, zeros), (1usize, ones)] {
                        if group.is_empty() {
                            continue;
                        }
                        let out_line = (sw << 1) | bit;
                        let layer = stage + 1;
                        let size = bits + (n_ports >> layer);
                        let done = self.occupy(
                            LinkId {
                                layer,
                                line: out_line,
                            },
                            t,
                            model.xmit_cycles(size),
                        );
                        if layer == m {
                            out.push((out_line, done));
                        } else {
                            work.push((stage + 1, out_line, group, done + model.switch_latency));
                        }
                    }
                }
                out
            }
            SchemeChoice::BroadcastTag => {
                let (anchor, free_mask) = match dests.subcube_spec() {
                    Some(spec) => spec,
                    None => {
                        let (anchor, l) = dests
                            .enclosing_low_subcube()
                            .expect("dests verified nonempty");
                        (anchor, (1usize << l) - 1)
                    }
                };
                let mut out = Vec::new();
                let link0 = LinkId {
                    layer: 0,
                    line: src,
                };
                let t0 = self.occupy(link0, depart, model.xmit_cycles(bits + 2 * m as u64))
                    + model.switch_latency;
                let mut work = vec![(0u32, src, t0)];
                while let Some((stage, line, t)) = work.pop() {
                    let sw = net.shuffle(line) >> 1;
                    let bit_pos = m - 1 - stage;
                    let broadcast = free_mask >> bit_pos & 1 == 1;
                    let wanted: &[usize] = if broadcast {
                        &[0, 1]
                    } else if anchor >> bit_pos & 1 == 1 {
                        &[1]
                    } else {
                        &[0]
                    };
                    for &bit in wanted {
                        let out_line = (sw << 1) | bit;
                        let layer = stage + 1;
                        let size = bits + 2 * (m - layer) as u64;
                        let done = self.occupy(
                            LinkId {
                                layer,
                                line: out_line,
                            },
                            t,
                            model.xmit_cycles(size),
                        );
                        if layer == m {
                            out.push((out_line, done));
                        } else {
                            work.push((stage + 1, out_line, done + model.switch_latency));
                        }
                    }
                }
                out
            }
        };
        arrivals.sort_unstable();
        Ok(arrivals)
    }

    /// Forgets all occupancy (all links idle at time zero).
    pub fn reset(&mut self) {
        for row in &mut self.next_free {
            row.fill(SimTime::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_unicast_latency_is_path_time() {
        let net = Omega::new(3).unwrap();
        let model = TimingModel {
            switch_latency: 2,
            bits_per_cycle: 8,
        };
        let mut s = LinkSchedule::new(&net);
        let arrive = s.timed_unicast(&net, model, 0, 7, 16, SimTime::ZERO);
        // Hop sizes 19, 18, 17, 16 bits -> 3, 3, 3, 2 cycles + 3 switch
        // traversals of 2 cycles.
        assert_eq!(arrive, SimTime::new(3 + 2 + 3 + 2 + 3 + 2 + 2));
    }

    #[test]
    fn contention_serializes_shared_links() {
        let net = Omega::new(3).unwrap();
        let model = TimingModel::default();
        let mut s = LinkSchedule::new(&net);
        let a = s.timed_unicast(&net, model, 2, 6, 64, SimTime::ZERO);
        let b = s.timed_unicast(&net, model, 2, 6, 64, SimTime::ZERO);
        let mut fresh = LinkSchedule::new(&net);
        let solo = fresh.timed_unicast(&net, model, 2, 6, 64, SimTime::ZERO);
        assert_eq!(a, solo);
        assert!(b > a, "second message must queue behind the first");
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let net = Omega::new(3).unwrap();
        let model = TimingModel::default();
        let mut s = LinkSchedule::new(&net);
        // 0->0 and 7->7 share no links in an omega network.
        let a = s.timed_unicast(&net, model, 0, 0, 64, SimTime::ZERO);
        let b = s.timed_unicast(&net, model, 7, 7, 64, SimTime::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn multicast_reaches_everyone_once() {
        let net = Omega::new(4).unwrap();
        let model = TimingModel::default();
        let d = DestSet::from_ports(16, [1usize, 6, 11, 12]).unwrap();
        for scheme in [SchemeChoice::Replicated, SchemeChoice::BitVector] {
            let mut s = LinkSchedule::new(&net);
            let arr = s
                .timed_multicast(&net, model, scheme, 3, &d, 32, SimTime::ZERO)
                .unwrap();
            let ports: Vec<_> = arr.iter().map(|&(p, _)| p).collect();
            assert_eq!(ports, vec![1, 6, 11, 12], "{scheme:?}");
        }
        let cube = DestSet::subcube(16, 8, 2).unwrap();
        let mut s = LinkSchedule::new(&net);
        let arr = s
            .timed_multicast(
                &net,
                model,
                SchemeChoice::BroadcastTag,
                3,
                &cube,
                32,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(arr.len(), 4);
    }

    #[test]
    fn bitvector_beats_replication_under_contention() {
        // A wide multicast from one source: scheme 1 re-sends over the
        // shared first link n times, scheme 2 once. The slowest scheme-2
        // delivery must finish no later than the slowest scheme-1 delivery.
        let net = Omega::new(5).unwrap();
        let model = TimingModel::default();
        let d = DestSet::all(32);
        let mut s1 = LinkSchedule::new(&net);
        let slow1 = s1
            .timed_multicast(
                &net,
                model,
                SchemeChoice::Replicated,
                0,
                &d,
                128,
                SimTime::ZERO,
            )
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .max()
            .unwrap();
        let mut s2 = LinkSchedule::new(&net);
        let slow2 = s2
            .timed_multicast(
                &net,
                model,
                SchemeChoice::BitVector,
                0,
                &d,
                128,
                SimTime::ZERO,
            )
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .max()
            .unwrap();
        assert!(slow2 < slow1);
    }

    #[test]
    fn reset_clears_occupancy() {
        let net = Omega::new(3).unwrap();
        let model = TimingModel::default();
        let mut s = LinkSchedule::new(&net);
        let first = s.timed_unicast(&net, model, 1, 4, 64, SimTime::ZERO);
        s.reset();
        let again = s.timed_unicast(&net, model, 1, 4, 64, SimTime::ZERO);
        assert_eq!(first, again);
    }
}
