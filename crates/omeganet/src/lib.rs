//! Omega multistage interconnection network simulator.
//!
//! This crate models the interconnect of Stenström's ISCA 1989 paper: an
//! N×N omega network (Lawrie 1975) built from 2×2 switches, with `m = log₂ N`
//! stages, connecting N ports. Cache *i* and memory module *i* of the
//! simulated multiprocessor both attach to port *i*.
//!
//! The crate provides:
//!
//! * [`Omega`] — the topology: perfect-shuffle wiring, destination-tag
//!   routing, per-stage link identification,
//! * [`DestSet`] — destination sets with the constructors the paper's
//!   analysis needs (adjacent blocks, maximal-spread worst cases, aligned
//!   subcubes),
//! * [`TrafficMatrix`] — per-link bit accounting; its grand total is the
//!   paper's *communication cost* metric `CC = Σᵢ Lᵢ` (eq. 1),
//! * [`multicast`] — the three multicast schemes of §3 plus the combined
//!   scheme of eq. 8, all accounted link-by-link,
//! * [`timing`] — an optional latency model with per-link contention, used by
//!   the latency extension experiments (the paper itself only counts bits).
//!
//! # Example: one multicast, measured
//!
//! ```
//! use tmc_omeganet::{DestSet, Omega, SchemeKind, TrafficMatrix};
//!
//! let net = Omega::new(3)?; // N = 8 ports
//! let dests = DestSet::from_ports(8, [0usize, 2, 3, 6])?;
//! let mut traffic = TrafficMatrix::new(&net);
//! let receipt = net.multicast(SchemeKind::BitVector, 1, &dests, 20, &mut traffic)?;
//! assert_eq!(receipt.delivered, dests.iter().collect::<Vec<_>>());
//! assert_eq!(traffic.total_bits(), receipt.cost_bits);
//! # Ok::<(), tmc_omeganet::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aary;
pub mod blocking;
pub mod castcache;
pub mod destset;
pub mod error;
pub mod multicast;
pub mod timing;
pub mod topology;
pub mod traffic;

pub use aary::AryOmega;

pub use castcache::CastCache;
pub use destset::DestSet;
pub use error::NetError;
pub use multicast::{CastReceipt, SchemeChoice, SchemeKind};
pub use timing::{LinkSchedule, TimingModel};
pub use topology::{LinkId, Omega, PortId, RouteIter};
pub use traffic::{ChargeSink, LinkDeltas, TrafficMatrix};
