//! Memoization of multicast traversals.
//!
//! Protocol runs issue the same multicast over and over: an owner updating a
//! stable sharing set sends an identical `(scheme, source, destinations,
//! payload)` cast on every write. The tree walk that computes its cost and
//! link charges is deterministic, so a [`CastCache`] records the outcome the
//! first time and replays the per-link charges on every repeat — turning the
//! `O(n · m)` switch-by-switch traversal (with its partition allocations)
//! into a hash lookup plus an `O(links touched)` replay.

use std::collections::HashMap;

use crate::destset::DestSet;
use crate::error::NetError;
use crate::multicast::{CastReceipt, SchemeChoice, SchemeKind};
use crate::topology::{LinkId, Omega, PortId};
use crate::traffic::TrafficMatrix;

/// Everything that determines a cast's outcome on a fixed network.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CastKey {
    kind: SchemeKind,
    src: PortId,
    payload_bits: u64,
    dests: DestSet,
}

/// A traversal's recorded effects: the receipt handed back to the caller
/// and the exact per-link charges it made to the traffic matrix.
#[derive(Clone)]
struct CachedCast {
    receipt: CastReceipt,
    charges: Vec<(LinkId, u64)>,
}

/// A memo table for [`Omega::multicast`] results.
///
/// Keys are `(scheme, source, destination set, payload)`. Destination sets
/// of up to 64 ports hash as a single inline word, so lookups on the
/// protocol fast path are cheap. The table is bounded: when it reaches
/// [`CastCache::MAX_ENTRIES`] distinct casts it is flushed wholesale (a
/// workload that varies its casts that much gets little from memoization
/// anyway).
///
/// # Example
///
/// ```
/// use tmc_omeganet::{CastCache, DestSet, Omega, SchemeKind, TrafficMatrix};
///
/// let net = Omega::new(4)?;
/// let dests = DestSet::adjacent(net.ports(), 0, 4)?;
/// let mut cache = CastCache::new();
/// let mut t = TrafficMatrix::new(&net);
/// let first = cache.multicast(&net, SchemeKind::BitVector, 9, &dests, 64, &mut t)?;
/// let again = cache.multicast(&net, SchemeKind::BitVector, 9, &dests, 64, &mut t)?;
/// assert_eq!(first, again);
/// assert_eq!(t.total_bits(), 2 * first.cost_bits);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), tmc_omeganet::NetError>(())
/// ```
#[derive(Clone, Default)]
pub struct CastCache {
    map: HashMap<CastKey, CachedCast>,
    /// Reused zero-filled matrix for recording a miss's charges.
    scratch: Option<TrafficMatrix>,
    /// Reused lookup key: probing with `clone_from` recycles the key's
    /// destination-set storage, so even heap-bitmap sets hit the memo table
    /// without allocating.
    probe: Option<CastKey>,
    hits: u64,
    misses: u64,
}

impl CastCache {
    /// Entry bound; reaching it flushes the whole table.
    pub const MAX_ENTRIES: usize = 1 << 16;

    /// Creates an empty cache.
    pub fn new() -> Self {
        CastCache::default()
    }

    /// Like [`Omega::multicast`], but memoized: repeat casts replay their
    /// recorded link charges instead of re-walking the routing tree. The
    /// receipt and the traffic added to `traffic` are bit-identical to the
    /// uncached call.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetError`] from the underlying cast (empty set,
    /// size mismatch, out-of-range source). Errors are not cached.
    pub fn multicast(
        &mut self,
        net: &Omega,
        kind: SchemeKind,
        src: PortId,
        dests: &DestSet,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
    ) -> Result<CastReceipt, NetError> {
        self.multicast_recording(net, kind, src, dests, payload_bits, traffic, None)
    }

    /// [`CastCache::multicast`] that additionally appends the cast's
    /// per-link charges to `record` when one is supplied — the hook trace
    /// sinks use to attribute bits to individual links. Charges come back
    /// in `(layer, line)` order whether the cast hit or missed the memo
    /// table, and nothing is appended on error.
    #[allow(clippy::too_many_arguments)]
    pub fn multicast_recording(
        &mut self,
        net: &Omega,
        kind: SchemeKind,
        src: PortId,
        dests: &DestSet,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
        record: Option<&mut Vec<(LinkId, u64)>>,
    ) -> Result<CastReceipt, NetError> {
        let cached = self.cast_cached(net, kind, src, dests, payload_bits, traffic, record)?;
        Ok(cached.receipt.clone())
    }

    /// [`CastCache::multicast_recording`] without the receipt allocation:
    /// the delivered-port list is written into the caller's reusable
    /// `delivered` buffer (cleared first) and only the resolved scheme and
    /// cost come back by value. This is the protocol hot path — a memoized
    /// hit allocates nothing.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetError`] from the underlying cast; `delivered` is
    /// left empty on error.
    #[allow(clippy::too_many_arguments)]
    pub fn multicast_into(
        &mut self,
        net: &Omega,
        kind: SchemeKind,
        src: PortId,
        dests: &DestSet,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
        delivered: &mut Vec<PortId>,
        record: Option<&mut Vec<(LinkId, u64)>>,
    ) -> Result<(SchemeChoice, u64), NetError> {
        delivered.clear();
        let cached = self.cast_cached(net, kind, src, dests, payload_bits, traffic, record)?;
        delivered.extend_from_slice(&cached.receipt.delivered);
        Ok((cached.receipt.scheme, cached.receipt.cost_bits))
    }

    /// Shared lookup: replay a memoized cast's charges, or traverse and
    /// memoize on a miss. The lookup key is a reusable scratch whose
    /// destination set is refreshed with `clone_from`, so the hit path
    /// allocates nothing even when the set is a heap bitmap.
    #[allow(clippy::too_many_arguments)]
    fn cast_cached(
        &mut self,
        net: &Omega,
        kind: SchemeKind,
        src: PortId,
        dests: &DestSet,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
        record: Option<&mut Vec<(LinkId, u64)>>,
    ) -> Result<&CachedCast, NetError> {
        let probe = match &mut self.probe {
            Some(p) => {
                p.kind = kind;
                p.src = src;
                p.payload_bits = payload_bits;
                p.dests.clone_from(dests);
                p
            }
            slot => slot.insert(CastKey {
                kind,
                src,
                payload_bits,
                dests: dests.clone(),
            }),
        };
        if self.map.contains_key(probe) {
            self.hits += 1;
            let cached = self.map.get(probe).expect("checked present");
            for &(link, bits) in &cached.charges {
                traffic.add(link, bits);
            }
            if let Some(out) = record {
                out.extend_from_slice(&cached.charges);
            }
            return Ok(cached);
        }
        let key = probe.clone();
        self.record_miss(net, key, traffic, record)
    }

    /// Miss path shared by the lookup entry points: run the real traversal
    /// into a private scratch matrix so the charges can be captured, replay
    /// them into the caller's, and memoize the outcome.
    fn record_miss(
        &mut self,
        net: &Omega,
        key: CastKey,
        traffic: &mut TrafficMatrix,
        record: Option<&mut Vec<(LinkId, u64)>>,
    ) -> Result<&CachedCast, NetError> {
        let layers = net.link_layers() as usize;
        let scratch = match &mut self.scratch {
            Some(s) if s.n_ports() == net.ports() && s.layers() == layers => {
                s.clear();
                s
            }
            slot => slot.insert(TrafficMatrix::new(net)),
        };
        let receipt = net.multicast(key.kind, key.src, &key.dests, key.payload_bits, scratch)?;
        self.misses += 1;
        let mut charges = Vec::new();
        for layer in 0..layers as u32 {
            for line in 0..net.ports() {
                let link = LinkId { layer, line };
                let bits = scratch.link_bits(link);
                if bits > 0 {
                    charges.push((link, bits));
                    traffic.add(link, bits);
                }
            }
        }
        if let Some(out) = record {
            out.extend_from_slice(&charges);
        }
        if self.map.len() >= Self::MAX_ENTRIES {
            self.map.clear();
        }
        Ok(self
            .map
            .entry(key)
            .insert_entry(CachedCast { receipt, charges })
            .into_mut())
    }

    /// Number of memoized replay hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of full traversals (cache misses) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct casts currently memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every memoized cast and resets the hit/miss counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

impl std::fmt::Debug for CastCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CastCache")
            .field("entries", &self.map.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_direct_cast_for_every_scheme() {
        let net = Omega::new(5).unwrap();
        let sets = [
            DestSet::adjacent(32, 4, 7).unwrap(),
            DestSet::worst_case_spread(32, 8).unwrap(),
            DestSet::subcube(32, 9, 3).unwrap(),
            DestSet::from_ports(32, [0usize, 13, 14, 31]).unwrap(),
        ];
        let mut cache = CastCache::new();
        for kind in [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
            SchemeKind::Combined,
        ] {
            for dests in &sets {
                for pass in 0..2 {
                    let mut direct = TrafficMatrix::new(&net);
                    let want = net.multicast(kind, 3, dests, 44, &mut direct).unwrap();
                    let mut via = TrafficMatrix::new(&net);
                    let got = cache.multicast(&net, kind, 3, dests, 44, &mut via).unwrap();
                    assert_eq!(got, want, "pass {pass}");
                    assert_eq!(via, direct, "pass {pass}: full matrix must match");
                }
            }
        }
        // Second passes were all hits.
        assert_eq!(cache.hits(), 4 * sets.len() as u64);
        assert_eq!(cache.misses(), 4 * sets.len() as u64);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let net = Omega::new(3).unwrap();
        let d = DestSet::adjacent(8, 0, 4).unwrap();
        let mut cache = CastCache::new();
        let mut t = TrafficMatrix::new(&net);
        let a = cache
            .multicast(&net, SchemeKind::Replicated, 0, &d, 10, &mut t)
            .unwrap();
        let b = cache
            .multicast(&net, SchemeKind::Replicated, 0, &d, 20, &mut t)
            .unwrap();
        let c = cache
            .multicast(&net, SchemeKind::Replicated, 1, &d, 10, &mut t)
            .unwrap();
        assert_ne!(a.cost_bits, b.cost_bits);
        assert_eq!(a.delivered, c.delivered);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn shrunken_dest_set_is_a_distinct_key() {
        // The protocol shrinks a block's sharer set when copies are
        // invalidated (e.g. a DW -> GR mode switch); the memo key hashes
        // the full DestSet, so the smaller cast must miss and recost
        // rather than replay the old full-set charges.
        let net = Omega::new(3).unwrap();
        let full = DestSet::from_ports(8, [1usize, 2, 3]).unwrap();
        let one = DestSet::from_ports(8, [1usize]).unwrap();
        let mut cache = CastCache::new();
        let mut t = TrafficMatrix::new(&net);
        let a = cache
            .multicast(&net, SchemeKind::Replicated, 0, &full, 64, &mut t)
            .unwrap();
        let b = cache
            .multicast(&net, SchemeKind::Replicated, 0, &one, 64, &mut t)
            .unwrap();
        assert!(b.cost_bits < a.cost_bits, "smaller set must cost less");
        assert_eq!(b.delivered, vec![1]);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn errors_pass_through_uncached() {
        let net = Omega::new(3).unwrap();
        let empty = DestSet::empty(8);
        let mut cache = CastCache::new();
        let mut t = TrafficMatrix::new(&net);
        assert!(cache
            .multicast(&net, SchemeKind::BitVector, 0, &empty, 10, &mut t)
            .is_err());
        assert!(cache.is_empty());
        assert_eq!(t.total_bits(), 0);
    }

    #[test]
    fn recorded_charges_match_traffic_on_miss_and_hit() {
        let net = Omega::new(4).unwrap();
        let d = DestSet::worst_case_spread(16, 4).unwrap();
        let mut cache = CastCache::new();
        for pass in 0..2 {
            let mut t = TrafficMatrix::new(&net);
            let mut rec = Vec::new();
            let receipt = cache
                .multicast_recording(
                    &net,
                    SchemeKind::Combined,
                    2,
                    &d,
                    33,
                    &mut t,
                    Some(&mut rec),
                )
                .unwrap();
            let rec_total: u64 = rec.iter().map(|&(_, bits)| bits).sum();
            assert_eq!(rec_total, receipt.cost_bits, "pass {pass}");
            assert_eq!(rec_total, t.total_bits(), "pass {pass}");
            for &(link, bits) in &rec {
                assert_eq!(t.link_bits(link), bits, "pass {pass}");
            }
            // Charges come back sorted by (layer, line) on both paths.
            let mut sorted = rec.clone();
            sorted.sort_by_key(|&(l, _)| (l.layer, l.line));
            assert_eq!(rec, sorted, "pass {pass}");
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn multicast_into_matches_recording_on_miss_and_hit() {
        let net = Omega::new(4).unwrap();
        let d = DestSet::worst_case_spread(16, 8).unwrap();
        let mut cache = CastCache::new();
        let mut delivered = Vec::new();
        for pass in 0..2 {
            let mut t_ref = TrafficMatrix::new(&net);
            let mut ref_cache = CastCache::new();
            let want = ref_cache
                .multicast(&net, SchemeKind::Combined, 5, &d, 21, &mut t_ref)
                .unwrap();
            let mut t = TrafficMatrix::new(&net);
            let mut rec = Vec::new();
            let (scheme, cost) = cache
                .multicast_into(
                    &net,
                    SchemeKind::Combined,
                    5,
                    &d,
                    21,
                    &mut t,
                    &mut delivered,
                    Some(&mut rec),
                )
                .unwrap();
            assert_eq!(scheme, want.scheme, "pass {pass}");
            assert_eq!(cost, want.cost_bits, "pass {pass}");
            assert_eq!(delivered, want.delivered, "pass {pass}");
            assert_eq!(t, t_ref, "pass {pass}: full matrix must match");
            let rec_total: u64 = rec.iter().map(|&(_, bits)| bits).sum();
            assert_eq!(rec_total, cost, "pass {pass}");
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clear_resets_counters() {
        let net = Omega::new(2).unwrap();
        let d = DestSet::all(4);
        let mut cache = CastCache::new();
        let mut t = TrafficMatrix::new(&net);
        cache
            .multicast(&net, SchemeKind::Replicated, 0, &d, 8, &mut t)
            .unwrap();
        cache
            .multicast(&net, SchemeKind::Replicated, 0, &d, 8, &mut t)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        cache.clear();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
    }
}
