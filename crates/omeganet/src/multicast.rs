//! The paper's three multicast schemes, plus the combined scheme (eq. 8).
//!
//! All three schemes are implemented twice over:
//!
//! * a *traversal* that walks the switch tree exactly as hardware would,
//!   charging every crossed link in a [`TrafficMatrix`] and recording who
//!   received the message, and
//! * an exact *cost function* ([`Omega::multicast_cost`]) that computes the
//!   same total in `O(n·m)` without touching a matrix — used by the combined
//!   scheme to pick the cheapest option per cast, which is precisely the
//!   selection the paper proposes in §5 ("hardware mechanisms could then use
//!   the contents of these registers … to determine which of the schemes to
//!   use").
//!
//! Scheme semantics (§3):
//!
//! 1. **Replicated unicasts** (scheme 1): one destination-tag-routed message
//!    per destination; at layer `j` a message carries `M + (m − j)` bits.
//! 2. **Bit-vector routing** (scheme 2, the paper's novel scheme): the
//!    N-bit present vector is the routing tag; each switch splits the vector
//!    and forwards halves only where a destination bit is set. At layer `j`
//!    a message carries `M + N/2^j` bits.
//! 3. **Broadcast-tag routing** (scheme 3, Wen 1976): a `2m`-bit tag
//!    `b₀…b_{m−1} d₀…d_{m−1}`; `bᵢ = 1` broadcasts at stage `i`. Only
//!    destination sets forming a subcube are addressable; at layer `j` a
//!    message carries `M + 2(m − j)` bits.

use crate::destset::DestSet;
use crate::error::NetError;
use crate::topology::{LinkId, Omega, PortId};
use crate::traffic::{ChargeSink, TrafficMatrix};

/// Which multicast scheme to use for a cast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchemeKind {
    /// Scheme 1: one routed unicast per destination.
    Replicated,
    /// Scheme 2: present-flag bit-vector routing.
    BitVector,
    /// Scheme 3: broadcast-tag routing (destinations are widened to the
    /// enclosing low-bit subcube when they do not already form one).
    BroadcastTag,
    /// Scheme 4 (eq. 8): evaluate all three and use the cheapest.
    Combined,
}

/// The concrete scheme a cast actually used (resolves [`SchemeKind::Combined`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchemeChoice {
    /// Scheme 1 ran.
    Replicated,
    /// Scheme 2 ran.
    BitVector,
    /// Scheme 3 ran.
    BroadcastTag,
}

/// Outcome of one multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CastReceipt {
    /// The scheme that was actually used.
    pub scheme: SchemeChoice,
    /// Ports that received the payload, ascending. For scheme 3 on a
    /// non-subcube destination set this is a strict superset of the request
    /// (the enclosing subcube); receivers without a matching cache line
    /// simply ignore the message.
    pub delivered: Vec<PortId>,
    /// Total bits charged across all links — the cast's contribution to CC.
    pub cost_bits: u64,
    /// Number of link traversals (messages × hops).
    pub links_crossed: usize,
}

impl Omega {
    /// Sends `payload_bits` from `src` to the single port `dst`, charging
    /// `traffic`. Equivalent to a one-destination scheme-1 cast.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] for invalid ports.
    pub fn unicast(
        &self,
        src: PortId,
        dst: PortId,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
    ) -> Result<CastReceipt, NetError> {
        let cost = self.charge_unicast(src, dst, payload_bits, traffic)?;
        Ok(CastReceipt {
            scheme: SchemeChoice::Replicated,
            delivered: vec![dst],
            cost_bits: cost,
            links_crossed: self.link_layers() as usize,
        })
    }

    /// Bills a `src`→`dst` unicast of `payload_bits` into `sink` and
    /// returns its total cost — the allocation-free fast path behind
    /// [`Omega::unicast`]. Per-stage link charges are computed straight
    /// from the routing digits (`payload + (m − layer)` tag bits at layer
    /// `layer`); no link list or receipt is ever materialized, so the hot
    /// protocol paths call this with either the live [`TrafficMatrix`] or
    /// a deferred [`crate::LinkDeltas`] batch buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] for invalid ports.
    #[inline]
    pub fn charge_unicast<S: ChargeSink>(
        &self,
        src: PortId,
        dst: PortId,
        payload_bits: u64,
        sink: &mut S,
    ) -> Result<u64, NetError> {
        self.check_port(src)?;
        self.check_port(dst)?;
        let m = self.stages() as u64;
        let mut cost = 0;
        for link in self.route_iter(src, dst) {
            let bits = payload_bits + (m - link.layer as u64);
            sink.charge(link, bits);
            cost += bits;
        }
        Ok(cost)
    }

    /// Total cost of a unicast without billing any link: destination-tag
    /// routes always cross `m + 1` layers, so the cost is closed-form and
    /// destination-independent — `(m+1)·payload + m(m+1)/2`.
    #[inline]
    pub fn unicast_cost(&self, payload_bits: u64) -> u64 {
        self.cost_replicated(1, payload_bits)
    }

    /// The first out-of-service link (per `is_down`) on the unique route
    /// from `src` to `dst`, or `None` when the whole path is up.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] for invalid ports.
    pub fn first_down_link(
        &self,
        src: PortId,
        dst: PortId,
        is_down: impl Fn(LinkId) -> bool,
    ) -> Result<Option<LinkId>, NetError> {
        self.check_port(src)?;
        self.check_port(dst)?;
        Ok(self.route_iter(src, dst).find(|&l| is_down(l)))
    }

    /// [`Omega::unicast`] that respects link outages: when the route crosses
    /// a link for which `is_down` returns `true`, **nothing is charged** and
    /// [`NetError::Unreachable`] names the dead link — the network reports
    /// unreachable destinations instead of silently billing a path no
    /// message could cross.
    ///
    /// # Errors
    ///
    /// * [`NetError::PortOutOfRange`] for invalid ports,
    /// * [`NetError::Unreachable`] when the route crosses a dead link.
    pub fn unicast_checked(
        &self,
        src: PortId,
        dst: PortId,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
        is_down: impl Fn(LinkId) -> bool,
    ) -> Result<CastReceipt, NetError> {
        if let Some(dead) = self.first_down_link(src, dst, is_down)? {
            return Err(NetError::Unreachable {
                src,
                dst,
                layer: dead.layer,
                line: dead.line,
            });
        }
        self.unicast(src, dst, payload_bits, traffic)
    }

    /// Charges the prefix of the `src`→`dst` route strictly below
    /// `stop_layer` — the links a probe message crosses before running into
    /// a dead link at `stop_layer` — and returns the bits billed. Used by
    /// retry/timeout modeling: each failed attempt still occupies the live
    /// upstream links.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] for invalid ports.
    pub fn unicast_prefix(
        &self,
        src: PortId,
        dst: PortId,
        payload_bits: u64,
        stop_layer: u32,
        traffic: &mut TrafficMatrix,
    ) -> Result<u64, NetError> {
        self.check_port(src)?;
        self.check_port(dst)?;
        let m = self.stages() as u64;
        let mut cost = 0;
        for link in self.route_iter(src, dst) {
            if link.layer >= stop_layer {
                break;
            }
            let bits = payload_bits + (m - link.layer as u64);
            traffic.add(link, bits);
            cost += bits;
        }
        Ok(cost)
    }

    /// Multicasts `payload_bits` from `src` to `dests` using `kind`,
    /// charging every crossed link in `traffic`.
    ///
    /// # Errors
    ///
    /// * [`NetError::EmptyDestSet`] if `dests` is empty,
    /// * [`NetError::SizeMismatch`] if `dests` was built for another size,
    /// * [`NetError::PortOutOfRange`] if `src` is invalid.
    pub fn multicast(
        &self,
        kind: SchemeKind,
        src: PortId,
        dests: &DestSet,
        payload_bits: u64,
        traffic: &mut TrafficMatrix,
    ) -> Result<CastReceipt, NetError> {
        self.check_port(src)?;
        dests.check_net(self)?;
        if dests.is_empty() {
            return Err(NetError::EmptyDestSet);
        }
        let receipt = match kind {
            SchemeKind::Replicated => self.cast_replicated(src, dests, payload_bits, traffic),
            SchemeKind::BitVector => self.cast_bitvector(src, dests, payload_bits, traffic),
            SchemeKind::BroadcastTag => self.cast_broadcast_tag(src, dests, payload_bits, traffic),
            SchemeKind::Combined => {
                let choice = self.cheapest_scheme(dests, payload_bits);
                let concrete = match choice {
                    SchemeChoice::Replicated => SchemeKind::Replicated,
                    SchemeChoice::BitVector => SchemeKind::BitVector,
                    SchemeChoice::BroadcastTag => SchemeKind::BroadcastTag,
                };
                return self.multicast(concrete, src, dests, payload_bits, traffic);
            }
        };
        Ok(receipt)
    }

    /// Exact communication cost of casting `payload_bits` to `dests` with
    /// `kind`, without performing the cast. Source-independent: the cost of
    /// every scheme depends only on the destination structure.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Omega::multicast`].
    pub fn multicast_cost(
        &self,
        kind: SchemeKind,
        dests: &DestSet,
        payload_bits: u64,
    ) -> Result<u64, NetError> {
        dests.check_net(self)?;
        if dests.is_empty() {
            return Err(NetError::EmptyDestSet);
        }
        Ok(match kind {
            SchemeKind::Replicated => self.cost_replicated(dests.len() as u64, payload_bits),
            SchemeKind::BitVector => self.cost_bitvector(dests, payload_bits),
            SchemeKind::BroadcastTag => self.cost_broadcast_tag(dests, payload_bits),
            SchemeKind::Combined => {
                let choice = self.cheapest_scheme(dests, payload_bits);
                let concrete = match choice {
                    SchemeChoice::Replicated => SchemeKind::Replicated,
                    SchemeChoice::BitVector => SchemeKind::BitVector,
                    SchemeChoice::BroadcastTag => SchemeKind::BroadcastTag,
                };
                self.multicast_cost(concrete, dests, payload_bits)?
            }
        })
    }

    /// The cheapest concrete scheme for this destination set and payload —
    /// the selection rule of the combined scheme (eq. 8), using exact costs.
    pub fn cheapest_scheme(&self, dests: &DestSet, payload_bits: u64) -> SchemeChoice {
        let c1 = self.cost_replicated(dests.len() as u64, payload_bits);
        let c2 = self.cost_bitvector(dests, payload_bits);
        let c3 = self.cost_broadcast_tag(dests, payload_bits);
        // Ties break toward the simpler scheme, matching the paper's
        // preference order in Tables 3 and 4 (1 before 2 before 3).
        if c1 <= c2 && c1 <= c3 {
            SchemeChoice::Replicated
        } else if c2 <= c3 {
            SchemeChoice::BitVector
        } else {
            SchemeChoice::BroadcastTag
        }
    }

    // ------------------------------------------------------------------
    // Exact cost functions.
    // ------------------------------------------------------------------

    fn cost_replicated(&self, n: u64, payload: u64) -> u64 {
        let m = self.stages() as u64;
        // n · Σ_{j=0}^{m} (payload + m − j)
        n * ((m + 1) * payload + m * (m + 1) / 2)
    }

    fn cost_bitvector(&self, dests: &DestSet, payload: u64) -> u64 {
        let m = self.stages();
        let n_ports = self.ports() as u64;
        // Layer 0: one message with the full N-bit vector.
        let mut cost = payload + n_ports;
        // Layer j ≥ 1: one message per distinct j-bit destination prefix,
        // carrying an N/2^j-bit subvector. One ascending word-wise pass
        // histograms, for each adjacent member pair, the highest bit where
        // they differ; the number of distinct j-bit prefixes is then
        // 1 + (pairs differing at bit m−j or above) — no per-layer dedup
        // pass and no allocation.
        let mut splits = [0u64; 16];
        let mut prev: Option<usize> = None;
        for d in dests.iter() {
            if let Some(p) = prev {
                let top = usize::BITS - 1 - (p ^ d).leading_zeros();
                splits[top as usize] += 1;
            }
            prev = Some(d);
        }
        let mut distinct = 1u64;
        for j in 1..=m {
            distinct += splits[(m - j) as usize];
            cost += distinct * (payload + (n_ports >> j));
        }
        cost
    }

    fn cost_broadcast_tag(&self, dests: &DestSet, payload: u64) -> u64 {
        let m = self.stages();
        let free_mask = match dests.subcube_spec() {
            Some((_, mask)) => mask,
            None => {
                let (_, l) = dests
                    .enclosing_low_subcube()
                    .expect("dests verified nonempty");
                (1usize << l) - 1
            }
        };
        let mut cost = 0u64;
        let mut active = 1u64;
        for j in 0..=m {
            cost += active * (payload + 2 * (m - j) as u64);
            if j < m {
                // Stage j broadcasts when the bit it consumes (m−1−j) is free.
                if free_mask >> (m - 1 - j) & 1 == 1 {
                    active *= 2;
                }
            }
        }
        cost
    }

    // ------------------------------------------------------------------
    // Traversals.
    // ------------------------------------------------------------------

    fn cast_replicated(
        &self,
        src: PortId,
        dests: &DestSet,
        payload: u64,
        traffic: &mut TrafficMatrix,
    ) -> CastReceipt {
        let mut cost = 0;
        let mut links = 0;
        let mut delivered = Vec::with_capacity(dests.len());
        for dst in dests.iter() {
            cost += self
                .charge_unicast(src, dst, payload, traffic)
                .expect("ports pre-validated");
            links += self.link_layers() as usize;
            delivered.push(dst);
        }
        debug_assert_eq!(cost, self.cost_replicated(dests.len() as u64, payload));
        CastReceipt {
            scheme: SchemeChoice::Replicated,
            delivered,
            cost_bits: cost,
            links_crossed: links,
        }
    }

    fn cast_bitvector(
        &self,
        src: PortId,
        dests: &DestSet,
        payload: u64,
        traffic: &mut TrafficMatrix,
    ) -> CastReceipt {
        let m = self.stages();
        let n_ports = self.ports() as u64;
        let mut cost = 0u64;
        let mut links = 0usize;
        let mut delivered = Vec::with_capacity(dests.len());

        // Layer 0: source port into its stage-0 switch, full vector.
        let layer0 = LinkId {
            layer: 0,
            line: src,
        };
        let bits0 = payload + n_ports;
        traffic.add(layer0, bits0);
        cost += bits0;
        links += 1;

        // Depth-first walk of the routing tree. A switch reached at stage
        // `s` with accumulated destination bits `prefix` covers exactly the
        // ports in `[prefix << (m−s), (prefix+1) << (m−s))`, so "does any
        // destination continue through this output?" is a word-level range
        // probe on the destination bitmap instead of a per-port partition
        // (which allocated two fresh vectors at every switch). The stack
        // holds at most one pending sibling per stage.
        let mut work: Vec<(u32, usize, usize)> = Vec::with_capacity(m as usize + 1);
        work.push((0, src, 0));
        while let Some((stage, line, prefix)) = work.pop() {
            let shuffled = self.shuffle(line);
            let sw = shuffled >> 1;
            let span = m - stage - 1;
            for bit in [0usize, 1] {
                let child = (prefix << 1) | bit;
                let lo = child << span;
                if !dests.any_in_range(lo, lo + (1usize << span)) {
                    continue;
                }
                let out_line = (sw << 1) | bit;
                let layer = stage + 1;
                let bits = payload + (n_ports >> layer);
                traffic.add(
                    LinkId {
                        layer,
                        line: out_line,
                    },
                    bits,
                );
                cost += bits;
                links += 1;
                if layer == m {
                    debug_assert_eq!(out_line, child);
                    delivered.push(out_line);
                } else {
                    work.push((stage + 1, out_line, child));
                }
            }
        }
        delivered.sort_unstable();
        debug_assert_eq!(cost, self.cost_bitvector(dests, payload));
        CastReceipt {
            scheme: SchemeChoice::BitVector,
            delivered,
            cost_bits: cost,
            links_crossed: links,
        }
    }

    fn cast_broadcast_tag(
        &self,
        src: PortId,
        dests: &DestSet,
        payload: u64,
        traffic: &mut TrafficMatrix,
    ) -> CastReceipt {
        let m = self.stages();
        // Widen to a subcube when needed: the enclosing low-bit subcube is
        // the set an allocator placing tasks adjacently would address.
        let (anchor, free_mask) = match dests.subcube_spec() {
            Some(spec) => spec,
            None => {
                let (anchor, l) = dests
                    .enclosing_low_subcube()
                    .expect("dests verified nonempty");
                (anchor, (1usize << l) - 1)
            }
        };
        let mut cost = 0u64;
        let mut links = 0usize;
        let mut delivered = Vec::new();

        let layer0 = LinkId {
            layer: 0,
            line: src,
        };
        let bits0 = payload + 2 * m as u64;
        traffic.add(layer0, bits0);
        cost += bits0;
        links += 1;

        let mut work: Vec<(u32, usize)> = vec![(0, src)];
        while let Some((stage, line)) = work.pop() {
            let shuffled = self.shuffle(line);
            let sw = shuffled >> 1;
            let bit_pos = m - 1 - stage;
            let broadcast = free_mask >> bit_pos & 1 == 1;
            let wanted_bits: &[usize] = if broadcast {
                &[0, 1]
            } else if anchor >> bit_pos & 1 == 1 {
                &[1]
            } else {
                &[0]
            };
            for &bit in wanted_bits {
                let out_line = (sw << 1) | bit;
                let layer = stage + 1;
                let bits = payload + 2 * (m - layer) as u64;
                traffic.add(
                    LinkId {
                        layer,
                        line: out_line,
                    },
                    bits,
                );
                cost += bits;
                links += 1;
                if layer == m {
                    delivered.push(out_line);
                } else {
                    work.push((stage + 1, out_line));
                }
            }
        }
        delivered.sort_unstable();
        debug_assert_eq!(cost, self.cost_broadcast_tag(dests, payload));
        CastReceipt {
            scheme: SchemeChoice::BroadcastTag,
            delivered,
            cost_bits: cost,
            links_crossed: links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(m: u32) -> (Omega, TrafficMatrix) {
        let net = Omega::new(m).unwrap();
        let t = TrafficMatrix::new(&net);
        (net, t)
    }

    #[test]
    fn unicast_matches_scheme1_per_hop_sizes() {
        let (net, mut t) = setup(3);
        let r = net.unicast(5, 2, 20, &mut t).unwrap();
        // Layers carry M+3, M+2, M+1, M+0.
        assert_eq!(r.cost_bits, 20 * 4 + 3 + 2 + 1);
        assert_eq!(r.links_crossed, 4);
        assert_eq!(t.total_bits(), r.cost_bits);
        assert_eq!(r.delivered, vec![2]);
    }

    #[test]
    fn checked_unicast_reports_dead_links_without_charging() {
        let (net, mut t) = setup(3);
        let dead = net.route(5, 2)[2];
        let err = net
            .unicast_checked(5, 2, 20, &mut t, |l| l == dead)
            .unwrap_err();
        assert_eq!(
            err,
            NetError::Unreachable {
                src: 5,
                dst: 2,
                layer: dead.layer,
                line: dead.line,
            }
        );
        // Nothing was billed: unreachable is reported, not silently charged.
        assert_eq!(t.total_bits(), 0);
        // With the link back up the checked call matches the plain unicast.
        let r = net.unicast_checked(5, 2, 20, &mut t, |_| false).unwrap();
        assert_eq!(r.cost_bits, 20 * 4 + 3 + 2 + 1);
    }

    #[test]
    fn first_down_link_finds_the_earliest_outage() {
        let (net, _) = setup(3);
        let route = net.route(1, 6);
        let down = [route[1], route[3]];
        let hit = net
            .first_down_link(1, 6, |l| down.contains(&l))
            .unwrap()
            .unwrap();
        assert_eq!(hit, route[1]);
        assert_eq!(net.first_down_link(1, 6, |_| false).unwrap(), None);
        assert!(net.first_down_link(1, 99, |_| false).is_err());
    }

    #[test]
    fn unicast_prefix_charges_only_links_below_the_stop_layer() {
        let (net, mut t) = setup(3);
        // Probe halted at layer 2: layers 0 and 1 carry M+3 and M+2 bits.
        let cost = net.unicast_prefix(5, 2, 20, 2, &mut t).unwrap();
        assert_eq!(cost, (20 + 3) + (20 + 2));
        assert_eq!(t.total_bits(), cost);
        // Stop layer 0 charges nothing; stop layer m+1 matches a full unicast.
        t.clear();
        assert_eq!(net.unicast_prefix(5, 2, 20, 0, &mut t).unwrap(), 0);
        let full = net.unicast_prefix(5, 2, 20, 4, &mut t).unwrap();
        assert_eq!(full, 20 * 4 + 3 + 2 + 1);
    }

    #[test]
    fn replicated_cost_is_linear_in_destinations() {
        let (net, mut t) = setup(4);
        let d1 = DestSet::from_ports(16, [3usize]).unwrap();
        let d4 = DestSet::from_ports(16, [3usize, 5, 9, 12]).unwrap();
        let c1 = net
            .multicast(SchemeKind::Replicated, 0, &d1, 20, &mut t)
            .unwrap()
            .cost_bits;
        t.clear();
        let c4 = net
            .multicast(SchemeKind::Replicated, 0, &d4, 20, &mut t)
            .unwrap()
            .cost_bits;
        assert_eq!(c4, 4 * c1);
    }

    #[test]
    fn bitvector_delivers_exactly_the_requested_set() {
        let (net, mut t) = setup(3);
        // The paper's Figure 4 example: N=8, destinations {0, 2, 3, 6}.
        let d = DestSet::from_ports(8, [0usize, 2, 3, 6]).unwrap();
        for src in 0..8 {
            t.clear();
            let r = net
                .multicast(SchemeKind::BitVector, src, &d, 20, &mut t)
                .unwrap();
            assert_eq!(r.delivered, vec![0, 2, 3, 6], "src {src}");
            assert_eq!(r.cost_bits, t.total_bits());
        }
    }

    #[test]
    fn bitvector_layer_sizes_follow_the_paper_table() {
        let (net, mut t) = setup(3);
        let d = DestSet::all(8);
        net.multicast(SchemeKind::BitVector, 0, &d, 10, &mut t)
            .unwrap();
        // Full broadcast: 1, 2, 4, 8 active links carrying M+8, M+4, M+2, M+1.
        assert_eq!(t.layer_bits(0), 10 + 8);
        assert_eq!(t.layer_bits(1), 2 * (10 + 4));
        assert_eq!(t.layer_bits(2), 4 * (10 + 2));
        assert_eq!(t.layer_bits(3), 8 * (10 + 1));
    }

    #[test]
    fn broadcast_tag_on_aligned_subcube() {
        let (net, mut t) = setup(3);
        let d = DestSet::subcube(8, 4, 1).unwrap(); // {4, 5}
        let r = net
            .multicast(SchemeKind::BroadcastTag, 1, &d, 20, &mut t)
            .unwrap();
        assert_eq!(r.delivered, vec![4, 5]);
        // Layers: 1·(M+6), 1·(M+4), 1·(M+2) — fork at last stage — 2·(M+0).
        assert_eq!(r.cost_bits, (20 + 6) + (20 + 4) + (20 + 2) + 2 * 20);
    }

    #[test]
    fn broadcast_tag_widens_non_subcubes() {
        let (net, mut t) = setup(3);
        let d = DestSet::from_ports(8, [1usize, 2]).unwrap(); // not a subcube
        let r = net
            .multicast(SchemeKind::BroadcastTag, 0, &d, 20, &mut t)
            .unwrap();
        // Enclosing low subcube of {1, 2} is {0, 1, 2, 3}.
        assert_eq!(r.delivered, vec![0, 1, 2, 3]);
    }

    #[test]
    fn broadcast_tag_handles_general_subcubes() {
        let (net, mut t) = setup(4);
        let d = DestSet::from_ports(16, [1usize, 3, 9, 11]).unwrap();
        let r = net
            .multicast(SchemeKind::BroadcastTag, 7, &d, 8, &mut t)
            .unwrap();
        assert_eq!(r.delivered, vec![1, 3, 9, 11]);
    }

    #[test]
    fn cost_functions_match_traversals() {
        let (net, _) = setup(4);
        let cases = [
            DestSet::from_ports(16, [0usize]).unwrap(),
            DestSet::from_ports(16, [0usize, 15]).unwrap(),
            DestSet::adjacent(16, 4, 4).unwrap(),
            DestSet::worst_case_spread(16, 8).unwrap(),
            DestSet::all(16),
        ];
        for d in &cases {
            for kind in [
                SchemeKind::Replicated,
                SchemeKind::BitVector,
                SchemeKind::BroadcastTag,
            ] {
                let mut t = TrafficMatrix::new(&net);
                let r = net.multicast(kind, 3, d, 20, &mut t).unwrap();
                assert_eq!(
                    r.cost_bits,
                    net.multicast_cost(kind, d, 20).unwrap(),
                    "{kind:?} {d:?}"
                );
                assert_eq!(r.cost_bits, t.total_bits());
            }
        }
    }

    #[test]
    fn combined_picks_the_minimum() {
        let (net, mut t) = setup(5);
        let d = DestSet::adjacent(32, 0, 16).unwrap();
        let costs = [
            net.multicast_cost(SchemeKind::Replicated, &d, 20).unwrap(),
            net.multicast_cost(SchemeKind::BitVector, &d, 20).unwrap(),
            net.multicast_cost(SchemeKind::BroadcastTag, &d, 20)
                .unwrap(),
        ];
        let r = net
            .multicast(SchemeKind::Combined, 0, &d, 20, &mut t)
            .unwrap();
        assert_eq!(r.cost_bits, *costs.iter().min().unwrap());
    }

    #[test]
    fn empty_destinations_rejected() {
        let (net, mut t) = setup(3);
        let d = DestSet::empty(8);
        assert_eq!(
            net.multicast(SchemeKind::BitVector, 0, &d, 20, &mut t),
            Err(NetError::EmptyDestSet)
        );
        assert_eq!(
            net.multicast_cost(SchemeKind::Combined, &d, 20),
            Err(NetError::EmptyDestSet)
        );
    }

    #[test]
    fn size_mismatch_rejected() {
        let (net, mut t) = setup(3);
        let d = DestSet::all(16);
        assert!(matches!(
            net.multicast(SchemeKind::BitVector, 0, &d, 20, &mut t),
            Err(NetError::SizeMismatch { .. })
        ));
    }
}
