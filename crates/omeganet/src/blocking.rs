//! Blocking analysis: which sets of simultaneous connections an omega
//! network can route without link conflicts.
//!
//! An omega network is *blocking*: unlike a crossbar, two
//! source–destination pairs may need the same link. (This is why the
//! paper's cost metric charges contended links and why Figure 1's machine
//! pays for traffic at all.) This module decides conflict-freedom for a
//! set of connections and computes the link-disjointness profile —
//! useful both for tests and for reasoning about worst-case workload
//! placements.

use std::collections::HashMap;

use crate::error::NetError;
use crate::topology::{LinkId, Omega, PortId};

/// The result of checking a connection set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routability {
    /// Every connection gets disjoint links; the set is conflict-free.
    ConflictFree,
    /// At least two connections share a link; the first collision found.
    Blocked {
        /// The contended link.
        link: LinkId,
        /// Indices (into the request slice) of two colliding connections.
        first: usize,
        /// Second collider.
        second: usize,
    },
}

impl Omega {
    /// Checks whether `pairs` (source, destination) can be routed
    /// simultaneously without sharing any link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if any endpoint is invalid.
    ///
    /// # Example
    ///
    /// ```
    /// use tmc_omeganet::blocking::Routability;
    /// use tmc_omeganet::Omega;
    ///
    /// let net = Omega::new(3)?;
    /// // The identity permutation routes conflict-free…
    /// let id: Vec<(usize, usize)> = (0..8).map(|i| (i, i)).collect();
    /// assert_eq!(net.check_routable(&id)?, Routability::ConflictFree);
    /// // …but two sources whose paths merge collide.
    /// let clash = [(0usize, 0usize), (4, 1)];
    /// assert!(matches!(net.check_routable(&clash)?, Routability::Blocked { .. }));
    /// # Ok::<(), tmc_omeganet::NetError>(())
    /// ```
    pub fn check_routable(&self, pairs: &[(PortId, PortId)]) -> Result<Routability, NetError> {
        let mut used: HashMap<LinkId, usize> = HashMap::new();
        for (idx, &(src, dst)) in pairs.iter().enumerate() {
            self.check_port(src)?;
            self.check_port(dst)?;
            for link in self.route_iter(src, dst) {
                if let Some(&prev) = used.get(&link) {
                    return Ok(Routability::Blocked {
                        link,
                        first: prev,
                        second: idx,
                    });
                }
                used.insert(link, idx);
            }
        }
        Ok(Routability::ConflictFree)
    }

    /// Whether a full permutation (`perm[src] = dst`) is routable in one
    /// pass. Omega networks admit exactly the permutations satisfying the
    /// classic "non-conflicting window" condition; this checks it by direct
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortOutOfRange`] if `perm` has the wrong length
    /// or names an invalid port.
    pub fn permutation_routable(&self, perm: &[PortId]) -> Result<bool, NetError> {
        if perm.len() != self.ports() {
            return Err(NetError::PortOutOfRange {
                port: perm.len().saturating_sub(1),
                n_ports: self.ports(),
            });
        }
        let pairs: Vec<(PortId, PortId)> = perm.iter().copied().enumerate().collect();
        Ok(self.check_routable(&pairs)? == Routability::ConflictFree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_shifts_route_conflict_free() {
        let net = Omega::new(4).unwrap();
        let n = net.ports();
        // Identity and all cyclic shifts are classic omega-admissible
        // permutations.
        for shift in 0..n {
            let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
            assert!(
                net.permutation_routable(&perm).unwrap(),
                "shift {shift} must route"
            );
        }
    }

    #[test]
    fn some_permutation_blocks() {
        // Omega networks are blocking: for N ≥ 4 not every permutation
        // routes. Find one by search to keep the test topology-honest.
        let net = Omega::new(3).unwrap();
        let n = net.ports();
        let mut found_blocked = false;
        // Try bit-reversal and a few structured permutations.
        let bitrev: Vec<usize> = (0..n)
            .map(|i| (0..3).fold(0, |acc, b| acc | (((i >> b) & 1) << (2 - b))))
            .collect();
        let swap_halves: Vec<usize> = (0..n).map(|i| i ^ (n >> 1)).collect();
        for perm in [bitrev, swap_halves] {
            if !net.permutation_routable(&perm).unwrap() {
                found_blocked = true;
            }
        }
        assert!(found_blocked, "expected at least one blocked permutation");
    }

    #[test]
    fn collision_report_names_real_colliders() {
        let net = Omega::new(3).unwrap();
        // Sources 0 and 4 both shuffle into switch 0's inputs; sending both
        // toward low destinations forces a shared output line somewhere.
        let pairs = [(0usize, 0usize), (4, 1)];
        match net.check_routable(&pairs).unwrap() {
            Routability::Blocked {
                link,
                first,
                second,
            } => {
                assert_ne!(first, second);
                let a = net.route(pairs[first].0, pairs[first].1);
                let b = net.route(pairs[second].0, pairs[second].1);
                assert!(a.contains(&link) && b.contains(&link));
            }
            Routability::ConflictFree => panic!("expected a collision"),
        }
    }

    #[test]
    fn duplicate_destination_always_blocks() {
        let net = Omega::new(3).unwrap();
        // Two connections to the same output must share the final link.
        let pairs = [(1usize, 5usize), (2, 5)];
        assert!(matches!(
            net.check_routable(&pairs).unwrap(),
            Routability::Blocked { link, .. } if link.layer == 3 && link.line == 5
        ));
    }

    #[test]
    fn validates_ports_and_lengths() {
        let net = Omega::new(2).unwrap();
        assert!(net.check_routable(&[(0, 9)]).is_err());
        assert!(net.permutation_routable(&[0, 1]).is_err());
    }
}
