//! Error type for network construction and routing.

use std::error::Error;
use std::fmt;

/// Errors returned by omega-network construction, routing and multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Requested `log₂ N` is outside the supported range.
    BadStageCount {
        /// The rejected stage count.
        m: u32,
    },
    /// A port number was at or beyond the network size.
    PortOutOfRange {
        /// The rejected port.
        port: usize,
        /// The network size N.
        n_ports: usize,
    },
    /// A destination set was built for a different network size.
    SizeMismatch {
        /// Size the destination set was built for.
        set_ports: usize,
        /// Size of the network it was used with.
        net_ports: usize,
    },
    /// A multicast was requested with no destinations.
    EmptyDestSet,
    /// Scheme 3 (broadcast-tag) requires the destinations to form an aligned
    /// subcube; this set does not.
    NotASubcube,
    /// The unique route between two ports crosses a link that is currently
    /// out of service, so the destination cannot be reached. Returned by
    /// [`crate::Omega::unicast_checked`] *instead of* charging the route —
    /// callers decide whether to retry, queue, or degrade.
    Unreachable {
        /// Source port.
        src: usize,
        /// Unreachable destination port.
        dst: usize,
        /// Layer of the first dead link on the route.
        layer: u32,
        /// Line of the first dead link on the route.
        line: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadStageCount { m } => {
                write!(f, "stage count {m} not in supported range 1..=16")
            }
            NetError::PortOutOfRange { port, n_ports } => {
                write!(f, "port {port} out of range for an N={n_ports} network")
            }
            NetError::SizeMismatch {
                set_ports,
                net_ports,
            } => write!(
                f,
                "destination set sized for N={set_ports} used with an N={net_ports} network"
            ),
            NetError::EmptyDestSet => write!(f, "multicast requires at least one destination"),
            NetError::NotASubcube => {
                write!(
                    f,
                    "scheme 3 requires destinations to form an aligned subcube"
                )
            }
            NetError::Unreachable {
                src,
                dst,
                layer,
                line,
            } => write!(
                f,
                "port {dst} unreachable from port {src}: link (layer {layer}, line {line}) is down"
            ),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = NetError::PortOutOfRange {
            port: 9,
            n_ports: 8,
        };
        assert!(e.to_string().contains("port 9"));
        assert!(NetError::NotASubcube.to_string().contains("subcube"));
        assert!(NetError::EmptyDestSet.to_string().contains("destination"));
        assert!(NetError::BadStageCount { m: 40 }.to_string().contains("40"));
        let e = NetError::SizeMismatch {
            set_ports: 8,
            net_ports: 16,
        };
        assert!(e.to_string().contains("N=8"));
        let e = NetError::Unreachable {
            src: 3,
            dst: 5,
            layer: 1,
            line: 2,
        };
        assert!(e.to_string().contains("unreachable"));
        assert!(e.to_string().contains("layer 1"));
    }
}
