//! Closed forms for omega networks of a×a switches (`a = 2^g`) — the §3
//! generalization.
//!
//! With `N = a^m` and one base-`a` digit (`g` bits) consumed per stage:
//!
//! * scheme 1 carries `M + (m−j)·g` bits at layer `j`:
//!   `CC₁ = n·[(m+1)·M + g·m(m+1)/2]`;
//! * scheme 2 carries `M + N/a^j` bits at layer `j`, and in the worst case
//!   (destinations splitting at the earliest stages, `n = a^k`) has `a^j`
//!   active links up to layer `k` and `n` afterwards.
//!
//! Setting `g = 1` recovers equations 2 and 3 of the paper; the tests
//! assert that, and the cross-crate tests assert agreement with the
//! simulated a-ary network link-by-link.

/// Scheme-1 cost on an a-ary omega network.
///
/// # Panics
///
/// Panics if `m` or `g` is zero.
pub fn scheme1_ary(n: u64, m: u32, g: u32, m_bits: u64) -> u64 {
    assert!(m > 0 && g > 0, "need at least one stage and a 2x2 switch");
    let (m, g) = (m as u64, g as u64);
    n * ((m + 1) * m_bits + g * m * (m + 1) / 2)
}

/// Worst-case scheme-2 cost on an a-ary omega network for `n = a^k`
/// destinations: `Σ_{j=0}^{k} a^j (M + N/a^j) + Σ_{j=k+1}^{m} n (M + N/a^j)`.
///
/// # Panics
///
/// Panics if `m` or `g` is zero, `n` is not a power of `a`, or `n > a^m`.
pub fn scheme2_ary_worst(n: u64, m: u32, g: u32, m_bits: u64) -> u64 {
    assert!(m > 0 && g > 0, "need at least one stage and a 2x2 switch");
    let big_n = 1u64 << (m * g);
    assert!(n >= 1 && n <= big_n, "destination count out of range");
    assert!(
        n.is_power_of_two() && n.trailing_zeros().is_multiple_of(g),
        "n must be a power of the radix"
    );
    let k = n.trailing_zeros() / g;
    let mut cost = 0;
    for j in 0..=k {
        cost += (1u64 << (g * j)) * (m_bits + (big_n >> (g * j)));
    }
    for j in (k + 1)..=m {
        cost += n * (m_bits + (big_n >> (g * j)));
    }
    cost
}

/// The scheme-1/scheme-2 break-even on an a-ary network: the smallest
/// power-of-`a` destination count at which scheme 2 is no more expensive,
/// or `None`.
///
/// # Panics
///
/// Panics if `m` or `g` is zero.
pub fn break_even_ary(m: u32, g: u32, m_bits: u64) -> Option<u64> {
    (0..=m)
        .map(|k| 1u64 << (g * k))
        .find(|&n| scheme2_ary_worst(n, m, g, m_bits) <= scheme1_ary(n, m, g, m_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicast;

    #[test]
    fn radix_two_recovers_the_papers_equations() {
        for m in 1u32..=12 {
            let big_n = 1u64 << m;
            for k in 0..=m {
                let n = 1u64 << k;
                for m_bits in [0u64, 20, 40, 100] {
                    assert_eq!(
                        scheme1_ary(n, m, 1, m_bits),
                        multicast::scheme1(n, big_n, m_bits)
                    );
                    assert_eq!(
                        scheme2_ary_worst(n, m, 1, m_bits),
                        multicast::scheme2_worst(n, big_n, m_bits)
                    );
                }
            }
        }
    }

    #[test]
    fn wider_switches_cheapen_both_schemes() {
        // Same N = 4096, built three ways; cost falls with radix.
        let shapes = [(12u32, 1u32), (6, 2), (4, 3), (3, 4)];
        // 1 and 4096 = a^m are powers of every one of these radices.
        for n in [1u64, 4096] {
            let mut prev1 = u64::MAX;
            let mut prev2 = u64::MAX;
            for &(m, g) in &shapes {
                let c1 = scheme1_ary(n, m, g, 20);
                let c2 = scheme2_ary_worst(n, m, g, 20);
                assert!(c1 <= prev1, "scheme1 rose at radix 2^{g} for n={n}");
                assert!(c2 <= prev2, "scheme2 rose at radix 2^{g} for n={n}");
                prev1 = c1;
                prev2 = c2;
            }
        }
    }

    #[test]
    fn break_even_exists_and_matches_radix_two_result() {
        assert_eq!(
            break_even_ary(10, 1, 20),
            crate::break_even_scheme2(1024, 20)
        );
        for (m, g) in [(5u32, 2u32), (4, 3), (2, 4)] {
            assert!(break_even_ary(m, g, 20).is_some(), "m={m} g={g}");
        }
    }

    #[test]
    #[should_panic(expected = "power of the radix")]
    fn rejects_non_radix_powers() {
        scheme2_ary_worst(2, 4, 2, 20); // n=2 is not a power of 4
    }
}
