//! Per-reference communication-cost models for whole protocols
//! (paper §4, equations 9–12, Figure 8).
//!
//! Setting: `n` tasks share a read–write block, exactly one task writes it,
//! the write fraction is `w`, and a read costs twice a write in network
//! traversals. Costs are normalized by `CC₁` (the cost of one scheme-1
//! message to one destination), which is what Figure 8 plots.

use crate::markov::TwoStateChain;
use crate::multicast;

/// The two-mode selection threshold `w₁ = 2/(n+2)` (paper §4): distributed
/// write is the cheaper mode when `w ≤ w₁`, global read when `w ≥ w₁`.
///
/// # Example
///
/// ```
/// use tmc_analytic::TwoModeThreshold;
///
/// let t = TwoModeThreshold::new(14);
/// assert!((t.value() - 0.125).abs() < 1e-12);
/// assert!(t.prefers_distributed_write(0.1));
/// assert!(!t.prefers_distributed_write(0.2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoModeThreshold {
    n: u64,
}

impl TwoModeThreshold {
    /// Threshold for `n` sharing tasks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "at least one sharer required");
        TwoModeThreshold { n }
    }

    /// `w₁ = 2/(n+2)`.
    pub fn value(self) -> f64 {
        2.0 / (self.n as f64 + 2.0)
    }

    /// Whether distributed write is the (weakly) cheaper mode at `w`.
    pub fn prefers_distributed_write(self, w: f64) -> bool {
        w <= self.value()
    }
}

/// Analytic per-reference costs for the protocols of §4.
///
/// All `*_norm` methods return costs normalized by `CC₁(1 destination)`,
/// assuming multicast scheme 1 (so an n-destination multicast costs
/// `n · CC₁`), exactly the simplification the paper applies for Figure 8.
/// The un-normalized methods take the actual multicast cost `cc4_n` so the
/// model can be driven by any scheme, including measured costs.
///
/// # Example
///
/// ```
/// use tmc_analytic::ProtocolCostModel;
///
/// let model = ProtocolCostModel::new(16, 1024, 20);
/// let w = 0.05;
/// // The two-mode protocol never exceeds the no-cache cost (the paper's
/// // headline claim).
/// assert!(model.two_mode_norm(w) <= model.no_cache_norm(w));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolCostModel {
    /// Number of tasks sharing the block.
    pub n: u64,
    /// Machine size `N`.
    pub big_n: u64,
    /// Message payload bits `M`.
    pub m_bits: u64,
}

impl ProtocolCostModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≤ big_n`, `n ≥ 1` and `big_n` is a power of two.
    pub fn new(n: u64, big_n: u64, m_bits: u64) -> Self {
        assert!(n >= 1 && n <= big_n, "need 1 ≤ n ≤ N");
        let _ = multicast::log2_exact(big_n);
        ProtocolCostModel { n, big_n, m_bits }
    }

    /// `CC₁` for a single destination: the normalization unit.
    pub fn cc1_unit(&self) -> u64 {
        multicast::scheme1(1, self.big_n, self.m_bits)
    }

    /// Eq. 9: block kept at memory. `(1−w)·2CC₁ + w·CC₁` bits per reference.
    pub fn no_cache(&self, w: f64) -> f64 {
        self.no_cache_norm(w) * self.cc1_unit() as f64
    }

    /// Eq. 9 normalized: `2 − w`.
    pub fn no_cache_norm(&self, w: f64) -> f64 {
        check_w(w);
        2.0 - w
    }

    /// Eq. 10: write-once under the Figure 7 Markov chain, with
    /// `cc4_n` the cost of one invalidation multicast to `n` caches.
    pub fn write_once(&self, w: f64, cc4_n: f64) -> f64 {
        check_w(w);
        TwoStateChain::write_once(w).expected_cost_per_step(2.0 * self.cc1_unit() as f64, cc4_n)
    }

    /// Eq. 10's scheme-1 upper bound, normalized: `w(1−w)(n+2)`.
    pub fn write_once_norm(&self, w: f64) -> f64 {
        check_w(w);
        w * (1.0 - w) * (self.n as f64 + 2.0)
    }

    /// Eq. 11: distributed-write mode, with `cc4_n` the cost of one write
    /// distribution to `n` caches: `w · cc4_n`.
    pub fn distributed_write(&self, w: f64, cc4_n: f64) -> f64 {
        check_w(w);
        w * cc4_n
    }

    /// Eq. 11's scheme-1 bound, normalized: `w·n`.
    pub fn distributed_write_norm(&self, w: f64) -> f64 {
        check_w(w);
        w * self.n as f64
    }

    /// Eq. 12: global-read mode: `(1−w)·2CC₁` (every read crosses the
    /// network twice; writes are local at the owner).
    pub fn global_read(&self, w: f64) -> f64 {
        self.global_read_norm(w) * self.cc1_unit() as f64
    }

    /// Eq. 12 normalized: `2(1−w)`.
    pub fn global_read_norm(&self, w: f64) -> f64 {
        check_w(w);
        2.0 * (1.0 - w)
    }

    /// The two-mode protocol with the mode chosen per the threshold:
    /// `min(eq. 11, eq. 12)`, given `cc4_n`.
    pub fn two_mode(&self, w: f64, cc4_n: f64) -> f64 {
        self.distributed_write(w, cc4_n).min(self.global_read(w))
    }

    /// The two-mode cost, normalized, scheme-1 bound: `min(wn, 2(1−w))`.
    pub fn two_mode_norm(&self, w: f64) -> f64 {
        self.distributed_write_norm(w).min(self.global_read_norm(w))
    }

    /// The mode-selection threshold for this model's `n`.
    pub fn threshold(&self) -> TwoModeThreshold {
        TwoModeThreshold::new(self.n)
    }

    /// The worst-case (over all `w`) normalized two-mode cost,
    /// `2n/(n+2)` — strictly below the no-cache curve everywhere.
    pub fn two_mode_peak_norm(&self) -> f64 {
        2.0 * self.n as f64 / (self.n as f64 + 2.0)
    }
}

fn check_w(w: f64) {
    assert!((0.0..=1.0).contains(&w), "write fraction {w} out of range");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> impl Iterator<Item = f64> {
        (0..=100).map(|i| i as f64 / 100.0)
    }

    #[test]
    fn threshold_value_and_preference() {
        let t = TwoModeThreshold::new(2);
        assert!((t.value() - 0.5).abs() < 1e-12);
        assert!(t.prefers_distributed_write(0.5));
        assert!(!t.prefers_distributed_write(0.51));
    }

    #[test]
    fn two_mode_never_exceeds_no_cache() {
        // The paper's first claim below eq. 12.
        for n in [1u64, 2, 4, 16, 64, 256] {
            let model = ProtocolCostModel::new(n, 1024, 20);
            for w in sweep() {
                assert!(
                    model.two_mode_norm(w) <= model.no_cache_norm(w) + 1e-12,
                    "n={n} w={w}"
                );
            }
        }
    }

    #[test]
    fn two_mode_never_exceeds_write_once() {
        // The paper's second claim.
        for n in [1u64, 2, 4, 16, 64, 256] {
            let model = ProtocolCostModel::new(n, 1024, 20);
            for w in sweep() {
                assert!(
                    model.two_mode_norm(w) <= model.write_once_norm(w) + 1e-12,
                    "n={n} w={w}"
                );
            }
        }
    }

    #[test]
    fn modes_cross_exactly_at_the_threshold() {
        for n in [2u64, 4, 14, 62] {
            let model = ProtocolCostModel::new(n, 1024, 20);
            let w1 = model.threshold().value();
            assert!((model.distributed_write_norm(w1) - model.global_read_norm(w1)).abs() < 1e-12);
            // Below the threshold DW is cheaper, above GR is.
            assert!(model.distributed_write_norm(w1 * 0.5) < model.global_read_norm(w1 * 0.5));
            let above = (w1 * 1.5).min(1.0);
            assert!(model.distributed_write_norm(above) > model.global_read_norm(above));
        }
    }

    #[test]
    fn peak_is_attained_at_the_threshold() {
        let model = ProtocolCostModel::new(16, 1024, 20);
        let w1 = model.threshold().value();
        assert!((model.two_mode_norm(w1) - model.two_mode_peak_norm()).abs() < 1e-12);
        for w in sweep() {
            assert!(model.two_mode_norm(w) <= model.two_mode_peak_norm() + 1e-12);
        }
    }

    #[test]
    fn unnormalized_forms_scale_by_cc1() {
        let model = ProtocolCostModel::new(8, 256, 20);
        let cc1 = model.cc1_unit() as f64;
        let w = 0.2;
        assert!((model.no_cache(w) - (2.0 - w) * cc1).abs() < 1e-9);
        assert!((model.global_read(w) - 2.0 * (1.0 - w) * cc1).abs() < 1e-9);
        // With CC4 = n·CC1 the generic forms reduce to the normalized ones.
        let cc4 = 8.0 * cc1;
        assert!(
            (model.distributed_write(w, cc4) / cc1 - model.distributed_write_norm(w)).abs() < 1e-9
        );
        assert!((model.write_once(w, cc4) / cc1 - model.write_once_norm(w)).abs() < 1e-9);
        assert!((model.two_mode(w, cc4) / cc1 - model.two_mode_norm(w)).abs() < 1e-9);
    }

    #[test]
    fn write_once_peaks_at_half() {
        let model = ProtocolCostModel::new(16, 1024, 20);
        let peak = model.write_once_norm(0.5);
        for w in sweep() {
            assert!(model.write_once_norm(w) <= peak + 1e-12);
        }
        assert!((peak - 0.25 * 18.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_write_fraction() {
        ProtocolCostModel::new(4, 64, 20).no_cache_norm(1.5);
    }

    #[test]
    #[should_panic(expected = "1 ≤ n ≤ N")]
    fn rejects_more_sharers_than_caches() {
        ProtocolCostModel::new(2048, 1024, 20);
    }
}
