//! Closed-form communication-cost models from Stenström (ISCA 1989).
//!
//! Everything in the paper's §3 (multicast schemes) and §4 (protocol cost
//! models) is reproduced here twice:
//!
//! * as the paper's **closed forms** (equations 2, 3, 5, 6 and 8–12), and
//! * as the **stage sums** they were derived from (the per-stage tables in
//!   §3.2 and §3.3), which serve as ground truth in tests.
//!
//! The test suites assert the two agree bit-for-bit over large parameter
//! grids, and the `tmc-omeganet` integration tests assert that the simulated
//! network reproduces the same numbers link-by-link.
//!
//! # Conventions
//!
//! * `n` — number of destinations (a power of two in the closed forms),
//! * `n1` — size of the region of adjacently placed tasks (`n ≤ n1 ≤ N`),
//! * `big_n` — the machine size `N` (number of caches/ports),
//! * `m_bits` — message payload size, the paper's `M`,
//! * costs are exact bit counts (`u64`); differences may be negative and are
//!   `i64`.
//!
//! # Example
//!
//! ```
//! use tmc_analytic::multicast;
//!
//! // Figure 5's setup: N = 1024, M = 20. Scheme 2's worst case overtakes
//! // scheme 1 once the destination count passes the break-even point.
//! assert!(multicast::scheme2_worst(1, 1024, 20) > multicast::scheme1(1, 1024, 20));
//! assert!(multicast::scheme2_worst(64, 1024, 20) < multicast::scheme1(64, 1024, 20));
//! assert_eq!(tmc_analytic::break_even_scheme2(1024, 20), Some(64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aary;
pub mod breakeven;
pub mod markov;
pub mod multicast;
pub mod paper_tables;
pub mod protocol_cost;
pub mod state_memory;

pub use breakeven::{break_even_scheme2, cheapest_scheme, Scheme};
pub use markov::TwoStateChain;
pub use protocol_cost::{ProtocolCostModel, TwoModeThreshold};
pub use state_memory::StateMemoryModel;
