//! The paper's printed tables, as data — with the reproduction scorecard
//! computed (and locked in by tests) rather than eyeballed.
//!
//! The experiment binaries print these side by side with our
//! equation-derived values; this module is the single source of truth for
//! both, so the match counts reported in `EXPERIMENTS.md` are regression-
//! tested.

use crate::breakeven;

/// Table 2 as printed: `(N, [break-even at M=0, M=40, M=100])`.
pub const TABLE2_PAPER: &[(u64, [u64; 3])] = &[
    (64, [16, 1, 1]),
    (128, [32, 4, 1]),
    (256, [32, 8, 4]),
    (512, [64, 16, 8]),
    (1024, [128, 32, 16]),
];

/// The message sizes of Table 2's columns.
pub const TABLE2_MS: [u64; 3] = [0, 40, 100];

/// Table 3 as printed: `(M, winners at n = 4, 8, 16, 64, 128)`, N = 1024,
/// n₁ = 128.
pub const TABLE3_PAPER: &[(u64, [u8; 5])] = &[
    (0, [1, 1, 3, 3, 3]),
    (20, [1, 1, 2, 2, 3]),
    (40, [1, 2, 2, 2, 3]),
    (60, [1, 2, 2, 2, 3]),
];

/// The destination counts of Table 3's columns.
pub const TABLE3_NS: [u64; 5] = [4, 8, 16, 64, 128];

/// Table 4 as printed: `(N, winners at n = 8, 16, 32, 64, 128)`, M = 20,
/// n₁ = 128.
pub const TABLE4_PAPER: &[(u64, [u8; 5])] = &[
    (256, [2, 2, 2, 2, 3]),
    (512, [2, 2, 2, 2, 3]),
    (1024, [1, 2, 2, 2, 3]),
    (2048, [1, 1, 3, 3, 3]),
];

/// The destination counts of Table 4's columns.
pub const TABLE4_NS: [u64; 5] = [8, 16, 32, 64, 128];

/// Our Table 3 winners from the paper's own equations.
pub fn table3_ours() -> Vec<(u64, [u8; 5])> {
    TABLE3_PAPER
        .iter()
        .map(|&(m_bits, _)| {
            let mut row = [0u8; 5];
            for (i, &n) in TABLE3_NS.iter().enumerate() {
                row[i] = breakeven::cheapest_scheme(n, 128, 1024, m_bits).number();
            }
            (m_bits, row)
        })
        .collect()
}

/// Our Table 4 winners from the paper's own equations.
pub fn table4_ours() -> Vec<(u64, [u8; 5])> {
    TABLE4_PAPER
        .iter()
        .map(|&(big_n, _)| {
            let mut row = [0u8; 5];
            for (i, &n) in TABLE4_NS.iter().enumerate() {
                row[i] = breakeven::cheapest_scheme(n, 128, big_n, 20).number();
            }
            (big_n, row)
        })
        .collect()
}

/// Cells agreeing with the paper, for a `(paper, ours)` table pair.
pub fn matching_cells(paper: &[(u64, [u8; 5])], ours: &[(u64, [u8; 5])]) -> (usize, usize) {
    let mut agree = 0;
    let mut total = 0;
    for ((_, p), (_, o)) in paper.iter().zip(ours) {
        for (a, b) in p.iter().zip(o) {
            total += 1;
            if a == b {
                agree += 1;
            }
        }
    }
    (agree, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reproduction scorecard reported in EXPERIMENTS.md, locked in:
    /// any change to the cost equations that moves these counts fails CI.
    #[test]
    fn table3_matches_paper_in_18_of_20_cells() {
        let (agree, total) = matching_cells(TABLE3_PAPER, &table3_ours());
        assert_eq!((agree, total), (18, 20));
    }

    #[test]
    fn table4_matches_paper_in_17_of_20_cells() {
        let (agree, total) = matching_cells(TABLE4_PAPER, &table4_ours());
        assert_eq!((agree, total), (17, 20));
    }

    #[test]
    fn table4_final_row_matches_exactly() {
        let ours = table4_ours();
        assert_eq!(ours.last().unwrap().1, TABLE4_PAPER.last().unwrap().1);
    }

    /// Table 2: the equation-derived break-evens sit above the printed
    /// values by small power-of-two factors — exactly 2× in 11 of 15
    /// cells, equal in 1, 4× in 3 (the documented discrepancy between the
    /// paper's printed table and its own equations). Locked in as a
    /// regression scorecard.
    #[test]
    fn table2_discrepancy_distribution_is_stable() {
        let mut by_ratio = std::collections::BTreeMap::new();
        for &(big_n, paper_row) in TABLE2_PAPER {
            for (i, &m_bits) in TABLE2_MS.iter().enumerate() {
                let ours = breakeven::break_even_scheme2(big_n, m_bits)
                    .expect("break-even exists for N >= 4");
                assert_eq!(ours % paper_row[i], 0, "N={big_n} M={m_bits}");
                *by_ratio.entry(ours / paper_row[i]).or_insert(0u32) += 1;
            }
        }
        assert_eq!(
            by_ratio.into_iter().collect::<Vec<_>>(),
            vec![(1, 1), (2, 11), (4, 3)]
        );
    }

    /// The monotonic structure of the printed tables (which our values
    /// share): winners never step backwards along a row.
    #[test]
    fn winner_monotonicity_holds_in_both_sources() {
        for rows in [
            TABLE3_PAPER.to_vec(),
            table3_ours(),
            TABLE4_PAPER.to_vec(),
            table4_ours(),
        ] {
            for (_, row) in rows {
                for pair in row.windows(2) {
                    assert!(pair[0] <= pair[1], "winner regressed in {row:?}");
                }
            }
        }
    }
}
