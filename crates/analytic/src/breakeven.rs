//! Break-even analysis between the multicast schemes (Tables 2–4).
//!
//! A reproduction note: the paper's printed break-even tables do not follow
//! exactly from its own equations — recomputing eq. 3 − eq. 2 places the
//! scheme-1/scheme-2 crossover about a factor of two above several printed
//! entries. We implement the equations (which the paper presents as the
//! definition) and report both our values and the paper's in
//! `EXPERIMENTS.md`. All three properties the paper *proves* from eq. 4
//! (existence for `N ≥ 4`, break-even decreasing in `M`, increasing in `N`)
//! hold for the equation-derived values and are asserted in this module's
//! tests.

use crate::multicast;

/// One of the paper's three multicast schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scheme {
    /// Scheme 1: replicated unicasts.
    S1,
    /// Scheme 2: bit-vector routing.
    S2,
    /// Scheme 3: broadcast-tag routing.
    S3,
}

impl Scheme {
    /// The scheme's number in the paper's tables.
    pub fn number(self) -> u8 {
        match self {
            Scheme::S1 => 1,
            Scheme::S2 => 2,
            Scheme::S3 => 3,
        }
    }
}

/// Break-even between schemes 1 and 2 (Table 2): the smallest power-of-two
/// destination count `n ≤ N` at which worst-case scheme 2 is no more
/// expensive than scheme 1, or `None` if scheme 2 never catches up. (The
/// weak inequality matters only at the `N = 4, M = 0` boundary, where the
/// two schemes tie exactly at `n = 4` — the case behind the paper's
/// "for N ≥ 4" qualifier.)
///
/// # Panics
///
/// Panics if `big_n` is not a power of two.
pub fn break_even_scheme2(big_n: u64, m_bits: u64) -> Option<u64> {
    let m = multicast::log2_exact(big_n);
    (0..=m).map(|k| 1u64 << k).find(|&n| {
        multicast::scheme2_worst(n, big_n, m_bits) <= multicast::scheme1(n, big_n, m_bits)
    })
}

/// Break-even between schemes 2 and 3 within an `n1`-region: the smallest
/// power-of-two `n ≤ n1` at which multicasting the whole region with
/// scheme 3 undercuts region-constrained worst-case scheme 2, or `None`.
///
/// # Panics
///
/// Panics unless `n1 ≤ big_n` are powers of two.
pub fn break_even_scheme3(n1: u64, big_n: u64, m_bits: u64) -> Option<u64> {
    let l = multicast::log2_exact(n1);
    (0..=l)
        .map(|k| 1u64 << k)
        .find(|&n| multicast::cc3_minus_cc2_region(n, n1, big_n, m_bits) < 0)
}

/// The cheapest scheme for `n` destinations among `n1` adjacent ports
/// (Tables 3 and 4). Ties prefer the lower-numbered (simpler) scheme, the
/// ordering the paper's tables use.
///
/// # Panics
///
/// Panics unless `n ≤ n1 ≤ big_n` are powers of two.
pub fn cheapest_scheme(n: u64, n1: u64, big_n: u64, m_bits: u64) -> Scheme {
    let c1 = multicast::scheme1(n, big_n, m_bits);
    let c2 = multicast::scheme2_region_worst(n, n1, big_n, m_bits);
    let c3 = multicast::scheme3(n1, big_n, m_bits);
    if c1 <= c2 && c1 <= c3 {
        Scheme::S1
    } else if c2 <= c3 {
        Scheme::S2
    } else {
        Scheme::S3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_exists_for_n_at_least_4() {
        // The paper's first claim from eq. 4.
        for m in 2..=12 {
            let big_n = 1u64 << m;
            for m_bits in [0u64, 10, 20, 40, 100] {
                assert!(
                    break_even_scheme2(big_n, m_bits).is_some(),
                    "N={big_n} M={m_bits}"
                );
            }
        }
    }

    #[test]
    fn break_even_decreases_with_message_size() {
        // The paper's second claim: bigger messages favor scheme 2 sooner.
        for m in 3..=12 {
            let big_n = 1u64 << m;
            let mut prev = u64::MAX;
            for m_bits in [0u64, 20, 40, 100, 400] {
                let be = break_even_scheme2(big_n, m_bits).unwrap();
                assert!(be <= prev, "N={big_n}: break-even rose with M");
                prev = be;
            }
        }
    }

    #[test]
    fn break_even_increases_with_machine_size() {
        // The paper's third claim.
        for m_bits in [0u64, 20, 40, 100] {
            let mut prev = 0;
            for m in 3..=12 {
                let be = break_even_scheme2(1u64 << m, m_bits).unwrap();
                assert!(be >= prev, "M={m_bits}: break-even fell with N");
                prev = be;
            }
        }
    }

    #[test]
    fn scheme3_break_even_exists_within_regions() {
        // Eq. 7's claim: there is an n ≤ n1 where scheme 3 wins — for
        // regions small relative to the machine (Tables 3/4 territory).
        for (n1, big_n) in [(128u64, 1024u64), (128, 2048), (64, 1024), (32, 512)] {
            for m_bits in [0u64, 20, 40, 60] {
                assert!(
                    break_even_scheme3(n1, big_n, m_bits).is_some(),
                    "n1={n1} N={big_n} M={m_bits}"
                );
            }
        }
    }

    #[test]
    fn scheme3_break_even_moves_as_claimed() {
        // Increasing M raises the scheme-2/3 break-even; increasing N
        // lowers it (the paper's observations after eq. 7).
        let be = |n1, big_n, m_bits| break_even_scheme3(n1, big_n, m_bits).unwrap();
        assert!(be(128, 1024, 0) <= be(128, 1024, 60));
        assert!(be(128, 2048, 20) <= be(128, 256, 20));
    }

    #[test]
    fn cheapest_scheme_monotone_progression() {
        // Figure 6's qualitative shape: as n grows from 1 to n1 the winner
        // moves 1 → 2 → 3 and never backwards.
        let (n1, big_n, m_bits) = (128u64, 1024u64, 20u64);
        let mut best_rank = 1;
        for k in 0..=7 {
            let n = 1u64 << k;
            let s = cheapest_scheme(n, n1, big_n, m_bits).number();
            assert!(s >= best_rank, "winner regressed at n={n}");
            best_rank = best_rank.max(s);
        }
        assert_eq!(cheapest_scheme(1, n1, big_n, m_bits), Scheme::S1);
        assert_eq!(cheapest_scheme(128, n1, big_n, m_bits), Scheme::S3);
    }

    #[test]
    fn table4_n2048_row_matches_paper() {
        // The Table 4 row our equations reproduce cell-for-cell:
        // N=2048, M=20, n1=128 → schemes 1, 1, 3, 3, 3.
        let got: Vec<u8> = [8u64, 16, 32, 64, 128]
            .iter()
            .map(|&n| cheapest_scheme(n, 128, 2048, 20).number())
            .collect();
        assert_eq!(got, [1, 1, 3, 3, 3]);
    }

    #[test]
    fn scheme_numbers() {
        assert_eq!(Scheme::S1.number(), 1);
        assert_eq!(Scheme::S2.number(), 2);
        assert_eq!(Scheme::S3.number(), 3);
        assert!(Scheme::S1 < Scheme::S2);
    }
}
