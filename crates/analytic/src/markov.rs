//! Two-state Markov chain analysis (paper §4, Figure 7).
//!
//! The paper models the global reference string to a block under the
//! write-once protocol as a two-state Markov process (states *exclusive*
//! and *shared*). This module provides the general two-state chain and the
//! write-once instance.

/// A two-state Markov chain with transition probabilities per step.
///
/// State 0 and state 1 are abstract; [`TwoStateChain::write_once`] names
/// them *exclusive* (0) and *shared* (1).
///
/// # Example
///
/// ```
/// use tmc_analytic::TwoStateChain;
///
/// let chain = TwoStateChain::write_once(0.25);
/// let (pi_exclusive, pi_shared) = chain.stationary();
/// // The paper's result: π(exclusive) = w, π(shared) = 1 − w.
/// assert!((pi_exclusive - 0.25).abs() < 1e-12);
/// assert!((pi_shared - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoStateChain {
    /// P(next = 1 | now = 0).
    pub p01: f64,
    /// P(next = 0 | now = 1).
    pub p10: f64,
}

impl TwoStateChain {
    /// Creates a chain from its two cross-transition probabilities.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are within `0.0..=1.0`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 out of range");
        assert!((0.0..=1.0).contains(&p10), "p10 out of range");
        TwoStateChain { p01, p10 }
    }

    /// The write-once chain of Figure 7 for write fraction `w`:
    /// an exclusive block becomes shared on the next read (probability
    /// `1 − w`); a shared block becomes exclusive on the next write
    /// (probability `w`).
    ///
    /// # Panics
    ///
    /// Panics unless `w` is within `0.0..=1.0`.
    pub fn write_once(w: f64) -> Self {
        assert!((0.0..=1.0).contains(&w), "write fraction out of range");
        TwoStateChain::new(1.0 - w, w)
    }

    /// The stationary distribution `(π₀, π₁)`.
    ///
    /// For a chain with no cross transitions at all (`p01 = p10 = 0`) every
    /// distribution is stationary; we return `(0.5, 0.5)` by convention.
    pub fn stationary(&self) -> (f64, f64) {
        let denom = self.p01 + self.p10;
        if denom == 0.0 {
            (0.5, 0.5)
        } else {
            (self.p10 / denom, self.p01 / denom)
        }
    }

    /// Expected number of 0→1 transitions per step at stationarity.
    pub fn rate_01(&self) -> f64 {
        self.stationary().0 * self.p01
    }

    /// Expected number of 1→0 transitions per step at stationarity.
    pub fn rate_10(&self) -> f64 {
        self.stationary().1 * self.p10
    }

    /// Expected cost per step when a 0→1 transition costs `cost_01` and a
    /// 1→0 transition costs `cost_10`.
    pub fn expected_cost_per_step(&self, cost_01: f64, cost_10: f64) -> f64 {
        self.rate_01() * cost_01 + self.rate_10() * cost_10
    }

    /// Evolves a distribution one step.
    pub fn step(&self, dist: (f64, f64)) -> (f64, f64) {
        (
            dist.0 * (1.0 - self.p01) + dist.1 * self.p10,
            dist.0 * self.p01 + dist.1 * (1.0 - self.p10),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_is_a_fixed_point() {
        for &(p01, p10) in &[(0.3, 0.7), (0.05, 0.6), (1.0, 1.0), (0.5, 0.0)] {
            let chain = TwoStateChain::new(p01, p10);
            let pi = chain.stationary();
            let next = chain.step(pi);
            assert!((pi.0 - next.0).abs() < 1e-12, "{p01} {p10}");
            assert!((pi.0 + pi.1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn write_once_stationary_matches_paper() {
        // π(exclusive) = w, π(shared) = 1 − w, and both transition rates
        // equal w(1 − w) — the factor in eq. 10.
        for w in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let chain = TwoStateChain::write_once(w);
            let (pe, ps) = chain.stationary();
            assert!((pe - w).abs() < 1e-12);
            assert!((ps - (1.0 - w)).abs() < 1e-12);
            assert!((chain.rate_01() - w * (1.0 - w)).abs() < 1e-12);
            assert!((chain.rate_10() - w * (1.0 - w)).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_cost_recovers_eq_10_shape() {
        // cost(shared→exclusive) = CC4(n), cost(exclusive→shared) = 2·CC1:
        // per-reference cost = w(1−w)(CC4 + 2CC1).
        let w = 0.3;
        let (cc4, cc1) = (1000.0, 275.0);
        let chain = TwoStateChain::write_once(w);
        let got = chain.expected_cost_per_step(2.0 * cc1, cc4);
        let want = w * (1.0 - w) * (cc4 + 2.0 * cc1);
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn frozen_chain_converges_to_convention() {
        let chain = TwoStateChain::new(0.0, 0.0);
        assert_eq!(chain.stationary(), (0.5, 0.5));
        assert_eq!(chain.rate_01(), 0.0);
    }

    #[test]
    fn step_preserves_probability_mass() {
        let chain = TwoStateChain::new(0.2, 0.4);
        let mut dist = (1.0, 0.0);
        for _ in 0..50 {
            dist = chain.step(dist);
            assert!((dist.0 + dist.1 - 1.0).abs() < 1e-12);
        }
        let pi = chain.stationary();
        assert!((dist.0 - pi.0).abs() < 1e-9, "iteration converges");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        TwoStateChain::new(1.5, 0.0);
    }
}
