//! Directory state-memory cost models (the paper's introduction and §5).
//!
//! The introduction's quantitative claim: a memory-level full-map directory
//! (Censier–Feautrier) needs `O(N·M)` bits of state, while the paper's
//! distributed scheme needs `O(C(N + log N) + M·log N)` — proportional
//! mainly to the *cache* size, not the memory size. §5 adds two further
//! reductions: a split-cache organization (only part of the cache supports
//! shared read–write data) and an associative present-vector store (the
//! vector is used only by the owner, so only owned lines need one).

/// Machine parameters for the state-memory comparison.
///
/// # Example
///
/// ```
/// use tmc_analytic::state_memory::StateMemoryModel;
///
/// // 1024 nodes, 4096-block caches, a 1 Mi-block memory module per node.
/// let m = StateMemoryModel::new(1024, 4096, 1024 << 20);
/// // The distributed directory is orders of magnitude smaller than the
/// // full map on a large machine.
/// assert!(m.distributed_bits() * 10 < m.full_map_bits());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StateMemoryModel {
    /// Number of caches `N` (a power of two).
    pub n_caches: u64,
    /// Blocks per cache `C`.
    pub cache_blocks: u64,
    /// Blocks of main memory `M`.
    pub memory_blocks: u64,
}

impl StateMemoryModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `n_caches` is a power of two and all parameters are
    /// nonzero.
    pub fn new(n_caches: u64, cache_blocks: u64, memory_blocks: u64) -> Self {
        assert!(n_caches.is_power_of_two(), "N must be a power of two");
        assert!(cache_blocks > 0 && memory_blocks > 0);
        StateMemoryModel {
            n_caches,
            cache_blocks,
            memory_blocks,
        }
    }

    fn log_n(&self) -> u64 {
        self.n_caches.trailing_zeros() as u64
    }

    /// Full-map directory at memory: one entry per memory block holding an
    /// N-bit presence vector plus a dirty bit — the `O(N·M)` scheme.
    pub fn full_map_bits(&self) -> u128 {
        self.memory_blocks as u128 * (self.n_caches as u128 + 1)
    }

    /// The paper's per-line state field: V + O + M + DW (4 bits), the
    /// present vector (N bits) and the OWNER id (log₂ N bits).
    pub fn line_state_bits(&self) -> u64 {
        4 + self.n_caches + self.log_n()
    }

    /// The paper's block store at memory: one valid bit plus a log₂ N owner
    /// id per memory block.
    pub fn block_store_bits(&self) -> u128 {
        self.memory_blocks as u128 * (1 + self.log_n()) as u128
    }

    /// The distributed scheme, unoptimized: every cache line carries the
    /// full state field, plus the block store —
    /// `C·N·(N + log N + 4) + M·(log N + 1)` bits machine-wide.
    pub fn distributed_bits(&self) -> u128 {
        self.n_caches as u128 * self.cache_blocks as u128 * self.line_state_bits() as u128
            + self.block_store_bits()
    }

    /// §5's split-cache organization: only `shared_fraction` of each cache
    /// supports shared read–write blocks and carries present vectors; the
    /// rest carries only the V/O/M/DW bits and the OWNER field.
    ///
    /// # Panics
    ///
    /// Panics unless `shared_fraction` is within `0.0..=1.0`.
    pub fn distributed_split_cache_bits(&self, shared_fraction: f64) -> u128 {
        assert!(
            (0.0..=1.0).contains(&shared_fraction),
            "fraction out of range"
        );
        let shared_lines = (self.cache_blocks as f64 * shared_fraction).round() as u128;
        let plain_lines = self.cache_blocks as u128 - shared_lines;
        let plain_bits = (4 + self.log_n()) as u128; // no present vector
        self.n_caches as u128
            * (shared_lines * self.line_state_bits() as u128 + plain_lines * plain_bits)
            + self.block_store_bits()
    }

    /// §5's associative present-vector store: the vector is used only by
    /// the owner, so each cache keeps a small associative memory of
    /// `owned_entries` (tag + N-bit vector) and every line keeps just the
    /// bits plus the OWNER field.
    pub fn distributed_associative_bits(&self, owned_entries: u64) -> u128 {
        let tag_bits = 32u128; // block identification in the associative store
        let per_line = (4 + self.log_n()) as u128;
        self.n_caches as u128
            * (self.cache_blocks as u128 * per_line
                + owned_entries as u128 * (tag_bits + self.n_caches as u128))
            + self.block_store_bits()
    }

    /// `full_map / distributed` — how much the paper's scheme saves.
    pub fn savings_factor(&self) -> f64 {
        self.full_map_bits() as f64 / self.distributed_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_matches_the_papers_big_o() {
        // Full map scales with memory size; distributed with cache size.
        let small_mem = StateMemoryModel::new(256, 1024, 1 << 16);
        let big_mem = StateMemoryModel::new(256, 1024, 1 << 22);
        let mem_ratio = (1u64 << 22) as f64 / (1u64 << 16) as f64;
        assert!(
            (big_mem.full_map_bits() as f64 / small_mem.full_map_bits() as f64 - mem_ratio).abs()
                < 1e-9
        );
        // Distributed grows only via the log N block store term: far slower.
        let growth = big_mem.distributed_bits() as f64 / small_mem.distributed_bits() as f64;
        assert!(growth < mem_ratio / 4.0, "distributed growth {growth}");
    }

    #[test]
    fn distributed_wins_on_large_machines() {
        // Memory scales with the machine (one 1 Mi-block module per node,
        // as in the RP3 class); the savings factor then grows with N.
        let mut prev = 1.0;
        for log_n in [6u32, 8, 10] {
            let n = 1u64 << log_n;
            let m = StateMemoryModel::new(n, 4096, n << 20);
            assert!(
                m.savings_factor() > prev,
                "N = {n}: savings must grow, got {}",
                m.savings_factor()
            );
            prev = m.savings_factor();
        }
    }

    #[test]
    fn split_cache_reduces_state() {
        let m = StateMemoryModel::new(1024, 4096, 1 << 20);
        let full = m.distributed_bits();
        let half = m.distributed_split_cache_bits(0.5);
        let none = m.distributed_split_cache_bits(0.0);
        assert!(half < full);
        assert!(none < half);
        assert_eq!(m.distributed_split_cache_bits(1.0), full);
    }

    #[test]
    fn associative_store_reduces_state_when_few_blocks_are_owned() {
        let m = StateMemoryModel::new(1024, 4096, 1 << 20);
        // With vectors for only 256 owned lines instead of all 4096:
        assert!(m.distributed_associative_bits(256) < m.distributed_bits());
        // But a store as large as the cache is no better.
        assert!(m.distributed_associative_bits(4096) >= m.distributed_bits());
    }

    #[test]
    fn exact_formula_spot_check() {
        let m = StateMemoryModel::new(4, 2, 8);
        // line state = 4 + 4 + 2 = 10; distributed = 4*2*10 + 8*3 = 104.
        assert_eq!(m.line_state_bits(), 10);
        assert_eq!(m.distributed_bits(), 104);
        // full map = 8 * 5 = 40 (tiny machines favor the full map).
        assert_eq!(m.full_map_bits(), 40);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn split_fraction_validated() {
        StateMemoryModel::new(4, 2, 8).distributed_split_cache_bits(1.5);
    }
}
