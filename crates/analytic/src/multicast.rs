//! Multicast communication-cost models (paper §3, equations 2–8).
//!
//! Every closed form is paired with the stage-sum it was derived from; the
//! tests assert they agree exactly over a dense parameter grid, so the
//! closed forms inherit the stage tables' status as ground truth.
//!
//! A reproduction note: the paper's printed stage table for scheme 3
//! contains a typo (`2(l−1)` where consistency with its own eq. 5 requires
//! the tag to shrink per stage); our stage sum uses the shrinking-tag
//! version, which reproduces eq. 5 exactly.

/// Exact log₂ of a power of two.
///
/// # Panics
///
/// Panics if `x` is not a positive power of two.
pub fn log2_exact(x: u64) -> u32 {
    assert!(x.is_power_of_two(), "{x} is not a power of two");
    x.trailing_zeros()
}

fn to_u64(v: i128, what: &str) -> u64 {
    u64::try_from(v).unwrap_or_else(|_| panic!("negative {what} cost: {v}"))
}

// ---------------------------------------------------------------------
// Scheme 1 (eq. 2): n replicated destination-tag unicasts.
// ---------------------------------------------------------------------

/// Scheme 1 closed form (eq. 2): `CC₁ = n(log N + 1)(2M + log N)/2`.
///
/// Exact for any `n ≥ 0` (not only powers of two): scheme 1's cost is
/// strictly linear in the number of destinations.
///
/// # Panics
///
/// Panics if `big_n` is not a power of two.
pub fn scheme1(n: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n) as u64;
    // (m+1)(2M+m) is always even: if m is odd, m+1 is even; else 2M+m is.
    n * (m + 1) * (2 * m_bits + m) / 2
}

/// Scheme 1 stage sum: `n · Σ_{i=0}^{m} (M + m − i)`.
///
/// # Panics
///
/// Panics if `big_n` is not a power of two.
pub fn scheme1_stagesum(n: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n) as u64;
    n * (0..=m).map(|i| m_bits + (m - i)).sum::<u64>()
}

// ---------------------------------------------------------------------
// Scheme 2 (eq. 3): bit-vector routing, unconstrained worst case.
// ---------------------------------------------------------------------

/// Scheme 2 worst-case closed form (eq. 3):
/// `CC₂ = n(M log N − M log n + 2M − 1) + N(log n + 2) − M`.
///
/// Worst case = the destinations split the routing tree at each of the
/// first `log n` stages (see
/// [`DestSet::worst_case_spread`](../../tmc_omeganet/destset/struct.DestSet.html#method.worst_case_spread)).
///
/// # Panics
///
/// Panics unless `n` and `big_n` are powers of two with `n ≤ big_n`.
pub fn scheme2_worst(n: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n) as i128;
    let k = log2_exact(n) as i128;
    assert!(n <= big_n, "more destinations than ports");
    let (n, big_n, m_bits) = (n as i128, big_n as i128, m_bits as i128);
    let cc = n * (m_bits * m - m_bits * k + 2 * m_bits - 1) + big_n * (k + 2) - m_bits;
    to_u64(cc, "scheme 2 worst-case")
}

/// Scheme 2 worst-case stage sum:
/// `Σ_{i=0}^{k} 2^i (M + N/2^i) + Σ_{i=k+1}^{m} 2^k (M + N/2^i)`.
///
/// # Panics
///
/// Panics unless `n` and `big_n` are powers of two with `n ≤ big_n`.
pub fn scheme2_worst_stagesum(n: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n);
    let k = log2_exact(n);
    assert!(n <= big_n, "more destinations than ports");
    let mut cc = 0;
    for i in 0..=k {
        cc += (1u64 << i) * (m_bits + (big_n >> i));
    }
    for i in k + 1..=m {
        cc += n * (m_bits + (big_n >> i));
    }
    cc
}

/// Eq. 4: `CC₂ − CC₁` for the unconstrained worst case (signed).
///
/// # Panics
///
/// Panics unless `n` and `big_n` are powers of two with `n ≤ big_n`.
pub fn cc2_minus_cc1(n: u64, big_n: u64, m_bits: u64) -> i64 {
    scheme2_worst(n, big_n, m_bits) as i64 - scheme1(n, big_n, m_bits) as i64
}

// ---------------------------------------------------------------------
// Scheme 2 constrained to an n1-region (eq. 6).
// ---------------------------------------------------------------------

/// Scheme 2 worst case when the `n` destinations lie among `n1` adjacently
/// placed ports (eq. 6):
/// `CC₂′ = n(M log n₁ − M log n + 2M − 1) + n₁ log n + M(log N − log n₁ − 1) + 2N`.
///
/// With `n == n1` this is also the *best* case of unconstrained scheme 2
/// (an adjacent destination block forks only at the last `log n` stages).
///
/// # Panics
///
/// Panics unless `n ≤ n1 ≤ big_n` are all powers of two.
pub fn scheme2_region_worst(n: u64, n1: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n) as i128;
    let l = log2_exact(n1) as i128;
    let k = log2_exact(n) as i128;
    assert!(n <= n1 && n1 <= big_n, "need n ≤ n1 ≤ N");
    let (n, n1, big_n, m_bits) = (n as i128, n1 as i128, big_n as i128, m_bits as i128);
    let cc =
        n * (m_bits * l - m_bits * k + 2 * m_bits - 1) + n1 * k + m_bits * (m - l - 1) + 2 * big_n;
    to_u64(cc, "scheme 2 region worst-case")
}

/// Stage sum behind eq. 6:
/// `Σ_{i=0}^{m−l−1}(M + N/2^i) + Σ_{i=m−l}^{m−l+k} 2^{i−(m−l)}(M + N/2^i)
///  + Σ_{i=m−l+k+1}^{m} 2^k (M + N/2^i)`.
///
/// # Panics
///
/// Panics unless `n ≤ n1 ≤ big_n` are all powers of two.
pub fn scheme2_region_worst_stagesum(n: u64, n1: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n);
    let l = log2_exact(n1);
    let k = log2_exact(n);
    assert!(n <= n1 && n1 <= big_n, "need n ≤ n1 ≤ N");
    let mut cc = 0;
    // Single message descends to the region for the first m−l stages.
    for i in 0..(m - l) {
        cc += m_bits + (big_n >> i);
    }
    // Then it forks once per stage for k stages (worst case in the region)…
    for i in (m - l)..=(m - l + k) {
        cc += (1u64 << (i - (m - l))) * (m_bits + (big_n >> i));
    }
    // …and rides 2^k parallel copies to the leaves.
    for i in (m - l + k + 1)..=m {
        cc += n * (m_bits + (big_n >> i));
    }
    cc
}

/// Exact scheme-2 cost for an aligned block of `n` adjacent destinations
/// (the best case): eq. 6 at `n1 = n`.
///
/// # Panics
///
/// Panics unless `n ≤ big_n` are powers of two.
pub fn scheme2_adjacent(n: u64, big_n: u64, m_bits: u64) -> u64 {
    scheme2_region_worst(n, n, big_n, m_bits)
}

// ---------------------------------------------------------------------
// Scheme 3 (eq. 5): broadcast-tag routing over a 2^l block of neighbors.
// ---------------------------------------------------------------------

/// Scheme 3 closed form (eq. 5):
/// `CC₃ = n₁(2M + 4) − log n₁(log n₁ + M + 3) + log N(log N + M + 1) − M − 4`.
///
/// `n1` is the number of destinations (a power of two, adjacently placed).
///
/// # Panics
///
/// Panics unless `n1 ≤ big_n` are powers of two.
pub fn scheme3(n1: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n) as i128;
    let l = log2_exact(n1) as i128;
    assert!(n1 <= big_n, "more destinations than ports");
    let (n1, m_bits) = (n1 as i128, m_bits as i128);
    let cc = n1 * (2 * m_bits + 4) - l * (l + m_bits + 3) + m * (m + m_bits + 1) - m_bits - 4;
    to_u64(cc, "scheme 3")
}

/// Stage sum behind eq. 5 (with the shrinking 2-bit-per-stage tag):
/// `Σ_{i=0}^{m−l}(M + 2(m − i)) + Σ_{i=1}^{l} 2^i (M + 2(l − i))`.
///
/// # Panics
///
/// Panics unless `n1 ≤ big_n` are powers of two.
pub fn scheme3_stagesum(n1: u64, big_n: u64, m_bits: u64) -> u64 {
    let m = log2_exact(big_n) as u64;
    let l = log2_exact(n1) as u64;
    assert!(n1 <= big_n, "more destinations than ports");
    let mut cc = 0;
    for i in 0..=(m - l) {
        cc += m_bits + 2 * (m - i);
    }
    for i in 1..=l {
        cc += (1u64 << i) * (m_bits + 2 * (l - i));
    }
    cc
}

/// Eq. 7: `CC₃ − CC₂′` (signed), for destinations within an `n1`-region.
///
/// # Panics
///
/// Panics unless `n ≤ n1 ≤ big_n` are powers of two.
pub fn cc3_minus_cc2_region(n: u64, n1: u64, big_n: u64, m_bits: u64) -> i64 {
    scheme3(n1, big_n, m_bits) as i64 - scheme2_region_worst(n, n1, big_n, m_bits) as i64
}

// ---------------------------------------------------------------------
// Scheme 4 (eq. 8): the combined scheme.
// ---------------------------------------------------------------------

/// Combined-scheme cost (eq. 8): `CC₄ = min(CC₁, CC₂′, CC₃)` for `n`
/// destinations among `n1` adjacent ports. Scheme 3 must address the whole
/// region, so its cost is evaluated at `n1`.
///
/// # Panics
///
/// Panics unless `n ≤ n1 ≤ big_n` are powers of two.
pub fn combined(n: u64, n1: u64, big_n: u64, m_bits: u64) -> u64 {
    scheme1(n, big_n, m_bits)
        .min(scheme2_region_worst(n, n1, big_n, m_bits))
        .min(scheme3(n1, big_n, m_bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The parameter grid used by the agreement tests: every (N, n1, n)
    /// power-of-two triple with n ≤ n1 ≤ N ≤ 4096, crossed with several M.
    fn grid() -> impl Iterator<Item = (u64, u64, u64, u64)> {
        (1u32..=12).flat_map(|m| {
            (0..=m).flat_map(move |l| {
                (0..=l).flat_map(move |k| {
                    [0u64, 1, 20, 40, 100]
                        .into_iter()
                        .map(move |m_bits| (1u64 << k, 1u64 << l, 1u64 << m, m_bits))
                })
            })
        })
    }

    #[test]
    fn scheme1_closed_equals_stagesum() {
        for (n, _, big_n, m_bits) in grid() {
            assert_eq!(
                scheme1(n, big_n, m_bits),
                scheme1_stagesum(n, big_n, m_bits),
                "n={n} N={big_n} M={m_bits}"
            );
        }
    }

    #[test]
    fn scheme2_closed_equals_stagesum() {
        for (n, _, big_n, m_bits) in grid() {
            assert_eq!(
                scheme2_worst(n, big_n, m_bits),
                scheme2_worst_stagesum(n, big_n, m_bits),
                "n={n} N={big_n} M={m_bits}"
            );
        }
    }

    #[test]
    fn scheme2_region_closed_equals_stagesum() {
        for (n, n1, big_n, m_bits) in grid() {
            assert_eq!(
                scheme2_region_worst(n, n1, big_n, m_bits),
                scheme2_region_worst_stagesum(n, n1, big_n, m_bits),
                "n={n} n1={n1} N={big_n} M={m_bits}"
            );
        }
    }

    #[test]
    fn scheme3_closed_equals_stagesum() {
        for (_, n1, big_n, m_bits) in grid() {
            assert_eq!(
                scheme3(n1, big_n, m_bits),
                scheme3_stagesum(n1, big_n, m_bits),
                "n1={n1} N={big_n} M={m_bits}"
            );
        }
    }

    #[test]
    fn region_worst_reduces_to_unconstrained_at_full_region() {
        // With n1 = N the "region" is the whole machine and eq. 6 must
        // collapse to eq. 3.
        for (n, _, big_n, m_bits) in grid() {
            assert_eq!(
                scheme2_region_worst(n, big_n, big_n, m_bits),
                scheme2_worst(n, big_n, m_bits)
            );
        }
    }

    #[test]
    fn adjacent_is_never_worse_than_spread() {
        for (n, _, big_n, m_bits) in grid() {
            assert!(
                scheme2_adjacent(n, big_n, m_bits) <= scheme2_worst(n, big_n, m_bits),
                "n={n} N={big_n} M={m_bits}"
            );
        }
    }

    #[test]
    fn region_constraint_tightens_the_worst_case() {
        // A smaller region can only reduce the worst-case cost.
        for (n, n1, big_n, m_bits) in grid() {
            if n1 < big_n {
                assert!(
                    scheme2_region_worst(n, n1, big_n, m_bits) <= scheme2_worst(n, big_n, m_bits),
                    "n={n} n1={n1} N={big_n} M={m_bits}"
                );
            }
        }
    }

    #[test]
    fn scheme3_singleton_is_a_tagged_unicast() {
        // l = 0: one path, 2-bit tag per stage: (m+1)(M+m).
        for m in 1u32..=12 {
            let big_n = 1u64 << m;
            for m_bits in [0u64, 20, 100] {
                assert_eq!(
                    scheme3(1, big_n, m_bits),
                    (m as u64 + 1) * (m_bits + m as u64)
                );
            }
        }
    }

    #[test]
    fn differences_match_their_operands() {
        for (n, n1, big_n, m_bits) in grid() {
            assert_eq!(
                cc2_minus_cc1(n, big_n, m_bits),
                scheme2_worst(n, big_n, m_bits) as i64 - scheme1(n, big_n, m_bits) as i64
            );
            assert_eq!(
                cc3_minus_cc2_region(n, n1, big_n, m_bits),
                scheme3(n1, big_n, m_bits) as i64
                    - scheme2_region_worst(n, n1, big_n, m_bits) as i64
            );
        }
    }

    #[test]
    fn combined_is_the_pointwise_minimum() {
        for (n, n1, big_n, m_bits) in grid() {
            let c = combined(n, n1, big_n, m_bits);
            assert!(c <= scheme1(n, big_n, m_bits));
            assert!(c <= scheme2_region_worst(n, n1, big_n, m_bits));
            assert!(c <= scheme3(n1, big_n, m_bits));
            assert!(
                c == scheme1(n, big_n, m_bits)
                    || c == scheme2_region_worst(n, n1, big_n, m_bits)
                    || c == scheme3(n1, big_n, m_bits)
            );
        }
    }

    #[test]
    fn paper_figure5_setup_spot_values() {
        // N = 1024, M = 20 (Figure 5): scheme 1 at n = 1 costs
        // (10+1)(20+5) = 275 bits.
        assert_eq!(scheme1(1, 1024, 20), 275);
        // Scheme 2 at n = 1 carries the kilobit vector: far more.
        assert!(scheme2_worst(1, 1024, 20) > 2000);
        // By n = 64 scheme 2 has won (its cost grows ~n·M, scheme 1 ~n·275).
        assert!(scheme2_worst(64, 1024, 20) < scheme1(64, 1024, 20));
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_power_of_two_n_rejected_by_scheme2() {
        scheme2_worst(3, 8, 20);
    }

    #[test]
    #[should_panic(expected = "more destinations than ports")]
    fn scheme3_rejects_oversized_region() {
        scheme3(16, 8, 20);
    }
}
