//! Observability for the two-mode coherence simulator: structured protocol
//! events, a metrics registry, and a replayable JSONL trace sink.
//!
//! The paper's evaluation is entirely about per-reference communication
//! cost (eqs. 2–12), yet aggregate totals cannot answer *why* a run cost
//! what it did: which transaction charged which omega-network links, when
//! the §5 adaptive policy flipped a block's mode, where ownership migrated.
//! This crate makes every protocol transition observable:
//!
//! * [`ProtocolEvent`] — one typed record per protocol-visible action
//!   (reads, writes, misses, mode switches, ownership transfers,
//!   replacements, and multicasts with their per-link bit charges);
//! * [`Tracer`] — a zero-cost-when-disabled event buffer that the engines
//!   own by value (it is `Clone`, so cloneable `System`s — required by the
//!   bounded model checker — stay cloneable);
//! * [`MetricsRegistry`] — counters, histograms and accumulators (from
//!   [`tmc_simcore`]) folded from an event stream: latency and cast-cost
//!   distributions, mode residency, hit/miss tallies;
//! * [`jsonl`] — a dependency-free JSONL codec for traces
//!   (header / events / trailer), designed so a captured run can be
//!   *re-executed* and checked against the live system: the trailer pins
//!   the protocol fingerprint hash, the total bits, and every per-link bit
//!   charge. See `trace_check` in `tmc-bench` for the replay harness.
//!
//! The crate deliberately depends only on the substrate crates
//! ([`tmc_simcore`], [`tmc_omeganet`], [`tmc_memsys`]) — not on the
//! protocol engine — so both `tmc-core` and every baseline engine can emit
//! events without a dependency cycle.
//!
//! # Example
//!
//! ```
//! use tmc_obs::{MetricsRegistry, ProtocolEvent, TraceMode, Tracer};
//! use tmc_memsys::WordAddr;
//!
//! let mut tracer = Tracer::new();
//! tracer.set_enabled(true);
//! tracer.push(ProtocolEvent::Read {
//!     proc: 0,
//!     addr: WordAddr::new(64),
//!     value: 7,
//!     hit: true,
//!     cost_bits: 0,
//!     latency: None,
//!     mode: Some(TraceMode::DistributedWrite),
//! });
//! let mut metrics = MetricsRegistry::new();
//! metrics.observe_all(tracer.events());
//! assert_eq!(metrics.counters().get("reads"), 1);
//! assert_eq!(metrics.counters().get("read_hits"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod stream;
pub mod tracer;

pub use event::{FaultLabel, LinkCharge, ProtocolEvent, TraceMode};
pub use jsonl::{fnv1a64, TraceHeader, TraceReader, TraceRecord, TraceTrailer, TraceWriter};
pub use metrics::MetricsRegistry;
pub use profile::{Phase, PhaseProfiler, PhaseReport};
pub use stream::{interleave, ShardEvents};
pub use tracer::Tracer;
