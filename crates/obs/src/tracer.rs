//! The event buffer the engines own.

use crate::event::ProtocolEvent;

/// A zero-cost-when-disabled buffer of [`ProtocolEvent`]s.
///
/// Engines own a `Tracer` by value and call [`Tracer::push`] (cheap bool
/// check, then drop) or [`Tracer::emit`] (the closure that *builds* the
/// event only runs when tracing is on — use it when constructing the event
/// itself would allocate). `Tracer` is `Clone` so that engines that must
/// stay cloneable — `tmc_core::System` is cloned by the bounded model
/// checker — can carry one without losing that property.
///
/// # Example
///
/// ```
/// use tmc_obs::{ProtocolEvent, Tracer};
/// use tmc_memsys::BlockAddr;
///
/// let mut t = Tracer::new();
/// t.push(ProtocolEvent::Miss { proc: 0, block: BlockAddr::new(1), write: false, cold: true });
/// assert!(t.events().is_empty()); // disabled: nothing recorded
/// t.set_enabled(true);
/// t.push(ProtocolEvent::Miss { proc: 0, block: BlockAddr::new(1), write: false, cold: true });
/// assert_eq!(t.drain().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<ProtocolEvent>,
}

impl Tracer {
    /// Creates a disabled tracer (the engines' initial state).
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Turns recording on or off. Disabling does not drop already-recorded
    /// events.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether events are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` if enabled; drops it otherwise.
    #[inline]
    pub fn push(&mut self, event: ProtocolEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Records the event built by `f`, running `f` only when enabled — the
    /// hook for events whose construction allocates (e.g. per-link charge
    /// lists).
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> ProtocolEvent) {
        if self.enabled {
            self.events.push(f());
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes every recorded event, leaving the buffer empty (enabled state
    /// unchanged).
    pub fn drain(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_memsys::BlockAddr;

    fn miss() -> ProtocolEvent {
        ProtocolEvent::Miss {
            proc: 1,
            block: BlockAddr::new(2),
            write: true,
            cold: false,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        assert!(!t.is_enabled());
        t.push(miss());
        t.emit(miss);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn emit_runs_closure_only_when_enabled() {
        let mut t = Tracer::new();
        let mut ran = false;
        t.emit(|| {
            ran = true;
            miss()
        });
        assert!(!ran);
        t.set_enabled(true);
        t.emit(|| {
            ran = true;
            miss()
        });
        assert!(ran);
        assert_eq!(t.events(), &[miss()]);
    }

    #[test]
    fn drain_empties_but_keeps_enabled() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.push(miss());
        assert_eq!(t.drain().len(), 1);
        assert!(t.is_empty());
        assert!(t.is_enabled());
        t.push(miss());
        assert_eq!(t.len(), 1);
    }
}
