//! Per-phase hot-path attribution profiling.
//!
//! Aggregate throughput numbers say the big-N cells are slow; they cannot
//! say *where* the nanoseconds go. [`PhaseProfiler`] decomposes a
//! transaction into the phases the engine actually executes — cache tag
//! lookup, network billing, block-data copying, and the residual directory
//! transition work — by sampling whole transactions with a monotonic
//! clock.
//!
//! The design follows [`crate::Tracer`]: the engine owns a profiler by
//! value, every hook costs one predictable branch while disabled, and
//! enabling it never changes protocol behavior (wall-clock time is not an
//! input to any transition). Sampling is 1-in-`every` *transactions*, not
//! phases: a sampled transaction times all of its phases, so the phase
//! shares within a sample stay internally consistent.
//!
//! Timer overhead caveat: a `TagLookup` probe brackets an operation of a
//! few nanoseconds with two `Instant::now()` calls, so absolute
//! nanosecond totals overstate cheap phases. Use the *shares* for
//! attribution and keep `every` large enough (the default is 64) that
//! sampling does not distort the run being measured.
//!
//! # Example
//!
//! ```
//! use tmc_obs::{Phase, PhaseProfiler};
//!
//! let mut p = PhaseProfiler::new();
//! p.set_sampling(1); // sample every transaction
//! let txn = p.txn_start();
//! let t = p.start();
//! let _work = (0..100u64).sum::<u64>();
//! p.end(Phase::TagLookup, t);
//! p.txn_end(txn);
//! let report = p.report();
//! assert_eq!(report.txns, 1);
//! assert_eq!(report.sampled_txns, 1);
//! assert!(report.phase_ns(Phase::Txn) >= report.phase_ns(Phase::TagLookup));
//! ```

use std::time::Instant;

/// A timed phase of one engine transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The whole transaction, issue to retire.
    Txn,
    /// Cache tag/state lookup.
    TagLookup,
    /// Network routing and per-link bit billing.
    NetBilling,
    /// Block-data movement (block fills, write-backs, datum copies).
    MemCopy,
}

impl Phase {
    /// Number of phases (array dimension).
    pub const COUNT: usize = 4;

    /// All phases, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Txn,
        Phase::TagLookup,
        Phase::NetBilling,
        Phase::MemCopy,
    ];

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Txn => "txn",
            Phase::TagLookup => "tag_lookup",
            Phase::NetBilling => "net_billing",
            Phase::MemCopy => "mem_copy",
        }
    }
}

/// Aggregated phase attribution over the sampled transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Transactions observed (sampled or not).
    pub txns: u64,
    /// Transactions actually timed.
    pub sampled_txns: u64,
    nanos: [u64; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl PhaseReport {
    /// Nanoseconds attributed to `phase` across all sampled transactions.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Number of timed intervals recorded for `phase`.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.counts[phase as usize]
    }

    /// Nanoseconds not covered by any leaf phase — the directory/state
    /// transition work plus dispatch overhead. Computed as a residual so
    /// the leaf hooks never have to bracket the protocol logic itself.
    pub fn directory_ns(&self) -> u64 {
        let leaves = self.phase_ns(Phase::TagLookup)
            + self.phase_ns(Phase::NetBilling)
            + self.phase_ns(Phase::MemCopy);
        self.phase_ns(Phase::Txn).saturating_sub(leaves)
    }

    /// `phase`'s share of total sampled transaction time, in `0.0..=1.0`
    /// (0 when nothing was sampled).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.phase_ns(Phase::Txn);
        if total == 0 {
            0.0
        } else {
            self.phase_ns(phase) as f64 / total as f64
        }
    }

    /// The residual directory share (see [`PhaseReport::directory_ns`]).
    pub fn directory_share(&self) -> f64 {
        let total = self.phase_ns(Phase::Txn);
        if total == 0 {
            0.0
        } else {
            self.directory_ns() as f64 / total as f64
        }
    }
}

/// A zero-cost-when-disabled sampling profiler the engine owns by value.
///
/// Disabled (the default), every hook is one branch on a bool that never
/// changes — the same discipline as [`crate::Tracer`]. Enabled via
/// [`PhaseProfiler::set_sampling`], it times 1 in `every` transactions.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    enabled: bool,
    /// Whether the *current* transaction is being timed.
    sampling: bool,
    every: u32,
    tick: u32,
    report: PhaseReport,
}

impl PhaseProfiler {
    /// Creates a disabled profiler.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Enables sampling of 1 in `every` transactions (`0` disables).
    /// Resets accumulated totals.
    pub fn set_sampling(&mut self, every: u32) {
        self.enabled = every > 0;
        self.every = every;
        self.tick = 0;
        self.sampling = false;
        self.report = PhaseReport::default();
    }

    /// Whether any sampling is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Marks the start of a transaction; decides whether this one is
    /// sampled. Returns the transaction timestamp to hand back to
    /// [`PhaseProfiler::txn_end`].
    #[inline]
    pub fn txn_start(&mut self) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        self.report.txns += 1;
        self.tick += 1;
        if self.tick >= self.every {
            self.tick = 0;
            self.sampling = true;
            self.report.sampled_txns += 1;
            Some(Instant::now())
        } else {
            self.sampling = false;
            None
        }
    }

    /// Closes the transaction opened by [`PhaseProfiler::txn_start`].
    #[inline]
    pub fn txn_end(&mut self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(Phase::Txn, t);
            self.sampling = false;
        }
    }

    /// Starts timing a leaf phase — `None` (one branch) unless the
    /// current transaction is sampled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.sampling {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a leaf-phase interval opened by [`PhaseProfiler::start`].
    #[inline]
    pub fn end(&mut self, phase: Phase, start: Option<Instant>) {
        if let Some(t) = start {
            self.record(phase, t);
        }
    }

    fn record(&mut self, phase: Phase, start: Instant) {
        self.report.nanos[phase as usize] += start.elapsed().as_nanos() as u64;
        self.report.counts[phase as usize] += 1;
    }

    /// The attribution accumulated since [`PhaseProfiler::set_sampling`].
    pub fn report(&self) -> &PhaseReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = PhaseProfiler::new();
        assert!(!p.is_enabled());
        let txn = p.txn_start();
        assert!(txn.is_none());
        let t = p.start();
        assert!(t.is_none());
        p.end(Phase::TagLookup, t);
        p.txn_end(txn);
        assert_eq!(p.report(), &PhaseReport::default());
    }

    #[test]
    fn samples_one_in_every() {
        let mut p = PhaseProfiler::new();
        p.set_sampling(4);
        let mut sampled = 0;
        for _ in 0..16 {
            let txn = p.txn_start();
            if txn.is_some() {
                sampled += 1;
                let t = p.start();
                assert!(t.is_some());
                p.end(Phase::NetBilling, t);
            } else {
                assert!(p.start().is_none(), "leaf hooks follow the txn decision");
            }
            p.txn_end(txn);
        }
        assert_eq!(sampled, 4);
        let r = p.report();
        assert_eq!(r.txns, 16);
        assert_eq!(r.sampled_txns, 4);
        assert_eq!(r.phase_count(Phase::Txn), 4);
        assert_eq!(r.phase_count(Phase::NetBilling), 4);
        assert_eq!(r.phase_count(Phase::MemCopy), 0);
    }

    #[test]
    fn directory_is_the_residual() {
        let mut r = PhaseReport {
            txns: 1,
            sampled_txns: 1,
            ..PhaseReport::default()
        };
        r.nanos[Phase::Txn as usize] = 100;
        r.nanos[Phase::TagLookup as usize] = 20;
        r.nanos[Phase::NetBilling as usize] = 30;
        r.nanos[Phase::MemCopy as usize] = 10;
        assert_eq!(r.directory_ns(), 40);
        assert!((r.directory_share() - 0.4).abs() < 1e-12);
        assert!((r.share(Phase::NetBilling) - 0.3).abs() < 1e-12);
        // A residual never underflows even if timer jitter makes the
        // leaves sum past the total.
        r.nanos[Phase::MemCopy as usize] = 80;
        assert_eq!(r.directory_ns(), 0);
    }

    #[test]
    fn set_sampling_resets_and_zero_disables() {
        let mut p = PhaseProfiler::new();
        p.set_sampling(1);
        let txn = p.txn_start();
        p.txn_end(txn);
        assert_eq!(p.report().sampled_txns, 1);
        p.set_sampling(1);
        assert_eq!(p.report().sampled_txns, 0, "re-arming resets totals");
        p.set_sampling(0);
        assert!(!p.is_enabled());
        assert!(p.txn_start().is_none());
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["txn", "tag_lookup", "net_billing", "mem_copy"]);
    }
}
