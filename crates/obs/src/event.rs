//! Typed protocol events.
//!
//! One [`ProtocolEvent`] is emitted per protocol-visible action. The
//! variants mirror the paper's §2.2 operation taxonomy: processor accesses
//! (with their outcome and billed cost), misses, mode switches (software
//! directives and §5 adaptive decisions separately flagged), ownership
//! movement (request-driven transfer vs. replacement handoff), replacement,
//! and consistency multicasts with the scheme actually chosen and the exact
//! per-link bit charges.

use tmc_memsys::{BlockAddr, WordAddr};
use tmc_omeganet::SchemeChoice;

/// A block's consistency mode, as seen by the trace layer.
///
/// This is a structural twin of `tmc_core::Mode`; it lives here so the
/// observability crate does not depend on the protocol engine (which would
/// be a dependency cycle — the engine emits the events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceMode {
    /// Writes are multicast to all copy holders.
    DistributedWrite,
    /// Only the owner holds a copy; remote reads fetch one datum.
    GlobalRead,
}

impl TraceMode {
    /// Stable short name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceMode::DistributedWrite => "dw",
            TraceMode::GlobalRead => "gr",
        }
    }

    /// Parses [`TraceMode::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dw" => Some(TraceMode::DistributedWrite),
            "gr" => Some(TraceMode::GlobalRead),
            _ => None,
        }
    }
}

impl std::fmt::Display for TraceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of fault an injection event reports.
///
/// Structural twin of `tmc_faults::FaultKind`'s discriminant (kept here so
/// the observability crate does not depend on the fault crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultLabel {
    /// A network link went out of service.
    LinkDown,
    /// A cache stopped answering.
    CacheStall,
    /// A protocol message was lost and retransmitted.
    MsgDrop,
    /// A protocol message was duplicated in flight.
    MsgDup,
    /// A protocol message was delayed.
    MsgDelay,
    /// A resident cache line took a single-bit flip.
    BitFlip,
    /// Ownership offers were negatively acknowledged.
    HandoffNak,
}

impl FaultLabel {
    /// Stable short name used in the JSONL encoding and metrics keys.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultLabel::LinkDown => "link_down",
            FaultLabel::CacheStall => "cache_stall",
            FaultLabel::MsgDrop => "msg_drop",
            FaultLabel::MsgDup => "msg_dup",
            FaultLabel::MsgDelay => "msg_delay",
            FaultLabel::BitFlip => "bit_flip",
            FaultLabel::HandoffNak => "handoff_nak",
        }
    }

    /// Parses [`FaultLabel::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "link_down" => Some(FaultLabel::LinkDown),
            "cache_stall" => Some(FaultLabel::CacheStall),
            "msg_drop" => Some(FaultLabel::MsgDrop),
            "msg_dup" => Some(FaultLabel::MsgDup),
            "msg_delay" => Some(FaultLabel::MsgDelay),
            "bit_flip" => Some(FaultLabel::BitFlip),
            "handoff_nak" => Some(FaultLabel::HandoffNak),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bits charged to one physical network link by one cast.
///
/// A flattened `tmc_omeganet::LinkId` plus the charge, so trace consumers
/// need no network handle to interpret it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkCharge {
    /// Link layer, `0..=m`.
    pub layer: u32,
    /// Line within the layer, `0..N`.
    pub line: usize,
    /// Bits charged.
    pub bits: u64,
}

/// One protocol-visible action.
///
/// `Read`, `Write` and `SetMode` are the *replayable* subset: re-executing
/// them in order against a fresh system reproduces the entire run, so every
/// other variant is regenerated and can be cross-checked (see the
/// `trace_check` harness in `tmc-bench`).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProtocolEvent {
    /// A processor read completed.
    Read {
        /// Issuing processor.
        proc: usize,
        /// Word address.
        addr: WordAddr,
        /// Value returned.
        value: u64,
        /// Whether it was served from the local cache without a miss.
        hit: bool,
        /// Bits the transaction pushed across network links.
        cost_bits: u64,
        /// Transaction latency in cycles, when timing is enabled.
        latency: Option<u64>,
        /// The block's mode after the access, if the block is owned.
        mode: Option<TraceMode>,
    },
    /// A processor write completed.
    Write {
        /// Issuing processor.
        proc: usize,
        /// Word address.
        addr: WordAddr,
        /// Value written.
        value: u64,
        /// Whether the writer already held a valid copy.
        hit: bool,
        /// Bits the transaction pushed across network links.
        cost_bits: u64,
        /// Transaction latency in cycles, when timing is enabled.
        latency: Option<u64>,
        /// The block's mode after the access, if the block is owned.
        mode: Option<TraceMode>,
    },
    /// A software mode directive (§2.2 operations 6 and 7) was executed.
    SetMode {
        /// Issuing processor (becomes the owner).
        proc: usize,
        /// Word address naming the block.
        addr: WordAddr,
        /// Requested mode.
        mode: TraceMode,
    },
    /// A cache miss occurred inside a read or write transaction.
    Miss {
        /// Missing processor.
        proc: usize,
        /// The block.
        block: BlockAddr,
        /// Whether the missing access was a write.
        write: bool,
        /// `true` for a cold miss (no entry at all); `false` for a miss on
        /// an invalid entry.
        cold: bool,
    },
    /// The owner switched a block's consistency mode.
    ModeSwitch {
        /// The owning cache.
        owner: usize,
        /// The block.
        block: BlockAddr,
        /// The mode switched to.
        to: TraceMode,
        /// `true` when the §5 adaptive controller decided the switch;
        /// `false` for a software directive.
        adaptive: bool,
    },
    /// Ownership moved between caches.
    OwnershipTransfer {
        /// The block.
        block: BlockAddr,
        /// Previous owner.
        from: usize,
        /// New owner.
        to: usize,
        /// `true` when the move was a replacement handoff (§2.2 case 5b);
        /// `false` for a request-driven transfer.
        handoff: bool,
    },
    /// A cache line was replaced (§2.2 case 5).
    Replacement {
        /// Replacing cache.
        proc: usize,
        /// Evicted block.
        block: BlockAddr,
        /// Whether the replacement wrote modified data back to memory.
        wrote_back: bool,
    },
    /// A consistency multicast ran (update, invalidate or owner announce).
    Cast {
        /// Source port.
        from: usize,
        /// The multicast scheme that actually ran (resolves Combined).
        scheme: SchemeChoice,
        /// Payload bits requested per destination.
        payload_bits: u64,
        /// Total bits charged across all links.
        cost_bits: u64,
        /// The exact per-link charges, nonzero links only.
        links: Vec<LinkCharge>,
    },
    /// The concurrent driver issued a reference (cycle-stamped).
    Issue {
        /// Issuing processor.
        proc: usize,
        /// Departure cycle assigned by the driver.
        cycle: u64,
    },
    /// A scheduled fault fired (see `tmc-faults`).
    FaultInjected {
        /// What fired.
        label: FaultLabel,
        /// Simulated op index (1-based public-transaction count).
        op: u64,
        /// Dead link's layer, for link outages.
        layer: Option<u32>,
        /// Dead link's line, for link outages.
        line: Option<usize>,
        /// Affected cache, for stalls and bit flips.
        cache: Option<usize>,
        /// Op at which the outage heals, for link/cache outages.
        heal_op: Option<u64>,
    },
    /// A transaction's message path was blocked; it timed out and retried
    /// after exponential backoff (or retransmitted a dropped message).
    RetryAttempt {
        /// Simulated op index.
        op: u64,
        /// Retrying processor.
        proc: usize,
        /// The unreachable (or retransmitted-to) port.
        dest: usize,
        /// Zero-based retry attempt number.
        attempt: u32,
        /// Backoff waited before this attempt, in simulated cycles.
        backoff_cycles: u64,
    },
    /// Service was gracefully degraded: a block was force-demoted to
    /// memory-direct service (`block` set) or a cache was quarantined via
    /// flush + present-vector scrub (`cache` set).
    Degraded {
        /// Simulated op index.
        op: u64,
        /// The demoted block, for block degradations.
        block: Option<BlockAddr>,
        /// The quarantined cache, for cache quarantines.
        cache: Option<usize>,
        /// Op at which normal service resumes.
        heal_op: u64,
    },
    /// A degradation window closed: the block is cacheable again, or the
    /// quarantined cache rejoined.
    Recovered {
        /// Simulated op index.
        op: u64,
        /// The re-promoted block, for block recoveries.
        block: Option<BlockAddr>,
        /// The released cache, for cache recoveries.
        cache: Option<usize>,
        /// Ops spent degraded (recovery latency in op units).
        after_ops: u64,
    },
}

impl ProtocolEvent {
    /// Stable kind tag used in the JSONL encoding and in metrics keys.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::Read { .. } => "read",
            ProtocolEvent::Write { .. } => "write",
            ProtocolEvent::SetMode { .. } => "set_mode",
            ProtocolEvent::Miss { .. } => "miss",
            ProtocolEvent::ModeSwitch { .. } => "mode_switch",
            ProtocolEvent::OwnershipTransfer { .. } => "ownership_transfer",
            ProtocolEvent::Replacement { .. } => "replacement",
            ProtocolEvent::Cast { .. } => "cast",
            ProtocolEvent::Issue { .. } => "issue",
            ProtocolEvent::FaultInjected { .. } => "fault",
            ProtocolEvent::RetryAttempt { .. } => "retry",
            ProtocolEvent::Degraded { .. } => "degraded",
            ProtocolEvent::Recovered { .. } => "recovered",
        }
    }

    /// Whether replaying this event re-executes a transaction (`Read`,
    /// `Write`, `SetMode`); every other variant is a regenerated
    /// side-effect record.
    pub fn is_replayable(&self) -> bool {
        matches!(
            self,
            ProtocolEvent::Read { .. }
                | ProtocolEvent::Write { .. }
                | ProtocolEvent::SetMode { .. }
        )
    }
}

/// Stable short name for a [`SchemeChoice`] in the JSONL encoding.
pub fn scheme_choice_str(scheme: SchemeChoice) -> &'static str {
    match scheme {
        SchemeChoice::Replicated => "replicated",
        SchemeChoice::BitVector => "bitvector",
        SchemeChoice::BroadcastTag => "broadcast-tag",
    }
}

/// Parses [`scheme_choice_str`] output.
pub fn parse_scheme_choice(s: &str) -> Option<SchemeChoice> {
    match s {
        "replicated" => Some(SchemeChoice::Replicated),
        "bitvector" => Some(SchemeChoice::BitVector),
        "broadcast-tag" => Some(SchemeChoice::BroadcastTag),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_strings_roundtrip() {
        for m in [TraceMode::DistributedWrite, TraceMode::GlobalRead] {
            assert_eq!(TraceMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(TraceMode::parse("x"), None);
    }

    #[test]
    fn fault_labels_roundtrip() {
        for l in [
            FaultLabel::LinkDown,
            FaultLabel::CacheStall,
            FaultLabel::MsgDrop,
            FaultLabel::MsgDup,
            FaultLabel::MsgDelay,
            FaultLabel::BitFlip,
            FaultLabel::HandoffNak,
        ] {
            assert_eq!(FaultLabel::parse(l.as_str()), Some(l));
            assert_eq!(l.to_string(), l.as_str());
        }
        assert_eq!(FaultLabel::parse("meteor_strike"), None);
    }

    #[test]
    fn fault_events_are_not_replayable() {
        let e = ProtocolEvent::FaultInjected {
            label: FaultLabel::LinkDown,
            op: 3,
            layer: Some(1),
            line: Some(2),
            cache: None,
            heal_op: Some(9),
        };
        assert!(!e.is_replayable());
        assert_eq!(e.kind(), "fault");
        let e = ProtocolEvent::Degraded {
            op: 4,
            block: Some(BlockAddr::new(7)),
            cache: None,
            heal_op: 12,
        };
        assert!(!e.is_replayable());
        assert_eq!(e.kind(), "degraded");
        let e = ProtocolEvent::RetryAttempt {
            op: 4,
            proc: 0,
            dest: 3,
            attempt: 1,
            backoff_cycles: 16,
        };
        assert_eq!(e.kind(), "retry");
        let e = ProtocolEvent::Recovered {
            op: 20,
            block: None,
            cache: Some(2),
            after_ops: 16,
        };
        assert_eq!(e.kind(), "recovered");
    }

    #[test]
    fn scheme_strings_roundtrip() {
        for s in [
            SchemeChoice::Replicated,
            SchemeChoice::BitVector,
            SchemeChoice::BroadcastTag,
        ] {
            assert_eq!(parse_scheme_choice(scheme_choice_str(s)), Some(s));
        }
        assert_eq!(parse_scheme_choice("combined"), None);
    }

    #[test]
    fn replayable_subset_is_exactly_the_transactions() {
        let read = ProtocolEvent::Read {
            proc: 0,
            addr: WordAddr::new(0),
            value: 0,
            hit: false,
            cost_bits: 0,
            latency: None,
            mode: None,
        };
        assert!(read.is_replayable());
        assert_eq!(read.kind(), "read");
        let miss = ProtocolEvent::Miss {
            proc: 0,
            block: BlockAddr::new(0),
            write: false,
            cold: true,
        };
        assert!(!miss.is_replayable());
    }
}
