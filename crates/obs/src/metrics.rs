//! A metrics registry folded from protocol event streams.

use tmc_omeganet::SchemeChoice;
use tmc_simcore::{Accumulator, CounterSet, Histogram};

use crate::event::ProtocolEvent;
use crate::event::{FaultLabel, TraceMode};

/// Counters, histograms and accumulators summarizing an event stream.
///
/// Built on [`tmc_simcore`]'s statistics types, so registries from
/// different runs (or parallel sweep shards) merge exactly like the
/// underlying accumulators. Feed it events with
/// [`MetricsRegistry::observe`]; what it tracks:
///
/// * **counters** — reads/writes split by hit/miss, miss classes (cold vs.
///   invalid-entry), mode switches (adaptive vs. directive), ownership
///   transfers (handoff vs. request), replacements and write-backs, casts
///   per concrete scheme, and *mode residency* (`refs_dw` / `refs_gr`:
///   accesses that completed with the block in each mode);
/// * **latency histogram** — per-transaction cycles (timed runs only);
/// * **cast-cost histogram** — bits per consistency multicast;
/// * **access-cost accumulator** — bits per access, with mean/stddev;
/// * **fault/recovery tallies** — injected faults by kind, retries with a
///   backoff histogram, degradations (block demotions vs. cache
///   quarantines) and recoveries with a recovery-latency histogram (all
///   zero/empty for fault-free runs).
///
/// # Example
///
/// ```
/// use tmc_obs::{MetricsRegistry, ProtocolEvent, Tracer};
/// use tmc_memsys::WordAddr;
///
/// let mut m = MetricsRegistry::new();
/// m.observe(&ProtocolEvent::Write {
///     proc: 2,
///     addr: WordAddr::new(8),
///     value: 1,
///     hit: false,
///     cost_bits: 230,
///     latency: Some(12),
///     mode: None,
/// });
/// assert_eq!(m.counters().get("writes"), 1);
/// assert_eq!(m.counters().get("write_misses"), 1);
/// assert_eq!(m.latency().count(), 1);
/// assert!((m.access_cost().mean() - 230.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    counters: CounterSet,
    latency: Histogram,
    cast_cost: Histogram,
    access_cost: Accumulator,
    retry_backoff: Histogram,
    recovery_ops: Histogram,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: CounterSet::default(),
            latency: Histogram::new(),
            cast_cost: Histogram::new(),
            access_cost: Accumulator::default(),
            retry_backoff: Histogram::new(),
            recovery_ops: Histogram::new(),
        }
    }

    /// Folds one event into the registry.
    pub fn observe(&mut self, event: &ProtocolEvent) {
        match event {
            ProtocolEvent::Read {
                hit,
                cost_bits,
                latency,
                mode,
                ..
            } => {
                self.counters.incr("reads");
                self.counters
                    .incr(if *hit { "read_hits" } else { "read_misses" });
                self.access(*cost_bits, *latency, *mode);
            }
            ProtocolEvent::Write {
                hit,
                cost_bits,
                latency,
                mode,
                ..
            } => {
                self.counters.incr("writes");
                self.counters
                    .incr(if *hit { "write_hits" } else { "write_misses" });
                self.access(*cost_bits, *latency, *mode);
            }
            ProtocolEvent::SetMode { .. } => self.counters.incr("mode_directives"),
            ProtocolEvent::Miss { cold, .. } => {
                self.counters.incr("misses");
                self.counters.incr(if *cold {
                    "misses_cold"
                } else {
                    "misses_invalid"
                });
            }
            ProtocolEvent::ModeSwitch { to, adaptive, .. } => {
                self.counters.incr("mode_switches");
                self.counters.incr(match to {
                    TraceMode::DistributedWrite => "mode_switches_to_dw",
                    TraceMode::GlobalRead => "mode_switches_to_gr",
                });
                if *adaptive {
                    self.counters.incr("mode_switches_adaptive");
                }
            }
            ProtocolEvent::OwnershipTransfer { handoff, .. } => {
                self.counters.incr("ownership_transfers");
                if *handoff {
                    self.counters.incr("ownership_handoffs");
                }
            }
            ProtocolEvent::Replacement { wrote_back, .. } => {
                self.counters.incr("replacements");
                if *wrote_back {
                    self.counters.incr("writebacks");
                }
            }
            ProtocolEvent::Cast {
                scheme, cost_bits, ..
            } => {
                self.counters.incr("casts");
                self.counters.incr(match scheme {
                    SchemeChoice::Replicated => "casts_replicated",
                    SchemeChoice::BitVector => "casts_bitvector",
                    SchemeChoice::BroadcastTag => "casts_broadcast_tag",
                });
                self.cast_cost.record(*cost_bits);
            }
            ProtocolEvent::Issue { .. } => self.counters.incr("driver_issues"),
            ProtocolEvent::FaultInjected { label, .. } => {
                self.counters.incr("faults_injected");
                self.counters.incr(match label {
                    FaultLabel::LinkDown => "faults_link_down",
                    FaultLabel::CacheStall => "faults_cache_stall",
                    FaultLabel::MsgDrop => "faults_msg_drop",
                    FaultLabel::MsgDup => "faults_msg_dup",
                    FaultLabel::MsgDelay => "faults_msg_delay",
                    FaultLabel::BitFlip => "faults_bit_flip",
                    FaultLabel::HandoffNak => "faults_handoff_nak",
                });
            }
            ProtocolEvent::RetryAttempt { backoff_cycles, .. } => {
                self.counters.incr("fault_retries");
                self.retry_backoff.record(*backoff_cycles);
            }
            ProtocolEvent::Degraded { block, .. } => {
                self.counters.incr("degradations");
                self.counters.incr(if block.is_some() {
                    "degraded_blocks"
                } else {
                    "quarantined_caches"
                });
            }
            ProtocolEvent::Recovered { after_ops, .. } => {
                self.counters.incr("fault_recoveries");
                self.recovery_ops.record(*after_ops);
            }
        }
    }

    fn access(&mut self, cost_bits: u64, latency: Option<u64>, mode: Option<TraceMode>) {
        self.access_cost.record(cost_bits as f64);
        if let Some(l) = latency {
            self.latency.record(l);
        }
        match mode {
            Some(TraceMode::DistributedWrite) => self.counters.incr("refs_dw"),
            Some(TraceMode::GlobalRead) => self.counters.incr("refs_gr"),
            None => {}
        }
    }

    /// Folds a whole slice of events.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a ProtocolEvent>) {
        for e in events {
            self.observe(e);
        }
    }

    /// The event counters.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Transaction-latency histogram (cycles; empty for untimed runs).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Bits-per-multicast histogram.
    pub fn cast_cost(&self) -> &Histogram {
        &self.cast_cost
    }

    /// Bits-per-access accumulator (mean, stddev, min/max).
    pub fn access_cost(&self) -> &Accumulator {
        &self.access_cost
    }

    /// Retry-backoff histogram (simulated cycles waited per retry; empty
    /// for fault-free runs).
    pub fn retry_backoff(&self) -> &Histogram {
        &self.retry_backoff
    }

    /// Recovery-latency histogram (ops spent degraded per recovery; empty
    /// for fault-free runs).
    pub fn recovery_ops(&self) -> &Histogram {
        &self.recovery_ops
    }

    /// Fraction of mode-attributed accesses that ran in distributed-write
    /// mode, or `None` when no access carried a mode.
    pub fn dw_residency(&self) -> Option<f64> {
        let dw = self.counters.get("refs_dw");
        let gr = self.counters.get("refs_gr");
        let total = dw + gr;
        (total > 0).then(|| dw as f64 / total as f64)
    }

    /// Adds every tally of `other` into `self` (for merging sweep shards).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.counters.merge(&other.counters);
        self.latency.merge(&other.latency);
        self.cast_cost.merge(&other.cast_cost);
        self.access_cost.merge(&other.access_cost);
        self.retry_backoff.merge(&other.retry_backoff);
        self.recovery_ops.merge(&other.recovery_ops);
    }

    /// A compact multi-line report.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "accesses: {} reads ({} hits) / {} writes ({} hits)\n",
            self.counters.get("reads"),
            self.counters.get("read_hits"),
            self.counters.get("writes"),
            self.counters.get("write_hits"),
        ));
        out.push_str(&format!(
            "cost/access: mean {:.1} bits (sd {:.1}, n {})\n",
            self.access_cost.mean(),
            self.access_cost.std_dev(),
            self.access_cost.count(),
        ));
        out.push_str(&format!(
            "casts: {} (mean {:.1} bits)\n",
            self.counters.get("casts"),
            self.cast_cost.mean(),
        ));
        out.push_str(&format!(
            "mode: {} switches ({} adaptive)",
            self.counters.get("mode_switches"),
            self.counters.get("mode_switches_adaptive"),
        ));
        if let Some(r) = self.dw_residency() {
            out.push_str(&format!(", DW residency {:.1}%", 100.0 * r));
        }
        out.push('\n');
        if self.counters.get("faults_injected") > 0 {
            out.push_str(&format!(
                "faults: {} injected, {} retries, {} degradations, {} recoveries (mean {:.1} ops)\n",
                self.counters.get("faults_injected"),
                self.counters.get("fault_retries"),
                self.counters.get("degradations"),
                self.counters.get("fault_recoveries"),
                self.recovery_ops.mean(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_memsys::{BlockAddr, WordAddr};

    fn sample_events() -> Vec<ProtocolEvent> {
        vec![
            ProtocolEvent::Read {
                proc: 0,
                addr: WordAddr::new(0),
                value: 1,
                hit: true,
                cost_bits: 0,
                latency: Some(1),
                mode: Some(TraceMode::DistributedWrite),
            },
            ProtocolEvent::Write {
                proc: 1,
                addr: WordAddr::new(0),
                value: 2,
                hit: false,
                cost_bits: 300,
                latency: Some(9),
                mode: Some(TraceMode::GlobalRead),
            },
            ProtocolEvent::Miss {
                proc: 1,
                block: BlockAddr::new(0),
                write: true,
                cold: true,
            },
            ProtocolEvent::ModeSwitch {
                owner: 1,
                block: BlockAddr::new(0),
                to: TraceMode::GlobalRead,
                adaptive: true,
            },
            ProtocolEvent::Cast {
                from: 1,
                scheme: SchemeChoice::BitVector,
                payload_bits: 32,
                cost_bits: 96,
                links: vec![],
            },
            ProtocolEvent::Replacement {
                proc: 0,
                block: BlockAddr::new(3),
                wrote_back: true,
            },
            ProtocolEvent::OwnershipTransfer {
                block: BlockAddr::new(0),
                from: 0,
                to: 1,
                handoff: true,
            },
            ProtocolEvent::FaultInjected {
                label: FaultLabel::LinkDown,
                op: 5,
                layer: Some(0),
                line: Some(1),
                cache: None,
                heal_op: Some(20),
            },
            ProtocolEvent::RetryAttempt {
                op: 6,
                proc: 0,
                dest: 1,
                attempt: 0,
                backoff_cycles: 8,
            },
            ProtocolEvent::Degraded {
                op: 6,
                block: Some(BlockAddr::new(0)),
                cache: None,
                heal_op: 20,
            },
            ProtocolEvent::Recovered {
                op: 21,
                block: Some(BlockAddr::new(0)),
                cache: None,
                after_ops: 15,
            },
        ]
    }

    #[test]
    fn folds_every_event_class() {
        let mut m = MetricsRegistry::new();
        m.observe_all(&sample_events());
        let c = m.counters();
        assert_eq!(c.get("reads"), 1);
        assert_eq!(c.get("read_hits"), 1);
        assert_eq!(c.get("writes"), 1);
        assert_eq!(c.get("write_misses"), 1);
        assert_eq!(c.get("misses_cold"), 1);
        assert_eq!(c.get("mode_switches_adaptive"), 1);
        assert_eq!(c.get("mode_switches_to_gr"), 1);
        assert_eq!(c.get("casts_bitvector"), 1);
        assert_eq!(c.get("writebacks"), 1);
        assert_eq!(c.get("ownership_handoffs"), 1);
        assert_eq!(c.get("faults_injected"), 1);
        assert_eq!(c.get("faults_link_down"), 1);
        assert_eq!(c.get("fault_retries"), 1);
        assert_eq!(c.get("degradations"), 1);
        assert_eq!(c.get("degraded_blocks"), 1);
        assert_eq!(c.get("quarantined_caches"), 0);
        assert_eq!(c.get("fault_recoveries"), 1);
        assert_eq!(m.retry_backoff().count(), 1);
        assert_eq!(m.recovery_ops().count(), 1);
        assert_eq!(m.latency().count(), 2);
        assert_eq!(m.cast_cost().count(), 1);
        assert_eq!(m.access_cost().count(), 2);
        assert_eq!(m.dw_residency(), Some(0.5));
        let s = m.summary();
        assert!(s.contains("1 reads"));
        assert!(s.contains("DW residency 50.0%"));
        assert!(s.contains("faults: 1 injected"));
    }

    #[test]
    fn merge_matches_single_pass() {
        let events = sample_events();
        let mut whole = MetricsRegistry::new();
        whole.observe_all(&events);
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.observe_all(&events[..3]);
        b.observe_all(&events[3..]);
        a.merge(&b);
        assert_eq!(
            a.counters().get("mode_switches"),
            whole.counters().get("mode_switches")
        );
        assert_eq!(a.access_cost().count(), whole.access_cost().count());
        assert!((a.access_cost().mean() - whole.access_cost().mean()).abs() < 1e-9);
        assert_eq!(a.cast_cost().count(), whole.cast_cost().count());
    }

    #[test]
    fn residency_is_none_without_mode_attribution() {
        let mut m = MetricsRegistry::new();
        m.observe(&ProtocolEvent::Read {
            proc: 0,
            addr: WordAddr::new(0),
            value: 0,
            hit: false,
            cost_bits: 4,
            latency: None,
            mode: None,
        });
        assert_eq!(m.dw_residency(), None);
        assert_eq!(m.latency().count(), 0);
    }
}
