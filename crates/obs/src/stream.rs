//! Canonical-order merge of per-shard event streams.
//!
//! A sharded run (`tmc_bench::shardsim`) hands each worker a disjoint slice
//! of the block address space; every worker records its own
//! [`ProtocolEvent`] stream. To reproduce the *serial* engine's trace
//! bit-for-bit, those streams must be interleaved back into global
//! reference order — each shard knows the global index of every reference
//! it executed, and within one reference the events are already in engine
//! emission order.

use crate::event::ProtocolEvent;

/// One shard's contribution to a merged trace: `(global index, event
/// count)` groups, ascending in global index, alongside the flat event
/// buffer the groups partition.
#[derive(Debug, Clone, Default)]
pub struct ShardEvents {
    /// Per-reference groups: the reference's global index and how many
    /// events it emitted. Indices must be strictly increasing.
    pub groups: Vec<(u64, u32)>,
    /// All events, concatenated in group order.
    pub events: Vec<ProtocolEvent>,
}

impl ShardEvents {
    /// An empty stream.
    pub fn new() -> Self {
        ShardEvents::default()
    }

    /// Closes the group for global reference `index`, claiming every event
    /// recorded since the previous group. `total_len` is the stream's
    /// running event count (e.g. `Tracer::len` after the reference ran).
    ///
    /// # Panics
    ///
    /// Panics if `total_len` ran backwards.
    pub fn push_group(&mut self, index: u64, total_len: usize) {
        let claimed: usize = self.groups.iter().map(|&(_, n)| n as usize).sum();
        let fresh = total_len
            .checked_sub(claimed)
            .expect("event count cannot shrink");
        self.groups.push((index, fresh as u32));
    }
}

/// Interleaves per-shard streams into one stream ordered by global
/// reference index — the canonical order a serial engine would have
/// recorded. Groups from different shards never share an index (each
/// reference ran on exactly one shard), so the merge is total.
///
/// # Panics
///
/// Panics if a stream's groups claim more events than its buffer holds, or
/// if two shards claim the same global index.
pub fn interleave(shards: Vec<ShardEvents>) -> Vec<ProtocolEvent> {
    let total: usize = shards.iter().map(|s| s.events.len()).sum();
    let mut merged = Vec::with_capacity(total);
    // (global index, shard, offset, count) for every group, sorted by
    // global index. Offsets locate the group inside its shard's buffer.
    let mut order: Vec<(u64, usize, usize, usize)> = Vec::new();
    for (shard_idx, shard) in shards.iter().enumerate() {
        let mut offset = 0usize;
        for &(index, count) in &shard.groups {
            order.push((index, shard_idx, offset, count as usize));
            offset += count as usize;
        }
        assert!(
            offset <= shard.events.len(),
            "groups claim more events than the stream holds"
        );
    }
    order.sort_unstable_by_key(|&(index, ..)| index);
    for pair in order.windows(2) {
        assert_ne!(
            pair[0].0, pair[1].0,
            "two shards claim global reference {}",
            pair[0].0
        );
    }
    for (_, shard_idx, offset, count) in order {
        merged.extend_from_slice(&shards[shard_idx].events[offset..offset + count]);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_memsys::BlockAddr;

    fn ev(proc: usize) -> ProtocolEvent {
        ProtocolEvent::Miss {
            proc,
            block: BlockAddr::new(proc as u64),
            write: false,
            cold: true,
        }
    }

    #[test]
    fn interleave_restores_global_order() {
        // Shard A ran references 0 and 3; shard B ran 1 and 2.
        let a = ShardEvents {
            groups: vec![(0, 2), (3, 1)],
            events: vec![ev(0), ev(1), ev(30)],
        };
        let b = ShardEvents {
            groups: vec![(1, 1), (2, 0)],
            events: vec![ev(10)],
        };
        let merged = interleave(vec![a, b]);
        assert_eq!(merged, vec![ev(0), ev(1), ev(10), ev(30)]);
    }

    #[test]
    fn push_group_claims_fresh_events_only() {
        let mut s = ShardEvents::new();
        s.events.push(ev(0));
        s.push_group(7, 1);
        s.events.push(ev(1));
        s.events.push(ev(2));
        s.push_group(9, 3);
        assert_eq!(s.groups, vec![(7, 1), (9, 2)]);
    }

    #[test]
    fn empty_streams_merge_to_nothing() {
        assert!(interleave(vec![ShardEvents::new(), ShardEvents::new()]).is_empty());
    }

    #[test]
    #[should_panic(expected = "claim global reference")]
    fn duplicate_indices_are_rejected() {
        let a = ShardEvents {
            groups: vec![(4, 0)],
            events: vec![],
        };
        let b = ShardEvents {
            groups: vec![(4, 0)],
            events: vec![],
        };
        interleave(vec![a, b]);
    }
}
