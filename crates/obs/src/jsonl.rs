//! The replayable JSONL trace format.
//!
//! A trace is a text file with one JSON object per line:
//!
//! ```text
//! {"type":"header","version":1,"n_procs":4,...}   <- run configuration
//! {"type":"read","proc":0,"addr":64,...}          <- one line per event
//! ...
//! {"type":"trailer","events":912,"fingerprint":...,"total_bits":...,"links":[...]}
//! ```
//!
//! The header carries enough configuration to rebuild an identical
//! `System`; the trailer pins three independent checks — the FNV-1a hash of
//! the protocol fingerprint, the total bits charged, and every nonzero
//! per-link bit charge — so a replay harness can re-execute the `Read` /
//! `Write` / `SetMode` events and assert the run reproduces exactly. The
//! codec is dependency-free (see [`crate::json`]); the optional `serde`
//! feature only gates derive placeholders, not this sink.

use std::io::{self, BufRead, Write};

use crate::event::{
    parse_scheme_choice, scheme_choice_str, FaultLabel, LinkCharge, ProtocolEvent, TraceMode,
};
use crate::json::{parse_object, JsonValue, ObjectWriter};
use tmc_memsys::{BlockAddr, WordAddr};

/// Current trace-format version; bumped on incompatible encoding changes.
pub const TRACE_VERSION: u64 = 1;

/// FNV-1a hash of `bytes`, used to pin protocol fingerprints in trailers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The first record of a trace: the run configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceHeader {
    /// Trace-format version ([`TRACE_VERSION`]).
    pub version: u64,
    /// Number of processors/caches (power of two).
    pub n_procs: usize,
    /// Cache sets.
    pub sets: usize,
    /// Cache ways.
    pub ways: usize,
    /// log2 words per block.
    pub words_log2: u32,
    /// Multicast scheme: `replicated`, `bitvector`, `broadcast-tag`,
    /// `combined`.
    pub scheme: String,
    /// Mode policy: `fixed-dw`, `fixed-gr`, or `adaptive:<window>`.
    pub policy: String,
    /// Whether the OWNER-hint bypass is on.
    pub owner_bypass: bool,
}

/// The last record of a trace: the replay-check obligations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceTrailer {
    /// Number of event records between header and trailer.
    pub events: u64,
    /// [`fnv1a64`] of the system's protocol fingerprint bytes.
    pub fingerprint: u64,
    /// Total bits charged across all network links.
    pub total_bits: u64,
    /// Every nonzero per-link charge, as `(layer, line, bits)`.
    pub links: Vec<LinkCharge>,
}

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// The configuration record.
    Header(TraceHeader),
    /// A protocol event.
    Event(ProtocolEvent),
    /// The closing check record.
    Trailer(TraceTrailer),
}

fn links_to_rows(links: &[LinkCharge]) -> Vec<Vec<u64>> {
    links
        .iter()
        .map(|l| vec![u64::from(l.layer), l.line as u64, l.bits])
        .collect()
}

fn rows_to_links(rows: &[Vec<u64>]) -> Result<Vec<LinkCharge>, String> {
    rows.iter()
        .map(|row| match row[..] {
            [layer, line, bits] => Ok(LinkCharge {
                layer: layer as u32,
                line: line as usize,
                bits,
            }),
            _ => Err("link charge row must be [layer,line,bits]".into()),
        })
        .collect()
}

/// Encodes one record as a single JSON line (no trailing newline).
pub fn encode_record(record: &TraceRecord) -> String {
    let mut w = ObjectWriter::new();
    match record {
        TraceRecord::Header(h) => {
            w.str("type", "header")
                .int("version", h.version)
                .int("n_procs", h.n_procs as u64)
                .int("sets", h.sets as u64)
                .int("ways", h.ways as u64)
                .int("words_log2", u64::from(h.words_log2))
                .str("scheme", &h.scheme)
                .str("policy", &h.policy)
                .bool("owner_bypass", h.owner_bypass);
        }
        TraceRecord::Trailer(t) => {
            w.str("type", "trailer")
                .int("events", t.events)
                .int("fingerprint", t.fingerprint)
                .int("total_bits", t.total_bits)
                .arr("links", &links_to_rows(&t.links));
        }
        TraceRecord::Event(e) => {
            w.str("type", e.kind());
            match e {
                ProtocolEvent::Read {
                    proc,
                    addr,
                    value,
                    hit,
                    cost_bits,
                    latency,
                    mode,
                }
                | ProtocolEvent::Write {
                    proc,
                    addr,
                    value,
                    hit,
                    cost_bits,
                    latency,
                    mode,
                } => {
                    w.int("proc", *proc as u64)
                        .int("addr", addr.value())
                        .int("value", *value)
                        .bool("hit", *hit)
                        .int("cost_bits", *cost_bits);
                    if let Some(l) = latency {
                        w.int("latency", *l);
                    }
                    if let Some(m) = mode {
                        w.str("mode", m.as_str());
                    }
                }
                ProtocolEvent::SetMode { proc, addr, mode } => {
                    w.int("proc", *proc as u64)
                        .int("addr", addr.value())
                        .str("mode", mode.as_str());
                }
                ProtocolEvent::Miss {
                    proc,
                    block,
                    write,
                    cold,
                } => {
                    w.int("proc", *proc as u64)
                        .int("block", block.index())
                        .bool("write", *write)
                        .bool("cold", *cold);
                }
                ProtocolEvent::ModeSwitch {
                    owner,
                    block,
                    to,
                    adaptive,
                } => {
                    w.int("owner", *owner as u64)
                        .int("block", block.index())
                        .str("to", to.as_str())
                        .bool("adaptive", *adaptive);
                }
                ProtocolEvent::OwnershipTransfer {
                    block,
                    from,
                    to,
                    handoff,
                } => {
                    w.int("block", block.index())
                        .int("from", *from as u64)
                        .int("to", *to as u64)
                        .bool("handoff", *handoff);
                }
                ProtocolEvent::Replacement {
                    proc,
                    block,
                    wrote_back,
                } => {
                    w.int("proc", *proc as u64)
                        .int("block", block.index())
                        .bool("wrote_back", *wrote_back);
                }
                ProtocolEvent::Cast {
                    from,
                    scheme,
                    payload_bits,
                    cost_bits,
                    links,
                } => {
                    w.int("from", *from as u64)
                        .str("scheme", scheme_choice_str(*scheme))
                        .int("payload_bits", *payload_bits)
                        .int("cost_bits", *cost_bits)
                        .arr("links", &links_to_rows(links));
                }
                ProtocolEvent::Issue { proc, cycle } => {
                    w.int("proc", *proc as u64).int("cycle", *cycle);
                }
                ProtocolEvent::FaultInjected {
                    label,
                    op,
                    layer,
                    line,
                    cache,
                    heal_op,
                } => {
                    w.str("label", label.as_str()).int("op", *op);
                    if let Some(l) = layer {
                        w.int("layer", u64::from(*l));
                    }
                    if let Some(l) = line {
                        w.int("line", *l as u64);
                    }
                    if let Some(c) = cache {
                        w.int("cache", *c as u64);
                    }
                    if let Some(h) = heal_op {
                        w.int("heal_op", *h);
                    }
                }
                ProtocolEvent::RetryAttempt {
                    op,
                    proc,
                    dest,
                    attempt,
                    backoff_cycles,
                } => {
                    w.int("op", *op)
                        .int("proc", *proc as u64)
                        .int("dest", *dest as u64)
                        .int("attempt", u64::from(*attempt))
                        .int("backoff_cycles", *backoff_cycles);
                }
                ProtocolEvent::Degraded {
                    op,
                    block,
                    cache,
                    heal_op,
                } => {
                    w.int("op", *op);
                    if let Some(b) = block {
                        w.int("block", b.index());
                    }
                    if let Some(c) = cache {
                        w.int("cache", *c as u64);
                    }
                    w.int("heal_op", *heal_op);
                }
                ProtocolEvent::Recovered {
                    op,
                    block,
                    cache,
                    after_ops,
                } => {
                    w.int("op", *op);
                    if let Some(b) = block {
                        w.int("block", b.index());
                    }
                    if let Some(c) = cache {
                        w.int("cache", *c as u64);
                    }
                    w.int("after_ops", *after_ops);
                }
            }
        }
    }
    w.finish()
}

struct Fields {
    map: std::collections::BTreeMap<String, JsonValue>,
}

impl Fields {
    fn int(&self, key: &str) -> Result<u64, String> {
        self.map
            .get(key)
            .and_then(JsonValue::as_int)
            .ok_or_else(|| format!("missing integer field '{key}'"))
    }

    fn opt_int(&self, key: &str) -> Option<u64> {
        self.map.get(key).and_then(JsonValue::as_int)
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        self.map
            .get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing string field '{key}'"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        self.map
            .get(key)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("missing boolean field '{key}'"))
    }

    fn links(&self, key: &str) -> Result<Vec<LinkCharge>, String> {
        rows_to_links(
            self.map
                .get(key)
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| format!("missing array field '{key}'"))?,
        )
    }

    fn mode(&self, key: &str) -> Result<TraceMode, String> {
        let s = self.str(key)?;
        TraceMode::parse(s).ok_or_else(|| format!("bad mode '{s}'"))
    }
}

/// Parses one JSON line back into a [`TraceRecord`].
pub fn parse_record(line: &str) -> Result<TraceRecord, String> {
    let f = Fields {
        map: parse_object(line)?,
    };
    let kind = f.str("type")?.to_owned();
    let event = match kind.as_str() {
        "header" => {
            return Ok(TraceRecord::Header(TraceHeader {
                version: f.int("version")?,
                n_procs: f.int("n_procs")? as usize,
                sets: f.int("sets")? as usize,
                ways: f.int("ways")? as usize,
                words_log2: f.int("words_log2")? as u32,
                scheme: f.str("scheme")?.to_owned(),
                policy: f.str("policy")?.to_owned(),
                owner_bypass: f.bool("owner_bypass")?,
            }))
        }
        "trailer" => {
            return Ok(TraceRecord::Trailer(TraceTrailer {
                events: f.int("events")?,
                fingerprint: f.int("fingerprint")?,
                total_bits: f.int("total_bits")?,
                links: f.links("links")?,
            }))
        }
        "read" | "write" => {
            let proc = f.int("proc")? as usize;
            let addr = WordAddr::new(f.int("addr")?);
            let value = f.int("value")?;
            let hit = f.bool("hit")?;
            let cost_bits = f.int("cost_bits")?;
            let latency = f.opt_int("latency");
            let mode = match f.map.get("mode").and_then(JsonValue::as_str) {
                Some(s) => Some(TraceMode::parse(s).ok_or_else(|| format!("bad mode '{s}'"))?),
                None => None,
            };
            if kind == "read" {
                ProtocolEvent::Read {
                    proc,
                    addr,
                    value,
                    hit,
                    cost_bits,
                    latency,
                    mode,
                }
            } else {
                ProtocolEvent::Write {
                    proc,
                    addr,
                    value,
                    hit,
                    cost_bits,
                    latency,
                    mode,
                }
            }
        }
        "set_mode" => ProtocolEvent::SetMode {
            proc: f.int("proc")? as usize,
            addr: WordAddr::new(f.int("addr")?),
            mode: f.mode("mode")?,
        },
        "miss" => ProtocolEvent::Miss {
            proc: f.int("proc")? as usize,
            block: BlockAddr::new(f.int("block")?),
            write: f.bool("write")?,
            cold: f.bool("cold")?,
        },
        "mode_switch" => ProtocolEvent::ModeSwitch {
            owner: f.int("owner")? as usize,
            block: BlockAddr::new(f.int("block")?),
            to: f.mode("to")?,
            adaptive: f.bool("adaptive")?,
        },
        "ownership_transfer" => ProtocolEvent::OwnershipTransfer {
            block: BlockAddr::new(f.int("block")?),
            from: f.int("from")? as usize,
            to: f.int("to")? as usize,
            handoff: f.bool("handoff")?,
        },
        "replacement" => ProtocolEvent::Replacement {
            proc: f.int("proc")? as usize,
            block: BlockAddr::new(f.int("block")?),
            wrote_back: f.bool("wrote_back")?,
        },
        "cast" => {
            let s = f.str("scheme")?;
            ProtocolEvent::Cast {
                from: f.int("from")? as usize,
                scheme: parse_scheme_choice(s).ok_or_else(|| format!("bad scheme '{s}'"))?,
                payload_bits: f.int("payload_bits")?,
                cost_bits: f.int("cost_bits")?,
                links: f.links("links")?,
            }
        }
        "issue" => ProtocolEvent::Issue {
            proc: f.int("proc")? as usize,
            cycle: f.int("cycle")?,
        },
        "fault" => {
            let s = f.str("label")?;
            ProtocolEvent::FaultInjected {
                label: FaultLabel::parse(s).ok_or_else(|| format!("bad fault label '{s}'"))?,
                op: f.int("op")?,
                layer: f.opt_int("layer").map(|v| v as u32),
                line: f.opt_int("line").map(|v| v as usize),
                cache: f.opt_int("cache").map(|v| v as usize),
                heal_op: f.opt_int("heal_op"),
            }
        }
        "retry" => ProtocolEvent::RetryAttempt {
            op: f.int("op")?,
            proc: f.int("proc")? as usize,
            dest: f.int("dest")? as usize,
            attempt: f.int("attempt")? as u32,
            backoff_cycles: f.int("backoff_cycles")?,
        },
        "degraded" => ProtocolEvent::Degraded {
            op: f.int("op")?,
            block: f.opt_int("block").map(BlockAddr::new),
            cache: f.opt_int("cache").map(|v| v as usize),
            heal_op: f.int("heal_op")?,
        },
        "recovered" => ProtocolEvent::Recovered {
            op: f.int("op")?,
            block: f.opt_int("block").map(BlockAddr::new),
            cache: f.opt_int("cache").map(|v| v as usize),
            after_ops: f.int("after_ops")?,
        },
        other => return Err(format!("unknown record type '{other}'")),
    };
    Ok(TraceRecord::Event(event))
}

/// Writes trace records to any [`Write`] sink, one JSON line each.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out` and writes the header line.
    pub fn new(mut out: W, header: &TraceHeader) -> io::Result<Self> {
        writeln!(
            out,
            "{}",
            encode_record(&TraceRecord::Header(header.clone()))
        )?;
        Ok(TraceWriter { out, events: 0 })
    }

    /// Writes one event line.
    pub fn event(&mut self, event: &ProtocolEvent) -> io::Result<()> {
        writeln!(
            self.out,
            "{}",
            encode_record(&TraceRecord::Event(event.clone()))
        )?;
        self.events += 1;
        Ok(())
    }

    /// Number of event lines written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Writes the trailer line and returns the underlying sink.
    ///
    /// `trailer.events` is overwritten with the actual count written.
    pub fn finish(mut self, mut trailer: TraceTrailer) -> io::Result<W> {
        trailer.events = self.events;
        writeln!(
            self.out,
            "{}",
            encode_record(&TraceRecord::Trailer(trailer))
        )?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads trace records from any [`BufRead`] source, skipping blank lines.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    lines: std::io::Lines<R>,
    line_no: usize,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps `input`.
    pub fn new(input: R) -> Self {
        TraceReader {
            lines: input.lines(),
            line_no: 0,
        }
    }

    /// Reads the next record, or `None` at end of input.
    #[allow(clippy::should_implement_trait)] // fallible next; Iterator is derived below
    pub fn next(&mut self) -> Option<Result<TraceRecord, String>> {
        loop {
            self.line_no += 1;
            match self.lines.next()? {
                Err(e) => return Some(Err(format!("line {}: {e}", self.line_no))),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => {
                    return Some(
                        parse_record(&line).map_err(|e| format!("line {}: {e}", self.line_no)),
                    )
                }
            }
        }
    }

    /// Reads the whole trace, checking the shape: one header first, events,
    /// one trailer last, and a trailer event count matching the events read.
    pub fn read_all(mut self) -> Result<(TraceHeader, Vec<ProtocolEvent>, TraceTrailer), String> {
        let header = match self.next().ok_or("empty trace")?? {
            TraceRecord::Header(h) => h,
            other => return Err(format!("first record must be a header, got {other:?}")),
        };
        if header.version != TRACE_VERSION {
            return Err(format!(
                "unsupported trace version {} (expected {TRACE_VERSION})",
                header.version
            ));
        }
        let mut events = Vec::new();
        let mut trailer = None;
        while let Some(record) = self.next() {
            match record? {
                TraceRecord::Header(_) => return Err("duplicate header record".into()),
                TraceRecord::Event(e) if trailer.is_none() => events.push(e),
                TraceRecord::Event(_) => return Err("event record after trailer".into()),
                TraceRecord::Trailer(t) if trailer.is_none() => trailer = Some(t),
                TraceRecord::Trailer(_) => return Err("duplicate trailer record".into()),
            }
        }
        let trailer = trailer.ok_or("trace has no trailer record")?;
        if trailer.events != events.len() as u64 {
            return Err(format!(
                "trailer says {} events but trace has {}",
                trailer.events,
                events.len()
            ));
        }
        Ok((header, events, trailer))
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, String>;

    fn next(&mut self) -> Option<Self::Item> {
        TraceReader::next(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_omeganet::SchemeChoice;

    fn header() -> TraceHeader {
        TraceHeader {
            version: TRACE_VERSION,
            n_procs: 4,
            sets: 2,
            ways: 2,
            words_log2: 2,
            scheme: "combined".into(),
            policy: "adaptive:0.25".into(),
            owner_bypass: true,
        }
    }

    fn sample_events() -> Vec<ProtocolEvent> {
        vec![
            ProtocolEvent::Read {
                proc: 1,
                addr: WordAddr::new(64),
                value: 7,
                hit: false,
                cost_bits: 120,
                latency: Some(14),
                mode: Some(TraceMode::GlobalRead),
            },
            ProtocolEvent::Write {
                proc: 2,
                addr: WordAddr::new(64),
                value: 9,
                hit: true,
                cost_bits: 96,
                latency: None,
                mode: None,
            },
            ProtocolEvent::SetMode {
                proc: 0,
                addr: WordAddr::new(0),
                mode: TraceMode::DistributedWrite,
            },
            ProtocolEvent::Miss {
                proc: 1,
                block: BlockAddr::new(4),
                write: false,
                cold: true,
            },
            ProtocolEvent::ModeSwitch {
                owner: 2,
                block: BlockAddr::new(4),
                to: TraceMode::DistributedWrite,
                adaptive: true,
            },
            ProtocolEvent::OwnershipTransfer {
                block: BlockAddr::new(4),
                from: 1,
                to: 2,
                handoff: false,
            },
            ProtocolEvent::Replacement {
                proc: 3,
                block: BlockAddr::new(9),
                wrote_back: true,
            },
            ProtocolEvent::Cast {
                from: 2,
                scheme: SchemeChoice::BroadcastTag,
                payload_bits: 32,
                cost_bits: 144,
                links: vec![
                    LinkCharge {
                        layer: 0,
                        line: 2,
                        bits: 48,
                    },
                    LinkCharge {
                        layer: 1,
                        line: 0,
                        bits: 96,
                    },
                ],
            },
            ProtocolEvent::Issue { proc: 0, cycle: 17 },
            ProtocolEvent::FaultInjected {
                label: FaultLabel::LinkDown,
                op: 12,
                layer: Some(1),
                line: Some(3),
                cache: None,
                heal_op: Some(40),
            },
            ProtocolEvent::FaultInjected {
                label: FaultLabel::MsgDrop,
                op: 13,
                layer: None,
                line: None,
                cache: None,
                heal_op: None,
            },
            ProtocolEvent::FaultInjected {
                label: FaultLabel::BitFlip,
                op: 14,
                layer: None,
                line: None,
                cache: Some(2),
                heal_op: None,
            },
            ProtocolEvent::RetryAttempt {
                op: 15,
                proc: 1,
                dest: 6,
                attempt: 2,
                backoff_cycles: 32,
            },
            ProtocolEvent::Degraded {
                op: 16,
                block: Some(BlockAddr::new(9)),
                cache: None,
                heal_op: 40,
            },
            ProtocolEvent::Degraded {
                op: 17,
                block: None,
                cache: Some(3),
                heal_op: 44,
            },
            ProtocolEvent::Recovered {
                op: 41,
                block: Some(BlockAddr::new(9)),
                cache: None,
                after_ops: 25,
            },
        ]
    }

    #[test]
    fn every_event_variant_roundtrips() {
        for e in sample_events() {
            let line = encode_record(&TraceRecord::Event(e.clone()));
            let parsed = parse_record(&line).unwrap();
            assert_eq!(parsed, TraceRecord::Event(e), "line: {line}");
        }
    }

    #[test]
    fn full_trace_roundtrips_through_writer_and_reader() {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        for e in sample_events() {
            w.event(&e).unwrap();
        }
        let trailer = TraceTrailer {
            events: 0, // overwritten by finish()
            fingerprint: fnv1a64(b"state"),
            total_bits: 360,
            links: vec![LinkCharge {
                layer: 2,
                line: 1,
                bits: 360,
            }],
        };
        let bytes = w.finish(trailer.clone()).unwrap();

        let reader = TraceReader::new(&bytes[..]);
        let (h, events, t) = reader.read_all().unwrap();
        assert_eq!(h, header());
        assert_eq!(events, sample_events());
        assert_eq!(t.events, events.len() as u64);
        assert_eq!(t.fingerprint, trailer.fingerprint);
        assert_eq!(t.links, trailer.links);
    }

    #[test]
    fn read_all_rejects_malformed_traces() {
        // No header.
        let body = encode_record(&TraceRecord::Event(ProtocolEvent::Issue {
            proc: 0,
            cycle: 0,
        }));
        assert!(TraceReader::new(body.as_bytes()).read_all().is_err());

        // No trailer.
        let head = encode_record(&TraceRecord::Header(header()));
        assert!(TraceReader::new(head.as_bytes()).read_all().is_err());

        // Wrong event count in trailer.
        let mut text = head.clone();
        text.push('\n');
        text.push_str(&body);
        text.push('\n');
        text.push_str(&encode_record(&TraceRecord::Trailer(TraceTrailer {
            events: 5,
            fingerprint: 0,
            total_bits: 0,
            links: vec![],
        })));
        assert!(TraceReader::new(text.as_bytes()).read_all().is_err());

        // Bad version.
        let mut bad = header();
        bad.version = 99;
        let text = encode_record(&TraceRecord::Header(bad));
        assert!(TraceReader::new(text.as_bytes()).read_all().is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
