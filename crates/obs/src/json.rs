//! A tiny JSON subset codec, just big enough for the trace format.
//!
//! The hermetic build bans external dependencies, so the JSONL sink cannot
//! use a real JSON library. Trace records only ever need a *flat* object
//! whose values are unsigned integers, strings, booleans, or arrays of
//! integer arrays (the per-link charge lists) — this module writes and
//! parses exactly that subset and nothing more.

use std::collections::BTreeMap;

/// A value in a trace record object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// An unsigned integer.
    Int(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array of integer arrays, e.g. `[[0,3,96],[1,1,96]]`.
    Arr(Vec<Vec<u64>>),
}

impl JsonValue {
    /// The integer payload, if this is an [`JsonValue::Int`].
    pub fn as_int(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`JsonValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`JsonValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an [`JsonValue::Arr`].
    pub fn as_arr(&self) -> Option<&[Vec<u64>]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An incremental writer for one flat JSON object.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
}

impl ObjectWriter {
    /// Starts an object.
    pub fn new() -> Self {
        ObjectWriter { buf: "{".into() }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Writes an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Writes a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.buf, v);
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes an array-of-integer-arrays field.
    pub fn arr(&mut self, key: &str, rows: &[Vec<u64>]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('[');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(&v.to_string());
            }
            self.buf.push(']');
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} in trace record",
                b as char, self.pos
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string in trace record")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape in trace record")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape code point")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Re-decode multi-byte UTF-8 starting at this byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn parse_int(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    fn parse_int_row(&mut self) -> Result<Vec<u64>, String> {
        self.expect(b'[')?;
        let mut row = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(row);
        }
        loop {
            row.push(self.parse_int()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(row);
                }
                _ => return Err("expected ',' or ']' in integer array".into()),
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek().ok_or("unexpected end of trace record")? {
            b'"' => Ok(JsonValue::Str(self.parse_string()?)),
            b'0'..=b'9' => Ok(JsonValue::Int(self.parse_int()?)),
            b't' => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            b'f' => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            b'[' => {
                self.expect(b'[')?;
                let mut rows = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(rows));
                }
                loop {
                    rows.push(self.parse_int_row()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(rows));
                        }
                        _ => return Err("expected ',' or ']' in array".into()),
                    }
                }
            }
            other => Err(format!(
                "unsupported JSON value starting '{}'",
                other as char
            )),
        }
    }
}

/// Parses one flat trace-record object into a key → value map.
///
/// Supports exactly the subset [`ObjectWriter`] emits; anything else (nested
/// objects, floats, nulls) is an error.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    if p.peek() == Some(b'}') {
        return Ok(map);
    }
    loop {
        let key = p.parse_string()?;
        p.expect(b':')?;
        let value = p.parse_value()?;
        map.insert(key, value);
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                p.skip_ws();
                if p.pos != p.bytes.len() {
                    return Err("trailing bytes after trace record".into());
                }
                return Ok(map);
            }
            _ => return Err("expected ',' or '}' in trace record".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_roundtrip() {
        let mut w = ObjectWriter::new();
        w.str("type", "cast")
            .int("bits", 96)
            .bool("hit", true)
            .arr("links", &[vec![0, 3, 48], vec![1, 1, 48]]);
        let line = w.finish();
        assert_eq!(
            line,
            r#"{"type":"cast","bits":96,"hit":true,"links":[[0,3,48],[1,1,48]]}"#
        );
        let map = parse_object(&line).unwrap();
        assert_eq!(map["type"].as_str(), Some("cast"));
        assert_eq!(map["bits"].as_int(), Some(96));
        assert_eq!(map["hit"].as_bool(), Some(true));
        assert_eq!(
            map["links"].as_arr(),
            Some(&[vec![0, 3, 48], vec![1, 1, 48]][..])
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}ü→";
        let mut w = ObjectWriter::new();
        w.str("s", nasty);
        let line = w.finish();
        let map = parse_object(&line).unwrap();
        assert_eq!(map["s"].as_str(), Some(nasty));
    }

    #[test]
    fn empty_object_and_empty_array() {
        assert!(parse_object("{}").unwrap().is_empty());
        let map = parse_object(r#"{"links":[]}"#).unwrap();
        assert_eq!(map["links"].as_arr(), Some(&[][..]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_object(r#"{"a":{"nested":1}}"#).is_err());
        assert!(parse_object(r#"{"a":1.5}"#).is_err());
    }
}
