//! Calibration probe behind `ANALYTIC_BAND_LO`/`ANALYTIC_BAND_HI` in
//! `src/pairs.rs`: prints measured-vs-predicted bits/ref ratios for both
//! fixed modes across an N × n × w × scheme grid, rebuilding the
//! sim-vs-analytic pair's prediction math. Observed ratios fall in
//! [0.92, 1.04]; the pair's band is set at [0.8, 1.25].
//!
//! ```text
//! cargo run --release -p tmc-conformance --example calib
//! ```

use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::MsgSizing;
use tmc_omeganet::{DestSet, Omega, SchemeKind};
use tmc_simcore::SimRng;
use tmc_workload::{Op, Placement, SharedBlockWorkload};

fn main() {
    let sizing = MsgSizing::default();
    for &big_n in &[4usize, 8, 16] {
        for &n in &[2usize, 4, 8] {
            if n > big_n {
                continue;
            }
            for &w in &[0.05f64, 0.1, 0.2, 0.3, 0.5, 0.7] {
                for &scheme in &[SchemeKind::Replicated, SchemeKind::Combined] {
                    let warmup = 1000;
                    let refs = 4000;
                    let trace = SharedBlockWorkload::new(n, 2 * n as u64, w)
                        .references(warmup + refs)
                        .placement(Placement::Adjacent { base: 0 })
                        .generate(big_n, &mut SimRng::seed_from(42));
                    let measure = |mode: Mode| -> f64 {
                        let cfg = SystemConfig::new(big_n)
                            .multicast(scheme)
                            .mode_policy(ModePolicy::Fixed(mode));
                        let mut sys = System::new(cfg).unwrap();
                        let mut stamp = 1u64;
                        let mut base = 0u64;
                        for (i, r) in trace.iter().enumerate() {
                            if i == warmup {
                                base = sys.traffic().total_bits();
                            }
                            match r.op {
                                Op::Read => {
                                    sys.read(r.proc, r.addr).unwrap();
                                }
                                Op::Write => {
                                    sys.write(r.proc, r.addr, stamp).unwrap();
                                    stamp += 1;
                                }
                            }
                        }
                        (sys.traffic().total_bits() - base) as f64 / refs as f64
                    };
                    let mdw = measure(Mode::DistributedWrite);
                    let mgr = measure(Mode::GlobalRead);
                    let net = Omega::with_ports(big_n).unwrap();
                    let mut cc4_sum = 0u64;
                    for writer in 0..n {
                        let dests =
                            DestSet::from_ports(big_n, (0..n).filter(|&p| p != writer)).unwrap();
                        cc4_sum += net
                            .multicast_cost(scheme, &dests, sizing.update_bits())
                            .unwrap();
                    }
                    let cc4 = cc4_sum as f64 / n as f64;
                    let pdw = w * cc4;
                    let single = |bits: u64| -> f64 {
                        let dests = DestSet::from_ports(big_n, [1usize]).unwrap();
                        net.multicast_cost(SchemeKind::Replicated, &dests, bits)
                            .unwrap() as f64
                    };
                    let rr = single(sizing.request_bits()) + single(sizing.datum_bits());
                    let pgr = (1.0 - w) * ((n - 1) as f64 / n as f64) * rr;
                    println!(
                        "N={big_n:2} n={n} w={w:.2} {scheme:?}: DW {mdw:8.1}/{pdw:8.1} = {:5.2}  \
                         GR {mgr:8.1}/{pgr:8.1} = {:5.2}",
                        mdw / pdw.max(0.001),
                        mgr / pgr.max(0.001)
                    );
                }
            }
        }
    }
}
