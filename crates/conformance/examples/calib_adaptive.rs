//! Calibration probe behind `ADAPTIVE_FACTOR`/`ADAPTIVE_SLACK_BITS` in
//! `src/pairs.rs`: replays generated adaptive cases against both fixed
//! modes and prints the worst adaptive/best-fixed traffic ratio and the
//! largest absolute excess over `2 × best`. Observed over 4000 seeds:
//! worst ratio ≈ 4.3, max excess over 2× ≈ 20k bits — hence the pair's
//! `2.0 × best + 64_000` bound.
//!
//! ```text
//! cargo run --release -p tmc-conformance --example calib_adaptive
//! ```

use tmc_conformance::gen::generate_case;
use tmc_core::{Mode, ModePolicy};

fn main() {
    let mut worst = 0.0f64;
    let mut worst_seed = 0;
    let mut worst_abs = 0u64;
    let mut worst_abs_seed = 0u64;
    let mut max_excess = 0u64;
    for seed in 0..4000u64 {
        let case = generate_case(seed);
        if !matches!(case.policy, ModePolicy::Adaptive { .. }) {
            continue;
        }
        let run = |policy: ModePolicy| {
            tmc_conformance::outcome::run_serial(case.config_with_policy(policy), &case.ops, false)
                .unwrap()
                .total_bits
        };
        let a = run(case.policy);
        let best = run(ModePolicy::Fixed(Mode::DistributedWrite))
            .min(run(ModePolicy::Fixed(Mode::GlobalRead)));
        let ratio = a as f64 / best.max(1) as f64;
        let excess = a.saturating_sub(2 * best);
        if excess > max_excess {
            max_excess = excess;
            worst_abs_seed = seed;
        }
        if ratio > worst {
            worst = ratio;
            worst_seed = seed;
            worst_abs = a.saturating_sub(best);
        }
    }
    println!(
        "worst ratio: {worst:.3} (seed {worst_seed}, excess-at-worst {worst_abs}); \
         max excess over 2x best: {max_excess} bits (seed {worst_abs_seed})"
    );
}
