//! Automatic case minimization.
//!
//! Given a case that trips a pair, [`shrink`] searches for the smallest
//! variant that still trips the *same* pair: contiguous chunk removal
//! (ddmin-style, halves down to single ops), dropping every op that
//! touches one block, dropping every op issued by one processor, prefix
//! truncation, and (for the analytic pair) halving the probe's reference
//! counts. The search is greedy and bounded — at most
//! [`MAX_CHECKS`] predicate evaluations — so a pathological case cannot
//! hang the fuzzer.

use tmc_bench::shardsim::ShardOp;

use crate::case::CaseSpec;
use crate::pairs::{check_pair, Pair};

/// Hard cap on predicate evaluations per shrink.
pub const MAX_CHECKS: usize = 1500;

/// Minimizes `case` for `pair`. Returns the smallest failing variant
/// found (the input itself if nothing smaller still fails).
pub fn shrink(case: &CaseSpec, pair: Pair) -> CaseSpec {
    let budget = std::cell::Cell::new(MAX_CHECKS);
    let mut fails = |c: &CaseSpec| -> bool {
        if budget.get() == 0 {
            return false;
        }
        budget.set(budget.get() - 1);
        check_pair(c, pair).is_err()
    };

    let mut best = case.clone();
    if pair == Pair::SimVsAnalytic {
        shrink_probe(&mut best, &mut fails);
    }
    loop {
        let before = best.ops.len();
        shrink_chunks(&mut best, &mut fails);
        shrink_by_key(&mut best, &mut fails, |c, op| {
            c.config().spec.block_of(op.addr()).index()
        });
        shrink_by_key(&mut best, &mut fails, |_, op| match *op {
            ShardOp::Read { proc, .. }
            | ShardOp::Write { proc, .. }
            | ShardOp::SetMode { proc, .. } => proc as u64,
        });
        if best.ops.len() >= before || budget.get() == 0 {
            break;
        }
    }
    best
}

/// ddmin-lite: try removing contiguous chunks, halving the chunk size.
fn shrink_chunks(best: &mut CaseSpec, fails: &mut impl FnMut(&CaseSpec) -> bool) {
    let mut chunk = (best.ops.len() / 2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < best.ops.len() {
            let end = (start + chunk).min(best.ops.len());
            let mut candidate = best.clone();
            candidate.ops.drain(start..end);
            if !candidate.ops.is_empty() && fails(&candidate) {
                *best = candidate;
                // Retry the same start: the window now holds new ops.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
}

/// Drops all ops sharing one key (block or proc) at a time.
fn shrink_by_key(
    best: &mut CaseSpec,
    fails: &mut impl FnMut(&CaseSpec) -> bool,
    key: impl Fn(&CaseSpec, &ShardOp) -> u64,
) {
    let mut keys: Vec<u64> = best.ops.iter().map(|op| key(best, op)).collect();
    keys.sort_unstable();
    keys.dedup();
    for k in keys {
        let mut candidate = best.clone();
        candidate.ops.retain(|op| key(best, op) != k);
        if !candidate.ops.is_empty() && candidate.ops.len() < best.ops.len() && fails(&candidate) {
            *best = candidate;
        }
    }
}

/// Halves the analytic probe's measured and warmup references.
fn shrink_probe(best: &mut CaseSpec, fails: &mut impl FnMut(&CaseSpec) -> bool) {
    while let Some(p) = best.analytic {
        if p.refs < 200 {
            break;
        }
        let mut candidate = best.clone();
        if let Some(q) = candidate.analytic.as_mut() {
            q.refs /= 2;
            q.warmup /= 2;
        }
        if fails(&candidate) {
            *best = candidate;
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;
    use tmc_memsys::WordAddr;

    // A synthetic "divergence": the shrinking machinery is exercised with
    // a plain predicate by reimplementing the loop on top of it. Here we
    // check the helpers directly.

    #[test]
    fn chunk_removal_minimizes_to_the_culprit() {
        let mut case = generate_case(3);
        // Culprit: the single write of value 77.
        case.ops = (0..40)
            .map(|i| ShardOp::Write {
                proc: 0,
                addr: WordAddr::new(i % 7),
                value: if i == 23 { 77 } else { i },
            })
            .collect();
        let mut fails = |c: &CaseSpec| {
            c.ops
                .iter()
                .any(|op| matches!(op, ShardOp::Write { value: 77, .. }))
        };
        shrink_chunks(&mut case, &mut fails);
        assert_eq!(case.ops.len(), 1, "minimized to the culprit op");
        assert!(fails(&case));
    }

    #[test]
    fn block_dropping_removes_innocent_blocks() {
        let mut case = generate_case(4);
        case.ops = vec![
            ShardOp::Write {
                proc: 0,
                addr: WordAddr::new(0),
                value: 1,
            },
            ShardOp::Write {
                proc: 1,
                addr: WordAddr::new(64),
                value: 2,
            },
            ShardOp::Read {
                proc: 1,
                addr: WordAddr::new(0),
            },
        ];
        let mut fails = |c: &CaseSpec| {
            c.ops
                .iter()
                .any(|op| op.addr() == WordAddr::new(0) && matches!(op, ShardOp::Read { .. }))
        };
        shrink_by_key(&mut case, &mut fails, |c, op| {
            c.config().spec.block_of(op.addr()).index()
        });
        assert!(case.ops.iter().all(|op| op.addr() != WordAddr::new(64)));
    }

    #[test]
    fn shrink_keeps_a_failing_case_failing() {
        // End-to-end against a real pair: fabricate a case that fails
        // oracle-self is impossible (the engine is correct), so instead
        // assert shrink() is identity on a passing case.
        let case = generate_case(5);
        let shrunk = shrink(&case, Pair::OracleSelf);
        assert_eq!(shrunk, case, "passing cases shrink to themselves");
    }
}
