//! Deterministic case generation: one `u64` seed → one [`CaseSpec`].
//!
//! Every draw flows through the in-tree [`SimRng`], so the same seed
//! always yields the same case on every host. Generation is biased toward
//! the corners where coherence bugs hide: tiny caches (down to a single
//! direct-mapped set, forcing constant replacement and ownership
//! handoff), all four multicast schemes, adaptive windows small enough to
//! storm mode switches, and scripts salted with explicit §2.2 mode
//! directives mid-stream.

use tmc_bench::shardsim::{script_from_trace, ShardOp};
use tmc_core::{Mode, ModePolicy};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;
use tmc_workload::{
    HotSpotWorkload, MigratingWorkload, MultiTenantZipfWorkload, Placement, PrivateWorkload,
    SharedBlockWorkload, StencilWorkload, Trace,
};

use crate::case::{AnalyticProbe, CaseSpec};

/// Distinguishes the generator's rng stream from other users of the seed.
const GEN_STREAM: u64 = 0xC0FF_EE00;

/// Which corner of the configuration space to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GenProfile {
    /// The historical distribution: 2–16 caches, small block counts.
    /// `generate_case` keeps producing exactly these cases, so existing
    /// corpus seeds stay meaningful.
    #[default]
    Classic,
    /// Big machines: 64–1024 caches and footprints up to ~2^17 blocks,
    /// putting `DestSet` in its small-list/bitmap layouts and scattering
    /// state across many store pages. Enabled with `fuzz_conformance
    /// --bign`.
    BigN,
}

/// Generates the conformance case for `seed` under the classic profile.
pub fn generate_case(seed: u64) -> CaseSpec {
    generate_case_with(seed, GenProfile::Classic)
}

/// Generates the conformance case for `seed` under `profile`.
pub fn generate_case_with(seed: u64, profile: GenProfile) -> CaseSpec {
    let mut rng = SimRng::seed_from(seed).fork(GEN_STREAM);

    let n_caches = match profile {
        GenProfile::Classic => *rng.choose(&[2usize, 4, 8, 16]).unwrap(),
        GenProfile::BigN => *rng.choose(&[64usize, 128, 256, 1024]).unwrap(),
    };
    let sets = *rng.choose(&[1usize, 2, 4, 8]).unwrap();
    let ways = *rng.choose(&[1usize, 2, 4]).unwrap();
    let words_log2 = rng.gen_range(0u32..4);
    let scheme = *rng
        .choose(&[
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
            SchemeKind::Combined,
        ])
        .unwrap();
    let policy = match rng.gen_range(0u32..4) {
        0 => ModePolicy::Fixed(Mode::DistributedWrite),
        1 => ModePolicy::Fixed(Mode::GlobalRead),
        // Bias toward adaptive: it is the paper's contribution and the
        // richest source of cross-engine races.
        _ => ModePolicy::Adaptive {
            window: rng.gen_range(4u32..33),
        },
    };
    let owner_bypass = rng.gen_bool(0.8);
    let shards = *rng.choose(&[2usize, 4, 8]).unwrap();

    let trace = random_trace(&mut rng, n_caches, profile);
    let mut ops = script_from_trace(&trace);
    sprinkle_mode_directives(&mut rng, &mut ops, n_caches);

    let analytic = match policy {
        ModePolicy::Fixed(_) if owner_bypass => Some(AnalyticProbe {
            n_tasks: *rng.choose(&[2usize, 4, 8]).unwrap().min(&n_caches),
            w: *rng.choose(&[0.05f64, 0.1, 0.2, 0.3, 0.5, 0.7]).unwrap(),
            refs: 4000,
            warmup: 1000,
        }),
        _ => None,
    };

    CaseSpec {
        seed,
        n_caches,
        sets,
        ways,
        words_log2,
        scheme,
        policy,
        owner_bypass,
        shards,
        fault_seed: rng.next_u64(),
        analytic,
        ops,
    }
}

/// Draws one of the workload families and generates a trace. The big-N
/// profile widens block counts (large-M footprints) and adds the
/// multi-tenant Zipfian family to the rotation.
fn random_trace(rng: &mut SimRng, n_procs: usize, profile: GenProfile) -> Trace {
    let refs = rng.gen_range(40usize..400);
    let n_tasks = rng.gen_range(2usize..=n_procs.max(2)).min(n_procs);
    let placement = Placement::Adjacent { base: 0 };
    let mut wl_rng = rng.fork(1);
    if profile == GenProfile::BigN && rng.gen_bool(0.4) {
        let tenants = rng.gen_range(8u64..65);
        let blocks_per_tenant = rng.gen_range(64u64..2049);
        return MultiTenantZipfWorkload::new(
            n_tasks,
            1 << rng.gen_range(16u32..21),
            rng.gen_unit(),
        )
        .tenants(tenants)
        .blocks_per_tenant(blocks_per_tenant)
        .references(refs)
        .placement(placement)
        .generate(n_procs, &mut wl_rng);
    }
    let m_scale = match profile {
        GenProfile::Classic => 1,
        // Spread the same families over thousands of blocks so page
        // boundaries and sparse directories get crossed constantly.
        GenProfile::BigN => rng.gen_range(64u64..1025),
    };
    match rng.gen_range(0u32..5) {
        0 => SharedBlockWorkload::new(n_tasks, m_scale * rng.gen_range(1u64..9), rng.gen_unit())
            .references(refs)
            .placement(placement)
            .generate(n_procs, &mut wl_rng),
        1 => HotSpotWorkload::new(n_tasks, 0.6, rng.gen_unit())
            .references(refs)
            .placement(placement)
            .generate(n_procs, &mut wl_rng),
        2 => MigratingWorkload::new(
            n_tasks,
            m_scale * rng.gen_range(1u64..5),
            rng.gen_unit(),
            rng.gen_range(3usize..17),
        )
        .references(refs)
        .placement(placement)
        .generate(n_procs, &mut wl_rng),
        3 => PrivateWorkload::new(n_tasks, m_scale * rng.gen_range(1u64..4), rng.gen_unit())
            .references(refs)
            .placement(placement)
            .generate(n_procs, &mut wl_rng),
        _ => StencilWorkload::new(n_tasks, rng.gen_range(1usize..3), rng.gen_range(2usize..6))
            .placement(placement)
            .generate(n_procs, &mut wl_rng),
    }
}

/// Inserts explicit mode directives at random points of the script.
fn sprinkle_mode_directives(rng: &mut SimRng, ops: &mut Vec<ShardOp>, n_procs: usize) {
    if ops.is_empty() || !rng.gen_bool(0.7) {
        return;
    }
    let n = 1 + ops.len() / 24;
    for _ in 0..n {
        let at = rng.gen_range(0..ops.len());
        let addr = ops[rng.gen_range(0..ops.len())].addr();
        let proc = rng.gen_range(0..n_procs);
        let mode = if rng.gen_bool(0.5) {
            Mode::DistributedWrite
        } else {
            Mode::GlobalRead
        };
        ops.insert(at, ShardOp::SetMode { proc, addr, mode });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(42);
        let b = generate_case(42);
        assert_eq!(a, b);
        assert!(!a.ops.is_empty());
    }

    #[test]
    fn distinct_seeds_vary_the_config() {
        let cases: Vec<CaseSpec> = (0..40).map(generate_case).collect();
        assert!(cases.windows(2).any(|w| w[0].n_caches != w[1].n_caches));
        assert!(cases.windows(2).any(|w| w[0].scheme != w[1].scheme));
        assert!(cases.iter().any(|c| c.sets == 1 && c.ways == 1));
        assert!(cases
            .iter()
            .any(|c| matches!(c.policy, ModePolicy::Adaptive { .. })));
        assert!(cases.iter().any(|c| c.analytic.is_some()));
    }

    #[test]
    fn big_n_profile_is_deterministic_and_big() {
        let a = generate_case_with(7, GenProfile::BigN);
        let b = generate_case_with(7, GenProfile::BigN);
        assert_eq!(a, b);
        let cases: Vec<CaseSpec> = (0..24)
            .map(|s| generate_case_with(s, GenProfile::BigN))
            .collect();
        assert!(cases.iter().all(|c| c.n_caches >= 64));
        assert!(cases.iter().any(|c| c.n_caches >= 256));
        // Classic cases are untouched by the new profile plumbing.
        assert!((0..24).map(generate_case).all(|c| c.n_caches <= 16));
    }

    #[test]
    fn big_n_procs_stay_in_range() {
        for seed in 0..12 {
            let c = generate_case_with(seed, GenProfile::BigN);
            for op in &c.ops {
                let proc = match *op {
                    ShardOp::Read { proc, .. }
                    | ShardOp::Write { proc, .. }
                    | ShardOp::SetMode { proc, .. } => proc,
                };
                assert!(proc < c.n_caches, "seed {seed}: proc {proc} out of range");
            }
        }
    }

    #[test]
    fn generated_procs_stay_in_range() {
        for seed in 0..60 {
            let c = generate_case(seed);
            for op in &c.ops {
                let proc = match *op {
                    ShardOp::Read { proc, .. }
                    | ShardOp::Write { proc, .. }
                    | ShardOp::SetMode { proc, .. } => proc,
                };
                assert!(proc < c.n_caches, "seed {seed}: proc {proc} out of range");
            }
        }
    }
}
