//! Differential conformance fuzzer CLI.
//!
//! ```text
//! fuzz_conformance --smoke                  # fixed seeds, CI-sized budget
//! fuzz_conformance --budget 5000 --seed 7   # a longer hunt
//! fuzz_conformance --corpus conformance/corpus   # replay reproducers
//! fuzz_conformance --smoke --corpus-out /tmp/corpus  # also save findings
//! ```
//!
//! Exit status is nonzero when any divergence (or corpus failure) is
//! found. On divergence the case is shrunk to a minimal reproducer,
//! printed as both `.tmcs` scenario text and a self-contained `#[test]`
//! snippet,
//! and saved when `--corpus-out` is given.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use tmc_conformance::gen::{generate_case_with, GenProfile};
use tmc_conformance::pairs::Pair;
use tmc_conformance::{check_pair, corpus, shrink::shrink};

/// Default seed for reproducible smoke runs.
const SMOKE_SEED: u64 = 1;
/// Smoke budget: comfortably above the CI floor of 200 cases.
const SMOKE_BUDGET: usize = 240;

struct Args {
    smoke: bool,
    budget: Option<usize>,
    seed: u64,
    profile: GenProfile,
    corpus: Option<PathBuf>,
    corpus_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        budget: None,
        seed: SMOKE_SEED,
        profile: GenProfile::Classic,
        corpus: None,
        corpus_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| "--budget wants a number".to_string())?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants a number".to_string())?
            }
            "--bign" => args.profile = GenProfile::BigN,
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--corpus-out" => args.corpus_out = Some(PathBuf::from(value("--corpus-out")?)),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_conformance [--smoke] [--budget N] [--seed S] [--bign] \
                     [--corpus DIR] [--corpus-out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !args.smoke && args.budget.is_none() && args.corpus.is_none() {
        return Err("pick a mode: --smoke, --budget N, or --corpus DIR".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_conformance: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;

    if let Some(dir) = &args.corpus {
        match corpus::run_dir(dir) {
            Ok(report) => {
                println!(
                    "corpus: {} reproducer(s) replayed from {}",
                    report.entries,
                    dir.display()
                );
                for (path, d) in &report.failures {
                    failed = true;
                    println!("  REGRESSION {}: {d}", path.display());
                }
                if report.failures.is_empty() && report.entries > 0 {
                    println!("  all reproducers hold");
                }
            }
            Err(e) => {
                eprintln!("corpus: {e}");
                failed = true;
            }
        }
    }

    if args.smoke || args.budget.is_some() {
        let budget = args.budget.unwrap_or(SMOKE_BUDGET);
        failed |= fuzz(args.seed, budget, args.profile, args.corpus_out.as_deref());
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs `budget` generated cases; returns whether any diverged.
fn fuzz(
    seed0: u64,
    budget: usize,
    profile: GenProfile,
    corpus_out: Option<&std::path::Path>,
) -> bool {
    let started = Instant::now();
    let mut applied: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut divergences = 0usize;

    for i in 0..budget {
        let seed = seed0.wrapping_add(i as u64);
        let case = generate_case_with(seed, profile);
        for pair in Pair::all() {
            if !pair.applies(&case) {
                continue;
            }
            *applied.entry(pair.name()).or_default() += 1;
            if let Err(d) = check_pair(&case, pair) {
                divergences += 1;
                println!("== DIVERGENCE (seed {seed}) ==");
                println!("{d}");
                let minimized = shrink(&case, pair);
                println!(
                    "-- minimized: {} op(s) (from {}) --",
                    minimized.ops.len(),
                    case.ops.len()
                );
                print!("{}", corpus::entry_text(&minimized, pair, ""));
                println!("-- #[test] snippet --");
                print!("{}", minimized.rust_snippet(pair.name()));
                if let Some(dir) = corpus_out {
                    match corpus::save(dir, &minimized, pair, "auto-minimized by fuzz run") {
                        Ok(p) => println!("-- saved {}", p.display()),
                        Err(e) => eprintln!("-- could not save reproducer: {e}"),
                    }
                }
            }
        }
        if (i + 1) % 50 == 0 {
            println!(
                "... {} / {budget} cases, {divergences} divergence(s), {:.1}s",
                i + 1,
                started.elapsed().as_secs_f64()
            );
        }
    }

    println!(
        "fuzzed {budget} case(s) from seed {seed0} in {:.1}s — {} divergence(s)",
        started.elapsed().as_secs_f64(),
        divergences
    );
    println!("pair coverage:");
    for (name, n) in &applied {
        println!("  {name:>20}: {n} case(s)");
    }
    let pairs_exercised = applied.len();
    if pairs_exercised < 5 {
        println!("WARNING: only {pairs_exercised} engine pairs exercised (want >= 5)");
        return true;
    }
    divergences > 0
}
