//! Corpus persistence and regression replay.
//!
//! Every real bug the fuzzer has found lives on under
//! `conformance/corpus/` as a minimized `.case` file: the case text (see
//! [`CaseSpec::encode`]) plus a `pair = <name>` line recording which
//! engine pair it tripped and a free-form `note = ...` rationale. The
//! regression runner replays every file and requires every pair to hold —
//! a fixed bug that regresses fails CI with its original minimal
//! reproducer.

use std::fs;
use std::path::{Path, PathBuf};

use crate::case::CaseSpec;
use crate::outcome::Divergence;
use crate::pairs::{check_case, check_pair, Pair};

/// A corpus entry: the case plus its recorded metadata.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Path the entry was loaded from.
    pub path: PathBuf,
    /// The case itself.
    pub case: CaseSpec,
    /// The pair the original divergence tripped, when recorded.
    pub pair: Option<Pair>,
}

/// Summary of one corpus replay.
#[derive(Debug, Clone, Default)]
pub struct CorpusReport {
    /// Entries replayed.
    pub entries: usize,
    /// Failures, as `(path, divergence)`.
    pub failures: Vec<(PathBuf, Divergence)>,
}

/// Serializes a minimized reproducer for persistence.
pub fn entry_text(case: &CaseSpec, pair: Pair, note: &str) -> String {
    let mut s = String::new();
    s.push_str("# tmc-conformance minimized reproducer\n");
    s.push_str(&format!("pair = {}\n", pair.name()));
    if !note.is_empty() {
        s.push_str(&format!("note = {note}\n"));
    }
    s.push_str(&case.encode());
    s
}

/// Writes a minimized reproducer under `dir` as
/// `<pair>-seed<seed>.case`.
///
/// # Errors
///
/// Propagates filesystem errors as messages.
pub fn save(dir: &Path, case: &CaseSpec, pair: Pair, note: &str) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!("{}-seed{}.case", pair.name(), case.seed));
    fs::write(&path, entry_text(case, pair, note)).map_err(|e| e.to_string())?;
    Ok(path)
}

/// Loads one `.case` file.
///
/// # Errors
///
/// Fails on unreadable files or malformed case text.
pub fn load(path: &Path) -> Result<CorpusEntry, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let case = CaseSpec::decode(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let pair = text.lines().find_map(|l| {
        let (k, v) = l.split_once('=')?;
        if k.trim() == "pair" {
            Pair::parse(v.trim())
        } else {
            None
        }
    });
    Ok(CorpusEntry {
        path: path.to_path_buf(),
        case,
        pair,
    })
}

/// Loads every `.case` file under `dir`, sorted by file name.
///
/// An absent directory is an empty corpus, not an error.
///
/// # Errors
///
/// Fails on unreadable or malformed entries.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut entries = Vec::new();
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(_) => return Ok(entries),
    };
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for p in paths {
        entries.push(load(&p)?);
    }
    Ok(entries)
}

/// Replays every corpus entry: the recorded pair when present, otherwise
/// every applicable pair.
///
/// # Errors
///
/// Fails on unreadable or malformed entries (divergences are *reported*,
/// not errors — see [`CorpusReport::failures`]).
pub fn run_dir(dir: &Path) -> Result<CorpusReport, String> {
    let mut report = CorpusReport::default();
    for entry in load_dir(dir)? {
        report.entries += 1;
        let result = match entry.pair {
            Some(pair) => check_pair(&entry.case, pair),
            None => check_case(&entry.case).map(|_| ()),
        };
        if let Err(d) = result {
            report.failures.push((entry.path.clone(), d));
        }
    }
    Ok(report)
}

/// The workspace-relative corpus directory, resolved from this crate.
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("conformance/corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("tmc-conformance-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let case = generate_case(9);
        let path = save(&dir, &case, Pair::SerialVsShard, "unit test").unwrap();
        let entry = load(&path).unwrap();
        assert_eq!(entry.case, case);
        assert_eq!(entry.pair, Some(Pair::SerialVsShard));
        let all = load_dir(&dir).unwrap();
        assert_eq!(all.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_an_empty_corpus() {
        let report = run_dir(Path::new("/nonexistent/tmc-corpus")).unwrap();
        assert_eq!(report.entries, 0);
        assert!(report.failures.is_empty());
    }
}
