//! Corpus persistence and regression replay.
//!
//! Every real bug the fuzzer has found lives on under
//! `conformance/corpus/` as a minimized `.tmcs` scenario file: the full
//! case in the repo-wide scenario format, with the tripped engine pair
//! recorded as `pair = <name>` in the `[scenario]` section and a
//! free-form `note` rationale. The regression runner replays every file
//! through the scenario parser and requires every pair to hold — a fixed
//! bug that regresses fails CI with its original minimal reproducer, and
//! every reproducer doubles as input to `tmc scenario run`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::case::CaseSpec;
use crate::outcome::Divergence;
use crate::pairs::{check_case, check_pair, Pair};

/// A corpus entry: the case plus its recorded metadata.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Path the entry was loaded from.
    pub path: PathBuf,
    /// The case itself.
    pub case: CaseSpec,
    /// The pair the original divergence tripped, when recorded.
    pub pair: Option<Pair>,
}

/// Summary of one corpus replay.
#[derive(Debug, Clone, Default)]
pub struct CorpusReport {
    /// Entries replayed.
    pub entries: usize,
    /// Failures, as `(path, divergence)`.
    pub failures: Vec<(PathBuf, Divergence)>,
}

/// Serializes a minimized reproducer as a named `.tmcs` scenario.
pub fn entry_text(case: &CaseSpec, pair: Pair, note: &str) -> String {
    let mut sc = case.to_scenario();
    sc.name = format!("{}-seed{}", pair.name(), case.seed);
    sc.pair = Some(pair.name().to_string());
    sc.note = note.to_string();
    sc.encode()
}

/// Writes a minimized reproducer under `dir` as
/// `<pair>-seed<seed>.tmcs`.
///
/// # Errors
///
/// Propagates filesystem errors as messages.
pub fn save(dir: &Path, case: &CaseSpec, pair: Pair, note: &str) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!("{}-seed{}.tmcs", pair.name(), case.seed));
    fs::write(&path, entry_text(case, pair, note)).map_err(|e| e.to_string())?;
    Ok(path)
}

/// Loads one `.tmcs` reproducer.
///
/// # Errors
///
/// Fails on unreadable files or malformed scenario text.
pub fn load(path: &Path) -> Result<CorpusEntry, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let sc = tmc_scenario::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let pair = sc.pair.as_deref().and_then(Pair::parse);
    Ok(CorpusEntry {
        path: path.to_path_buf(),
        case: CaseSpec::from_scenario(&sc),
        pair,
    })
}

/// Loads every `.tmcs` file under `dir`, sorted by file name.
///
/// An absent directory is an empty corpus, not an error.
///
/// # Errors
///
/// Fails on unreadable or malformed entries.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut entries = Vec::new();
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(_) => return Ok(entries),
    };
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tmcs"))
        .collect();
    paths.sort();
    for p in paths {
        entries.push(load(&p)?);
    }
    Ok(entries)
}

/// Replays every corpus entry: the recorded pair when present, otherwise
/// every applicable pair.
///
/// # Errors
///
/// Fails on unreadable or malformed entries (divergences are *reported*,
/// not errors — see [`CorpusReport::failures`]).
pub fn run_dir(dir: &Path) -> Result<CorpusReport, String> {
    let mut report = CorpusReport::default();
    for entry in load_dir(dir)? {
        report.entries += 1;
        let result = match entry.pair {
            Some(pair) => check_pair(&entry.case, pair),
            None => check_case(&entry.case).map(|_| ()),
        };
        if let Err(d) = result {
            report.failures.push((entry.path.clone(), d));
        }
    }
    Ok(report)
}

/// The workspace-relative corpus directory, resolved from this crate.
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("conformance/corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("tmc-conformance-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let case = generate_case(9);
        let path = save(&dir, &case, Pair::SerialVsShard, "unit test").unwrap();
        assert!(path.extension().is_some_and(|x| x == "tmcs"));
        let entry = load(&path).unwrap();
        assert_eq!(entry.case, case);
        assert_eq!(entry.pair, Some(Pair::SerialVsShard));
        let all = load_dir(&dir).unwrap();
        assert_eq!(all.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_text_is_a_named_scenario() {
        let case = generate_case(3);
        let text = entry_text(&case, Pair::SerialVsReplay, "why it tripped");
        let sc = tmc_scenario::parse(&text).unwrap();
        assert_eq!(sc.name, format!("serial-vs-replay-seed{}", case.seed));
        assert_eq!(sc.pair.as_deref(), Some("serial-vs-replay"));
        assert_eq!(sc.note, "why it tripped");
    }

    #[test]
    fn missing_dir_is_an_empty_corpus() {
        let report = run_dir(Path::new("/nonexistent/tmc-corpus")).unwrap();
        assert_eq!(report.entries, 0);
        assert!(report.failures.is_empty());
    }
}
