//! The engine pairs the fuzzer diffs, and what each one asserts.
//!
//! | pair | engines | comparison |
//! |---|---|---|
//! | `serial-vs-shard` | serial `System` vs `shardsim` | fingerprint, counters, per-link charges, memory image, event stream, byte-identical JSONL |
//! | `serial-vs-replay` | serial capture vs `tracecheck` replay | every replay obligation (values, regenerated events, trailer, oracle, memory) |
//! | `sim-vs-analytic` | steady-state simulation vs eqs. 11–12 | bits/ref inside a calibrated band + mode ranking vs the w₁ threshold |
//! | `faults-zero-vs-off` | zero-count fault plan vs no plan | full outcome including events (bit-identity) |
//! | `adaptive-vs-fixed` | adaptive policy vs both fixed modes | identical read values; traffic bounded by the best fixed mode |
//! | `oracle-self` | serial `System` vs `ReferenceMemory` | every read's value, memory image, invariants, re-run determinism |
//! | `batched-vs-scalar` | scalar `read`/`write` loop vs chunked `execute_batch` | fingerprint, counters, per-link charges, memory image, read values, event stream, byte-identical JSONL |
//! | `resumed-vs-uninterrupted` | one straight run vs the same script frozen/thawed mid-flight through the checkpoint codec | fingerprint, counters, per-link charges, memory image, read values, event stream |
//! | `ir-vs-handcoded` | hand-coded protocol paths vs the guarded-action IR interpreter | fingerprint, counters, per-link charges, memory image, read values, event stream, byte-identical JSONL |
//!
//! Adaptive-vs-fixed deliberately does **not** compare fingerprints or
//! traffic for equality: the adaptive policy changes block modes as its
//! windows close, so protocol state and per-link charges legitimately
//! diverge from any fixed-mode run. Only value-level agreement and the
//! cost bound are contractual; the rest is *expected* divergence.

use tmc_bench::shardsim::{capture_sharded, run, shard_count, ShardOp, ShardRunOptions};
use tmc_bench::tracecheck;
use tmc_core::{FaultSpec, Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::{MsgSizing, ReferenceMemory};
use tmc_omeganet::{DestSet, Omega};
use tmc_simcore::SimRng;
use tmc_workload::{Op, Placement, SharedBlockWorkload};

use crate::case::CaseSpec;
use crate::outcome::{diff_outcomes, run_serial, snapshot, Divergence};

/// Worker threads for sharded runs (determinism is unconditional, so a
/// small fixed pool keeps smoke runs cheap on any host).
const SHARD_THREADS: usize = 2;

/// One engine pair the fuzzer can diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pair {
    /// Serial engine vs the block-sharded engine.
    SerialVsShard,
    /// Serial capture vs JSONL trace replay.
    SerialVsReplay,
    /// Steady-state simulation vs the closed-form cost model.
    SimVsAnalytic,
    /// Zero-count fault plan vs fault injection disabled.
    FaultsZeroVsOff,
    /// Adaptive mode policy vs the best fixed mode.
    AdaptiveVsFixed,
    /// Serial engine vs the sequential-consistency oracle.
    OracleSelf,
    /// Scalar reference loop vs the batched pipeline.
    BatchedVsScalar,
    /// One straight run vs a run checkpointed and resumed mid-script.
    ResumedVsUninterrupted,
    /// Hand-coded protocol paths vs the guarded-action IR interpreter.
    IrVsHandcoded,
}

impl Pair {
    /// Every pair, in check order.
    pub fn all() -> [Pair; 9] {
        [
            Pair::OracleSelf,
            Pair::IrVsHandcoded,
            Pair::SerialVsShard,
            Pair::BatchedVsScalar,
            Pair::ResumedVsUninterrupted,
            Pair::SerialVsReplay,
            Pair::FaultsZeroVsOff,
            Pair::AdaptiveVsFixed,
            Pair::SimVsAnalytic,
        ]
    }

    /// Stable name used in corpus files and reports.
    pub fn name(self) -> &'static str {
        match self {
            Pair::SerialVsShard => "serial-vs-shard",
            Pair::SerialVsReplay => "serial-vs-replay",
            Pair::SimVsAnalytic => "sim-vs-analytic",
            Pair::FaultsZeroVsOff => "faults-zero-vs-off",
            Pair::AdaptiveVsFixed => "adaptive-vs-fixed",
            Pair::OracleSelf => "oracle-self",
            Pair::BatchedVsScalar => "batched-vs-scalar",
            Pair::ResumedVsUninterrupted => "resumed-vs-uninterrupted",
            Pair::IrVsHandcoded => "ir-vs-handcoded",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Pair> {
        Pair::all().into_iter().find(|p| p.name() == s)
    }

    /// Whether the pair applies to `case`.
    pub fn applies(self, case: &CaseSpec) -> bool {
        match self {
            Pair::SerialVsShard => shard_count(&case.config(), case.shards) >= 2,
            Pair::SerialVsReplay
            | Pair::FaultsZeroVsOff
            | Pair::OracleSelf
            | Pair::BatchedVsScalar
            | Pair::ResumedVsUninterrupted
            | Pair::IrVsHandcoded => true,
            Pair::AdaptiveVsFixed => matches!(case.policy, ModePolicy::Adaptive { .. }),
            Pair::SimVsAnalytic => {
                case.analytic.is_some() && matches!(case.policy, ModePolicy::Fixed(_))
            }
        }
    }
}

/// Runs every applicable pair; returns how many applied.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_case(case: &CaseSpec) -> Result<usize, Divergence> {
    let mut applied = 0;
    for pair in Pair::all() {
        if pair.applies(case) {
            applied += 1;
            check_pair(case, pair)?;
        }
    }
    Ok(applied)
}

/// Runs one pair against `case`.
///
/// # Errors
///
/// Returns the divergence, with the pair and first differing observable.
pub fn check_pair(case: &CaseSpec, pair: Pair) -> Result<(), Divergence> {
    let fail = |detail: String| Err(Divergence { pair, detail });
    match pair {
        Pair::SerialVsShard => check_serial_vs_shard(case).or_else(fail),
        Pair::SerialVsReplay => check_serial_vs_replay(case).or_else(fail),
        Pair::SimVsAnalytic => check_sim_vs_analytic(case).or_else(fail),
        Pair::FaultsZeroVsOff => check_faults_zero_vs_off(case).or_else(fail),
        Pair::AdaptiveVsFixed => check_adaptive_vs_fixed(case).or_else(fail),
        Pair::OracleSelf => check_oracle_self(case).or_else(fail),
        Pair::BatchedVsScalar => check_batched_vs_scalar(case).or_else(fail),
        Pair::ResumedVsUninterrupted => check_resumed_vs_uninterrupted(case).or_else(fail),
        Pair::IrVsHandcoded => check_ir_vs_handcoded(case).or_else(fail),
    }
}

/// Drive the same script once through the hand-coded protocol paths and
/// once through the guarded-action IR interpreter
/// ([`tmc_core::PROTOCOL_IR`]): every observable must match bit for bit,
/// and the JSONL captures must be byte-identical. This is the conformance
/// gate that lets the rule table stand in for the hand-coded engine.
fn check_ir_vs_handcoded(case: &CaseSpec) -> Result<(), String> {
    let cfg = case.config();
    let hand = run_serial(cfg.clone(), &case.ops, true)?;

    let mut sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
    sys.set_ir_dispatch(true);
    sys.set_tracing(true);
    let read_values = crate::outcome::collect_reads(&mut sys, &case.ops);
    let ir = snapshot(&mut sys, &case.ops, read_values);
    diff_outcomes(&hand, &ir, "hand-coded", "ir")?;

    // Byte-level JSONL: the interpreted drive must serialize to the exact
    // trace the hand-coded drive produces.
    let hand_jsonl = tracecheck::capture(cfg.clone(), |sys| {
        crate::outcome::run_script(sys, &case.ops);
    })?;
    let ir_jsonl = tracecheck::capture(cfg, |sys| {
        sys.set_ir_dispatch(true);
        crate::outcome::run_script(sys, &case.ops);
    })?;
    if hand_jsonl != ir_jsonl {
        let line = hand_jsonl
            .lines()
            .zip(ir_jsonl.lines())
            .position(|(a, b)| a != b);
        return Err(format!(
            "JSONL captures differ (first differing line: {line:?})"
        ));
    }
    Ok(())
}

/// Freeze/thaw the machine through the crash-recovery checkpoint codec at
/// one-third and two-thirds of the script (and once at the end), exactly
/// as a twice-crashed, twice-resumed run would, and demand the final
/// observables match one uninterrupted run bit for bit.
fn check_resumed_vs_uninterrupted(case: &CaseSpec) -> Result<(), String> {
    let cfg = case.config();
    let clean = run_serial(cfg.clone(), &case.ops, true)?;

    let mut sys = System::new(cfg).map_err(|e| e.to_string())?;
    sys.set_tracing(true);
    let mut read_values = Vec::new();
    let mut events = Vec::new();
    let cuts = [case.ops.len() / 3, 2 * case.ops.len() / 3, case.ops.len()];
    let mut done = 0;
    for cut in cuts {
        for op in &case.ops[done..cut] {
            match *op {
                ShardOp::Read { proc, addr } => {
                    read_values.push(sys.read(proc, addr).map_err(|e| e.to_string())?);
                }
                ShardOp::Write { proc, addr, value } => {
                    sys.write(proc, addr, value).map_err(|e| e.to_string())?;
                }
                ShardOp::SetMode { proc, addr, mode } => {
                    sys.set_mode(proc, addr, mode).map_err(|e| e.to_string())?;
                }
            }
        }
        done = cut;
        events.extend(sys.drain_trace());
        let frame = tmc_core::encode_system(&sys).map_err(|e| e.to_string())?;
        sys = tmc_core::decode_system(&frame).map_err(|e| e.to_string())?;
    }
    let mut resumed = snapshot(&mut sys, &case.ops, read_values);
    resumed.events = Some(events);
    diff_outcomes(&clean, &resumed, "uninterrupted", "resumed")
}

/// Batch chunking for the batched engine: small enough that multi-chunk
/// flushes are exercised even by shrunk cases, large enough that most
/// generated scripts also get a partial tail chunk.
const BATCH_PAIR_CHUNK: usize = 64;

fn check_batched_vs_scalar(case: &CaseSpec) -> Result<(), String> {
    let cfg = case.config();
    let scalar = run_serial(cfg.clone(), &case.ops, true)?;

    let mut sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
    sys.set_tracing(true);
    let mut read_values = Vec::new();
    for chunk in case.ops.chunks(BATCH_PAIR_CHUNK) {
        sys.execute_batch_reads(chunk, &mut read_values)
            .map_err(|e| e.to_string())?;
    }
    let batched = snapshot(&mut sys, &case.ops, read_values);
    diff_outcomes(&scalar, &batched, "scalar", "batched")?;

    // Byte-level JSONL: the batched drive must serialize to the exact
    // trace the scalar drive produces.
    let scalar_jsonl = tracecheck::capture(cfg.clone(), |sys| {
        crate::outcome::run_script(sys, &case.ops);
    })?;
    let batched_jsonl = tracecheck::capture(cfg, |sys| {
        for chunk in case.ops.chunks(BATCH_PAIR_CHUNK) {
            sys.execute_batch(chunk).expect("validated processors");
        }
    })?;
    if scalar_jsonl != batched_jsonl {
        let line = scalar_jsonl
            .lines()
            .zip(batched_jsonl.lines())
            .position(|(a, b)| a != b);
        return Err(format!(
            "JSONL captures differ (first differing line: {line:?})"
        ));
    }
    Ok(())
}

fn check_serial_vs_shard(case: &CaseSpec) -> Result<(), String> {
    let cfg = case.config();
    let serial = run_serial(cfg.clone(), &case.ops, true)?;
    let sharded = run(
        &cfg,
        &case.ops,
        &ShardRunOptions::new(case.shards, SHARD_THREADS)
            .tracing(true)
            .check(true),
    )?;
    let mut shard_sys = sharded.system;
    let mut shard_out = snapshot(&mut shard_sys, &case.ops, serial.read_values.clone());
    // The merged system's trace is empty (events live in `sharded.events`);
    // splice the canonical merged stream in for the comparison.
    shard_out.events = Some(sharded.events);
    diff_outcomes(&serial, &shard_out, "serial", "sharded")?;

    let serial_jsonl = tracecheck::capture(cfg.clone(), |sys| {
        crate::outcome::run_script(sys, &case.ops);
    })?;
    let sharded_jsonl = capture_sharded(&cfg, &case.ops, case.shards, SHARD_THREADS)?;
    if serial_jsonl != sharded_jsonl {
        let line = serial_jsonl
            .lines()
            .zip(sharded_jsonl.lines())
            .position(|(a, b)| a != b);
        return Err(format!(
            "JSONL captures differ (first differing line: {line:?})"
        ));
    }
    Ok(())
}

fn check_serial_vs_replay(case: &CaseSpec) -> Result<(), String> {
    let trace = tracecheck::capture(case.config(), |sys| {
        crate::outcome::run_script(sys, &case.ops);
    })?;
    tracecheck::check(&trace).map(|_| ())
}

fn check_faults_zero_vs_off(case: &CaseSpec) -> Result<(), String> {
    let plain = run_serial(case.config(), &case.ops, true)?;
    let zero_plan = case
        .config()
        .faults(FaultSpec::new(case.fault_seed).count(0));
    let with_plan = run_serial(zero_plan, &case.ops, true)?;
    diff_outcomes(&plain, &with_plan, "faults-off", "zero-plan")
}

/// Adaptive traffic may exceed the best fixed mode while its windows
/// learn, but never by more than this factor plus slack. Calibrated over
/// 4000 generated adaptive cases: the worst observed excess beyond
/// `2 × best` was ≈ 20k bits (short scripts never amortize the learning
/// window, so the absolute slack dominates on tiny cases).
const ADAPTIVE_FACTOR: f64 = 2.0;
/// Absolute slack for scripts too short to amortize learning.
const ADAPTIVE_SLACK_BITS: u64 = 64_000;

fn check_adaptive_vs_fixed(case: &CaseSpec) -> Result<(), String> {
    let adaptive = run_serial(case.config(), &case.ops, false)?;
    let dw = run_serial(
        case.config_with_policy(ModePolicy::Fixed(Mode::DistributedWrite)),
        &case.ops,
        false,
    )?;
    let gr = run_serial(
        case.config_with_policy(ModePolicy::Fixed(Mode::GlobalRead)),
        &case.ops,
        false,
    )?;
    // Value conformance is exact: mode choices never change what a read
    // returns under sequential consistency.
    if adaptive.read_values != dw.read_values {
        return Err("adaptive and fixed-DW runs disagree on a read value".into());
    }
    if adaptive.read_values != gr.read_values {
        return Err("adaptive and fixed-GR runs disagree on a read value".into());
    }
    if adaptive.memory != dw.memory || adaptive.memory != gr.memory {
        return Err("adaptive and fixed runs disagree on the final memory image".into());
    }
    // Cost bound: adaptive rides within a constant factor of the best
    // fixed mode (the §5 claim, loosened for unamortized short scripts).
    let best = dw.total_bits.min(gr.total_bits);
    let bound = (best as f64 * ADAPTIVE_FACTOR) as u64 + ADAPTIVE_SLACK_BITS;
    if adaptive.total_bits > bound {
        return Err(format!(
            "adaptive traffic {} bits exceeds {}x best-fixed ({} bits) + slack",
            adaptive.total_bits, ADAPTIVE_FACTOR, best
        ));
    }
    Ok(())
}

fn check_oracle_self(case: &CaseSpec) -> Result<(), String> {
    let cfg = case.config();
    let mut sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
    let mut oracle = ReferenceMemory::new();
    for (i, op) in case.ops.iter().enumerate() {
        match *op {
            ShardOp::Read { proc, addr } => {
                let got = sys.read(proc, addr).map_err(|e| e.to_string())?;
                let want = oracle.read(addr);
                if got != want {
                    return Err(format!(
                        "op #{i}: P{proc} read {addr:?} = {got}, oracle says {want}"
                    ));
                }
            }
            ShardOp::Write { proc, addr, value } => {
                sys.write(proc, addr, value).map_err(|e| e.to_string())?;
                oracle.write(addr, value);
            }
            ShardOp::SetMode { proc, addr, mode } => {
                sys.set_mode(proc, addr, mode).map_err(|e| e.to_string())?;
            }
        }
    }
    sys.check_invariants().map_err(|e| e.to_string())?;
    for &(w, v) in run_serial(cfg.clone(), &case.ops, false)?.memory.iter() {
        let addr = tmc_memsys::WordAddr::new(w);
        if oracle.read(addr) != v {
            return Err(format!(
                "final memory word {w}: system has {v}, oracle has {}",
                oracle.read(addr)
            ));
        }
    }
    // Same case twice must be bit-identical (no hidden global state).
    let a = run_serial(cfg.clone(), &case.ops, true)?;
    let b = run_serial(cfg, &case.ops, true)?;
    diff_outcomes(&a, &b, "run-1", "run-2")
}

/// Band the measured steady-state cost must share with the closed form.
/// Calibrated on an `N × n × w × scheme` grid: with the remote-read and
/// update-multicast costs computed in the simulator's own message sizing,
/// every observed measured/predicted ratio falls in `[0.92, 1.04]`; the
/// band adds margin for short, shrunk probes.
const ANALYTIC_BAND_LO: f64 = 0.8;
/// Upper edge of the measured/predicted band.
const ANALYTIC_BAND_HI: f64 = 1.25;
/// Ranking is only checked this far from the *size-corrected* crossover
/// (where eq. 11 with the real update multicast cost meets eq. 12 with
/// real request/datum costs). The paper's `w₁ = 2/(n+2)` assumes one
/// uniform message size `M` and sits up to ~0.15 of write fraction above
/// the real-size crossover, so guarding around `w₁` itself would either
/// mask the band near the true flip or fire spuriously between the two
/// thresholds (see `tests/analytic_crossover.rs`, which brackets both).
const RANKING_GUARD: f64 = 0.08;

fn check_sim_vs_analytic(case: &CaseSpec) -> Result<(), String> {
    let probe = match case.analytic {
        Some(p) => p,
        None => return Ok(()),
    };
    let n = probe.n_tasks.max(2);
    let big_n = case.n_caches;
    let sizing = MsgSizing::default();

    // Steady-state measurement under both fixed modes, default geometry
    // (capacity misses would void the model's assumptions).
    let trace = SharedBlockWorkload::new(n, 2 * n as u64, probe.w)
        .references(probe.warmup + probe.refs)
        .placement(Placement::Adjacent { base: 0 })
        .generate(big_n, &mut SimRng::seed_from(case.seed ^ 0xA11A));
    let measure = |mode: Mode| -> Result<f64, String> {
        let cfg = SystemConfig::new(big_n)
            .multicast(case.scheme)
            .mode_policy(ModePolicy::Fixed(mode));
        let mut sys = System::new(cfg).map_err(|e| e.to_string())?;
        let mut stamp = 1u64;
        let mut base = 0u64;
        for (i, r) in trace.iter().enumerate() {
            if i == probe.warmup {
                base = sys.traffic().total_bits();
            }
            match r.op {
                Op::Read => {
                    sys.read(r.proc, r.addr).map_err(|e| e.to_string())?;
                }
                Op::Write => {
                    sys.write(r.proc, r.addr, stamp)
                        .map_err(|e| e.to_string())?;
                    stamp += 1;
                }
            }
        }
        Ok((sys.traffic().total_bits() - base) as f64 / probe.refs as f64)
    };
    let measured_dw = measure(Mode::DistributedWrite)?;
    let measured_gr = measure(Mode::GlobalRead)?;

    // Predictions use the *realized* write fraction of the measured window,
    // not the nominal probe w: the workload draws writes i.i.d., so at
    // w = 0.05 the write count over 4000 refs varies ±7% at one sigma, and
    // rare seeds would drift a correct engine out of any band tight enough
    // to catch real regressions. The model is about cost per operation mix,
    // so feed it the mix the trace actually contains.
    let writes = trace
        .iter()
        .skip(probe.warmup)
        .filter(|r| matches!(r.op, Op::Write))
        .count();
    let w_emp = writes as f64 / probe.refs as f64;

    // Closed-form predictions in the simulator's own message sizing.
    let net = Omega::with_ports(big_n).map_err(|e| e.to_string())?;
    let mut cc4_sum = 0u64;
    for writer in 0..n {
        let dests = DestSet::from_ports(big_n, (0..n).filter(|&p| p != writer))
            .map_err(|e| e.to_string())?;
        cc4_sum += net
            .multicast_cost(case.scheme, &dests, sizing.update_bits())
            .map_err(|e| e.to_string())?;
    }
    let cc4 = cc4_sum as f64 / n as f64;
    let predicted_dw = w_emp * cc4;
    let single = |bits: u64| -> Result<f64, String> {
        let dests = DestSet::from_ports(big_n, [1usize]).map_err(|e| e.to_string())?;
        Ok(net
            .multicast_cost(tmc_omeganet::SchemeKind::Replicated, &dests, bits)
            .map_err(|e| e.to_string())? as f64)
    };
    let remote_read = single(sizing.request_bits())? + single(sizing.datum_bits())?;
    let remote_fraction = (n - 1) as f64 / n as f64;
    let predicted_gr = (1.0 - w_emp) * remote_fraction * remote_read;

    let in_band = |measured: f64, predicted: f64| {
        predicted <= 0.0
            || (measured >= predicted * ANALYTIC_BAND_LO
                && measured <= predicted * ANALYTIC_BAND_HI)
    };
    if !in_band(measured_dw, predicted_dw) {
        return Err(format!(
            "DW bits/ref: measured {measured_dw:.1}, eq. 11 predicts {predicted_dw:.1} \
             (band [{ANALYTIC_BAND_LO}, {ANALYTIC_BAND_HI}]x, n={n}, N={big_n}, w={} \
             realized {w_emp:.3})",
            probe.w
        ));
    }
    if !in_band(measured_gr, predicted_gr) {
        return Err(format!(
            "GR bits/ref: measured {measured_gr:.1}, eq. 12 predicts {predicted_gr:.1} \
             (band [{ANALYTIC_BAND_LO}, {ANALYTIC_BAND_HI}]x, n={n}, N={big_n}, w={} \
             realized {w_emp:.3})",
            probe.w
        ));
    }

    // The sharp check: away from the crossover, the simulated mode ranking
    // must match the analytic prediction. The flip point used is the
    // size-corrected crossover of eq. 11 vs eq. 12 (the paper's
    // uniform-M `w1 = 2/(n+2)` is recovered when all message sizes are
    // equal — pinned separately in `tests/analytic_crossover.rs`).
    let q = remote_fraction * remote_read / cc4;
    let w_star = q / (1.0 + q);
    if (probe.w - w_star).abs() >= RANKING_GUARD {
        let model_prefers_dw = probe.w < w_star;
        let sim_prefers_dw = measured_dw < measured_gr;
        if model_prefers_dw != sim_prefers_dw {
            return Err(format!(
                "mode ranking: w={} vs corrected crossover {w_star:.3} (uniform-M w1 {:.3}): \
                 analytic prefers {}, simulator measures dw={measured_dw:.1} \
                 gr={measured_gr:.1} bits/ref",
                probe.w,
                tmc_analytic::TwoModeThreshold::new(n as u64).value(),
                if model_prefers_dw { "DW" } else { "GR" },
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    #[test]
    fn pair_names_roundtrip() {
        for p in Pair::all() {
            assert_eq!(Pair::parse(p.name()), Some(p));
        }
        assert_eq!(Pair::parse("nonsense"), None);
    }

    #[test]
    fn oracle_and_replay_pairs_apply_everywhere() {
        let case = generate_case(1);
        assert!(Pair::OracleSelf.applies(&case));
        assert!(Pair::SerialVsReplay.applies(&case));
        assert!(Pair::FaultsZeroVsOff.applies(&case));
        assert!(Pair::ResumedVsUninterrupted.applies(&case));
        assert!(Pair::IrVsHandcoded.applies(&case));
    }

    #[test]
    fn ir_pair_passes_on_generated_cases() {
        for seed in [3, 7, 23] {
            let case = generate_case(seed);
            check_pair(&case, Pair::IrVsHandcoded).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
    }

    #[test]
    fn resumed_pair_passes_on_generated_cases() {
        for seed in [2, 5, 19] {
            let case = generate_case(seed);
            check_pair(&case, Pair::ResumedVsUninterrupted)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
    }

    #[test]
    fn a_small_case_passes_all_pairs() {
        let case = generate_case(11);
        let applied = check_case(&case).unwrap_or_else(|d| panic!("{d}"));
        assert!(applied >= 3, "expected several applicable pairs");
    }
}
