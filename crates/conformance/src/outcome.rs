//! Observable outcome of one engine run, and the diff between two.
//!
//! A [`RunOutcome`] snapshots every observable the engines promise to
//! agree on: the protocol fingerprint, all counters, the total and
//! per-link bit charges, the memory image over every block the script
//! touched, the values every read returned, and (when tracing) the typed
//! event stream. [`diff_outcomes`] names the first field two snapshots
//! disagree on.

use std::collections::BTreeMap;
use std::fmt;

use tmc_bench::shardsim::{apply_script, ShardOp};
use tmc_bench::tracecheck::nonzero_links;
use tmc_core::{System, SystemConfig};
use tmc_obs::{LinkCharge, ProtocolEvent};

use crate::pairs::Pair;

/// Everything one engine run exposes for cross-engine comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Canonical protocol-state fingerprint bytes.
    pub fingerprint: Vec<u8>,
    /// Every named counter.
    pub counters: BTreeMap<&'static str, u64>,
    /// Total bits charged across all links.
    pub total_bits: u64,
    /// Every nonzero per-link charge.
    pub links: Vec<LinkCharge>,
    /// `(word, value)` for every word of every block the script touched.
    pub memory: Vec<(u64, u64)>,
    /// The value each `Read` op returned, in script order.
    pub read_values: Vec<u64>,
    /// The typed event stream, when tracing was on.
    pub events: Option<Vec<ProtocolEvent>>,
}

/// A cross-engine disagreement: which pair tripped and what differed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The engine pair that disagreed.
    pub pair: Pair,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.pair.name(), self.detail)
    }
}

impl std::error::Error for Divergence {}

/// Every word of every block `ops` touches, in address order.
pub fn touched_words(cfg: &SystemConfig, ops: &[ShardOp]) -> Vec<u64> {
    let spec = cfg.spec;
    let mut blocks: Vec<u64> = ops
        .iter()
        .map(|op| spec.block_of(op.addr()).index())
        .collect();
    blocks.sort_unstable();
    blocks.dedup();
    let mut words = Vec::with_capacity(blocks.len() * spec.words_per_block());
    for b in blocks {
        for off in 0..spec.words_per_block() {
            words.push(spec.word_at(tmc_memsys::BlockAddr::new(b), off).value());
        }
    }
    words
}

/// Snapshots `sys` (plus the `read_values` collected while driving).
pub fn snapshot(sys: &mut System, ops: &[ShardOp], read_values: Vec<u64>) -> RunOutcome {
    let events = if sys.tracing_enabled() {
        Some(sys.drain_trace())
    } else {
        None
    };
    let cfg = sys.config().clone();
    RunOutcome {
        fingerprint: sys.protocol_fingerprint(),
        counters: sys.counters().iter().collect(),
        total_bits: sys.traffic().total_bits(),
        links: nonzero_links(sys.traffic()),
        memory: touched_words(&cfg, ops)
            .into_iter()
            .map(|w| (w, sys.peek_word(tmc_memsys::WordAddr::new(w))))
            .collect(),
        read_values,
        events,
    }
}

/// Builds a system from `cfg`, runs `ops`, snapshots the outcome.
///
/// # Errors
///
/// Propagates `System::new` rejections as a message.
pub fn run_serial(cfg: SystemConfig, ops: &[ShardOp], tracing: bool) -> Result<RunOutcome, String> {
    let mut sys = System::new(cfg).map_err(|e| e.to_string())?;
    sys.set_tracing(tracing);
    let read_values = collect_reads(&mut sys, ops);
    Ok(snapshot(&mut sys, ops, read_values))
}

/// Runs `ops` against `sys` and returns every read's value in op order.
///
/// Identical transaction sequence to
/// [`apply_script`](tmc_bench::shardsim::apply_script) — same stamps, same
/// order — but keeps the read results for value-level comparison.
pub fn collect_reads(sys: &mut System, ops: &[ShardOp]) -> Vec<u64> {
    let mut vals = Vec::new();
    for op in ops {
        match *op {
            ShardOp::Read { proc, addr } => {
                vals.push(sys.read(proc, addr).expect("conformance read"));
            }
            ShardOp::Write { proc, addr, value } => {
                sys.write(proc, addr, value).expect("conformance write");
            }
            ShardOp::SetMode { proc, addr, mode } => {
                sys.set_mode(proc, addr, mode)
                    .expect("conformance set_mode");
            }
        }
    }
    vals
}

/// Drives `ops` without collecting values (delegates to `apply_script`).
pub fn run_script(sys: &mut System, ops: &[ShardOp]) {
    apply_script(sys, ops);
}

/// Compares two outcomes field by field; `Ok(())` or the first mismatch.
///
/// `left`/`right` name the engines for the message.
///
/// # Errors
///
/// Returns a description of the first differing observable.
pub fn diff_outcomes(
    a: &RunOutcome,
    b: &RunOutcome,
    left: &str,
    right: &str,
) -> Result<(), String> {
    if a.read_values != b.read_values {
        let i = first_diff(&a.read_values, &b.read_values);
        return Err(format!(
            "read #{i}: {left} returned {:?}, {right} returned {:?}",
            a.read_values.get(i),
            b.read_values.get(i)
        ));
    }
    if a.memory != b.memory {
        let i = first_diff(&a.memory, &b.memory);
        return Err(format!(
            "memory word {:?}: {left} has {:?}, {right} has {:?}",
            a.memory.get(i).map(|(w, _)| w),
            a.memory.get(i),
            b.memory.get(i)
        ));
    }
    if a.fingerprint != b.fingerprint {
        return Err(format!(
            "protocol fingerprints differ ({left}: {} bytes, {right}: {} bytes)",
            a.fingerprint.len(),
            b.fingerprint.len()
        ));
    }
    if a.counters != b.counters {
        for (k, va) in &a.counters {
            let vb = b.counters.get(k).copied().unwrap_or(0);
            if *va != vb {
                return Err(format!("counter {k}: {left}={va}, {right}={vb}"));
            }
        }
        for (k, vb) in &b.counters {
            if !a.counters.contains_key(k) {
                return Err(format!("counter {k}: {left}=0, {right}={vb}"));
            }
        }
    }
    if a.total_bits != b.total_bits {
        return Err(format!(
            "total link bits: {left}={}, {right}={}",
            a.total_bits, b.total_bits
        ));
    }
    if a.links != b.links {
        let i = first_diff(&a.links, &b.links);
        return Err(format!(
            "per-link charges differ at entry {i}: {left}={:?}, {right}={:?}",
            a.links.get(i),
            b.links.get(i)
        ));
    }
    match (&a.events, &b.events) {
        (Some(ea), Some(eb)) if ea != eb => {
            let i = first_diff(ea, eb);
            return Err(format!(
                "event #{i}: {left}={:?}, {right}={:?} (of {} vs {})",
                ea.get(i),
                eb.get(i),
                ea.len(),
                eb.len()
            ));
        }
        _ => {}
    }
    Ok(())
}

fn first_diff<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let n = a.len().min(b.len());
    (0..n).find(|&i| a[i] != b[i]).unwrap_or(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_core::SystemConfig;
    use tmc_memsys::WordAddr;

    #[test]
    fn identical_runs_have_no_diff() {
        let ops = vec![
            ShardOp::Write {
                proc: 0,
                addr: WordAddr::new(0),
                value: 1,
            },
            ShardOp::Read {
                proc: 1,
                addr: WordAddr::new(0),
            },
        ];
        let a = run_serial(SystemConfig::new(4), &ops, true).unwrap();
        let b = run_serial(SystemConfig::new(4), &ops, true).unwrap();
        assert_eq!(a, b);
        diff_outcomes(&a, &b, "a", "b").unwrap();
        assert_eq!(a.read_values, vec![1]);
    }

    #[test]
    fn diff_names_the_first_divergent_field() {
        let ops = vec![ShardOp::Write {
            proc: 0,
            addr: WordAddr::new(0),
            value: 1,
        }];
        let a = run_serial(SystemConfig::new(4), &ops, false).unwrap();
        let mut b = a.clone();
        b.total_bits += 1;
        let msg = diff_outcomes(&a, &b, "L", "R").unwrap_err();
        assert!(msg.contains("total link bits"), "{msg}");
    }
}
