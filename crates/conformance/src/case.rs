//! The fully explicit, replayable conformance case.
//!
//! A case is *self-contained*: after shrinking, the op list is no longer
//! derivable from the seed, so the persisted form carries every field —
//! config, shard request, fault seed, analytic probe and the op script.
//! Cases serialize as ordinary `.tmcs` scenario files ([`CaseSpec::encode`]
//! delegates to [`tmc_scenario::Scenario::encode`]) so one format is the
//! repo's single reproducer currency: a shrunken divergence drops
//! straight into `tmc scenario run`, and the corpus regression replays
//! scenario files through the same parser CI sweeps with.

use std::fmt::Write as _;

use tmc_bench::shardsim::ShardOp;
use tmc_core::{ModePolicy, SystemConfig};
use tmc_memsys::{BlockSpec, CacheGeometry};
use tmc_omeganet::SchemeKind;
use tmc_scenario::spec::{Analytic, Faults, Scenario};

/// Steady-state parameters for the simulator-vs-analytic pair.
///
/// The closed forms (eqs. 11–12) assume the §4 sharing model — `n_tasks`
/// sharers per block, write fraction `w`, steady state — so the analytic
/// pair re-derives a `SharedBlockWorkload` from these fields rather than
/// using the case's op script.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticProbe {
    /// Sharer tasks per block (the paper's `n`).
    pub n_tasks: usize,
    /// Write fraction (the paper's `w`).
    pub w: f64,
    /// Measured references after warmup.
    pub refs: usize,
    /// Warmup references excluded from the measurement.
    pub warmup: usize,
}

/// One conformance case: config × op script × shard request × fault seed
/// × optional analytic probe.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Seed the case was generated from (zero for hand-written cases).
    pub seed: u64,
    /// Number of caches/processors (power of two).
    pub n_caches: usize,
    /// Cache sets per processor (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// log2 words per block.
    pub words_log2: u32,
    /// Multicast scheme.
    pub scheme: SchemeKind,
    /// Mode policy.
    pub policy: ModePolicy,
    /// Whether the owner-bypass optimization is on.
    pub owner_bypass: bool,
    /// Requested shard count for the sharded pair (clamped by
    /// `shard_count`; the pair is skipped when it clamps below 2).
    pub shards: usize,
    /// Seed for the zero-count fault plan of the faults pair.
    pub fault_seed: u64,
    /// Steady-state probe for the analytic pair, when applicable.
    pub analytic: Option<AnalyticProbe>,
    /// The op script every value-level engine executes.
    pub ops: Vec<ShardOp>,
}

impl CaseSpec {
    /// The fault-free `SystemConfig` the case describes.
    pub fn config(&self) -> SystemConfig {
        SystemConfig::new(self.n_caches)
            .geometry(CacheGeometry::new(self.sets, self.ways))
            .block_spec(BlockSpec::new(self.words_log2))
            .multicast(self.scheme)
            .mode_policy(self.policy)
            .owner_bypass(self.owner_bypass)
    }

    /// Same config under a different mode policy (for the adaptive pair).
    pub fn config_with_policy(&self, policy: ModePolicy) -> SystemConfig {
        SystemConfig::new(self.n_caches)
            .geometry(CacheGeometry::new(self.sets, self.ways))
            .block_spec(BlockSpec::new(self.words_log2))
            .multicast(self.scheme)
            .mode_policy(policy)
            .owner_bypass(self.owner_bypass)
    }

    /// The case as a scenario: same machine, the fault seed as a
    /// zero-count `[faults]` plan, the op script under `[ops]`.
    pub fn to_scenario(&self) -> Scenario {
        let mut sc = Scenario::new(&format!("case-seed{}", self.seed));
        sc.seed = self.seed;
        sc.machine.n_caches = self.n_caches;
        sc.machine.sets = self.sets;
        sc.machine.ways = self.ways;
        sc.machine.words_log2 = self.words_log2;
        sc.machine.scheme = self.scheme;
        sc.machine.policy = self.policy;
        sc.machine.owner_bypass = self.owner_bypass;
        sc.machine.shards = self.shards;
        sc.faults = Some(Faults {
            seed: self.fault_seed,
            count: 0,
            ..Faults::default()
        });
        sc.analytic = self.analytic.map(|p| Analytic {
            n_tasks: p.n_tasks,
            w: p.w,
            refs: p.refs,
            warmup: p.warmup,
        });
        sc.ops = self.ops.clone();
        sc
    }

    /// The case a scenario describes. The op script is the scenario's
    /// full materialization, so workload-bearing scenarios become
    /// explicit-op cases.
    pub fn from_scenario(sc: &Scenario) -> CaseSpec {
        CaseSpec {
            seed: sc.seed,
            n_caches: sc.machine.n_caches,
            sets: sc.machine.sets,
            ways: sc.machine.ways,
            words_log2: sc.machine.words_log2,
            scheme: sc.machine.scheme,
            policy: sc.machine.policy,
            owner_bypass: sc.machine.owner_bypass,
            shards: sc.machine.shards,
            fault_seed: sc.faults.map(|f| f.seed).unwrap_or(0),
            analytic: sc.analytic.map(|a| AnalyticProbe {
                n_tasks: a.n_tasks,
                w: a.w,
                refs: a.refs,
                warmup: a.warmup,
            }),
            ops: tmc_scenario::ops::materialize(sc),
        }
    }

    /// Serializes the case as canonical `.tmcs` scenario text.
    pub fn encode(&self) -> String {
        self.to_scenario().encode()
    }

    /// Parses a case from `.tmcs` scenario text.
    ///
    /// # Errors
    ///
    /// Returns the scenario parser's line/column-addressed message.
    pub fn decode(text: &str) -> Result<CaseSpec, String> {
        let sc = tmc_scenario::parse(text).map_err(|e| e.to_string())?;
        Ok(CaseSpec::from_scenario(&sc))
    }

    /// Renders the case as a self-contained `#[test]` snippet that rebuilds
    /// the exact case and asserts the named pair holds.
    pub fn rust_snippet(&self, pair: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "/// Minimized reproducer (seed {}).", self.seed);
        let _ = writeln!(s, "#[test]");
        let _ = writeln!(s, "fn conformance_repro_seed_{}() {{", self.seed);
        let _ = writeln!(
            s,
            "    use tmc_conformance::{{CaseSpec, check_pair, Pair}};"
        );
        let _ = writeln!(s, "    let text = concat!(");
        for line in self.encode().lines() {
            let _ = writeln!(s, "        {:?}, \"\\n\",", line);
        }
        let _ = writeln!(s, "    );");
        let _ = writeln!(s, "    let case = CaseSpec::decode(text).unwrap();");
        let _ = writeln!(
            s,
            "    if let Err(d) = check_pair(&case, Pair::parse({pair:?}).unwrap()) {{"
        );
        let _ = writeln!(s, "        panic!(\"{{}}\", d);");
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmc_core::Mode;
    use tmc_memsys::WordAddr;

    fn sample() -> CaseSpec {
        CaseSpec {
            seed: 7,
            n_caches: 8,
            sets: 2,
            ways: 1,
            words_log2: 1,
            scheme: SchemeKind::BitVector,
            policy: ModePolicy::Adaptive { window: 8 },
            owner_bypass: false,
            shards: 2,
            fault_seed: 99,
            analytic: Some(AnalyticProbe {
                n_tasks: 4,
                w: 0.25,
                refs: 400,
                warmup: 100,
            }),
            ops: vec![
                ShardOp::Write {
                    proc: 0,
                    addr: WordAddr::new(12),
                    value: 1,
                },
                ShardOp::Read {
                    proc: 3,
                    addr: WordAddr::new(12),
                },
                ShardOp::SetMode {
                    proc: 0,
                    addr: WordAddr::new(12),
                    mode: Mode::DistributedWrite,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let case = sample();
        let text = case.encode();
        assert!(text.contains("[machine]"), "scenario text:\n{text}");
        let back = CaseSpec::decode(&text).expect("decodes");
        assert_eq!(case, back);
    }

    #[test]
    fn decode_reports_line_and_column() {
        let err = CaseSpec::decode("[scenario]\nname = x\n[machine]\nn_caches = frog\n")
            .expect_err("rejects");
        assert!(err.contains("line 4"), "{err}");
        assert!(CaseSpec::decode("mystery = 3").is_err());
    }

    #[test]
    fn workload_scenarios_materialize_into_cases() {
        let text = "\
[scenario]
name = mini
[machine]
n_caches = 8
[workload]
family = shared-block
tasks = 4
references = 50
";
        let case = CaseSpec::decode(text).expect("decodes");
        assert_eq!(case.ops.len(), 50);
        assert_eq!(case.n_caches, 8);
    }

    #[test]
    fn config_reflects_fields() {
        let cfg = sample().config();
        assert_eq!(cfg.n_caches, 8);
        assert_eq!(cfg.geometry.sets(), 2);
        assert!(!cfg.owner_bypass);
        assert!(cfg.faults.is_none());
    }
}
