//! The fully explicit, replayable conformance case.
//!
//! A case is *self-contained*: after shrinking, the op list is no longer
//! derivable from the seed, so the textual encoding carries every field —
//! config, shard request, fault seed, analytic probe and the op script —
//! and [`CaseSpec::decode`] reproduces the exact case from the text alone.

use std::fmt::Write as _;

use tmc_bench::shardsim::ShardOp;
use tmc_bench::tracecheck::{parse_policy, parse_scheme_kind, policy_str, scheme_kind_str};
use tmc_core::{Mode, ModePolicy, SystemConfig};
use tmc_memsys::{BlockSpec, CacheGeometry, WordAddr};
use tmc_omeganet::SchemeKind;

/// Steady-state parameters for the simulator-vs-analytic pair.
///
/// The closed forms (eqs. 11–12) assume the §4 sharing model — `n_tasks`
/// sharers per block, write fraction `w`, steady state — so the analytic
/// pair re-derives a `SharedBlockWorkload` from these fields rather than
/// using the case's op script.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticProbe {
    /// Sharer tasks per block (the paper's `n`).
    pub n_tasks: usize,
    /// Write fraction (the paper's `w`).
    pub w: f64,
    /// Measured references after warmup.
    pub refs: usize,
    /// Warmup references excluded from the measurement.
    pub warmup: usize,
}

/// One conformance case: config × op script × shard request × fault seed
/// × optional analytic probe.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Seed the case was generated from (zero for hand-written cases).
    pub seed: u64,
    /// Number of caches/processors (power of two).
    pub n_caches: usize,
    /// Cache sets per processor (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// log2 words per block.
    pub words_log2: u32,
    /// Multicast scheme.
    pub scheme: SchemeKind,
    /// Mode policy.
    pub policy: ModePolicy,
    /// Whether the owner-bypass optimization is on.
    pub owner_bypass: bool,
    /// Requested shard count for the sharded pair (clamped by
    /// `shard_count`; the pair is skipped when it clamps below 2).
    pub shards: usize,
    /// Seed for the zero-count fault plan of the faults pair.
    pub fault_seed: u64,
    /// Steady-state probe for the analytic pair, when applicable.
    pub analytic: Option<AnalyticProbe>,
    /// The op script every value-level engine executes.
    pub ops: Vec<ShardOp>,
}

impl CaseSpec {
    /// The fault-free `SystemConfig` the case describes.
    pub fn config(&self) -> SystemConfig {
        SystemConfig::new(self.n_caches)
            .geometry(CacheGeometry::new(self.sets, self.ways))
            .block_spec(BlockSpec::new(self.words_log2))
            .multicast(self.scheme)
            .mode_policy(self.policy)
            .owner_bypass(self.owner_bypass)
    }

    /// Same config under a different mode policy (for the adaptive pair).
    pub fn config_with_policy(&self, policy: ModePolicy) -> SystemConfig {
        SystemConfig::new(self.n_caches)
            .geometry(CacheGeometry::new(self.sets, self.ways))
            .block_spec(BlockSpec::new(self.words_log2))
            .multicast(self.scheme)
            .mode_policy(policy)
            .owner_bypass(self.owner_bypass)
    }

    /// Serializes the case to the `.case` corpus text format.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# tmc-conformance case");
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "n_caches = {}", self.n_caches);
        let _ = writeln!(s, "sets = {}", self.sets);
        let _ = writeln!(s, "ways = {}", self.ways);
        let _ = writeln!(s, "words_log2 = {}", self.words_log2);
        let _ = writeln!(s, "scheme = {}", scheme_kind_str(self.scheme));
        let _ = writeln!(s, "policy = {}", policy_str(self.policy));
        let _ = writeln!(s, "owner_bypass = {}", self.owner_bypass);
        let _ = writeln!(s, "shards = {}", self.shards);
        let _ = writeln!(s, "fault_seed = {}", self.fault_seed);
        if let Some(p) = self.analytic {
            let _ = writeln!(
                s,
                "analytic = {} {} {} {}",
                p.n_tasks, p.w, p.refs, p.warmup
            );
        }
        for op in &self.ops {
            match *op {
                ShardOp::Read { proc, addr } => {
                    let _ = writeln!(s, "op = R {proc} {}", addr.value());
                }
                ShardOp::Write { proc, addr, value } => {
                    let _ = writeln!(s, "op = W {proc} {} {value}", addr.value());
                }
                ShardOp::SetMode { proc, addr, mode } => {
                    let m = match mode {
                        Mode::DistributedWrite => "dw",
                        Mode::GlobalRead => "gr",
                    };
                    let _ = writeln!(s, "op = M {proc} {} {m}", addr.value());
                }
            }
        }
        s
    }

    /// Parses the `.case` corpus text format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn decode(text: &str) -> Result<CaseSpec, String> {
        let mut case = CaseSpec {
            seed: 0,
            n_caches: 4,
            sets: 4,
            ways: 1,
            words_log2: 2,
            scheme: SchemeKind::Combined,
            policy: ModePolicy::Fixed(Mode::GlobalRead),
            owner_bypass: true,
            shards: 1,
            fault_seed: 0,
            analytic: None,
            ops: Vec::new(),
        };
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", i + 1))?;
            let (key, val) = (key.trim(), val.trim());
            let bad = |what: &str| format!("line {}: bad {what}: {val:?}", i + 1);
            match key {
                "seed" => case.seed = val.parse().map_err(|_| bad("seed"))?,
                "n_caches" => case.n_caches = val.parse().map_err(|_| bad("n_caches"))?,
                "sets" => case.sets = val.parse().map_err(|_| bad("sets"))?,
                "ways" => case.ways = val.parse().map_err(|_| bad("ways"))?,
                "words_log2" => case.words_log2 = val.parse().map_err(|_| bad("words_log2"))?,
                "scheme" => case.scheme = parse_scheme_kind(val).ok_or_else(|| bad("scheme"))?,
                "policy" => case.policy = parse_policy(val).ok_or_else(|| bad("policy"))?,
                "owner_bypass" => {
                    case.owner_bypass = val.parse().map_err(|_| bad("owner_bypass"))?
                }
                "shards" => case.shards = val.parse().map_err(|_| bad("shards"))?,
                "fault_seed" => case.fault_seed = val.parse().map_err(|_| bad("fault_seed"))?,
                "analytic" => {
                    let f: Vec<&str> = val.split_whitespace().collect();
                    if f.len() != 4 {
                        return Err(bad("analytic (want `n_tasks w refs warmup`)"));
                    }
                    case.analytic = Some(AnalyticProbe {
                        n_tasks: f[0].parse().map_err(|_| bad("analytic n_tasks"))?,
                        w: f[1].parse().map_err(|_| bad("analytic w"))?,
                        refs: f[2].parse().map_err(|_| bad("analytic refs"))?,
                        warmup: f[3].parse().map_err(|_| bad("analytic warmup"))?,
                    });
                }
                "op" => case.ops.push(parse_op(val).ok_or_else(|| bad("op"))?),
                "pair" | "note" => {} // corpus metadata, not part of the case
                _ => return Err(format!("line {}: unknown key {key:?}", i + 1)),
            }
        }
        Ok(case)
    }

    /// Renders the case as a self-contained `#[test]` snippet that rebuilds
    /// the exact case and asserts the named pair holds.
    pub fn rust_snippet(&self, pair: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "/// Minimized reproducer (seed {}).", self.seed);
        let _ = writeln!(s, "#[test]");
        let _ = writeln!(s, "fn conformance_repro_seed_{}() {{", self.seed);
        let _ = writeln!(
            s,
            "    use tmc_conformance::{{CaseSpec, check_pair, Pair}};"
        );
        let _ = writeln!(s, "    let text = concat!(");
        for line in self.encode().lines() {
            let _ = writeln!(s, "        {:?}, \"\\n\",", line);
        }
        let _ = writeln!(s, "    );");
        let _ = writeln!(s, "    let case = CaseSpec::decode(text).unwrap();");
        let _ = writeln!(
            s,
            "    if let Err(d) = check_pair(&case, Pair::parse({pair:?}).unwrap()) {{"
        );
        let _ = writeln!(s, "        panic!(\"{{}}\", d);");
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "}}");
        s
    }
}

fn parse_op(s: &str) -> Option<ShardOp> {
    let f: Vec<&str> = s.split_whitespace().collect();
    match *f.first()? {
        "R" if f.len() == 3 => Some(ShardOp::Read {
            proc: f[1].parse().ok()?,
            addr: WordAddr::new(f[2].parse().ok()?),
        }),
        "W" if f.len() == 4 => Some(ShardOp::Write {
            proc: f[1].parse().ok()?,
            addr: WordAddr::new(f[2].parse().ok()?),
            value: f[3].parse().ok()?,
        }),
        "M" if f.len() == 4 => Some(ShardOp::SetMode {
            proc: f[1].parse().ok()?,
            addr: WordAddr::new(f[2].parse().ok()?),
            mode: match f[3] {
                "dw" => Mode::DistributedWrite,
                "gr" => Mode::GlobalRead,
                _ => return None,
            },
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseSpec {
        CaseSpec {
            seed: 7,
            n_caches: 8,
            sets: 2,
            ways: 1,
            words_log2: 1,
            scheme: SchemeKind::BitVector,
            policy: ModePolicy::Adaptive { window: 8 },
            owner_bypass: false,
            shards: 2,
            fault_seed: 99,
            analytic: Some(AnalyticProbe {
                n_tasks: 4,
                w: 0.25,
                refs: 400,
                warmup: 100,
            }),
            ops: vec![
                ShardOp::Write {
                    proc: 0,
                    addr: WordAddr::new(12),
                    value: 1,
                },
                ShardOp::Read {
                    proc: 3,
                    addr: WordAddr::new(12),
                },
                ShardOp::SetMode {
                    proc: 0,
                    addr: WordAddr::new(12),
                    mode: Mode::DistributedWrite,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let case = sample();
        let text = case.encode();
        let back = CaseSpec::decode(&text).expect("decodes");
        assert_eq!(case, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CaseSpec::decode("n_caches = frog").is_err());
        assert!(CaseSpec::decode("op = X 1 2").is_err());
        assert!(CaseSpec::decode("mystery = 3").is_err());
    }

    #[test]
    fn config_reflects_fields() {
        let cfg = sample().config();
        assert_eq!(cfg.n_caches, 8);
        assert_eq!(cfg.geometry.sets(), 2);
        assert!(!cfg.owner_bypass);
        assert!(cfg.faults.is_none());
    }
}
