//! Differential conformance fuzzing across every engine in the workspace.
//!
//! The repo can execute the same Stenström workload six ways — the serial
//! [`tmc_core::System`], the block-sharded `tmc_bench::shardsim`, JSONL
//! trace replay (`tmc_bench::tracecheck`), the baseline adapters, the
//! fault-injected admission path, and the closed-form analytic model
//! (`tmc-analytic`). Each prior layer of the test pyramid proves agreement
//! on the configurations it happens to enumerate; this crate *hunts* for
//! disagreement in the corners enumeration misses.
//!
//! A [`CaseSpec`] is a fully explicit, replayable conformance case: a
//! `SystemConfig` (geometry × block size × multicast scheme × mode policy
//! × bypass), an op script (`read`/`write`/`set_mode`), a requested shard
//! count, a fault-plan seed and an optional analytic steady-state probe.
//! [`gen::generate_case`] derives one deterministically from a single
//! `u64` seed; [`pairs::check_case`] runs it through every applicable
//! engine pair and diffs fingerprints, counters, per-link charges, memory
//! images and JSONL event streams; on divergence [`shrink::shrink`]
//! reduces the case to a minimal reproducer and [`corpus`] persists it as
//! a replayable `.tmcs` scenario file (the repo-wide scenario format —
//! see `tmc-scenario`) plus a self-contained `#[test]` snippet.
//!
//! The `fuzz_conformance` binary drives the loop:
//!
//! ```text
//! cargo run --release -p tmc-conformance --bin fuzz_conformance -- --smoke
//! cargo run --release -p tmc-conformance --bin fuzz_conformance -- --budget 5000 --seed 1
//! cargo run --release -p tmc-conformance --bin fuzz_conformance -- --corpus conformance/corpus
//! ```
//!
//! Every divergence the fuzzer has found and we fixed lives on as a
//! minimized reproducer under `conformance/corpus/`, replayed by the
//! corpus regression test and CI on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod gen;
pub mod outcome;
pub mod pairs;
pub mod shrink;

pub use case::{AnalyticProbe, CaseSpec};
pub use outcome::{Divergence, RunOutcome};
pub use pairs::{check_case, check_pair, Pair};
