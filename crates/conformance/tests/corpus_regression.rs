//! Replays every minimized reproducer committed under
//! `conformance/corpus/` — each one is a bug the fuzzer once found, and
//! none of them may come back.

use tmc_conformance::corpus;

#[test]
fn committed_corpus_stays_green() {
    let dir = corpus::default_corpus_dir();
    let report = corpus::run_dir(&dir).expect("corpus dir readable");
    assert!(
        report.failures.is_empty(),
        "corpus regressions: {:?}",
        report.failures
    );
    assert!(
        report.entries >= 2,
        "expected the committed reproducers to be found in {dir:?}"
    );
}
