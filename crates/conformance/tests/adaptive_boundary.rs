//! Adaptive-policy boundary behavior at the conformance level: switch
//! storms must shard deterministically at every K, and the
//! adaptive-vs-fixed divergence the pair *tolerates* must actually
//! exist — otherwise the pair's documentation would be describing a
//! phantom.

use tmc_bench::shardsim::{capture_sharded, run, ShardOp, ShardRunOptions};
use tmc_bench::tracecheck;
use tmc_conformance::outcome::run_serial;
use tmc_conformance::{check_pair, CaseSpec, Pair};
use tmc_core::{Mode, ModePolicy};
use tmc_memsys::WordAddr;

/// A switch storm: every processor hammers a handful of blocks with a
/// write-heavy mix under a tiny adaptive window, maximizing mid-stream
/// mode churn, plus explicit §2.2 directives layered on top.
fn storm_case(seed: u64) -> CaseSpec {
    let mut ops = Vec::new();
    for i in 0..240u64 {
        let proc = (i % 8) as usize;
        let addr = WordAddr::new((i * 5) % 24);
        match i % 6 {
            0 | 1 => ops.push(ShardOp::Write {
                proc,
                addr,
                value: i + 1,
            }),
            5 => ops.push(ShardOp::SetMode {
                proc,
                addr,
                mode: if i % 12 == 5 {
                    Mode::GlobalRead
                } else {
                    Mode::DistributedWrite
                },
            }),
            _ => ops.push(ShardOp::Read { proc, addr }),
        }
    }
    CaseSpec {
        seed,
        n_caches: 8,
        sets: 4,
        ways: 2,
        words_log2: 2,
        scheme: tmc_omeganet::SchemeKind::Combined,
        policy: ModePolicy::Adaptive { window: 4 },
        owner_bypass: true,
        shards: 2,
        fault_seed: seed,
        analytic: None,
        ops,
    }
}

/// The storm shards bit-identically at K = 2, 4 and 8: fingerprints,
/// counters, traffic, and the merged JSONL event stream all match the
/// serial run, even while adaptive windows close at different points in
/// different shards' local streams.
#[test]
fn switch_storm_is_shard_invariant() {
    let case = storm_case(77);
    let cfg = case.config();
    let serial = run_serial(cfg.clone(), &case.ops, false).expect("serial run");
    let serial_jsonl = tracecheck::capture(cfg.clone(), |sys| {
        tmc_bench::shardsim::apply_script(sys, &case.ops);
    })
    .expect("capturable");
    let mut switched = false;
    for shards in [2usize, 4, 8] {
        let sharded = run(
            &cfg,
            &case.ops,
            &ShardRunOptions::new(shards, 2).check(true),
        )
        .unwrap_or_else(|e| panic!("K={shards}: {e}"));
        assert_eq!(
            sharded.system.protocol_fingerprint(),
            serial.fingerprint,
            "K={shards}: fingerprint"
        );
        assert_eq!(
            sharded.system.traffic().total_bits(),
            serial.total_bits,
            "K={shards}: traffic"
        );
        switched |= sharded.system.counters().get("adaptive_switches") > 0;
        let jsonl = capture_sharded(&cfg, &case.ops, shards, 2).expect("capturable");
        assert_eq!(jsonl, serial_jsonl, "K={shards}: JSONL stream");
    }
    assert!(switched, "the storm must actually drive adaptive switches");
}

/// The divergence `adaptive-vs-fixed` documents as *expected* is real:
/// there are cases where the adaptive run's fingerprint and traffic
/// differ from both fixed modes while the pair (checking read values and
/// the cost bound) still passes. If this test ever fails because no
/// divergence exists, the pair could be tightened to full bit-identity.
#[test]
fn adaptive_vs_fixed_divergence_is_real_and_tolerated() {
    let case = storm_case(78);
    check_pair(&case, Pair::AdaptiveVsFixed).expect("the pair's contract holds");

    let adaptive = run_serial(case.config(), &case.ops, false).expect("adaptive");
    let dw = run_serial(
        case.config_with_policy(ModePolicy::Fixed(Mode::DistributedWrite)),
        &case.ops,
        false,
    )
    .expect("fixed DW");
    let gr = run_serial(
        case.config_with_policy(ModePolicy::Fixed(Mode::GlobalRead)),
        &case.ops,
        false,
    )
    .expect("fixed GR");
    assert_eq!(
        adaptive.read_values, dw.read_values,
        "values are contractual"
    );
    assert_eq!(
        adaptive.read_values, gr.read_values,
        "values are contractual"
    );
    assert_ne!(
        adaptive.fingerprint, dw.fingerprint,
        "adaptive protocol state should diverge from fixed DW"
    );
    assert_ne!(
        adaptive.fingerprint, gr.fingerprint,
        "adaptive protocol state should diverge from fixed GR"
    );
    assert!(
        adaptive.total_bits != dw.total_bits || adaptive.total_bits != gr.total_bits,
        "adaptive traffic should differ from at least one fixed mode"
    );
}
