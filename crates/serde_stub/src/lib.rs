//! No-op stand-ins for serde's `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds hermetically: every dependency is an in-tree path
//! dependency, so no registry access is ever required. The sources still
//! carry `#[cfg_attr(feature = "serde", derive(serde::Serialize,
//! serde::Deserialize))]` placeholders on the public data types; this crate
//! is what makes that feature *buildable* offline. Member crates rename it
//! to `serde` (`serde = { package = "tmc-serde-stub", ... }`), so the
//! `serde::Serialize` paths in the attributes resolve here.
//!
//! Both derives expand to nothing — no trait, no impl, no generated code —
//! which is exactly right for a placeholder: enabling the feature proves the
//! attribute plumbing is sound without changing any behavior. Swapping in
//! real serialization later is a per-crate one-line `Cargo.toml` change
//! (point the `serde` dependency at crates.io instead of this stub); none of
//! the attribute sites need to move.

use proc_macro::TokenStream;

/// Expands to nothing; stands in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; stands in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
