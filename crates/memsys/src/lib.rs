//! Memory-system substrate shared by every coherence protocol in the
//! workspace.
//!
//! The paper's machine (Figure 1) is N processors with private caches and N
//! interleaved memory modules on an omega network. This crate provides the
//! building blocks all protocol engines share:
//!
//! * [`addr`] — word/block address newtypes and the block→module
//!   interleaving map,
//! * [`data`] — block payloads ([`BlockData`]) holding real word values so
//!   coherence can be checked at the value level,
//! * [`cache`] — a set-associative, LRU [`CacheArray`] generic over the
//!   per-line state each protocol defines,
//! * [`memory`] — [`MainMemory`] (backing store) and the paper's
//!   [`BlockStore`] (one valid bit + owner id per block, §2.1),
//! * [`oracle`] — a flat [`ReferenceMemory`] updated in program order, used
//!   by tests to check every read value a protocol returns,
//! * [`sizing`] — [`MsgSizing`], the configurable message-size accounting
//!   the communication-cost experiments depend on.
//!
//! # Example
//!
//! ```
//! use tmc_memsys::{BlockSpec, CacheArray, CacheGeometry, WordAddr};
//!
//! let spec = BlockSpec::new(4); // 16-word blocks
//! let block = spec.block_of(WordAddr::new(35));
//! assert_eq!(block.index(), 2);
//!
//! let mut cache: CacheArray<&str> = CacheArray::new(CacheGeometry::new(2, 2));
//! assert!(cache.get(block).is_none());
//! cache.insert(block, "state");
//! assert_eq!(cache.get(block), Some(&"state"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod data;
pub mod memory;
pub mod oracle;
pub mod sizing;

pub use addr::{BlockAddr, BlockSpec, CacheId, ModuleMap, WordAddr};
pub use cache::{CacheArray, CacheGeometry};
pub use data::BlockData;
pub use memory::{BlockStore, MainMemory};
pub use oracle::ReferenceMemory;
pub use sizing::MsgSizing;
