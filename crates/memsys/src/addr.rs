//! Address newtypes and address mapping.

use std::fmt;

/// A word address in the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WordAddr(u64);

impl WordAddr {
    /// Creates a word address.
    pub const fn new(a: u64) -> Self {
        WordAddr(a)
    }

    /// Raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:#x}", self.0)
    }
}

/// A block address (word address with the offset bits stripped).
///
/// The *block* is the paper's unit of consistency: "a logical unit of memory
/// consisting of a number of words and with an identification".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from its index.
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Block index (address space ordinal).
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

/// Identifies one cache (equivalently, its processor and network port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheId(pub u16);

impl CacheId {
    /// The network port this cache attaches to.
    pub fn port(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Block geometry: how word addresses split into (block, offset).
///
/// # Example
///
/// ```
/// use tmc_memsys::{BlockSpec, WordAddr};
///
/// let spec = BlockSpec::new(2); // 4-word blocks
/// assert_eq!(spec.words_per_block(), 4);
/// assert_eq!(spec.block_of(WordAddr::new(11)).index(), 2);
/// assert_eq!(spec.offset_of(WordAddr::new(11)), 3);
/// assert_eq!(spec.word_at(spec.block_of(WordAddr::new(11)), 3), WordAddr::new(11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockSpec {
    offset_bits: u32,
}

impl BlockSpec {
    /// Creates a spec with `2^offset_bits` words per block.
    ///
    /// # Panics
    ///
    /// Panics if `offset_bits > 16` (blocks beyond 65536 words are surely a
    /// configuration mistake).
    pub fn new(offset_bits: u32) -> Self {
        assert!(
            offset_bits <= 16,
            "block offset bits {offset_bits} too large"
        );
        BlockSpec { offset_bits }
    }

    /// Number of words per block.
    pub fn words_per_block(self) -> usize {
        1usize << self.offset_bits
    }

    /// The block containing `addr`.
    pub fn block_of(self, addr: WordAddr) -> BlockAddr {
        BlockAddr(addr.value() >> self.offset_bits)
    }

    /// Word offset of `addr` within its block.
    pub fn offset_of(self, addr: WordAddr) -> usize {
        (addr.value() & ((1u64 << self.offset_bits) - 1)) as usize
    }

    /// The word address at `offset` within `block`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the block size.
    pub fn word_at(self, block: BlockAddr, offset: usize) -> WordAddr {
        assert!(offset < self.words_per_block(), "offset beyond block");
        WordAddr((block.index() << self.offset_bits) | offset as u64)
    }
}

/// Maps blocks to memory modules by low-order interleaving, the standard
/// layout for multistage-network machines (RP3, Butterfly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModuleMap {
    modules: usize,
}

impl ModuleMap {
    /// Creates a map over `modules` memory modules.
    ///
    /// # Panics
    ///
    /// Panics unless `modules` is a nonzero power of two.
    pub fn new(modules: usize) -> Self {
        assert!(
            modules.is_power_of_two(),
            "module count must be a power of two"
        );
        ModuleMap { modules }
    }

    /// Number of modules.
    pub fn modules(self) -> usize {
        self.modules
    }

    /// The module (equivalently, its network port) holding `block`.
    pub fn module_of(self, block: BlockAddr) -> usize {
        (block.index() as usize) & (self.modules - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_roundtrips() {
        let spec = BlockSpec::new(3);
        for a in [0u64, 1, 7, 8, 100, 1023] {
            let w = WordAddr::new(a);
            let b = spec.block_of(w);
            let off = spec.offset_of(w);
            assert_eq!(spec.word_at(b, off), w);
            assert!(off < spec.words_per_block());
        }
    }

    #[test]
    fn zero_offset_bits_means_word_blocks() {
        let spec = BlockSpec::new(0);
        assert_eq!(spec.words_per_block(), 1);
        assert_eq!(spec.block_of(WordAddr::new(9)).index(), 9);
        assert_eq!(spec.offset_of(WordAddr::new(9)), 0);
    }

    #[test]
    fn interleaving_spreads_consecutive_blocks() {
        let map = ModuleMap::new(4);
        let mods: Vec<usize> = (0..8).map(|i| map.module_of(BlockAddr::new(i))).collect();
        assert_eq!(mods, [0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn module_map_rejects_non_powers() {
        ModuleMap::new(3);
    }

    #[test]
    fn displays_are_compact() {
        assert_eq!(WordAddr::new(16).to_string(), "w0x10");
        assert_eq!(BlockAddr::new(16).to_string(), "b0x10");
        assert_eq!(CacheId(3).to_string(), "C3");
        assert_eq!(CacheId(3).port(), 3);
    }
}
