//! Main memory and the paper's block store.
//!
//! Both are *paged sparse structure-of-arrays* stores: the block address
//! space is split into fixed 1024-block pages materialized on first write,
//! and a block access is two integer divisions plus an indexed load — no
//! hashing on the simulation hot path, which matters once the machine runs
//! at N = 1024 caches over millions of blocks. Untouched regions cost
//! nothing beyond one page-directory slot per 1024 blocks, so resident
//! memory scales with the *touched* footprint (plus one pointer per page up
//! to the highest touched block), not the address-space size.

use crate::addr::{BlockAddr, BlockSpec, CacheId};
use crate::data::BlockData;

/// Blocks per page. A power of two: the page index and slot are a shift and
/// a mask of the block index.
const PAGE_BLOCKS: usize = 1024;

/// Words in a page's per-block presence bitmap.
const PAGE_MAP_WORDS: usize = PAGE_BLOCKS / 64;

/// One page of main memory: a presence bitmap plus the page's block words
/// stored contiguously (`PAGE_BLOCKS × words_per_block`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct MemPage {
    written: [u64; PAGE_MAP_WORDS],
    words: Vec<u64>,
}

impl MemPage {
    fn zeroed(words_per_block: usize) -> Self {
        MemPage {
            written: [0; PAGE_MAP_WORDS],
            words: vec![0; PAGE_BLOCKS * words_per_block],
        }
    }
}

/// Splits a block address into `(page index, slot within page)`.
#[inline]
fn page_slot(block: BlockAddr) -> (usize, usize) {
    let index = block.index() as usize;
    (index / PAGE_BLOCKS, index % PAGE_BLOCKS)
}

/// The machine's backing store: every block of the address space,
/// materialized lazily as zeroed data.
///
/// Module interleaving is a routing concern ([`crate::addr::ModuleMap`]);
/// `MainMemory` is the union of all modules' contents.
///
/// # Example
///
/// ```
/// use tmc_memsys::{BlockAddr, BlockSpec, MainMemory};
///
/// let mut mem = MainMemory::new(BlockSpec::new(2));
/// let b = BlockAddr::new(7);
/// assert_eq!(mem.read_block(b)[0], 0);
/// let mut data = mem.block_data(b);
/// data.set_word(0, 99);
/// mem.write_block(b, &data);
/// assert_eq!(mem.read_block(b)[0], 99);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MainMemory {
    spec: BlockSpec,
    pages: Vec<Option<Box<MemPage>>>,
    written: usize,
    zero: Vec<u64>,
}

impl MainMemory {
    /// Creates a memory with the given block geometry, all zeros.
    pub fn new(spec: BlockSpec) -> Self {
        MainMemory {
            spec,
            pages: Vec::new(),
            written: 0,
            zero: vec![0; spec.words_per_block()],
        }
    }

    /// Block geometry.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// Reads a block's words (zeros if never written).
    #[inline]
    pub fn read_block(&self, block: BlockAddr) -> &[u64] {
        let (pi, slot) = page_slot(block);
        match self.pages.get(pi) {
            Some(Some(page)) => {
                let wpb = self.spec.words_per_block();
                &page.words[slot * wpb..(slot + 1) * wpb]
            }
            _ => &self.zero,
        }
    }

    /// Reads a block into an owned [`BlockData`] — the write-back / fill
    /// companion of [`MainMemory::read_block`].
    pub fn block_data(&self, block: BlockAddr) -> BlockData {
        BlockData::from_slice(self.read_block(block))
    }

    /// A block's words if it was ever written, `None` otherwise. A block
    /// written with zeros is distinct from a never-written block.
    pub fn written_block(&self, block: BlockAddr) -> Option<&[u64]> {
        let (pi, slot) = page_slot(block);
        let page = self.pages.get(pi)?.as_ref()?;
        if page.written[slot / 64] & (1 << (slot % 64)) == 0 {
            return None;
        }
        let wpb = self.spec.words_per_block();
        Some(&page.words[slot * wpb..(slot + 1) * wpb])
    }

    /// Overwrites a block (a write-back). The containing page is
    /// materialized on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong word count for this memory's spec.
    pub fn write_block(&mut self, block: BlockAddr, data: &BlockData) {
        assert_eq!(
            data.len(),
            self.spec.words_per_block(),
            "block size mismatch on write-back"
        );
        self.write_words(block, data.words());
    }

    /// [`MainMemory::write_block`] on a raw word slice.
    fn write_words(&mut self, block: BlockAddr, words: &[u64]) {
        let (pi, slot) = page_slot(block);
        if pi >= self.pages.len() {
            self.pages.resize_with(pi + 1, || None);
        }
        let wpb = self.spec.words_per_block();
        let page = self.pages[pi].get_or_insert_with(|| Box::new(MemPage::zeroed(wpb)));
        page.words[slot * wpb..(slot + 1) * wpb].copy_from_slice(words);
        let bit = 1u64 << (slot % 64);
        if page.written[slot / 64] & bit == 0 {
            page.written[slot / 64] |= bit;
            self.written += 1;
        }
    }

    /// Number of blocks ever written.
    pub fn dirty_blocks(&self) -> usize {
        self.written
    }

    /// Number of materialized pages — the resident-memory unit of the paged
    /// layout ([`MainMemory::page_blocks`] blocks each).
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Blocks per page of the paged layout.
    pub const fn page_blocks() -> usize {
        PAGE_BLOCKS
    }

    /// Iterates over every written block in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &[u64])> {
        let wpb = self.spec.words_per_block();
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(pi, p)| p.as_deref().map(|page| (pi, page)))
            .flat_map(move |(pi, page)| {
                page.written.iter().enumerate().flat_map(move |(wi, &w)| {
                    let mut rest = w;
                    std::iter::from_fn(move || {
                        if rest == 0 {
                            return None;
                        }
                        let bit = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let slot = wi * 64 + bit;
                        Some((
                            BlockAddr::new((pi * PAGE_BLOCKS + slot) as u64),
                            &page.words[slot * wpb..(slot + 1) * wpb],
                        ))
                    })
                })
            })
    }

    /// Absorbs every written block of `other`, asserting disjointness — the
    /// shard-merge invariant: two shards never write the same block.
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch or if both memories wrote a block.
    pub fn absorb(&mut self, other: MainMemory) {
        assert_eq!(self.spec, other.spec, "absorb requires identical specs");
        let wpb = self.spec.words_per_block();
        for (pi, page) in other.pages.into_iter().enumerate() {
            let Some(page) = page else { continue };
            for (wi, &w) in page.written.iter().enumerate() {
                let mut rest = w;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let slot = wi * 64 + bit;
                    let block = BlockAddr::new((pi * PAGE_BLOCKS + slot) as u64);
                    assert!(
                        self.written_block(block).is_none(),
                        "absorb must be disjoint: both wrote {block}"
                    );
                    self.write_words(block, &page.words[slot * wpb..(slot + 1) * wpb]);
                }
            }
        }
    }
}

/// Written-footprint equality: two memories are equal when the same set of
/// blocks was written with the same words, regardless of which pages
/// happen to be materialized. A block written with zeros still
/// distinguishes a memory from one that never wrote it.
impl PartialEq for MainMemory {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.written == other.written
            && self
                .iter()
                .all(|(block, words)| other.written_block(block) == Some(words))
    }
}

impl Eq for MainMemory {}

/// One page of the block store: a valid bitmap plus the owner id per slot
/// (structure-of-arrays, like the paper's V bit + log₂ N-bit ID field).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct StorePage {
    valid: [u64; PAGE_MAP_WORDS],
    owner: Vec<u16>,
}

impl StorePage {
    fn empty() -> Self {
        StorePage {
            valid: [0; PAGE_MAP_WORDS],
            owner: vec![0; PAGE_BLOCKS],
        }
    }
}

/// The paper's *block store* (§2.1): "Each memory module keeps track of the
/// owner for each of its cached blocks … Each entry contains a valid bit (V)
/// and an ID-field containing log₂ N bits storing the identification of the
/// owner for the block."
///
/// A clear valid bit models `V = 0` (no cache owns the block).
///
/// # Example
///
/// ```
/// use tmc_memsys::{BlockAddr, BlockStore, CacheId};
///
/// let mut store = BlockStore::new();
/// let b = BlockAddr::new(3);
/// assert_eq!(store.owner(b), None);
/// store.set_owner(b, CacheId(5));
/// assert_eq!(store.owner(b), Some(CacheId(5)));
/// store.clear(b);
/// assert_eq!(store.owner(b), None);
/// ```
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockStore {
    pages: Vec<Option<Box<StorePage>>>,
    owned: usize,
}

impl BlockStore {
    /// Creates an empty store (no block owned).
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// The owner of `block`, or `None` if the entry is invalid.
    #[inline]
    pub fn owner(&self, block: BlockAddr) -> Option<CacheId> {
        let (pi, slot) = page_slot(block);
        let page = self.pages.get(pi)?.as_ref()?;
        if page.valid[slot / 64] & (1 << (slot % 64)) == 0 {
            None
        } else {
            Some(CacheId(page.owner[slot]))
        }
    }

    /// Marks `cache` as the owner of `block`.
    pub fn set_owner(&mut self, block: BlockAddr, cache: CacheId) {
        let (pi, slot) = page_slot(block);
        if pi >= self.pages.len() {
            self.pages.resize_with(pi + 1, || None);
        }
        let page = self.pages[pi].get_or_insert_with(|| Box::new(StorePage::empty()));
        let bit = 1u64 << (slot % 64);
        if page.valid[slot / 64] & bit == 0 {
            page.valid[slot / 64] |= bit;
            self.owned += 1;
        }
        page.owner[slot] = cache.0;
    }

    /// Clears the entry for `block` (the owner replaced its only copy).
    pub fn clear(&mut self, block: BlockAddr) {
        let (pi, slot) = page_slot(block);
        let Some(Some(page)) = self.pages.get_mut(pi) else {
            return;
        };
        let bit = 1u64 << (slot % 64);
        if page.valid[slot / 64] & bit != 0 {
            page.valid[slot / 64] &= !bit;
            // Zero the stale id so equal stores serialize identically.
            page.owner[slot] = 0;
            self.owned -= 1;
        }
    }

    /// Number of currently owned blocks.
    pub fn owned_blocks(&self) -> usize {
        self.owned
    }

    /// Iterates over `(block, owner)` pairs in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, CacheId)> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(pi, p)| p.as_deref().map(|page| (pi, page)))
            .flat_map(|(pi, page)| {
                page.valid.iter().enumerate().flat_map(move |(wi, &w)| {
                    let mut rest = w;
                    std::iter::from_fn(move || {
                        if rest == 0 {
                            return None;
                        }
                        let bit = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let slot = wi * 64 + bit;
                        Some((
                            BlockAddr::new((pi * PAGE_BLOCKS + slot) as u64),
                            CacheId(page.owner[slot]),
                        ))
                    })
                })
            })
    }

    /// Absorbs every entry of `other`, asserting disjointness — the
    /// shard-merge invariant: a block's owner is tracked by one shard only.
    ///
    /// # Panics
    ///
    /// Panics if both stores track an owner for the same block.
    pub fn absorb(&mut self, other: BlockStore) {
        for (block, owner) in other.iter() {
            assert!(
                self.owner(block).is_none(),
                "absorb must be disjoint: {block} owned twice"
            );
            self.set_owner(block, owner);
        }
    }
}

/// Entry-set equality: equal stores track the same owners for the same
/// blocks, regardless of page materialization history.
impl PartialEq for BlockStore {
    fn eq(&self, other: &Self) -> bool {
        self.owned == other.owned
            && self
                .iter()
                .all(|(block, owner)| other.owner(block) == Some(owner))
    }
}

impl Eq for BlockStore {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_defaults_to_zero() {
        let mem = MainMemory::new(BlockSpec::new(1));
        assert_eq!(mem.read_block(BlockAddr::new(1000)), &[0, 0]);
        assert_eq!(mem.dirty_blocks(), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn write_back_roundtrips() {
        let mut mem = MainMemory::new(BlockSpec::new(1));
        mem.write_block(BlockAddr::new(4), &BlockData::from_words(vec![7, 8]));
        assert_eq!(mem.read_block(BlockAddr::new(4)), &[7, 8]);
        assert_eq!(mem.block_data(BlockAddr::new(4)).words(), &[7, 8]);
        assert_eq!(mem.dirty_blocks(), 1);
        // Rewrites do not double-count.
        mem.write_block(BlockAddr::new(4), &BlockData::from_words(vec![9, 9]));
        assert_eq!(mem.dirty_blocks(), 1);
        assert_eq!(mem.read_block(BlockAddr::new(4)), &[9, 9]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn write_back_checks_geometry() {
        let mut mem = MainMemory::new(BlockSpec::new(2));
        mem.write_block(BlockAddr::new(0), &BlockData::from_words(vec![1]));
    }

    #[test]
    fn sparse_writes_touch_only_their_pages() {
        let mut mem = MainMemory::new(BlockSpec::new(0));
        mem.write_block(BlockAddr::new(3), &BlockData::from_words(vec![1]));
        mem.write_block(BlockAddr::new(2_000_000), &BlockData::from_words(vec![2]));
        assert_eq!(mem.dirty_blocks(), 2);
        assert_eq!(mem.resident_pages(), 2);
        assert_eq!(mem.read_block(BlockAddr::new(2_000_000)), &[2]);
        // A neighbor in a materialized page still reads as zero and is
        // distinct from a written block for equality purposes.
        assert_eq!(mem.read_block(BlockAddr::new(2_000_001)), &[0]);
        assert_eq!(mem.written_block(BlockAddr::new(2_000_001)), None);
    }

    #[test]
    fn memory_equality_ignores_materialization_history() {
        let spec = BlockSpec::new(0);
        let zero = BlockData::from_words(vec![0]);
        let one = BlockData::from_words(vec![1]);
        let mut a = MainMemory::new(spec);
        a.write_block(BlockAddr::new(5000), &one);
        a.write_block(BlockAddr::new(7), &zero);
        let mut b = MainMemory::new(spec);
        b.write_block(BlockAddr::new(7), &zero);
        b.write_block(BlockAddr::new(5000), &one);
        assert_eq!(a, b);
        // Written-with-zeros differs from never-written.
        let mut c = MainMemory::new(spec);
        c.write_block(BlockAddr::new(5000), &one);
        assert_ne!(a, c);
        c.write_block(BlockAddr::new(8), &zero);
        assert_ne!(a, c);
    }

    #[test]
    fn memory_iterates_in_ascending_order() {
        let mut mem = MainMemory::new(BlockSpec::new(0));
        for b in [9000u64, 3, 1025, 64] {
            mem.write_block(BlockAddr::new(b), &BlockData::from_words(vec![b]));
        }
        let got: Vec<u64> = mem.iter().map(|(b, _)| b.index()).collect();
        assert_eq!(got, [3, 64, 1025, 9000]);
    }

    #[test]
    fn memory_absorb_merges_disjoint_footprints() {
        let spec = BlockSpec::new(0);
        let mut a = MainMemory::new(spec);
        a.write_block(BlockAddr::new(1), &BlockData::from_words(vec![10]));
        let mut b = MainMemory::new(spec);
        b.write_block(BlockAddr::new(2), &BlockData::from_words(vec![20]));
        b.write_block(BlockAddr::new(4096), &BlockData::from_words(vec![30]));
        a.absorb(b);
        assert_eq!(a.dirty_blocks(), 3);
        assert_eq!(a.read_block(BlockAddr::new(4096)), &[30]);
    }

    #[test]
    #[should_panic(expected = "absorb must be disjoint")]
    fn memory_absorb_rejects_overlap() {
        let spec = BlockSpec::new(0);
        let mut a = MainMemory::new(spec);
        a.write_block(BlockAddr::new(1), &BlockData::from_words(vec![10]));
        let mut b = MainMemory::new(spec);
        b.write_block(BlockAddr::new(1), &BlockData::from_words(vec![20]));
        a.absorb(b);
    }

    #[test]
    fn block_store_tracks_ownership_changes() {
        let mut store = BlockStore::new();
        let b = BlockAddr::new(9);
        store.set_owner(b, CacheId(1));
        store.set_owner(b, CacheId(2)); // ownership migrates
        assert_eq!(store.owner(b), Some(CacheId(2)));
        assert_eq!(store.owned_blocks(), 1);
        store.clear(b);
        assert_eq!(store.owned_blocks(), 0);
        // Clearing an absent entry is a no-op even off any page.
        store.clear(BlockAddr::new(1 << 30));
        assert_eq!(store.owned_blocks(), 0);
    }

    #[test]
    fn block_store_iterates_entries() {
        let mut store = BlockStore::new();
        store.set_owner(BlockAddr::new(2), CacheId(3));
        store.set_owner(BlockAddr::new(1), CacheId(0));
        store.set_owner(BlockAddr::new(40_000), CacheId(7));
        let entries: Vec<_> = store.iter().collect();
        assert_eq!(
            entries,
            [
                (BlockAddr::new(1), CacheId(0)),
                (BlockAddr::new(2), CacheId(3)),
                (BlockAddr::new(40_000), CacheId(7))
            ]
        );
    }

    #[test]
    fn block_store_equality_and_absorb() {
        let mut a = BlockStore::new();
        a.set_owner(BlockAddr::new(1), CacheId(1));
        let mut b = BlockStore::new();
        b.set_owner(BlockAddr::new(1), CacheId(1));
        // Materialize and clear a faraway page in one of them only.
        b.set_owner(BlockAddr::new(100_000), CacheId(2));
        b.clear(BlockAddr::new(100_000));
        assert_eq!(a, b);

        let mut c = BlockStore::new();
        c.set_owner(BlockAddr::new(2048), CacheId(4));
        a.absorb(c);
        assert_eq!(a.owner(BlockAddr::new(2048)), Some(CacheId(4)));
        assert_eq!(a.owned_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "owned twice")]
    fn block_store_absorb_rejects_overlap() {
        let mut a = BlockStore::new();
        a.set_owner(BlockAddr::new(3), CacheId(1));
        let mut b = BlockStore::new();
        b.set_owner(BlockAddr::new(3), CacheId(2));
        a.absorb(b);
    }
}
