//! Main memory and the paper's block store.

use std::collections::HashMap;

use crate::addr::{BlockAddr, BlockSpec, CacheId};
use crate::data::BlockData;

/// The machine's backing store: every block of the address space,
/// materialized lazily as zeroed data.
///
/// Module interleaving is a routing concern ([`crate::addr::ModuleMap`]);
/// `MainMemory` is the union of all modules' contents.
///
/// # Example
///
/// ```
/// use tmc_memsys::{BlockAddr, BlockSpec, MainMemory};
///
/// let mut mem = MainMemory::new(BlockSpec::new(2));
/// let b = BlockAddr::new(7);
/// assert_eq!(mem.read_block(b).word(0), 0);
/// let mut data = mem.read_block(b).clone();
/// data.set_word(0, 99);
/// mem.write_block(b, data);
/// assert_eq!(mem.read_block(b).word(0), 99);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MainMemory {
    spec: BlockSpec,
    blocks: HashMap<BlockAddr, BlockData>,
    zero: BlockData,
}

impl MainMemory {
    /// Creates a memory with the given block geometry, all zeros.
    pub fn new(spec: BlockSpec) -> Self {
        MainMemory {
            spec,
            blocks: HashMap::new(),
            zero: BlockData::zeroed(spec.words_per_block()),
        }
    }

    /// Block geometry.
    pub fn spec(&self) -> BlockSpec {
        self.spec
    }

    /// Reads a block (zeros if never written).
    pub fn read_block(&self, block: BlockAddr) -> &BlockData {
        self.blocks.get(&block).unwrap_or(&self.zero)
    }

    /// Overwrites a block (a write-back).
    ///
    /// # Panics
    ///
    /// Panics if `data` has the wrong word count for this memory's spec.
    pub fn write_block(&mut self, block: BlockAddr, data: BlockData) {
        assert_eq!(
            data.len(),
            self.spec.words_per_block(),
            "block size mismatch on write-back"
        );
        self.blocks.insert(block, data);
    }

    /// Number of blocks ever written.
    pub fn dirty_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over every written block in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &BlockData)> {
        self.blocks.iter().map(|(&b, d)| (b, d))
    }

    /// Absorbs every written block of `other`, asserting disjointness — the
    /// shard-merge invariant: two shards never write the same block.
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch or if both memories wrote a block.
    pub fn absorb(&mut self, other: MainMemory) {
        assert_eq!(self.spec, other.spec, "absorb requires identical specs");
        for (block, data) in other.blocks {
            let clash = self.blocks.insert(block, data);
            assert!(
                clash.is_none(),
                "absorb must be disjoint: both wrote {block}"
            );
        }
    }
}

/// The paper's *block store* (§2.1): "Each memory module keeps track of the
/// owner for each of its cached blocks … Each entry contains a valid bit (V)
/// and an ID-field containing log₂ N bits storing the identification of the
/// owner for the block."
///
/// An absent entry models `V = 0` (no cache owns the block).
///
/// # Example
///
/// ```
/// use tmc_memsys::{BlockAddr, BlockStore, CacheId};
///
/// let mut store = BlockStore::new();
/// let b = BlockAddr::new(3);
/// assert_eq!(store.owner(b), None);
/// store.set_owner(b, CacheId(5));
/// assert_eq!(store.owner(b), Some(CacheId(5)));
/// store.clear(b);
/// assert_eq!(store.owner(b), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockStore {
    owners: HashMap<BlockAddr, CacheId>,
}

impl BlockStore {
    /// Creates an empty store (no block owned).
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// The owner of `block`, or `None` if the entry is invalid.
    pub fn owner(&self, block: BlockAddr) -> Option<CacheId> {
        self.owners.get(&block).copied()
    }

    /// Marks `cache` as the owner of `block`.
    pub fn set_owner(&mut self, block: BlockAddr, cache: CacheId) {
        self.owners.insert(block, cache);
    }

    /// Clears the entry for `block` (the owner replaced its only copy).
    pub fn clear(&mut self, block: BlockAddr) {
        self.owners.remove(&block);
    }

    /// Number of currently owned blocks.
    pub fn owned_blocks(&self) -> usize {
        self.owners.len()
    }

    /// Iterates over `(block, owner)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, CacheId)> + '_ {
        self.owners.iter().map(|(&b, &c)| (b, c))
    }

    /// Absorbs every entry of `other`, asserting disjointness — the
    /// shard-merge invariant: a block's owner is tracked by one shard only.
    ///
    /// # Panics
    ///
    /// Panics if both stores track an owner for the same block.
    pub fn absorb(&mut self, other: BlockStore) {
        for (block, owner) in other.owners {
            let clash = self.owners.insert(block, owner);
            assert!(
                clash.is_none(),
                "absorb must be disjoint: {block} owned twice"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_defaults_to_zero() {
        let mem = MainMemory::new(BlockSpec::new(1));
        assert_eq!(mem.read_block(BlockAddr::new(1000)).words(), &[0, 0]);
        assert_eq!(mem.dirty_blocks(), 0);
    }

    #[test]
    fn write_back_roundtrips() {
        let mut mem = MainMemory::new(BlockSpec::new(1));
        mem.write_block(BlockAddr::new(4), BlockData::from_words(vec![7, 8]));
        assert_eq!(mem.read_block(BlockAddr::new(4)).words(), &[7, 8]);
        assert_eq!(mem.dirty_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn write_back_checks_geometry() {
        let mut mem = MainMemory::new(BlockSpec::new(2));
        mem.write_block(BlockAddr::new(0), BlockData::from_words(vec![1]));
    }

    #[test]
    fn block_store_tracks_ownership_changes() {
        let mut store = BlockStore::new();
        let b = BlockAddr::new(9);
        store.set_owner(b, CacheId(1));
        store.set_owner(b, CacheId(2)); // ownership migrates
        assert_eq!(store.owner(b), Some(CacheId(2)));
        assert_eq!(store.owned_blocks(), 1);
        store.clear(b);
        assert_eq!(store.owned_blocks(), 0);
    }

    #[test]
    fn block_store_iterates_entries() {
        let mut store = BlockStore::new();
        store.set_owner(BlockAddr::new(1), CacheId(0));
        store.set_owner(BlockAddr::new(2), CacheId(3));
        let mut entries: Vec<_> = store.iter().collect();
        entries.sort();
        assert_eq!(
            entries,
            [
                (BlockAddr::new(1), CacheId(0)),
                (BlockAddr::new(2), CacheId(3))
            ]
        );
    }
}
