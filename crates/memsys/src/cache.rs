//! A set-associative cache array generic over per-line protocol state.
//!
//! Each protocol in the workspace defines its own line type (state bits,
//! present vector, data, …); this container supplies the geometry: set
//! indexing by block address, way lookup by tag, and true-LRU replacement.
//!
//! The storage is a flat structure-of-arrays layout: one slot per
//! `(set, way)` pair, with tags, LRU stamps and lines in parallel vectors.
//! A lookup scans the `ways` contiguous tag words of one set — no pointer
//! chasing, no per-way struct padding — which is what the protocol hot path
//! (`tmc_core::System`) hits on every reference.

use crate::addr::BlockAddr;

/// Cache shape: number of sets and ways.
///
/// Total capacity is `sets × ways` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two and `ways ≥ 1`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways >= 1, "cache needs at least one way");
        CacheGeometry { sets, ways }
    }

    /// Number of sets.
    pub fn sets(self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Total block capacity.
    pub fn capacity_blocks(self) -> usize {
        self.sets * self.ways
    }

    /// The set index for `block`.
    pub fn set_of(self, block: BlockAddr) -> usize {
        (block.index() as usize) & (self.sets - 1)
    }
}

/// A free slot's stamp. Occupied slots always carry a stamp from
/// [`CacheArray::next_stamp`], which starts at 1, so 0 is unambiguous.
const FREE: u64 = 0;

/// A set-associative, true-LRU cache array on a flat SoA slot layout.
///
/// `L` is whatever per-line state a protocol needs. Lookups by
/// [`CacheArray::get`]/[`CacheArray::get_mut`] refresh recency;
/// [`CacheArray::peek`] does not.
///
/// # Example
///
/// ```
/// use tmc_memsys::{BlockAddr, CacheArray, CacheGeometry};
///
/// // Direct-mapped, 1 set: every block contends for one way.
/// let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 1));
/// assert!(c.insert(BlockAddr::new(1), 10).is_none());
/// let evicted = c.insert(BlockAddr::new(2), 20);
/// assert_eq!(evicted, Some((BlockAddr::new(1), 10)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheArray<L> {
    geometry: CacheGeometry,
    /// Slot `set * ways + way` holds that way's tag (block index).
    tags: Vec<u64>,
    /// Monotone use stamps, [`FREE`] marking an empty slot; among occupied
    /// ways the smallest stamp is the least recently used.
    stamps: Vec<u64>,
    lines: Vec<Option<L>>,
    len: usize,
    tick: u64,
}

impl<L> CacheArray<L> {
    /// Creates an empty array with `geometry`.
    pub fn new(geometry: CacheGeometry) -> Self {
        let slots = geometry.capacity_blocks();
        CacheArray {
            geometry,
            tags: vec![0; slots],
            stamps: vec![FREE; slots],
            lines: (0..slots).map(|_| None).collect(),
            len: 0,
            tick: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The slot range of `block`'s set.
    #[inline]
    fn set_range(&self, block: BlockAddr) -> std::ops::Range<usize> {
        let base = self.geometry.set_of(block) * self.geometry.ways;
        base..base + self.geometry.ways
    }

    /// The slot holding `block`, if resident.
    #[inline]
    fn slot_of(&self, block: BlockAddr) -> Option<usize> {
        let idx = block.index();
        self.set_range(block)
            .find(|&s| self.tags[s] == idx && self.stamps[s] != FREE)
    }

    /// Looks up `block`, refreshing its recency.
    pub fn get(&mut self, block: BlockAddr) -> Option<&L> {
        self.get_mut(block).map(|l| &*l)
    }

    /// Mutable lookup, refreshing recency.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut L> {
        let slot = self.slot_of(block)?;
        let stamp = self.next_stamp();
        self.stamps[slot] = stamp;
        self.lines[slot].as_mut()
    }

    /// Looks up `block` without touching recency.
    pub fn peek(&self, block: BlockAddr) -> Option<&L> {
        self.slot_of(block).and_then(|s| self.lines[s].as_ref())
    }

    /// Mutable lookup without touching recency.
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut L> {
        let slot = self.slot_of(block)?;
        self.lines[slot].as_mut()
    }

    /// The LRU slot of a full set, for an `incoming` block not resident.
    fn lru_slot(&self, incoming: BlockAddr) -> Option<usize> {
        let mut lru: Option<usize> = None;
        for s in self.set_range(incoming) {
            if self.stamps[s] == FREE {
                return None; // room left: nothing would be evicted
            }
            if self.tags[s] == incoming.index() {
                return None; // already resident: replaces in place
            }
            if lru.is_none_or(|l| self.stamps[s] < self.stamps[l]) {
                lru = Some(s);
            }
        }
        lru
    }

    /// The block that would be evicted to make room for `incoming`, if its
    /// set is full and `incoming` is not already resident.
    pub fn would_evict(&self, incoming: BlockAddr) -> Option<(BlockAddr, &L)> {
        let slot = self.lru_slot(incoming)?;
        Some((
            BlockAddr::new(self.tags[slot]),
            self.lines[slot].as_ref().expect("occupied slot has a line"),
        ))
    }

    /// Installs `line` for `block` (replacing any existing line for the same
    /// block), evicting and returning the LRU way if the set is full.
    pub fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)> {
        let stamp = self.next_stamp();
        if let Some(slot) = self.slot_of(block) {
            self.lines[slot] = Some(line);
            self.stamps[slot] = stamp;
            return None;
        }
        // Prefer a free way; otherwise evict the LRU one.
        let range = self.set_range(block);
        let slot = match range.clone().find(|&s| self.stamps[s] == FREE) {
            Some(free) => free,
            None => range
                .min_by_key(|&s| self.stamps[s])
                .expect("ways >= 1 by construction"),
        };
        let evicted = if self.stamps[slot] == FREE {
            self.len += 1;
            None
        } else {
            Some((
                BlockAddr::new(self.tags[slot]),
                self.lines[slot].take().expect("occupied slot has a line"),
            ))
        };
        self.tags[slot] = block.index();
        self.stamps[slot] = stamp;
        self.lines[slot] = Some(line);
        evicted
    }

    /// Removes `block`, returning its line if it was resident.
    pub fn remove(&mut self, block: BlockAddr) -> Option<L> {
        let slot = self.slot_of(block)?;
        self.stamps[slot] = FREE;
        self.len -= 1;
        self.lines[slot].take()
    }

    /// Iterates over `(block, line)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &L)> {
        self.stamps
            .iter()
            .zip(self.tags.iter())
            .zip(self.lines.iter())
            .filter(|((&stamp, _), _)| stamp != FREE)
            .map(|((_, &tag), line)| {
                (
                    BlockAddr::new(tag),
                    line.as_ref().expect("occupied slot has a line"),
                )
            })
    }

    /// Iterates mutably over `(block, line)` pairs in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BlockAddr, &mut L)> {
        self.stamps
            .iter()
            .zip(self.tags.iter())
            .zip(self.lines.iter_mut())
            .filter(|((&stamp, _), _)| stamp != FREE)
            .map(|((_, &tag), line)| {
                (
                    BlockAddr::new(tag),
                    line.as_mut().expect("occupied slot has a line"),
                )
            })
    }

    /// Iterates over every occupied slot as `(slot, tag, stamp, line)`, in
    /// ascending slot order. This is the exact SoA state — together with
    /// [`CacheArray::tick`] it lets a checkpoint codec rebuild the array
    /// bit-identically via [`CacheArray::restore_slot`] /
    /// [`CacheArray::restore_tick`], LRU order included.
    pub fn slots(&self) -> impl Iterator<Item = (usize, u64, u64, &L)> {
        self.stamps
            .iter()
            .enumerate()
            .filter(|(_, &stamp)| stamp != FREE)
            .map(|(s, &stamp)| {
                (
                    s,
                    self.tags[s],
                    stamp,
                    self.lines[s].as_ref().expect("occupied slot has a line"),
                )
            })
    }

    /// The current LRU clock (the stamp most recently issued).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Places `line` into slot `slot` with the exact `tag` and `stamp`
    /// recorded by [`CacheArray::slots`], without touching the LRU clock.
    /// Restore every saved slot, then finish with
    /// [`CacheArray::restore_tick`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range, already occupied, or `stamp` is the
    /// free marker — a checkpoint codec must validate before calling.
    pub fn restore_slot(&mut self, slot: usize, tag: u64, stamp: u64, line: L) {
        assert!(slot < self.stamps.len(), "slot {slot} out of range");
        assert!(self.stamps[slot] == FREE, "slot {slot} already occupied");
        assert!(stamp != FREE, "stamp 0 marks a free slot");
        self.tags[slot] = tag;
        self.stamps[slot] = stamp;
        self.lines[slot] = Some(line);
        self.len += 1;
    }

    /// Restores the LRU clock saved via [`CacheArray::tick`].
    ///
    /// # Panics
    ///
    /// Panics if `tick` is smaller than some resident stamp (the clock must
    /// never run behind issued stamps).
    pub fn restore_tick(&mut self, tick: u64) {
        let max_stamp = self.stamps.iter().copied().max().unwrap_or(FREE);
        assert!(
            tick >= max_stamp,
            "tick {tick} runs behind resident stamp {max_stamp}"
        );
        self.tick = tick;
    }

    /// Absorbs every resident line of `other` into `self`, asserting that no
    /// insertion evicts. Valid only when the two arrays' resident blocks map
    /// to disjoint sets (the shard-merge invariant: a shard's blocks fill
    /// sets no other shard touches). Recency stamps are re-issued in
    /// `other`'s LRU order, so relative recency within each absorbed set is
    /// preserved.
    ///
    /// # Panics
    ///
    /// Panics if `self` and `other` have different geometries, or if an
    /// insertion would evict a resident line (overlapping sets).
    pub fn absorb(&mut self, other: CacheArray<L>) {
        assert_eq!(
            self.geometry, other.geometry,
            "absorb requires identical geometries"
        );
        let mut ways: Vec<(u64, BlockAddr, L)> = other
            .stamps
            .into_iter()
            .zip(other.tags)
            .zip(other.lines)
            .filter(|((stamp, _), _)| *stamp != FREE)
            .map(|((stamp, tag), line)| {
                (
                    stamp,
                    BlockAddr::new(tag),
                    line.expect("occupied slot has a line"),
                )
            })
            .collect();
        ways.sort_by_key(|&(stamp, _, _)| stamp);
        for (_, block, line) in ways {
            let evicted = self.insert(block, line);
            assert!(
                evicted.is_none(),
                "absorb must not evict: shard sets overlap at {block}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn hit_miss_and_reinsert() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(2, 2));
        assert!(c.get(b(4)).is_none());
        assert!(c.insert(b(4), 1).is_none());
        assert_eq!(c.get(b(4)), Some(&1));
        // Re-inserting the same block replaces in place — no eviction.
        assert!(c.insert(b(4), 2).is_none());
        assert_eq!(c.peek(b(4)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: CacheArray<&str> = CacheArray::new(CacheGeometry::new(1, 2));
        c.insert(b(0), "a");
        c.insert(b(1), "b");
        c.get(b(0)); // refresh a; b is now LRU
        assert_eq!(c.would_evict(b(2)), Some((b(1), &"b")));
        let evicted = c.insert(b(2), "c");
        assert_eq!(evicted, Some((b(1), "b")));
        assert!(c.peek(b(0)).is_some());
        assert!(c.peek(b(2)).is_some());
    }

    #[test]
    fn peek_does_not_refresh_recency() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(1, 2));
        c.insert(b(0), 0);
        c.insert(b(1), 1);
        c.peek(b(0)); // must not rescue block 0
        let evicted = c.insert(b(2), 2);
        assert_eq!(evicted, Some((b(0), 0)));
    }

    #[test]
    fn sets_are_independent() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(2, 1));
        c.insert(b(0), 0); // set 0
        c.insert(b(1), 1); // set 1
        assert_eq!(c.len(), 2);
        // Block 2 maps to set 0 and evicts only from there.
        let evicted = c.insert(b(2), 2);
        assert_eq!(evicted, Some((b(0), 0)));
        assert_eq!(c.peek(b(1)), Some(&1));
    }

    #[test]
    fn would_evict_none_when_room_or_resident() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(1, 2));
        assert!(c.would_evict(b(0)).is_none()); // room
        c.insert(b(0), 0);
        c.insert(b(1), 1);
        assert!(c.would_evict(b(0)).is_none()); // already resident
        assert!(c.would_evict(b(2)).is_some()); // full, foreign block
    }

    #[test]
    fn remove_and_iter() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(4, 2));
        for i in 0..6 {
            c.insert(b(i), i as u8);
        }
        assert_eq!(c.remove(b(3)), Some(3));
        assert_eq!(c.remove(b(3)), None);
        let mut blocks: Vec<u64> = c.iter().map(|(bl, _)| bl.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, [0, 1, 2, 4, 5]);
        for (_, line) in c.iter_mut() {
            *line += 10;
        }
        assert_eq!(c.peek(b(0)), Some(&10));
    }

    #[test]
    fn remove_then_reinsert_reuses_the_way() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(1, 2));
        c.insert(b(0), 0);
        c.insert(b(1), 1);
        assert_eq!(c.remove(b(0)), Some(0));
        assert_eq!(c.len(), 1);
        // The freed way takes the new block without evicting block 1.
        assert!(c.insert(b(2), 2).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(b(1)), Some(&1));
        assert_eq!(c.peek(b(2)), Some(&2));
    }

    #[test]
    fn capacity_accounts_geometry() {
        let g = CacheGeometry::new(8, 4);
        assert_eq!(g.capacity_blocks(), 32);
        assert_eq!(g.set_of(b(13)), 13 % 8);
    }

    #[test]
    fn absorb_merges_disjoint_sets_preserving_recency() {
        let g = CacheGeometry::new(2, 2);
        // Shard 0 fills set 0 (even blocks), shard 1 fills set 1 (odd).
        let mut even: CacheArray<u8> = CacheArray::new(g);
        even.insert(b(0), 10);
        even.insert(b(2), 12);
        even.get(b(0)); // block 2 is now LRU in set 0
        let mut odd: CacheArray<u8> = CacheArray::new(g);
        odd.insert(b(1), 11);
        even.absorb(odd);
        assert_eq!(even.len(), 3);
        assert_eq!(even.peek(b(1)), Some(&11));
        // Recency within the absorbed sets survived the merge.
        assert_eq!(even.would_evict(b(4)).map(|(bl, _)| bl), Some(b(2)));
    }

    #[test]
    fn slots_roundtrip_rebuilds_exact_state() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(2, 2));
        for i in 0..5 {
            c.insert(b(i), i as u8);
        }
        c.get(b(2)); // perturb recency so stamps are not insertion order
        let mut rebuilt: CacheArray<u8> = CacheArray::new(c.geometry());
        for (slot, tag, stamp, line) in c.slots() {
            rebuilt.restore_slot(slot, tag, stamp, *line);
        }
        rebuilt.restore_tick(c.tick());
        assert_eq!(rebuilt, c);
        // The restored clock keeps issuing fresh stamps.
        rebuilt.get(b(2));
        c.get(b(2));
        assert_eq!(rebuilt, c);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn restore_slot_rejects_double_restore() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(1, 1));
        c.restore_slot(0, 3, 1, 9);
        c.restore_slot(0, 3, 2, 9);
    }

    #[test]
    #[should_panic(expected = "runs behind")]
    fn restore_tick_rejects_stale_clock() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(1, 1));
        c.restore_slot(0, 3, 7, 9);
        c.restore_tick(3);
    }

    #[test]
    #[should_panic(expected = "absorb must not evict")]
    fn absorb_rejects_overlapping_sets() {
        let g = CacheGeometry::new(1, 1);
        let mut a: CacheArray<u8> = CacheArray::new(g);
        a.insert(b(0), 0);
        let mut c: CacheArray<u8> = CacheArray::new(g);
        c.insert(b(1), 1);
        a.absorb(c);
    }
}
