//! A set-associative cache array generic over per-line protocol state.
//!
//! Each protocol in the workspace defines its own line type (state bits,
//! present vector, data, …); this container supplies the geometry: set
//! indexing by block address, way lookup by tag, and true-LRU replacement.

use crate::addr::BlockAddr;

/// Cache shape: number of sets and ways.
///
/// Total capacity is `sets × ways` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two and `ways ≥ 1`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways >= 1, "cache needs at least one way");
        CacheGeometry { sets, ways }
    }

    /// Number of sets.
    pub fn sets(self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Total block capacity.
    pub fn capacity_blocks(self) -> usize {
        self.sets * self.ways
    }

    /// The set index for `block`.
    pub fn set_of(self, block: BlockAddr) -> usize {
        (block.index() as usize) & (self.sets - 1)
    }
}

/// One occupied way.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Way<L> {
    block: BlockAddr,
    line: L,
    /// Monotone use stamp; smallest = least recently used.
    stamp: u64,
}

/// A set-associative, true-LRU cache array.
///
/// `L` is whatever per-line state a protocol needs. Lookups by
/// [`CacheArray::get`]/[`CacheArray::get_mut`] refresh recency;
/// [`CacheArray::peek`] does not.
///
/// # Example
///
/// ```
/// use tmc_memsys::{BlockAddr, CacheArray, CacheGeometry};
///
/// // Direct-mapped, 1 set: every block contends for one way.
/// let mut c: CacheArray<u32> = CacheArray::new(CacheGeometry::new(1, 1));
/// assert!(c.insert(BlockAddr::new(1), 10).is_none());
/// let evicted = c.insert(BlockAddr::new(2), 20);
/// assert_eq!(evicted, Some((BlockAddr::new(1), 10)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheArray<L> {
    geometry: CacheGeometry,
    sets: Vec<Vec<Way<L>>>,
    tick: u64,
}

impl<L> CacheArray<L> {
    /// Creates an empty array with `geometry`.
    pub fn new(geometry: CacheGeometry) -> Self {
        CacheArray {
            geometry,
            sets: (0..geometry.sets()).map(|_| Vec::new()).collect(),
            tick: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `block`, refreshing its recency.
    pub fn get(&mut self, block: BlockAddr) -> Option<&L> {
        self.get_mut(block).map(|l| &*l)
    }

    /// Mutable lookup, refreshing recency.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut L> {
        let stamp = self.next_stamp();
        let set = &mut self.sets[self.geometry.set_of(block)];
        let way = set.iter_mut().find(|w| w.block == block)?;
        way.stamp = stamp;
        Some(&mut way.line)
    }

    /// Looks up `block` without touching recency.
    pub fn peek(&self, block: BlockAddr) -> Option<&L> {
        self.sets[self.geometry.set_of(block)]
            .iter()
            .find(|w| w.block == block)
            .map(|w| &w.line)
    }

    /// Mutable lookup without touching recency.
    pub fn peek_mut(&mut self, block: BlockAddr) -> Option<&mut L> {
        let set_idx = self.geometry.set_of(block);
        self.sets[set_idx]
            .iter_mut()
            .find(|w| w.block == block)
            .map(|w| &mut w.line)
    }

    /// The block that would be evicted to make room for `incoming`, if its
    /// set is full and `incoming` is not already resident.
    pub fn would_evict(&self, incoming: BlockAddr) -> Option<(BlockAddr, &L)> {
        let set = &self.sets[self.geometry.set_of(incoming)];
        if set.len() < self.geometry.ways() || set.iter().any(|w| w.block == incoming) {
            return None;
        }
        set.iter()
            .min_by_key(|w| w.stamp)
            .map(|w| (w.block, &w.line))
    }

    /// Installs `line` for `block` (replacing any existing line for the same
    /// block), evicting and returning the LRU way if the set is full.
    pub fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)> {
        let stamp = self.next_stamp();
        let ways = self.geometry.ways();
        let set = &mut self.sets[self.geometry.set_of(block)];
        if let Some(way) = set.iter_mut().find(|w| w.block == block) {
            way.line = line;
            way.stamp = stamp;
            return None;
        }
        let evicted = if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("full set is nonempty");
            let w = set.swap_remove(lru);
            Some((w.block, w.line))
        } else {
            None
        };
        set.push(Way { block, line, stamp });
        evicted
    }

    /// Removes `block`, returning its line if it was resident.
    pub fn remove(&mut self, block: BlockAddr) -> Option<L> {
        let set = &mut self.sets[self.geometry.set_of(block)];
        let idx = set.iter().position(|w| w.block == block)?;
        Some(set.swap_remove(idx).line)
    }

    /// Iterates over `(block, line)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &L)> {
        self.sets.iter().flatten().map(|w| (w.block, &w.line))
    }

    /// Iterates mutably over `(block, line)` pairs in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BlockAddr, &mut L)> {
        self.sets
            .iter_mut()
            .flatten()
            .map(|w| (w.block, &mut w.line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn hit_miss_and_reinsert() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(2, 2));
        assert!(c.get(b(4)).is_none());
        assert!(c.insert(b(4), 1).is_none());
        assert_eq!(c.get(b(4)), Some(&1));
        // Re-inserting the same block replaces in place — no eviction.
        assert!(c.insert(b(4), 2).is_none());
        assert_eq!(c.peek(b(4)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: CacheArray<&str> = CacheArray::new(CacheGeometry::new(1, 2));
        c.insert(b(0), "a");
        c.insert(b(1), "b");
        c.get(b(0)); // refresh a; b is now LRU
        assert_eq!(c.would_evict(b(2)), Some((b(1), &"b")));
        let evicted = c.insert(b(2), "c");
        assert_eq!(evicted, Some((b(1), "b")));
        assert!(c.peek(b(0)).is_some());
        assert!(c.peek(b(2)).is_some());
    }

    #[test]
    fn peek_does_not_refresh_recency() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(1, 2));
        c.insert(b(0), 0);
        c.insert(b(1), 1);
        c.peek(b(0)); // must not rescue block 0
        let evicted = c.insert(b(2), 2);
        assert_eq!(evicted, Some((b(0), 0)));
    }

    #[test]
    fn sets_are_independent() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(2, 1));
        c.insert(b(0), 0); // set 0
        c.insert(b(1), 1); // set 1
        assert_eq!(c.len(), 2);
        // Block 2 maps to set 0 and evicts only from there.
        let evicted = c.insert(b(2), 2);
        assert_eq!(evicted, Some((b(0), 0)));
        assert_eq!(c.peek(b(1)), Some(&1));
    }

    #[test]
    fn would_evict_none_when_room_or_resident() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(1, 2));
        assert!(c.would_evict(b(0)).is_none()); // room
        c.insert(b(0), 0);
        c.insert(b(1), 1);
        assert!(c.would_evict(b(0)).is_none()); // already resident
        assert!(c.would_evict(b(2)).is_some()); // full, foreign block
    }

    #[test]
    fn remove_and_iter() {
        let mut c: CacheArray<u8> = CacheArray::new(CacheGeometry::new(4, 2));
        for i in 0..6 {
            c.insert(b(i), i as u8);
        }
        assert_eq!(c.remove(b(3)), Some(3));
        assert_eq!(c.remove(b(3)), None);
        let mut blocks: Vec<u64> = c.iter().map(|(bl, _)| bl.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, [0, 1, 2, 4, 5]);
        for (_, line) in c.iter_mut() {
            *line += 10;
        }
        assert_eq!(c.peek(b(0)), Some(&10));
    }

    #[test]
    fn capacity_accounts_geometry() {
        let g = CacheGeometry::new(8, 4);
        assert_eq!(g.capacity_blocks(), 32);
        assert_eq!(g.set_of(b(13)), 13 % 8);
    }
}
