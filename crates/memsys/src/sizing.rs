//! Message-size accounting.
//!
//! The paper's cost analysis treats the message size `M` as a parameter; the
//! network then adds routing-tag bits per stage. `MsgSizing` is where a
//! simulated system states how many payload bits each protocol message
//! carries. The network layer ([`tmc-omeganet`]) adds tag bits itself, so
//! these sizes are pure payload.
//!
//! [`tmc-omeganet`]: ../tmc_omeganet/index.html

/// Payload sizes for every message family a protocol can send.
///
/// # Example
///
/// ```
/// use tmc_memsys::MsgSizing;
///
/// let s = MsgSizing::default();
/// // A block transfer carries the address, control bits and the data words.
/// assert_eq!(
///     s.block_transfer_bits(),
///     s.control_bits + s.addr_bits + (s.block_words as u64) * s.word_bits
/// );
/// // The paper's distributed state field: N + log2(N) + 4 bits.
/// assert_eq!(s.state_field_bits(64), 64 + 6 + 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsgSizing {
    /// Bits of a block identification (address).
    pub addr_bits: u64,
    /// Bits per data word.
    pub word_bits: u64,
    /// Words per block.
    pub block_words: usize,
    /// Opcode/framing bits on every message.
    pub control_bits: u64,
}

impl Default for MsgSizing {
    /// A small, paper-plausible configuration: 32-bit addresses and words,
    /// 4-word blocks, 4 control bits.
    fn default() -> Self {
        MsgSizing {
            addr_bits: 32,
            word_bits: 32,
            block_words: 4,
            control_bits: 4,
        }
    }
}

impl MsgSizing {
    /// Bits of one whole block of data.
    pub fn block_data_bits(&self) -> u64 {
        self.block_words as u64 * self.word_bits
    }

    /// Bits of the word offset within a block.
    pub fn offset_bits(&self) -> u64 {
        (usize::BITS - (self.block_words - 1).leading_zeros()).max(1) as u64
    }

    /// The paper's per-line state field for an `n_caches`-cache machine:
    /// V + O + M + DW (4 bits) + present vector (`n_caches` bits) +
    /// OWNER (`log₂ n_caches` bits).
    pub fn state_field_bits(&self, n_caches: usize) -> u64 {
        assert!(
            n_caches.is_power_of_two(),
            "cache count must be a power of two"
        );
        4 + n_caches as u64 + n_caches.trailing_zeros() as u64
    }

    /// A request carrying only an address (load request, ownership request,
    /// presence-clear, replacement notice).
    pub fn request_bits(&self) -> u64 {
        self.control_bits + self.addr_bits
    }

    /// A single-datum reply (global-read mode).
    pub fn datum_bits(&self) -> u64 {
        self.control_bits + self.word_bits
    }

    /// A whole-block transfer (load reply, write-back).
    pub fn block_transfer_bits(&self) -> u64 {
        self.control_bits + self.addr_bits + self.block_data_bits()
    }

    /// A state-field transfer (ownership handover without data).
    pub fn state_transfer_bits(&self, n_caches: usize) -> u64 {
        self.control_bits + self.addr_bits + self.state_field_bits(n_caches)
    }

    /// A block + state-field transfer (ownership handover with data).
    pub fn block_and_state_bits(&self, n_caches: usize) -> u64 {
        self.block_transfer_bits() + self.state_field_bits(n_caches)
    }

    /// A distributed write: address, word offset and the new value.
    pub fn update_bits(&self) -> u64 {
        self.control_bits + self.addr_bits + self.offset_bits() + self.word_bits
    }

    /// An invalidation (address only).
    pub fn invalidate_bits(&self) -> u64 {
        self.request_bits()
    }

    /// A new-owner announcement: address plus the owner id.
    pub fn new_owner_bits(&self, n_caches: usize) -> u64 {
        assert!(
            n_caches.is_power_of_two(),
            "cache count must be a power of two"
        );
        self.control_bits + self.addr_bits + n_caches.trailing_zeros() as u64
    }

    /// A bare acknowledgement (positive or negative).
    pub fn ack_bits(&self) -> u64 {
        self.control_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let s = MsgSizing::default();
        assert_eq!(s.block_data_bits(), 128);
        assert_eq!(s.offset_bits(), 2);
        assert_eq!(s.request_bits(), 36);
        assert_eq!(s.datum_bits(), 36);
        assert_eq!(s.block_transfer_bits(), 164);
        assert_eq!(s.update_bits(), 4 + 32 + 2 + 32);
        assert_eq!(s.ack_bits(), 4);
    }

    #[test]
    fn state_field_matches_paper_formula() {
        let s = MsgSizing::default();
        for n in [2usize, 16, 256, 1024] {
            assert_eq!(
                s.state_field_bits(n),
                4 + n as u64 + (n as u64).trailing_zeros() as u64
            );
        }
        assert_eq!(s.new_owner_bits(1024), 4 + 32 + 10);
        assert_eq!(
            s.block_and_state_bits(16),
            s.block_transfer_bits() + s.state_field_bits(16)
        );
        assert_eq!(s.state_transfer_bits(16), 36 + s.state_field_bits(16));
    }

    #[test]
    fn single_word_blocks_still_have_an_offset_bit() {
        let s = MsgSizing {
            block_words: 1,
            ..MsgSizing::default()
        };
        assert_eq!(s.offset_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn state_field_rejects_odd_cache_counts() {
        MsgSizing::default().state_field_bits(12);
    }
}
