//! Program-order reference memory — the coherence oracle.

use std::collections::HashMap;

use crate::addr::WordAddr;

/// A flat word-addressed memory updated in program order.
///
/// Because every protocol engine in the workspace executes one reference at
/// a time (atomic transactions), sequential consistency demands that every
/// read return exactly the last value written to that word, regardless of
/// which cache serves it. Tests run the oracle next to the system under test
/// and compare on every read.
///
/// # Example
///
/// ```
/// use tmc_memsys::{ReferenceMemory, WordAddr};
///
/// let mut oracle = ReferenceMemory::new();
/// let a = WordAddr::new(64);
/// assert_eq!(oracle.read(a), 0);
/// oracle.write(a, 7);
/// assert_eq!(oracle.read(a), 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReferenceMemory {
    words: HashMap<WordAddr, u64>,
    writes: u64,
}

impl ReferenceMemory {
    /// Creates an all-zero reference memory.
    pub fn new() -> Self {
        ReferenceMemory::default()
    }

    /// The current value of `addr` (zero if never written).
    pub fn read(&self, addr: WordAddr) -> u64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Records a program-order write.
    pub fn write(&mut self, addr: WordAddr, value: u64) {
        self.words.insert(addr, value);
        self.writes += 1;
    }

    /// A convenient unique value for the next write: tests write
    /// `stamp()` so any stale read is guaranteed to differ.
    pub fn stamp(&self) -> u64 {
        self.writes + 1
    }

    /// Number of writes recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Iterates over `(addr, value)` for every written word.
    pub fn iter(&self) -> impl Iterator<Item = (WordAddr, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_track_last_write() {
        let mut o = ReferenceMemory::new();
        let a = WordAddr::new(5);
        o.write(a, 1);
        o.write(a, 2);
        assert_eq!(o.read(a), 2);
        assert_eq!(o.read(WordAddr::new(6)), 0);
        assert_eq!(o.writes(), 2);
    }

    #[test]
    fn stamps_are_unique_across_writes() {
        let mut o = ReferenceMemory::new();
        let s1 = o.stamp();
        o.write(WordAddr::new(0), s1);
        let s2 = o.stamp();
        assert_ne!(s1, s2);
    }

    #[test]
    fn iter_exposes_written_words() {
        let mut o = ReferenceMemory::new();
        o.write(WordAddr::new(1), 10);
        o.write(WordAddr::new(2), 20);
        let mut all: Vec<_> = o.iter().collect();
        all.sort();
        assert_eq!(all, [(WordAddr::new(1), 10), (WordAddr::new(2), 20)]);
    }
}
