//! Block payloads.
//!
//! Blocks carry real word values so every protocol in the workspace can be
//! checked for *value-level* coherence against the program-order oracle, not
//! just for state-machine plausibility.

/// The data portion of one block: `words_per_block` 64-bit words.
///
/// # Example
///
/// ```
/// use tmc_memsys::BlockData;
///
/// let mut b = BlockData::zeroed(4);
/// b.set_word(2, 0xdead);
/// assert_eq!(b.word(2), 0xdead);
/// assert_eq!(b.word(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockData {
    words: Words,
}

/// Words a block stores inline; covers every paper-plausible block size
/// (the default spec is 4 words), so the protocol hot path — block fills,
/// ownership transfers, writebacks — copies a fixed array instead of
/// allocating. Larger experimental blocks spill to the heap.
const INLINE_WORDS: usize = 8;

/// The representation is canonical in the word count: `len ≤ INLINE_WORDS`
/// is always `Inline` (unused tail slots zeroed), so the derived
/// `PartialEq`/`Hash` agree with value equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Words {
    Inline { words: [u64; INLINE_WORDS], len: u8 },
    Heap(Vec<u64>),
}

impl BlockData {
    /// A block of `words` zeroed words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn zeroed(words: usize) -> Self {
        assert!(words > 0, "a block holds at least one word");
        BlockData {
            words: if words <= INLINE_WORDS {
                Words::Inline {
                    words: [0; INLINE_WORDS],
                    len: words as u8,
                }
            } else {
                Words::Heap(vec![0; words])
            },
        }
    }

    /// A block initialized by copying a word slice — allocation-free for
    /// inline-sized blocks, which makes it the right fill constructor on
    /// the protocol hot path.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn from_slice(words: &[u64]) -> Self {
        assert!(!words.is_empty(), "a block holds at least one word");
        if words.len() <= INLINE_WORDS {
            let mut inline = [0u64; INLINE_WORDS];
            inline[..words.len()].copy_from_slice(words);
            BlockData {
                words: Words::Inline {
                    words: inline,
                    len: words.len() as u8,
                },
            }
        } else {
            BlockData {
                words: Words::Heap(words.to_vec()),
            }
        }
    }

    /// A block initialized from explicit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn from_words(words: Vec<u64>) -> Self {
        assert!(!words.is_empty(), "a block holds at least one word");
        if words.len() <= INLINE_WORDS {
            let mut inline = [0u64; INLINE_WORDS];
            inline[..words.len()].copy_from_slice(&words);
            BlockData {
                words: Words::Inline {
                    words: inline,
                    len: words.len() as u8,
                },
            }
        } else {
            BlockData {
                words: Words::Heap(words),
            }
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        match &self.words {
            Words::Inline { len, .. } => *len as usize,
            Words::Heap(v) => v.len(),
        }
    }

    /// Always false: blocks are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads the word at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn word(&self, offset: usize) -> u64 {
        self.words()[offset]
    }

    /// Writes the word at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn set_word(&mut self, offset: usize, value: u64) {
        let len = self.len();
        match &mut self.words {
            Words::Inline { words, .. } => {
                assert!(offset < len, "word offset out of range");
                words[offset] = value;
            }
            Words::Heap(v) => v[offset] = value,
        }
    }

    /// All words, in offset order.
    pub fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline { words, len } => &words[..*len as usize],
            Words::Heap(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_then_written() {
        let mut b = BlockData::zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.words().iter().all(|&w| w == 0));
        b.set_word(7, 42);
        assert_eq!(b.word(7), 42);
    }

    #[test]
    fn from_words_preserves_content() {
        let b = BlockData::from_words(vec![1, 2, 3]);
        assert_eq!(b.words(), &[1, 2, 3]);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn rejects_empty_blocks() {
        BlockData::zeroed(0);
    }
}
