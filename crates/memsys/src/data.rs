//! Block payloads.
//!
//! Blocks carry real word values so every protocol in the workspace can be
//! checked for *value-level* coherence against the program-order oracle, not
//! just for state-machine plausibility.

/// The data portion of one block: `words_per_block` 64-bit words.
///
/// # Example
///
/// ```
/// use tmc_memsys::BlockData;
///
/// let mut b = BlockData::zeroed(4);
/// b.set_word(2, 0xdead);
/// assert_eq!(b.word(2), 0xdead);
/// assert_eq!(b.word(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockData {
    words: Vec<u64>,
}

impl BlockData {
    /// A block of `words` zeroed words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn zeroed(words: usize) -> Self {
        assert!(words > 0, "a block holds at least one word");
        BlockData {
            words: vec![0; words],
        }
    }

    /// A block initialized from explicit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn from_words(words: Vec<u64>) -> Self {
        assert!(!words.is_empty(), "a block holds at least one word");
        BlockData { words }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Always false: blocks are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads the word at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn word(&self, offset: usize) -> u64 {
        self.words[offset]
    }

    /// Writes the word at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn set_word(&mut self, offset: usize, value: u64) {
        self.words[offset] = value;
    }

    /// All words, in offset order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_then_written() {
        let mut b = BlockData::zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.words().iter().all(|&w| w == 0));
        b.set_word(7, 42);
        assert_eq!(b.word(7), 42);
    }

    #[test]
    fn from_words_preserves_content() {
        let b = BlockData::from_words(vec![1, 2, 3]);
        assert_eq!(b.words(), &[1, 2, 3]);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn rejects_empty_blocks() {
        BlockData::zeroed(0);
    }
}
