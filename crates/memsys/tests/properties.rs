//! Randomized tests: the set-associative LRU cache against a naive reference
//! model, and address-mapping roundtrips. Driven by the in-tree [`SimRng`]
//! (no external crates needed).

use tmc_memsys::{BlockAddr, BlockSpec, CacheArray, CacheGeometry, WordAddr};
use tmc_simcore::SimRng;

const CASES: usize = 64;

/// A deliberately naive model of a set-associative LRU cache: per set, a
/// vector ordered most-recent-first.
struct ModelCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<(BlockAddr, u32)>>,
}

impl ModelCache {
    fn new(geometry: CacheGeometry) -> Self {
        ModelCache {
            sets: (0..geometry.sets()).map(|_| Vec::new()).collect(),
            geometry,
        }
    }

    fn get(&mut self, b: BlockAddr) -> Option<u32> {
        let set = &mut self.sets[self.geometry.set_of(b)];
        let pos = set.iter().position(|&(bb, _)| bb == b)?;
        let entry = set.remove(pos);
        set.insert(0, entry);
        Some(set[0].1)
    }

    fn insert(&mut self, b: BlockAddr, v: u32) -> Option<(BlockAddr, u32)> {
        let ways = self.geometry.ways();
        let set = &mut self.sets[self.geometry.set_of(b)];
        if let Some(pos) = set.iter().position(|&(bb, _)| bb == b) {
            set.remove(pos);
            set.insert(0, (b, v));
            return None;
        }
        let evicted = if set.len() == ways { set.pop() } else { None };
        set.insert(0, (b, v));
        evicted
    }

    fn remove(&mut self, b: BlockAddr) -> Option<u32> {
        let set = &mut self.sets[self.geometry.set_of(b)];
        let pos = set.iter().position(|&(bb, _)| bb == b)?;
        Some(set.remove(pos).1)
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Get(u64),
    Insert(u64, u32),
    Remove(u64),
    Peek(u64),
}

fn arb_ops(rng: &mut SimRng) -> Vec<CacheOp> {
    let len = rng.gen_range(1..200usize);
    (0..len)
        .map(|_| {
            let b = rng.gen_range(0..32u64);
            match rng.gen_range(0..4u32) {
                0 => CacheOp::Get(b),
                1 => CacheOp::Insert(b, rng.next_u64() as u32),
                2 => CacheOp::Remove(b),
                _ => CacheOp::Peek(b),
            }
        })
        .collect()
}

#[test]
fn cache_array_matches_naive_lru_model() {
    let mut rng = SimRng::seed_from(0x10D31);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng);
        let sets_log = rng.gen_range(0..=3u32);
        let ways = rng.gen_range(1..=4usize);
        let geometry = CacheGeometry::new(1 << sets_log, ways);
        let mut real: CacheArray<u32> = CacheArray::new(geometry);
        let mut model = ModelCache::new(geometry);
        for op in ops {
            match op {
                CacheOp::Get(b) => {
                    let b = BlockAddr::new(b);
                    assert_eq!(real.get(b).copied(), model.get(b));
                }
                CacheOp::Insert(b, v) => {
                    let b = BlockAddr::new(b);
                    let got = real.insert(b, v);
                    let want = model.insert(b, v);
                    assert_eq!(got, want);
                }
                CacheOp::Remove(b) => {
                    let b = BlockAddr::new(b);
                    assert_eq!(real.remove(b), model.remove(b));
                }
                CacheOp::Peek(b) => {
                    // Peek must agree on membership and must NOT perturb
                    // LRU order (the model simply doesn't touch it).
                    let b = BlockAddr::new(b);
                    let set = &model.sets[geometry.set_of(b)];
                    let want = set.iter().find(|&&(bb, _)| bb == b).map(|&(_, v)| v);
                    assert_eq!(real.peek(b).copied(), want);
                }
            }
            assert_eq!(real.len(), model.len());
        }
    }
}

#[test]
fn would_evict_predicts_insert() {
    let mut rng = SimRng::seed_from(0xE71C7);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng);
        let incoming = rng.gen_range(0..32u64);
        let geometry = CacheGeometry::new(2, 2);
        let mut cache: CacheArray<u32> = CacheArray::new(geometry);
        for op in ops {
            if let CacheOp::Insert(b, v) = op {
                cache.insert(BlockAddr::new(b), v);
            }
        }
        let incoming = BlockAddr::new(incoming);
        let predicted = cache.would_evict(incoming).map(|(b, &v)| (b, v));
        let actual = cache.insert(incoming, 999);
        assert_eq!(predicted, actual);
    }
}

#[test]
fn block_spec_roundtrips() {
    let mut rng = SimRng::seed_from(0xB10C);
    for _ in 0..256 {
        let addr = rng.next_u64();
        let offset_bits = rng.gen_range(0..=12u32);
        let spec = BlockSpec::new(offset_bits);
        let w = WordAddr::new(addr >> 4); // keep word_at from overflowing
        let block = spec.block_of(w);
        let off = spec.offset_of(w);
        assert!(off < spec.words_per_block());
        assert_eq!(spec.word_at(block, off), w);
    }
}
