//! Property-based tests: the set-associative LRU cache against a naive
//! reference model, and address-mapping roundtrips.

use proptest::prelude::*;
use tmc_memsys::{BlockAddr, BlockSpec, CacheArray, CacheGeometry, WordAddr};

/// A deliberately naive model of a set-associative LRU cache: per set, a
/// vector ordered most-recent-first.
struct ModelCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<(BlockAddr, u32)>>,
}

impl ModelCache {
    fn new(geometry: CacheGeometry) -> Self {
        ModelCache {
            sets: (0..geometry.sets()).map(|_| Vec::new()).collect(),
            geometry,
        }
    }

    fn get(&mut self, b: BlockAddr) -> Option<u32> {
        let set = &mut self.sets[self.geometry.set_of(b)];
        let pos = set.iter().position(|&(bb, _)| bb == b)?;
        let entry = set.remove(pos);
        set.insert(0, entry);
        Some(set[0].1)
    }

    fn insert(&mut self, b: BlockAddr, v: u32) -> Option<(BlockAddr, u32)> {
        let ways = self.geometry.ways();
        let set = &mut self.sets[self.geometry.set_of(b)];
        if let Some(pos) = set.iter().position(|&(bb, _)| bb == b) {
            set.remove(pos);
            set.insert(0, (b, v));
            return None;
        }
        let evicted = if set.len() == ways { set.pop() } else { None };
        set.insert(0, (b, v));
        evicted
    }

    fn remove(&mut self, b: BlockAddr) -> Option<u32> {
        let set = &mut self.sets[self.geometry.set_of(b)];
        let pos = set.iter().position(|&(bb, _)| bb == b)?;
        Some(set.remove(pos).1)
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Get(u64),
    Insert(u64, u32),
    Remove(u64),
    Peek(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..32).prop_map(CacheOp::Get),
            (0u64..32, any::<u32>()).prop_map(|(b, v)| CacheOp::Insert(b, v)),
            (0u64..32).prop_map(CacheOp::Remove),
            (0u64..32).prop_map(CacheOp::Peek),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn cache_array_matches_naive_lru_model(
        ops in arb_ops(),
        sets_log in 0u32..=3,
        ways in 1usize..=4,
    ) {
        let geometry = CacheGeometry::new(1 << sets_log, ways);
        let mut real: CacheArray<u32> = CacheArray::new(geometry);
        let mut model = ModelCache::new(geometry);
        for op in ops {
            match op {
                CacheOp::Get(b) => {
                    let b = BlockAddr::new(b);
                    prop_assert_eq!(real.get(b).copied(), model.get(b));
                }
                CacheOp::Insert(b, v) => {
                    let b = BlockAddr::new(b);
                    let got = real.insert(b, v);
                    let want = model.insert(b, v);
                    prop_assert_eq!(got, want);
                }
                CacheOp::Remove(b) => {
                    let b = BlockAddr::new(b);
                    prop_assert_eq!(real.remove(b), model.remove(b));
                }
                CacheOp::Peek(b) => {
                    // Peek must agree on membership and must NOT perturb
                    // LRU order (the model simply doesn't touch it).
                    let b = BlockAddr::new(b);
                    let set = &model.sets[geometry.set_of(b)];
                    let want = set.iter().find(|&&(bb, _)| bb == b).map(|&(_, v)| v);
                    prop_assert_eq!(real.peek(b).copied(), want);
                }
            }
            prop_assert_eq!(real.len(), model.len());
        }
    }

    #[test]
    fn would_evict_predicts_insert(
        ops in arb_ops(),
        incoming in 0u64..32,
    ) {
        let geometry = CacheGeometry::new(2, 2);
        let mut cache: CacheArray<u32> = CacheArray::new(geometry);
        for op in ops {
            if let CacheOp::Insert(b, v) = op {
                cache.insert(BlockAddr::new(b), v);
            }
        }
        let incoming = BlockAddr::new(incoming);
        let predicted = cache.would_evict(incoming).map(|(b, &v)| (b, v));
        let actual = cache.insert(incoming, 999);
        prop_assert_eq!(predicted, actual);
    }

    #[test]
    fn block_spec_roundtrips(addr in any::<u64>(), offset_bits in 0u32..=12) {
        let spec = BlockSpec::new(offset_bits);
        let w = WordAddr::new(addr >> 4); // keep word_at from overflowing
        let block = spec.block_of(w);
        let off = spec.offset_of(w);
        prop_assert!(off < spec.words_per_block());
        prop_assert_eq!(spec.word_at(block, off), w);
    }
}
