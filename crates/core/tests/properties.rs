//! Randomized protocol tests: arbitrary operation sequences against the
//! program-order oracle, across machine shapes, with invariants checked at
//! every step. Driven by the in-tree [`SimRng`] (no external crates needed).

use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::{BlockAddr, CacheGeometry, ReferenceMemory};
use tmc_omeganet::SchemeKind;
use tmc_simcore::SimRng;

const CASES: usize = 48;

#[derive(Debug, Clone)]
enum ProtoOp {
    Read {
        proc: usize,
        block: u64,
        offset: usize,
    },
    Write {
        proc: usize,
        block: u64,
        offset: usize,
    },
    SetMode {
        proc: usize,
        block: u64,
        dw: bool,
    },
}

/// Weighted mix mirroring the old proptest strategy: 4 reads : 3 writes :
/// 1 mode switch.
fn arb_ops(rng: &mut SimRng, n_procs: usize, n_blocks: u64, len: usize) -> Vec<ProtoOp> {
    let count = rng.gen_range(1..len);
    (0..count)
        .map(|_| {
            let proc = rng.gen_range(0..n_procs);
            let block = rng.gen_range(0..n_blocks);
            match rng.gen_range(0..8u32) {
                0..=3 => ProtoOp::Read {
                    proc,
                    block,
                    offset: rng.gen_range(0..4usize),
                },
                4..=6 => ProtoOp::Write {
                    proc,
                    block,
                    offset: rng.gen_range(0..4usize),
                },
                _ => ProtoOp::SetMode {
                    proc,
                    block,
                    dw: rng.gen_bool(0.5),
                },
            }
        })
        .collect()
}

fn run_ops(cfg: SystemConfig, ops: &[ProtoOp]) {
    let spec = cfg.spec;
    let mut sys = System::new(cfg).expect("valid config");
    let mut oracle = ReferenceMemory::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            ProtoOp::Read {
                proc,
                block,
                offset,
            } => {
                let a = spec.word_at(BlockAddr::new(block), offset);
                let got = sys.read(proc, a).expect("valid proc");
                assert_eq!(got, oracle.read(a), "step {i}");
            }
            ProtoOp::Write {
                proc,
                block,
                offset,
            } => {
                let a = spec.word_at(BlockAddr::new(block), offset);
                let v = oracle.stamp();
                sys.write(proc, a, v).expect("valid proc");
                oracle.write(a, v);
            }
            ProtoOp::SetMode { proc, block, dw } => {
                let a = spec.word_at(BlockAddr::new(block), 0);
                let mode = if dw {
                    Mode::DistributedWrite
                } else {
                    Mode::GlobalRead
                };
                sys.set_mode(proc, a, mode).expect("valid proc");
            }
        }
        if let Err(v) = sys.check_invariants() {
            panic!("step {i}: {v}");
        }
    }
    sys.flush();
    for (a, v) in oracle.iter() {
        assert_eq!(sys.peek_word(a), v, "post-flush {a}");
    }
    sys.check_invariants().expect("after flush");
}

#[test]
fn oracle_holds_default_config() {
    let mut rng = SimRng::seed_from(0x0AC1E);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 4, 6, 120);
        run_ops(SystemConfig::new(4), &ops);
    }
}

#[test]
fn oracle_holds_with_one_slot_caches() {
    let mut rng = SimRng::seed_from(0x51075);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 4, 6, 120);
        run_ops(
            SystemConfig::new(4).geometry(CacheGeometry::new(1, 1)),
            &ops,
        );
    }
}

#[test]
fn oracle_holds_under_adaptive_policy() {
    let mut rng = SimRng::seed_from(0xADA7);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 4, 6, 120);
        run_ops(
            SystemConfig::new(4)
                .mode_policy(ModePolicy::Adaptive { window: 8 })
                .geometry(CacheGeometry::new(2, 1)),
            &ops,
        );
    }
}

#[test]
fn oracle_holds_for_every_multicast_scheme() {
    let mut rng = SimRng::seed_from(0x5C4E);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 8, 8, 100);
        let scheme = [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
            SchemeKind::Combined,
        ][rng.gen_range(0..4usize)];
        run_ops(
            SystemConfig::new(8)
                .multicast(scheme)
                .mode_policy(ModePolicy::Fixed(Mode::DistributedWrite))
                .geometry(CacheGeometry::new(2, 2)),
            &ops,
        );
    }
}

#[test]
fn oracle_holds_without_owner_bypass() {
    let mut rng = SimRng::seed_from(0xB9A5);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 4, 6, 100);
        run_ops(
            SystemConfig::new(4)
                .owner_bypass(false)
                .geometry(CacheGeometry::new(1, 2)),
            &ops,
        );
    }
}

/// Traffic accounting is internally consistent regardless of the
/// operation mix: the counter equals the matrix total, and the matrix
/// total is monotone along the run.
#[test]
fn traffic_accounting_is_consistent() {
    let mut rng = SimRng::seed_from(0x7AFF);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 4, 6, 80);
        let cfg = SystemConfig::new(4);
        let spec = cfg.spec;
        let mut sys = System::new(cfg).expect("valid");
        let mut last = 0;
        for op in &ops {
            match *op {
                ProtoOp::Read {
                    proc,
                    block,
                    offset,
                } => {
                    let a = spec.word_at(BlockAddr::new(block), offset);
                    sys.read(proc, a).unwrap();
                }
                ProtoOp::Write {
                    proc,
                    block,
                    offset,
                } => {
                    let a = spec.word_at(BlockAddr::new(block), offset);
                    sys.write(proc, a, 1).unwrap();
                }
                ProtoOp::SetMode { proc, block, dw } => {
                    let a = spec.word_at(BlockAddr::new(block), 0);
                    let mode = if dw {
                        Mode::DistributedWrite
                    } else {
                        Mode::GlobalRead
                    };
                    sys.set_mode(proc, a, mode).unwrap();
                }
            }
            let now = sys.traffic().total_bits();
            assert!(now >= last, "traffic must be monotone");
            assert_eq!(now, sys.counters().get("bits_total"));
            last = now;
        }
    }
}
