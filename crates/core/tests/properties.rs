//! Property-based protocol tests: arbitrary operation sequences against the
//! program-order oracle, across machine shapes, with invariants checked at
//! every step.

use proptest::prelude::*;
use tmc_core::{Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::{BlockAddr, CacheGeometry, ReferenceMemory};
use tmc_omeganet::SchemeKind;

#[derive(Debug, Clone)]
enum ProtoOp {
    Read { proc: usize, block: u64, offset: usize },
    Write { proc: usize, block: u64, offset: usize },
    SetMode { proc: usize, block: u64, dw: bool },
}

fn arb_ops(n_procs: usize, n_blocks: u64, len: usize) -> impl Strategy<Value = Vec<ProtoOp>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0..n_procs, 0..n_blocks, 0usize..4)
                .prop_map(|(proc, block, offset)| ProtoOp::Read { proc, block, offset }),
            3 => (0..n_procs, 0..n_blocks, 0usize..4)
                .prop_map(|(proc, block, offset)| ProtoOp::Write { proc, block, offset }),
            1 => (0..n_procs, 0..n_blocks, any::<bool>())
                .prop_map(|(proc, block, dw)| ProtoOp::SetMode { proc, block, dw }),
        ],
        1..len,
    )
}

fn run_ops(cfg: SystemConfig, ops: &[ProtoOp]) -> Result<(), TestCaseError> {
    let spec = cfg.spec;
    let mut sys = System::new(cfg).expect("valid config");
    let mut oracle = ReferenceMemory::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            ProtoOp::Read { proc, block, offset } => {
                let a = spec.word_at(BlockAddr::new(block), offset);
                let got = sys.read(proc, a).expect("valid proc");
                prop_assert_eq!(got, oracle.read(a), "step {}", i);
            }
            ProtoOp::Write { proc, block, offset } => {
                let a = spec.word_at(BlockAddr::new(block), offset);
                let v = oracle.stamp();
                sys.write(proc, a, v).expect("valid proc");
                oracle.write(a, v);
            }
            ProtoOp::SetMode { proc, block, dw } => {
                let a = spec.word_at(BlockAddr::new(block), 0);
                let mode = if dw { Mode::DistributedWrite } else { Mode::GlobalRead };
                sys.set_mode(proc, a, mode).expect("valid proc");
            }
        }
        if let Err(v) = sys.check_invariants() {
            return Err(TestCaseError::fail(format!("step {i}: {v}")));
        }
    }
    sys.flush();
    for (a, v) in oracle.iter() {
        prop_assert_eq!(sys.peek_word(a), v, "post-flush {}", a);
    }
    sys.check_invariants().expect("after flush");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn oracle_holds_default_config(ops in arb_ops(4, 6, 120)) {
        run_ops(SystemConfig::new(4), &ops)?;
    }

    #[test]
    fn oracle_holds_with_one_slot_caches(ops in arb_ops(4, 6, 120)) {
        run_ops(
            SystemConfig::new(4).geometry(CacheGeometry::new(1, 1)),
            &ops,
        )?;
    }

    #[test]
    fn oracle_holds_under_adaptive_policy(ops in arb_ops(4, 6, 120)) {
        run_ops(
            SystemConfig::new(4)
                .mode_policy(ModePolicy::Adaptive { window: 8 })
                .geometry(CacheGeometry::new(2, 1)),
            &ops,
        )?;
    }

    #[test]
    fn oracle_holds_for_every_multicast_scheme(
        ops in arb_ops(8, 8, 100),
        scheme_pick in 0usize..4,
    ) {
        let scheme = [
            SchemeKind::Replicated,
            SchemeKind::BitVector,
            SchemeKind::BroadcastTag,
            SchemeKind::Combined,
        ][scheme_pick];
        run_ops(
            SystemConfig::new(8)
                .multicast(scheme)
                .mode_policy(ModePolicy::Fixed(Mode::DistributedWrite))
                .geometry(CacheGeometry::new(2, 2)),
            &ops,
        )?;
    }

    #[test]
    fn oracle_holds_without_owner_bypass(ops in arb_ops(4, 6, 100)) {
        run_ops(
            SystemConfig::new(4)
                .owner_bypass(false)
                .geometry(CacheGeometry::new(1, 2)),
            &ops,
        )?;
    }

    /// Traffic accounting is internally consistent regardless of the
    /// operation mix: the counter equals the matrix total, and the matrix
    /// total is monotone along the run.
    #[test]
    fn traffic_accounting_is_consistent(ops in arb_ops(4, 6, 80)) {
        let cfg = SystemConfig::new(4);
        let spec = cfg.spec;
        let mut sys = System::new(cfg).expect("valid");
        let mut last = 0;
        for op in &ops {
            match *op {
                ProtoOp::Read { proc, block, offset } => {
                    let a = spec.word_at(BlockAddr::new(block), offset);
                    sys.read(proc, a).unwrap();
                }
                ProtoOp::Write { proc, block, offset } => {
                    let a = spec.word_at(BlockAddr::new(block), offset);
                    sys.write(proc, a, 1).unwrap();
                }
                ProtoOp::SetMode { proc, block, dw } => {
                    let a = spec.word_at(BlockAddr::new(block), 0);
                    let mode = if dw { Mode::DistributedWrite } else { Mode::GlobalRead };
                    sys.set_mode(proc, a, mode).unwrap();
                }
            }
            let now = sys.traffic().total_bits();
            prop_assert!(now >= last, "traffic must be monotone");
            prop_assert_eq!(now, sys.counters().get("bits_total"));
            last = now;
        }
    }
}
