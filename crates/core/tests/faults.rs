//! Fault-injection robustness tests for the protocol engine: zero-fault
//! transparency, recovery under seeded campaigns, and value correctness
//! against a simple memory oracle throughout. The cross-engine
//! determinism suite lives in `tmc-bench` (`tests/chaos_determinism.rs`).

use std::collections::BTreeMap;

use tmc_core::{FaultSpec, Mode, ModePolicy, System, SystemConfig};
use tmc_memsys::WordAddr;
use tmc_simcore::SimRng;

/// Drives a mixed read/write workload over a small shared address range,
/// asserting every read against a software oracle. Returns the op count.
fn drive_checked(sys: &mut System, seed: u64, ops: usize) {
    let mut rng = SimRng::seed_from(seed);
    let n = sys.n_procs();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..ops {
        let proc = rng.gen_range(0..n);
        let a = rng.gen_range(0..48u64);
        if rng.gen_bool(0.4) {
            let v = rng.next_u64();
            sys.write(proc, WordAddr::new(a), v).unwrap();
            oracle.insert(a, v);
        } else {
            let got = sys.read(proc, WordAddr::new(a)).unwrap();
            let want = oracle.get(&a).copied().unwrap_or(0);
            assert_eq!(got, want, "read of word {a} diverged from the oracle");
        }
    }
}

#[test]
fn zero_fault_plan_is_observably_absent() {
    let base = SystemConfig::new(8).mode_policy(ModePolicy::Adaptive { window: 8 });
    let mut plain = System::new(base.clone()).unwrap();
    let mut zeroed = System::new(base.faults(FaultSpec::new(42).count(0))).unwrap();
    plain.set_tracing(true);
    zeroed.set_tracing(true);
    drive_checked(&mut plain, 7, 400);
    drive_checked(&mut zeroed, 7, 400);
    assert_eq!(plain.protocol_fingerprint(), zeroed.protocol_fingerprint());
    assert_eq!(plain.counters(), zeroed.counters());
    assert_eq!(plain.traffic().total_bits(), zeroed.traffic().total_bits());
    assert_eq!(plain.drain_trace(), zeroed.drain_trace());
    assert!(zeroed.faults_enabled());
    assert_eq!(zeroed.faults_injected(), 0);
    assert!(zeroed.faults_quiescent());
}

#[test]
fn seeded_campaigns_recover_and_hold_invariants() {
    // Several seeds, both fixed modes; invariants are checked at every
    // quiescent point plus the end, and every read is oracle-checked.
    for seed in [1u64, 5, 9, 23] {
        for mode in [Mode::GlobalRead, Mode::DistributedWrite] {
            let spec = FaultSpec::new(seed).count(24).horizon(600).mean_outage(40);
            let cfg = SystemConfig::new(8)
                .mode_policy(ModePolicy::Fixed(mode))
                .faults(spec);
            let mut sys = System::new(cfg).unwrap();
            let mut rng = SimRng::seed_from(seed ^ 0xdead);
            let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
            for _ in 0..1200 {
                let proc = rng.gen_range(0..8usize);
                let a = rng.gen_range(0..48u64);
                if rng.gen_bool(0.4) {
                    let v = rng.next_u64();
                    sys.write(proc, WordAddr::new(a), v).unwrap();
                    oracle.insert(a, v);
                } else {
                    let got = sys.read(proc, WordAddr::new(a)).unwrap();
                    assert_eq!(got, oracle.get(&a).copied().unwrap_or(0));
                }
                if sys.faults_quiescent() {
                    sys.check_invariants().expect("invariants at quiescence");
                }
            }
            assert_eq!(sys.faults_injected(), 24, "whole plan fired (seed {seed})");
            assert_eq!(sys.faults_pending(), 0);
            sys.check_invariants()
                .expect("invariants at end of campaign");
            for (&a, &v) in &oracle {
                assert_eq!(sys.peek_word(WordAddr::new(a)), v);
            }
            assert!(sys.counters().get("faults_injected") == 24);
        }
    }
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let spec = FaultSpec::new(seed).count(16).horizon(300);
        let mut sys = System::new(SystemConfig::new(8).faults(spec)).unwrap();
        sys.set_tracing(true);
        drive_checked(&mut sys, seed.wrapping_mul(3), 800);
        (
            sys.protocol_fingerprint(),
            sys.counters().clone(),
            sys.traffic().total_bits(),
            sys.drain_trace(),
        )
    };
    assert_eq!(run(11), run(11));
    let (fp_a, ..) = run(11);
    let (fp_b, ..) = run(12);
    // Different seeds give different fault schedules; the runs almost
    // surely diverge (the workloads differ too, so just sanity-check that
    // both completed with distinct protocol states).
    assert_ne!(fp_a, fp_b);
}

#[test]
fn degradation_and_recovery_counters_are_coherent() {
    // A dense campaign on a tiny machine is all but guaranteed to block
    // routes and exercise retry + degradation at least once across seeds.
    let mut total_injected = 0;
    let mut total_recovered = 0;
    for seed in 0..6u64 {
        let spec = FaultSpec::new(seed).count(32).horizon(200).mean_outage(30);
        let mut sys = System::new(SystemConfig::new(4).faults(spec)).unwrap();
        drive_checked(&mut sys, seed, 900);
        total_injected += sys.counters().get("faults_injected");
        total_recovered += sys.counters().get("fault_recoveries");
        let degr = sys.counters().get("fault_degraded_blocks")
            + sys.counters().get("fault_quarantined_caches");
        assert!(
            sys.counters().get("fault_recoveries") <= degr,
            "every recovery corresponds to a prior degradation"
        );
        sys.check_invariants().unwrap();
    }
    assert_eq!(total_injected, 6 * 32, "all scheduled faults fired");
    assert!(total_recovered > 0, "at least one degradation healed");
}
